//! Sliding-window wavelet signatures (paper §5.2).
//!
//! For an `n1 × n2` image, signatures are computed for every window whose
//! size `ω` is a power of two in `[ω_min, ω_max]`, rooted on a grid of
//! stride `dist = min(ω, t)` (the paper's alignment rule). The signature of
//! a window is the `s × s` *lowest frequency band* of its non-standard Haar
//! transform — equivalently, the full transform of the window box-averaged
//! down to `s × s` — concatenated over color channels and level-normalized.
//!
//! Two implementations are provided and verified identical:
//!
//! * [`naive::compute_signatures_naive`] — transforms each window from its
//!   raw pixels: `O(ω²)` per window, `O(N·ω²_max)` total.
//! * [`dynamic::compute_signatures`] — the paper's dynamic-programming
//!   algorithm (Figures 4 and 5): level `ω` windows are assembled from the
//!   stored truncated transforms of their four `ω/2` sub-windows via
//!   `copyBlocks`, giving `O(N·S·log ω_max)` total.
//!
//! Both return [`WindowSignature`]s in identical order (window size
//! ascending, then row-major by root position), which lets tests compare
//! the two outputs element-wise.

pub mod dynamic;
pub mod integral;
pub mod naive;

pub use dynamic::{
    compute_signatures, compute_signatures_guarded, compute_signatures_with_threads, WindowGrid,
};
pub use integral::{compute_signatures_integral, SummedAreaTable};
pub use naive::compute_signatures_naive;

use crate::{is_pow2, Result, WaveletError};

/// Parameters of the sliding-window sweep. All three size parameters must be
/// powers of two, with `s ≤ ω_min ≤ ω_max` and `ω_min ≥ 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlidingParams {
    /// Signature side: each window contributes `s²` coefficients per channel.
    pub s: usize,
    /// Smallest window side considered.
    pub omega_min: usize,
    /// Largest window side considered.
    pub omega_max: usize,
    /// Desired stride `t` between adjacent windows; the effective stride at
    /// window size `ω` is `min(ω, t)`.
    pub stride: usize,
}

impl SlidingParams {
    /// The paper's retrieval-quality configuration: fixed 64×64 windows with
    /// 2×2 signatures (§6.4), stride chosen for tractable window counts.
    pub fn paper_defaults() -> Self {
        Self { s: 2, omega_min: 64, omega_max: 64, stride: 8 }
    }

    /// Validates the parameter combination.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [("s", self.s), ("omega_min", self.omega_min), ("omega_max", self.omega_max), ("t", self.stride)] {
            if !is_pow2(v) {
                return Err(WaveletError::BadParams(format!("{name} = {v} is not a power of two")));
            }
        }
        if self.omega_min < 2 {
            return Err(WaveletError::BadParams("omega_min must be >= 2".into()));
        }
        if self.s > self.omega_min {
            return Err(WaveletError::BadParams(format!(
                "signature side {} exceeds omega_min {}",
                self.s, self.omega_min
            )));
        }
        if self.omega_min > self.omega_max {
            return Err(WaveletError::BadParams(format!(
                "omega_min {} exceeds omega_max {}",
                self.omega_min, self.omega_max
            )));
        }
        Ok(())
    }

    /// Effective stride at window size `omega` (paper Figure 5, step 2).
    #[inline]
    pub fn dist(&self, omega: usize) -> usize {
        self.stride.min(omega)
    }

    /// Signature dimensionality for a `channels`-channel image.
    #[inline]
    pub fn signature_dims(&self, channels: usize) -> usize {
        self.s * self.s * channels
    }

    /// Number of window root positions along an axis of length `n` for
    /// window size `omega` (0 when the window does not fit).
    pub fn positions(&self, n: usize, omega: usize) -> usize {
        if omega > n {
            0
        } else {
            (n - omega) / self.dist(omega) + 1
        }
    }

    /// Total number of signatures that a sweep over an `n1 × n2` image
    /// produces (all sizes in `[ω_min, ω_max]`).
    pub fn total_windows(&self, n1: usize, n2: usize) -> usize {
        let mut total = 0;
        let mut omega = self.omega_min;
        while omega <= self.omega_max {
            total += self.positions(n1, omega) * self.positions(n2, omega);
            omega *= 2;
        }
        total
    }
}

/// One window's signature: root position, size, and the per-channel
/// concatenated `s²` normalized lowest-band coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSignature {
    /// Root (top-left) pixel x coordinate.
    pub x: usize,
    /// Root (top-left) pixel y coordinate.
    pub y: usize,
    /// Window side length.
    pub omega: usize,
    /// `s² × channels` coefficients, channel-major.
    pub coeffs: Vec<f32>,
}

impl WindowSignature {
    /// Euclidean distance between two signatures (must be equal length).
    pub fn distance(&self, other: &WindowSignature) -> f32 {
        l2_distance(&self.coeffs, &other.coeffs)
    }
}

/// Euclidean distance between two coefficient vectors.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f32>()
        .sqrt()
}

/// Normalizes an `s × s` raw lowest-band matrix in place, using the same
/// level convention as [`crate::haar2d::normalize_nonstandard`]. Applied by
/// both the naive and DP signature paths so their outputs stay identical.
pub(crate) fn normalize_signature_matrix(coeffs: &mut [f32], s: usize) {
    crate::haar2d::normalize_nonstandard(coeffs, s);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_paper_defaults() {
        assert!(SlidingParams::paper_defaults().validate().is_ok());
    }

    #[test]
    fn validate_rejects_non_pow2() {
        let mut p = SlidingParams { s: 2, omega_min: 4, omega_max: 16, stride: 4 };
        assert!(p.validate().is_ok());
        p.s = 3;
        assert!(p.validate().is_err());
        p = SlidingParams { s: 2, omega_min: 6, omega_max: 16, stride: 4 };
        assert!(p.validate().is_err());
        p = SlidingParams { s: 2, omega_min: 4, omega_max: 16, stride: 5 };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_inconsistent_sizes() {
        assert!(SlidingParams { s: 8, omega_min: 4, omega_max: 16, stride: 1 }.validate().is_err());
        assert!(SlidingParams { s: 2, omega_min: 16, omega_max: 8, stride: 1 }.validate().is_err());
        assert!(SlidingParams { s: 1, omega_min: 1, omega_max: 8, stride: 1 }.validate().is_err());
    }

    #[test]
    fn dist_follows_min_rule() {
        let p = SlidingParams { s: 2, omega_min: 2, omega_max: 64, stride: 8 };
        assert_eq!(p.dist(2), 2);
        assert_eq!(p.dist(8), 8);
        assert_eq!(p.dist(16), 8);
        assert_eq!(p.dist(64), 8);
    }

    #[test]
    fn position_counts() {
        let p = SlidingParams { s: 2, omega_min: 4, omega_max: 8, stride: 4 };
        // n=16, ω=4, dist=4: roots 0,4,8,12 → 4.
        assert_eq!(p.positions(16, 4), 4);
        // n=16, ω=8, dist=4: roots 0,4,8 → 3.
        assert_eq!(p.positions(16, 8), 3);
        // Window too large.
        assert_eq!(p.positions(4, 8), 0);
        // Exact fit.
        assert_eq!(p.positions(8, 8), 1);
    }

    #[test]
    fn total_window_count() {
        let p = SlidingParams { s: 2, omega_min: 4, omega_max: 8, stride: 4 };
        assert_eq!(p.total_windows(16, 16), 4 * 4 + 3 * 3);
    }

    #[test]
    fn l2_distance_basics() {
        assert_eq!(l2_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(l2_distance(&[1.0], &[1.0]), 0.0);
    }
}
