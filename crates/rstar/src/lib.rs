//! # walrus-rstar
//!
//! A from-scratch, in-memory **R\*-tree** (Beckmann, Kriegel, Schneider,
//! Seeger; SIGMOD 1990) over dynamic-dimension `f32` rectangles — the
//! spatial index WALRUS uses to store region signatures (paper §5.3–5.4; the
//! original used the libgist R-tree).
//!
//! WALRUS's usage pattern shapes the design:
//!
//! * region signatures are ~12-dimensional points (2×2 Haar corner × 3
//!   channels) or their cluster bounding boxes, so the tree takes its
//!   dimensionality at *runtime* and stores rectangles as `min`/`max`
//!   vectors;
//! * the only queries needed are "all rectangles intersecting an
//!   ε-extended query rectangle" and "all points within L2 distance ε",
//!   plus k-nearest-neighbors for ranked retrieval; all are provided;
//! * insertions dominate (index build), so the R\* heuristics that matter —
//!   ChooseSubtree with minimum overlap enlargement at the leaf level,
//!   forced reinsertion on first overflow, and the margin-then-overlap
//!   split — are implemented faithfully.
//!
//! Deletion is supported with the classic condense-and-reinsert strategy so
//! a WALRUS database can remove images.
//!
//! [`rect`] holds the geometry; [`tree`] the index. Tests cross-check every
//! query against linear scans.
//!
//! ## Example
//!
//! ```
//! use walrus_rstar::{RStarTree, Rect};
//!
//! let mut tree = RStarTree::with_dims(2)?;
//! for i in 0..100 {
//!     let p = [(i % 10) as f32, (i / 10) as f32];
//!     tree.insert(Rect::point(&p)?, i)?;
//! }
//! // ε-ball query around (4.5, 4.5).
//! let hits = tree.search_within(&[4.5, 4.5], 0.8)?;
//! assert_eq!(hits.len(), 4); // the four surrounding grid points
//! // Nearest neighbour.
//! let nearest = tree.nearest_k(&[0.2, 0.1], 1)?;
//! assert_eq!(*nearest[0].1, 0);
//! # Ok::<(), walrus_rstar::RStarError>(())
//! ```

pub mod bulk;
pub mod rect;
pub mod tree;

pub use bulk::bulk_load;
pub use rect::Rect;
pub use tree::{RStarParams, RStarTree, SearchStats};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum RStarError {
    /// A rectangle's dimensionality does not match the tree's.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Offending dimensionality.
        got: usize,
    },
    /// Invalid rectangle: `min[d] > max[d]`, NaN coordinate, or mismatched
    /// min/max lengths.
    InvalidRect(String),
    /// Invalid tree parameters.
    BadParams(String),
}

impl std::fmt::Display for RStarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RStarError::DimensionMismatch { expected, got } => {
                write!(f, "rectangle has {got} dimensions, tree expects {expected}")
            }
            RStarError::InvalidRect(msg) => write!(f, "invalid rectangle: {msg}"),
            RStarError::BadParams(msg) => write!(f, "bad R*-tree parameters: {msg}"),
        }
    }
}

impl std::error::Error for RStarError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RStarError>;
