//! The dynamic-programming sliding-window algorithm (paper §5.2,
//! Figures 3–5).
//!
//! ## The identity the algorithm rests on
//!
//! For the non-standard Haar decomposition, the upper-left `m × m` corner of
//! the transform of a `ω × ω` window equals the full transform of the window
//! box-averaged down to `m × m` (verified in `haar2d::tests`). Since a
//! signature only needs the `s × s` corner, each window can be represented
//! by the truncated transform of side `m(ω) = min(ω, s)` — this is what
//! makes the paper's "exactly NS" auxiliary-space bound hold — and the
//! truncation is *closed under merging*: the truncated transform of a
//! `ω × ω` window is computed from the `m(ω)/2 × m(ω)/2` corners of its four
//! `ω/2` sub-windows by the paper's `computeSingleWindow` —
//!
//! 1. `copyBlocks` tiles the three detail quadrants of the output from the
//!    corresponding quadrants of the four inputs (Figure 3), and
//! 2. recursion computes the output's upper-left quadrant (the transform of
//!    the averages matrix `A`) from the inputs' upper-left quadrants,
//!    bottoming out at `2 × 2` with one round of averaging/differencing over
//!    the four input DC values (Figure 4, steps 2–5).
//!
//! ## Sweep
//!
//! `computeSlidingWindows` (Figure 5) iterates `ω = 2, 4, …, ω_max`. Level
//! `ω` keeps windows rooted at multiples of `dist = min(ω, t)`; because all
//! quantities are powers of two, the roots of the four sub-windows of any
//! level-`ω` window always lie on the level-`ω/2` grid. Total work is
//! `O(N·S·log ω_max)` versus the naive `O(N·ω²_max)`.

use crate::haar2d;
use crate::sliding::{normalize_signature_matrix, SlidingParams, WindowSignature};
use crate::{Result, WaveletError};
use walrus_guard::Guard;

/// The per-level storage of the DP sweep: the truncated (side `m`) raw
/// wavelet transforms of every window of one size, for one channel.
#[derive(Debug, Clone)]
pub struct WindowGrid {
    /// Window side this level represents.
    pub omega: usize,
    /// Stride between adjacent window roots.
    pub dist: usize,
    /// Number of root positions horizontally.
    pub cols: usize,
    /// Number of root positions vertically.
    pub rows: usize,
    /// Side of the stored transform corner (`min(ω, max(s, 2))`, or 1 at
    /// level 1 — the floor of 2 keeps the merge base case well-formed when
    /// `s = 1`).
    pub m: usize,
    data: Vec<f32>,
}

impl WindowGrid {
    /// Level-1 grid: every pixel is its own 1×1 window whose "transform" is
    /// the raw intensity (paper Figure 5: `W¹[i,j]` initialization).
    pub fn level1(plane: &[f32], width: usize, height: usize) -> Self {
        debug_assert_eq!(plane.len(), width * height);
        Self { omega: 1, dist: 1, cols: width, rows: height, m: 1, data: plane.to_vec() }
    }

    /// Borrow the stored `m × m` transform of the window at grid cell
    /// `(col, row)`.
    #[inline]
    pub fn cell(&self, col: usize, row: usize) -> &[f32] {
        let sz = self.m * self.m;
        let idx = (row * self.cols + col) * sz;
        &self.data[idx..idx + sz]
    }

    /// Grid cell holding the window rooted at pixel `(x, y)`; panics if the
    /// root is not on this level's grid.
    #[inline]
    pub fn cell_at(&self, x: usize, y: usize) -> &[f32] {
        debug_assert!(x % self.dist == 0 && y % self.dist == 0);
        self.cell(x / self.dist, y / self.dist)
    }

    /// Builds the next level (`2ω`) from this one. Returns `None` when a
    /// `2ω` window no longer fits in the image.
    pub fn merge_next(&self, width: usize, height: usize, params: &SlidingParams) -> Option<Self> {
        let merged = merge_level(std::slice::from_ref(self), width, height, params, 1, &Guard::none());
        // An unarmed guard never interrupts, so the Err arm is unreachable.
        let mut grids = merged.unwrap_or(None)?;
        Some(grids.remove(0))
    }

    /// Fills one output row of the next-level merge: computes the truncated
    /// transforms of all level-`2ω` windows rooted at `y = row * dist` from
    /// this (level-`ω`) grid. `out_row` is the `cols * m * m` row slice of
    /// the next level's data buffer. Rows are independent, which is what
    /// the parallel sweep exploits.
    fn fill_merge_row(
        &self,
        row: usize,
        out_row: &mut [f32],
        omega: usize,
        dist: usize,
        cols: usize,
        m: usize,
    ) {
        let half = omega / 2;
        let out_sz = m * m;
        debug_assert_eq!(out_row.len(), cols * out_sz);
        let y = row * dist;
        for col in 0..cols {
            let x = col * dist;
            let w1 = self.cell_at(x, y);
            let w2 = self.cell_at(x + half, y);
            let w3 = self.cell_at(x, y + half);
            let w4 = self.cell_at(x + half, y + half);
            let idx = col * out_sz;
            compute_single_window(w1, w2, w3, w4, self.m, &mut out_row[idx..idx + out_sz], m);
        }
    }

    /// Extracts the `s × s` signature corner of the window at `(col, row)`,
    /// level-normalized.
    pub fn signature(&self, col: usize, row: usize, s: usize) -> Vec<f32> {
        debug_assert!(s <= self.m);
        let mut sig = haar2d::corner(self.cell(col, row), self.m, s);
        normalize_signature_matrix(&mut sig, s);
        sig
    }
}

/// Advances all channel grids one level (`ω → 2ω`), distributing the
/// independent `(channel, output row)` units across up to `threads`
/// workers. Returns `Ok(None)` when a `2ω` window no longer fits and
/// `Err(Interrupted)` when the guard trips mid-merge (workers stop within
/// one row task; the half-filled buffers are dropped). Every cell is
/// computed by the same code on the same inputs regardless of the thread
/// count, so the result is byte-identical to the serial merge.
fn merge_level(
    grids: &[WindowGrid],
    width: usize,
    height: usize,
    params: &SlidingParams,
    threads: usize,
    guard: &Guard,
) -> Result<Option<Vec<WindowGrid>>> {
    let Some(prev) = grids.first() else { return Ok(None) };
    let omega = prev.omega * 2;
    if omega > width || omega > height {
        return Ok(None);
    }
    let dist = params.dist(omega);
    let cols = (width - omega) / dist + 1;
    let rows = (height - omega) / dist + 1;
    let m = omega.min(params.s.max(2));
    let row_sz = cols * m * m;
    let mut datas: Vec<Vec<f32>> = (0..grids.len()).map(|_| vec![0.0f32; rows * row_sz]).collect();
    {
        let tasks: Vec<(usize, usize, &mut [f32])> = datas
            .iter_mut()
            .enumerate()
            .flat_map(|(c, data)| {
                data.chunks_mut(row_sz).enumerate().map(move |(row, slice)| (c, row, slice))
            })
            .collect();
        walrus_parallel::parallel_for_guarded(threads, guard, tasks, |(c, row, slice)| {
            grids[c].fill_merge_row(row, slice, omega, dist, cols, m);
        })
        .map_err(WaveletError::Interrupted)?;
    }
    Ok(Some(
        datas
            .into_iter()
            .map(|data| WindowGrid { omega, dist, cols, rows, m, data })
            .collect(),
    ))
}

/// The paper's `computeSingleWindow` (Figure 4): computes the truncated
/// (`m × m`) transform of a window from the `m/2 × m/2` corners of the
/// transforms of its four sub-windows. `W1..W4` are the top-left, top-right,
/// bottom-left and bottom-right sub-windows; `in_stride` is the row stride
/// of the input slices (their stored side, ≥ `m/2`); `out` is an `m × m`
/// row-major buffer.
pub fn compute_single_window(
    w1: &[f32],
    w2: &[f32],
    w3: &[f32],
    w4: &[f32],
    in_stride: usize,
    out: &mut [f32],
    m: usize,
) {
    debug_assert!(m >= 2 && m.is_power_of_two());
    debug_assert!(in_stride >= m / 2);
    debug_assert_eq!(out.len(), m * m);
    let out_stride = m;
    let mut size = m;
    // Iterative version of the paper's tail recursion: copyBlocks at sizes
    // m, m/2, …, 4, then the 2×2 base case (Figure 4 steps 2–5).
    while size > 2 {
        copy_blocks(w1, w2, w3, w4, in_stride, out, out_stride, size);
        size /= 2;
    }
    let a1 = w1[0];
    let a2 = w2[0];
    let a3 = w3[0];
    let a4 = w4[0];
    out[0] = (a1 + a2 + a3 + a4) / 4.0;
    out[1] = (-a1 + a2 - a3 + a4) / 4.0; // horizontal detail
    out[out_stride] = (-a1 - a2 + a3 + a4) / 4.0; // vertical detail
    out[out_stride + 1] = (a1 - a2 - a3 + a4) / 4.0; // diagonal detail
}

/// The paper's `copyBlocks` (Figure 3): tiles the three detail quadrants of
/// the size-`size` output corner from the size-`size/4` detail quadrants of
/// the four inputs. Each output quadrant `[q, 0] / [0, q] / [q, q]`
/// (`q = size/2`) is a 2×2 mosaic of the inputs' corresponding quadrants
/// (`h = size/4`), laid out by the sub-windows' spatial positions.
#[allow(clippy::too_many_arguments)] // mirrors the paper's procedure signature
fn copy_blocks(
    w1: &[f32],
    w2: &[f32],
    w3: &[f32],
    w4: &[f32],
    in_stride: usize,
    out: &mut [f32],
    out_stride: usize,
    size: usize,
) {
    debug_assert!(size >= 4);
    let q = size / 2;
    let h = size / 4;
    let inputs = [(w1, 0usize, 0usize), (w2, 1, 0), (w3, 0, 1), (w4, 1, 1)];
    for &(qx, qy) in &[(1usize, 0usize), (0, 1), (1, 1)] {
        // Output quadrant origin and input quadrant origin.
        let (ox, oy) = (qx * q, qy * q);
        let (ix, iy) = (qx * h, qy * h);
        for &(input, tx, ty) in &inputs {
            for j in 0..h {
                let src = (iy + j) * in_stride + ix;
                let dst = (oy + ty * h + j) * out_stride + ox + tx * h;
                if h == 1 {
                    // Single-coefficient rows dominate the merge at small
                    // quadrant sizes; a direct store avoids memcpy overhead.
                    out[dst] = input[src];
                } else {
                    out[dst..dst + h].copy_from_slice(&input[src..src + h]);
                }
            }
        }
    }
}

/// The paper's `computeSlidingWindows` (Figure 5): computes `s × s`
/// signatures for all sliding windows with sizes in `[ω_min, ω_max]` via
/// the dynamic-programming merge. Output order matches
/// [`super::naive::compute_signatures_naive`] exactly.
///
/// ```
/// use walrus_wavelet::sliding::compute_signatures;
/// use walrus_wavelet::SlidingParams;
///
/// let plane: Vec<f32> = (0..16 * 16).map(|i| (i % 7) as f32 / 7.0).collect();
/// let params = SlidingParams { s: 2, omega_min: 8, omega_max: 8, stride: 4 };
/// let sigs = compute_signatures(&[&plane], 16, 16, &params)?;
/// assert_eq!(sigs.len(), 9); // 3×3 roots at stride 4
/// assert_eq!(sigs[0].coeffs.len(), 4); // 2×2 signature, one channel
/// # Ok::<(), walrus_wavelet::WaveletError>(())
/// ```
pub fn compute_signatures(
    planes: &[&[f32]],
    width: usize,
    height: usize,
    params: &SlidingParams,
) -> Result<Vec<WindowSignature>> {
    compute_signatures_with_threads(planes, width, height, params, 0)
}

/// [`compute_signatures`] with an explicit worker count. `threads = 0`
/// resolves via [`walrus_parallel::resolve_threads`] (`WALRUS_THREADS`,
/// then available parallelism); `threads <= 1` runs fully serial. The sweep
/// parallelizes the two independent axes of each level — color channels and
/// window rows — and the per-row signature assembly; the output is
/// **byte-identical** for every thread count (work is partitioned, no
/// floating-point re-association).
pub fn compute_signatures_with_threads(
    planes: &[&[f32]],
    width: usize,
    height: usize,
    params: &SlidingParams,
    threads: usize,
) -> Result<Vec<WindowSignature>> {
    compute_signatures_guarded(planes, width, height, params, threads, &Guard::none())
}

/// [`compute_signatures_with_threads`] cooperating with a request [`Guard`]:
/// the guard is polled once per DP level and between row tasks inside each
/// level's merge and signature assembly, so a cancelled or deadline-expired
/// sweep stops within one row of work and returns
/// [`WaveletError::Interrupted`]. With an unarmed guard this is exactly the
/// unguarded sweep (same outputs, same fast paths).
pub fn compute_signatures_guarded(
    planes: &[&[f32]],
    width: usize,
    height: usize,
    params: &SlidingParams,
    threads: usize,
    guard: &Guard,
) -> Result<Vec<WindowSignature>> {
    params.validate()?;
    if planes.is_empty() {
        return Err(WaveletError::BadParams("no channel planes supplied".into()));
    }
    for p in planes {
        if p.len() != width * height {
            return Err(WaveletError::NotSquare { width, height: p.len() / width.max(1) });
        }
    }
    if width < params.omega_min || height < params.omega_min {
        return Err(WaveletError::ImageTooSmall { width, height, omega_min: params.omega_min });
    }
    let threads = walrus_parallel::resolve_threads(threads);

    let mut grids: Vec<WindowGrid> =
        planes.iter().map(|p| WindowGrid::level1(p, width, height)).collect();
    let mut out = Vec::with_capacity(params.total_windows(width, height));
    let mut omega = 2usize;
    while omega <= params.omega_max {
        guard.poll()?;
        match merge_level(&grids, width, height, params, threads, guard)? {
            Some(next) => grids = next,
            None => return Ok(out),
        }
        if omega >= params.omega_min {
            let (cols, rows, dist) = (grids[0].cols, grids[0].rows, grids[0].dist);
            let row_ids: Vec<usize> = (0..rows).collect();
            let per_row: Vec<Vec<WindowSignature>> =
                walrus_parallel::try_parallel_map_guarded(threads, guard, &row_ids, |_, &row| {
                    Ok::<_, WaveletError>(
                        (0..cols)
                            .map(|col| {
                                let mut coeffs =
                                    Vec::with_capacity(params.signature_dims(planes.len()));
                                for g in &grids {
                                    coeffs.extend_from_slice(&g.signature(col, row, params.s));
                                }
                                WindowSignature { x: col * dist, y: row * dist, omega, coeffs }
                            })
                            .collect(),
                    )
                })?;
            for row_sigs in per_row {
                out.extend(row_sigs);
            }
        }
        omega *= 2;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sliding::compute_signatures_naive;

    fn demo_plane(width: usize, height: usize, salt: usize) -> Vec<f32> {
        (0..width * height)
            .map(|i| ((i * 31 + salt * 13 + 7) % 19) as f32 / 19.0)
            .collect()
    }

    fn assert_same(a: &[WindowSignature], b: &[WindowSignature], tol: f32) {
        assert_eq!(a.len(), b.len(), "window counts differ");
        for (x, y) in a.iter().zip(b) {
            assert_eq!((x.x, x.y, x.omega), (y.x, y.y, y.omega), "window order differs");
            assert_eq!(x.coeffs.len(), y.coeffs.len());
            for (c, d) in x.coeffs.iter().zip(&y.coeffs) {
                assert!(
                    (c - d).abs() <= tol,
                    "window ({}, {}, ω={}) coeff {c} vs {d}",
                    x.x,
                    x.y,
                    x.omega
                );
            }
        }
    }

    #[test]
    fn dp_matches_naive_square_image() {
        let plane = demo_plane(32, 32, 0);
        let params = SlidingParams { s: 2, omega_min: 2, omega_max: 32, stride: 2 };
        let dp = compute_signatures(&[&plane], 32, 32, &params).unwrap();
        let naive = compute_signatures_naive(&[&plane], 32, 32, &params).unwrap();
        assert_same(&dp, &naive, 1e-4);
    }

    #[test]
    fn dp_matches_naive_rectangular_image() {
        let plane = demo_plane(48, 24, 1);
        let params = SlidingParams { s: 4, omega_min: 4, omega_max: 16, stride: 4 };
        let dp = compute_signatures(&[&plane], 48, 24, &params).unwrap();
        let naive = compute_signatures_naive(&[&plane], 48, 24, &params).unwrap();
        assert_same(&dp, &naive, 1e-4);
    }

    #[test]
    fn dp_matches_naive_multi_channel() {
        let a = demo_plane(16, 16, 2);
        let b = demo_plane(16, 16, 3);
        let c = demo_plane(16, 16, 4);
        let params = SlidingParams { s: 2, omega_min: 4, omega_max: 8, stride: 1 };
        let dp = compute_signatures(&[&a, &b, &c], 16, 16, &params).unwrap();
        let naive = compute_signatures_naive(&[&a, &b, &c], 16, 16, &params).unwrap();
        assert_same(&dp, &naive, 1e-4);
    }

    #[test]
    fn dp_matches_naive_large_signature() {
        // s = ω/2 and s = ω edge cases.
        let plane = demo_plane(16, 16, 5);
        for s in [8usize, 16] {
            let params = SlidingParams { s, omega_min: 16, omega_max: 16, stride: 16 };
            let dp = compute_signatures(&[&plane], 16, 16, &params).unwrap();
            let naive = compute_signatures_naive(&[&plane], 16, 16, &params).unwrap();
            assert_same(&dp, &naive, 1e-4);
        }
    }

    #[test]
    fn dp_matches_naive_s1() {
        // Degenerate 1×1 signatures (pure window means).
        let plane = demo_plane(16, 16, 6);
        let params = SlidingParams { s: 1, omega_min: 2, omega_max: 16, stride: 1 };
        let dp = compute_signatures(&[&plane], 16, 16, &params).unwrap();
        let naive = compute_signatures_naive(&[&plane], 16, 16, &params).unwrap();
        assert_same(&dp, &naive, 1e-4);
    }

    #[test]
    fn dp_matches_naive_stride_larger_than_small_windows() {
        // t = 8 > ω for ω ∈ {2, 4}: effective stride collapses to ω.
        let plane = demo_plane(32, 32, 7);
        let params = SlidingParams { s: 2, omega_min: 2, omega_max: 16, stride: 8 };
        let dp = compute_signatures(&[&plane], 32, 32, &params).unwrap();
        let naive = compute_signatures_naive(&[&plane], 32, 32, &params).unwrap();
        assert_same(&dp, &naive, 1e-4);
    }

    #[test]
    fn single_window_merge_reproduces_full_transform() {
        // Merge the four quadrant transforms of an 8×8 image and compare
        // against the direct transform.
        let side = 8;
        let img = demo_plane(side, side, 8);
        let full = haar2d::nonstandard_forward(&img, side).unwrap();
        let mut quads = Vec::new();
        for &(qx, qy) in &[(0usize, 0usize), (1, 0), (0, 1), (1, 1)] {
            let mut q = Vec::with_capacity(16);
            for j in 0..4 {
                for i in 0..4 {
                    q.push(img[(qy * 4 + j) * side + qx * 4 + i]);
                }
            }
            quads.push(haar2d::nonstandard_forward(&q, 4).unwrap());
        }
        let mut merged = vec![0.0f32; side * side];
        compute_single_window(&quads[0], &quads[1], &quads[2], &quads[3], 4, &mut merged, side);
        for (a, b) in merged.iter().zip(&full) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn threaded_sweep_is_byte_identical_to_serial() {
        // The determinism guarantee the query/ingest engine relies on:
        // outputs match bit-for-bit, not just within a tolerance.
        let a = demo_plane(48, 32, 12);
        let b = demo_plane(48, 32, 13);
        let c = demo_plane(48, 32, 14);
        let planes: Vec<&[f32]> = vec![&a, &b, &c];
        let params = SlidingParams { s: 2, omega_min: 4, omega_max: 16, stride: 4 };
        let serial = compute_signatures_with_threads(&planes, 48, 32, &params, 1).unwrap();
        for threads in [2, 3, 8] {
            let par = compute_signatures_with_threads(&planes, 48, 32, &params, threads).unwrap();
            assert_eq!(par.len(), serial.len());
            for (p, s) in par.iter().zip(&serial) {
                assert_eq!((p.x, p.y, p.omega), (s.x, s.y, s.omega));
                for (cp, cs) in p.coeffs.iter().zip(&s.coeffs) {
                    assert_eq!(cp.to_bits(), cs.to_bits(), "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn guarded_sweep_matches_unguarded_and_interrupts() {
        use walrus_guard::{Guard, Interrupt};
        let plane = demo_plane(32, 32, 15);
        let params = SlidingParams { s: 2, omega_min: 4, omega_max: 16, stride: 4 };
        // Unarmed guard: identical output.
        let plain = compute_signatures_with_threads(&[&plane[..]], 32, 32, &params, 1).unwrap();
        let guarded =
            compute_signatures_guarded(&[&plane[..]], 32, 32, &params, 1, &Guard::none()).unwrap();
        assert_eq!(plain.len(), guarded.len());
        for (p, g) in plain.iter().zip(&guarded) {
            assert_eq!((p.x, p.y, p.omega), (g.x, g.y, g.omega));
            assert_eq!(p.coeffs, g.coeffs);
        }
        // Pre-tripped guard: interrupted before any level completes.
        let guard = Guard::none().trip_after(0, Interrupt::Cancelled);
        let err = compute_signatures_guarded(&[&plane[..]], 32, 32, &params, 1, &guard)
            .unwrap_err();
        assert_eq!(err, WaveletError::Interrupted(Interrupt::Cancelled));
        // Tripping mid-sweep also interrupts (poll budget exhausted inside
        // the level loop rather than before it).
        let guard = Guard::none().trip_after(10, Interrupt::DeadlineExceeded);
        let err = compute_signatures_guarded(&[&plane[..]], 32, 32, &params, 4, &guard)
            .unwrap_err();
        assert_eq!(err, WaveletError::Interrupted(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn level1_grid_is_the_plane() {
        let plane = demo_plane(4, 3, 9);
        let g = WindowGrid::level1(&plane, 4, 3);
        assert_eq!(g.cols, 4);
        assert_eq!(g.rows, 3);
        assert_eq!(g.cell(2, 1), &plane[6..7]);
    }

    #[test]
    fn merge_stops_when_window_exceeds_image() {
        let plane = demo_plane(8, 8, 10);
        let params = SlidingParams { s: 2, omega_min: 2, omega_max: 64, stride: 1 };
        let sigs = compute_signatures(&[&plane], 8, 8, &params).unwrap();
        assert!(sigs.iter().all(|s| s.omega <= 8));
        let naive = compute_signatures_naive(&[&plane], 8, 8, &params).unwrap();
        assert_same(&sigs, &naive, 1e-4);
    }

    #[test]
    fn grid_dimensions_follow_stride_rule() {
        let plane = demo_plane(32, 32, 11);
        let params = SlidingParams { s: 2, omega_min: 2, omega_max: 8, stride: 4 };
        let l1 = WindowGrid::level1(&plane, 32, 32);
        let l2 = l1.merge_next(32, 32, &params).unwrap();
        assert_eq!((l2.omega, l2.dist), (2, 2));
        assert_eq!(l2.cols, (32 - 2) / 2 + 1);
        let l4 = l2.merge_next(32, 32, &params).unwrap();
        assert_eq!((l4.omega, l4.dist), (4, 4));
        let l8 = l4.merge_next(32, 32, &params).unwrap();
        assert_eq!((l8.omega, l8.dist), (8, 4));
        assert_eq!(l8.cols, (32 - 8) / 4 + 1);
        assert_eq!(l8.m, 2); // min(8, s) = s: the paper's NS space bound
    }
}
