//! Plain-text service counters, latency rings, and per-stage histograms.
//!
//! No external metrics stack exists in this environment, so the server keeps
//! a small set of atomics plus fixed-size latency rings and renders them in
//! the Prometheus text-exposition style (`name value` lines) at
//! `GET /metrics`. Percentiles are computed over the last
//! [`LatencyRing::CAPACITY`] samples — a sliding window, which is what an
//! operator watching a live service wants, and bounded memory, which is what
//! a hostile client demands.
//!
//! Per-pipeline-stage timings come from the request [`TraceReport`]s: each
//! traced request folds its stage durations into a fixed set of lock-free
//! [`Histogram`]s (DESIGN.md §12), so `/metrics` can answer stage-level
//! p50/p95/p99 without retaining per-request data. Every declared stage is
//! rendered even before its first sample — scrapers can rely on the full set
//! being present from the first scrape.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use walrus_trace::{monotonic, Histogram, SharedClock, TraceReport};

/// Fixed-capacity ring of recent latency samples (microseconds).
#[derive(Debug, Default)]
pub struct LatencyRing {
    samples: Mutex<Ring>,
}

#[derive(Debug, Default)]
struct Ring {
    buf: Vec<u64>,
    next: usize,
}

impl LatencyRing {
    /// Samples kept per ring; old samples are overwritten.
    pub const CAPACITY: usize = 1024;

    /// Records one duration.
    pub fn record(&self, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let mut ring = self.samples.lock().expect("latency ring lock");
        let next = ring.next;
        if ring.buf.len() < Self::CAPACITY {
            ring.buf.push(micros);
        } else {
            ring.buf[next] = micros;
        }
        ring.next = (next + 1) % Self::CAPACITY;
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.lock().expect("latency ring lock").buf.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `p50/p95/p99` in microseconds over the window, or `None` when empty.
    /// Uses the nearest-rank method on a sorted copy.
    pub fn percentiles(&self) -> Option<[u64; 3]> {
        let mut sorted = self.samples.lock().expect("latency ring lock").buf.clone();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_unstable();
        let rank = |q: f64| -> u64 {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        Some([rank(0.50), rank(0.95), rank(0.99)])
    }
}

/// Pipeline stages with a dedicated duration histogram. Every name here is
/// rendered in `/metrics` whether or not it has samples yet, so scrape-side
/// dashboards and the CI invariant checker can rely on the complete set.
/// Order matches the pipeline: query stages first, then the ingest-only WAL
/// stage, then the serving-layer cache stage (a cache-hit query spends its
/// whole life there — it is *not* folded into `rstar_probe` or any other
/// engine stage it never ran).
pub const STAGE_NAMES: [&str; 7] =
    ["decode", "wavelet", "birch", "rstar_probe", "match", "wal_append", "cache"];

/// One lock-free duration histogram per declared pipeline stage.
#[derive(Debug, Default)]
pub struct StageMetrics {
    histograms: [Histogram; STAGE_NAMES.len()],
}

impl StageMetrics {
    /// Folds every stage duration of `report` into the matching histogram.
    /// Spans whose name is not in [`STAGE_NAMES`] (the `query`/`ingest`
    /// roots, future stages) are skipped — the roots are covered by the
    /// request latency rings already.
    pub fn record_report(&self, report: &TraceReport) {
        for (name, micros) in report.stage_durations_micros() {
            if let Some(i) = STAGE_NAMES.iter().position(|s| *s == name) {
                self.histograms[i].record_micros(micros);
            }
        }
    }

    /// The histogram for `stage`, if declared.
    pub fn histogram(&self, stage: &str) -> Option<&Histogram> {
        STAGE_NAMES.iter().position(|s| *s == stage).map(|i| &self.histograms[i])
    }

    fn render_into(&self, out: &mut String) {
        for (name, h) in STAGE_NAMES.iter().zip(&self.histograms) {
            let q = |p: f64| h.quantile_micros(p).unwrap_or(0);
            out.push_str(&format!("walrus_stage_{name}_count {}\n", h.count()));
            out.push_str(&format!("walrus_stage_{name}_sum_us {}\n", h.sum_micros()));
            out.push_str(&format!("walrus_stage_{name}_p50_us {}\n", q(0.50)));
            out.push_str(&format!("walrus_stage_{name}_p95_us {}\n", q(0.95)));
            out.push_str(&format!("walrus_stage_{name}_p99_us {}\n", q(0.99)));
        }
    }
}

/// Bounded ring of rendered trace reports, keyed by request id, behind
/// `GET /trace/{id}`. Old traces are evicted FIFO; memory stays bounded no
/// matter how many requests flow through.
#[derive(Debug)]
pub struct TraceStore {
    ring: Mutex<VecDeque<(u64, String)>>,
    capacity: usize,
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new(Self::DEFAULT_CAPACITY)
    }
}

impl TraceStore {
    /// Traces retained by default.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// A store retaining the last `capacity` traces (min 1).
    pub fn new(capacity: usize) -> Self {
        TraceStore { ring: Mutex::new(VecDeque::new()), capacity: capacity.max(1) }
    }

    /// Stores the rendered trace of request `id`, evicting the oldest entry
    /// when full.
    pub fn insert(&self, id: u64, rendered: String) {
        let mut ring = self.ring.lock().expect("trace ring lock");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back((id, rendered));
    }

    /// The rendered trace of request `id`, if still retained.
    pub fn get(&self, id: u64) -> Option<String> {
        let ring = self.ring.lock().expect("trace ring lock");
        ring.iter().rev().find(|(rid, _)| *rid == id).map(|(_, t)| t.clone())
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring lock").len()
    }

    /// True when no traces are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// RAII in-flight marker: increments `walrus_in_flight` on construction and
/// decrements on drop, so the gauge covers the *entire* window in which a
/// response is being produced and written — including error responses and
/// unwinding — and can never leak an increment or under-report during
/// graceful drain.
#[derive(Debug)]
pub struct InFlight<'a>(&'a Metrics);

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// All counters the server exposes. One instance per server, shared across
/// workers; everything is lock-free except the latency rings.
#[derive(Debug)]
pub struct Metrics {
    clock: SharedClock,
    started_nanos: u64,
    /// Connections accepted.
    pub connections_total: AtomicU64,
    /// Connections bounced with 503 because the worker queue was full.
    pub rejected_total: AtomicU64,
    /// Requests fully parsed and routed.
    pub requests_total: AtomicU64,
    /// Responses by class.
    pub responses_2xx: AtomicU64,
    pub responses_4xx: AtomicU64,
    pub responses_5xx: AtomicU64,
    /// Queries answered `206`/`Partial` because their deadline expired.
    pub partial_total: AtomicU64,
    /// Queries answered `206`/`Degraded` because shards were quarantined.
    pub degraded_total: AtomicU64,
    /// Requests currently being handled (gauge).
    pub in_flight: AtomicU64,
    /// `POST /ingest` requests and images ingested through them.
    pub ingest_requests_total: AtomicU64,
    pub ingest_images_total: AtomicU64,
    /// `POST /query` requests.
    pub query_requests_total: AtomicU64,
    /// Checkpoints taken via `POST /admin/checkpoint` or shutdown.
    pub checkpoints_total: AtomicU64,
    /// Shard-layout migrations committed via `POST /admin/rebalance`.
    pub rebalances_total: AtomicU64,
    /// Index candidates rejected by the binary-signature prefilter before
    /// any exact geometry test, summed over traced requests.
    pub signatures_rejected_total: AtomicU64,
    /// Index candidates that reached the exact geometry test, summed over
    /// traced requests (the prefilter's denominator).
    pub candidates_exact_total: AtomicU64,
    /// Query-result cache outcomes: hits served from memory, misses that
    /// ran the engine, entries evicted by LRU pressure, and entries
    /// invalidated because the store's content stamp moved on.
    pub cache_hits_total: AtomicU64,
    pub cache_misses_total: AtomicU64,
    pub cache_evictions_total: AtomicU64,
    pub cache_invalidations_total: AtomicU64,
    /// Query / ingest handler latency windows.
    pub query_latency: LatencyRing,
    pub ingest_latency: LatencyRing,
    /// Per-pipeline-stage duration histograms, fed by request traces.
    pub stages: StageMetrics,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::with_clock(monotonic())
    }
}

impl Metrics {
    /// Metrics timed on an explicit clock — uptime and (via the caller)
    /// request latencies become deterministic under a
    /// [`TestClock`](walrus_trace::TestClock).
    pub fn with_clock(clock: SharedClock) -> Self {
        Metrics {
            started_nanos: clock.now_nanos(),
            clock,
            connections_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            partial_total: AtomicU64::new(0),
            degraded_total: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            ingest_requests_total: AtomicU64::new(0),
            ingest_images_total: AtomicU64::new(0),
            query_requests_total: AtomicU64::new(0),
            checkpoints_total: AtomicU64::new(0),
            rebalances_total: AtomicU64::new(0),
            signatures_rejected_total: AtomicU64::new(0),
            candidates_exact_total: AtomicU64::new(0),
            cache_hits_total: AtomicU64::new(0),
            cache_misses_total: AtomicU64::new(0),
            cache_evictions_total: AtomicU64::new(0),
            cache_invalidations_total: AtomicU64::new(0),
            query_latency: LatencyRing::default(),
            ingest_latency: LatencyRing::default(),
            stages: StageMetrics::default(),
        }
    }

    /// The clock this instance measures on.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Marks one request as in flight for the lifetime of the returned
    /// guard.
    pub fn begin_request(&self) -> InFlight<'_> {
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        InFlight(self)
    }

    /// Classifies a response status into the 2xx/4xx/5xx counters.
    pub fn count_response(&self, status: u16) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Total error responses (4xx + 5xx).
    pub fn errors_total(&self) -> u64 {
        self.responses_4xx.load(Ordering::Relaxed) + self.responses_5xx.load(Ordering::Relaxed)
    }

    /// Renders the plain-text exposition. `gauges` carries point-in-time
    /// values owned by the caller (store size, pool shape, ...) as
    /// `(name, value)` pairs appended verbatim.
    pub fn render(&self, gauges: &[(&str, u64)]) -> String {
        self.render_with(gauges, self.in_flight.load(Ordering::Relaxed))
    }

    /// [`render`](Metrics::render) for a scrape served over HTTP:
    /// identical, except `walrus_in_flight` excludes the scrape request
    /// itself (which holds an [`InFlight`] marker while this runs), so an
    /// otherwise-idle server reports 0 rather than perpetually observing
    /// its own observer.
    pub fn render_for_scrape(&self, gauges: &[(&str, u64)]) -> String {
        self.render_with(gauges, self.in_flight.load(Ordering::Relaxed).saturating_sub(1))
    }

    fn render_with(&self, gauges: &[(&str, u64)], in_flight: u64) -> String {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::with_capacity(1024);
        out.push_str("walrus_up 1\n");
        let uptime_nanos = self.clock.now_nanos().saturating_sub(self.started_nanos);
        out.push_str(&format!(
            "walrus_uptime_seconds {}\n",
            Duration::from_nanos(uptime_nanos).as_secs()
        ));
        out.push_str(&format!("walrus_connections_total {}\n", load(&self.connections_total)));
        out.push_str(&format!("walrus_rejected_total {}\n", load(&self.rejected_total)));
        out.push_str(&format!("walrus_requests_total {}\n", load(&self.requests_total)));
        out.push_str(&format!("walrus_responses_2xx_total {}\n", load(&self.responses_2xx)));
        out.push_str(&format!("walrus_responses_4xx_total {}\n", load(&self.responses_4xx)));
        out.push_str(&format!("walrus_responses_5xx_total {}\n", load(&self.responses_5xx)));
        out.push_str(&format!("walrus_errors_total {}\n", self.errors_total()));
        out.push_str(&format!("walrus_partial_results_total {}\n", load(&self.partial_total)));
        out.push_str(&format!("walrus_degraded_results_total {}\n", load(&self.degraded_total)));
        out.push_str(&format!("walrus_in_flight {in_flight}\n"));
        out.push_str(&format!(
            "walrus_ingest_requests_total {}\n",
            load(&self.ingest_requests_total)
        ));
        out.push_str(&format!(
            "walrus_ingest_images_total {}\n",
            load(&self.ingest_images_total)
        ));
        out.push_str(&format!(
            "walrus_query_requests_total {}\n",
            load(&self.query_requests_total)
        ));
        out.push_str(&format!("walrus_checkpoints_total {}\n", load(&self.checkpoints_total)));
        out.push_str(&format!("walrus_rebalances_total {}\n", load(&self.rebalances_total)));
        out.push_str(&format!(
            "walrus_signatures_rejected_total {}\n",
            load(&self.signatures_rejected_total)
        ));
        out.push_str(&format!(
            "walrus_candidates_exact_total {}\n",
            load(&self.candidates_exact_total)
        ));
        out.push_str(&format!("walrus_cache_hits_total {}\n", load(&self.cache_hits_total)));
        out.push_str(&format!("walrus_cache_misses_total {}\n", load(&self.cache_misses_total)));
        out.push_str(&format!(
            "walrus_cache_evictions_total {}\n",
            load(&self.cache_evictions_total)
        ));
        out.push_str(&format!(
            "walrus_cache_invalidations_total {}\n",
            load(&self.cache_invalidations_total)
        ));
        for (ring, what) in [(&self.query_latency, "query"), (&self.ingest_latency, "ingest")] {
            if let Some([p50, p95, p99]) = ring.percentiles() {
                out.push_str(&format!("walrus_{what}_latency_p50_us {p50}\n"));
                out.push_str(&format!("walrus_{what}_latency_p95_us {p95}\n"));
                out.push_str(&format!("walrus_{what}_latency_p99_us {p99}\n"));
                out.push_str(&format!("walrus_{what}_latency_samples {}\n", ring.len()));
            }
        }
        self.stages.render_into(&mut out);
        for (name, value) in gauges {
            out.push_str(&format!("{name} {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_percentiles_nearest_rank() {
        let ring = LatencyRing::default();
        assert_eq!(ring.percentiles(), None);
        for us in 1..=100u64 {
            ring.record(Duration::from_micros(us));
        }
        let [p50, p95, p99] = ring.percentiles().unwrap();
        assert_eq!(p50, 50);
        assert_eq!(p95, 95);
        assert_eq!(p99, 99);
    }

    #[test]
    fn ring_overwrites_beyond_capacity() {
        let ring = LatencyRing::default();
        for us in 0..(LatencyRing::CAPACITY as u64 + 500) {
            ring.record(Duration::from_micros(us));
        }
        assert_eq!(ring.len(), LatencyRing::CAPACITY);
        // Every surviving sample comes from the most recent CAPACITY records.
        let [p50, _, _] = ring.percentiles().unwrap();
        assert!(p50 >= 500);
    }

    #[test]
    fn render_contains_counters_and_gauges() {
        let metrics = Metrics::default();
        metrics.count_response(200);
        metrics.count_response(404);
        metrics.count_response(500);
        metrics.query_latency.record(Duration::from_micros(123));
        let text = metrics.render(&[("walrus_images", 7)]);
        assert!(text.contains("walrus_up 1\n"));
        assert!(text.contains("walrus_requests_total 3\n"));
        assert!(text.contains("walrus_responses_4xx_total 1\n"));
        assert!(text.contains("walrus_errors_total 2\n"));
        assert!(text.contains("walrus_query_latency_p50_us 123\n"));
        assert!(text.contains("walrus_images 7\n"));
    }

    #[test]
    fn every_stage_histogram_renders_even_when_empty() {
        let text = Metrics::default().render(&[]);
        for stage in STAGE_NAMES {
            assert!(text.contains(&format!("walrus_stage_{stage}_count 0\n")), "{text}");
            assert!(text.contains(&format!("walrus_stage_{stage}_p99_us 0\n")), "{text}");
        }
    }

    #[test]
    fn stage_metrics_fold_trace_reports() {
        use walrus_trace::{TestClock, TraceContext};
        let clock = TestClock::new();
        let ctx = TraceContext::new(clock.clone());
        {
            let _root = ctx.span("query");
            let decode = ctx.span("decode");
            clock.advance(Duration::from_micros(100));
            drop(decode);
            let _unknown = ctx.span("not_a_stage");
        }
        let metrics = Metrics::default();
        metrics.stages.record_report(&ctx.report());
        let h = metrics.stages.histogram("decode").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum_micros(), 100);
        // Root spans and unknown names are not stage samples.
        for stage in STAGE_NAMES.iter().filter(|s| **s != "decode") {
            assert_eq!(metrics.stages.histogram(stage).unwrap().count(), 0);
        }
    }

    #[test]
    fn uptime_follows_injected_clock() {
        use walrus_trace::TestClock;
        let clock = TestClock::new();
        let metrics = Metrics::with_clock(clock.clone());
        assert!(metrics.render(&[]).contains("walrus_uptime_seconds 0\n"));
        clock.advance(Duration::from_secs(42));
        assert!(metrics.render(&[]).contains("walrus_uptime_seconds 42\n"));
    }

    #[test]
    fn trace_store_evicts_fifo_and_finds_by_id() {
        let store = TraceStore::new(2);
        store.insert(1, "one".into());
        store.insert(2, "two".into());
        store.insert(3, "three".into());
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(1), None);
        assert_eq!(store.get(2).as_deref(), Some("two"));
        assert_eq!(store.get(3).as_deref(), Some("three"));
    }

    #[test]
    fn in_flight_guard_balances_on_all_paths() {
        let metrics = Metrics::default();
        {
            let _a = metrics.begin_request();
            let _b = metrics.begin_request();
            assert_eq!(metrics.in_flight.load(Ordering::Acquire), 2);
        }
        assert_eq!(metrics.in_flight.load(Ordering::Acquire), 0);
        // Unwinding also releases the marker.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = metrics.begin_request();
            panic!("boom");
        }));
        assert!(caught.is_err());
        assert_eq!(metrics.in_flight.load(Ordering::Acquire), 0);
    }

    #[test]
    fn scrape_render_excludes_the_scrape_itself() {
        let metrics = Metrics::default();
        // Idle server, scrape in progress: raw gauge 1, scrape reports 0.
        let scrape = metrics.begin_request();
        assert!(metrics.render(&[]).contains("walrus_in_flight 1\n"));
        assert!(metrics.render_for_scrape(&[]).contains("walrus_in_flight 0\n"));
        // One genuinely concurrent request is still visible to the scrape.
        let _other = metrics.begin_request();
        assert!(metrics.render_for_scrape(&[]).contains("walrus_in_flight 1\n"));
        drop(scrape);
        // Outside any request, the saturating exclusion cannot underflow.
        drop(_other);
        assert!(metrics.render_for_scrape(&[]).contains("walrus_in_flight 0\n"));
    }
}
