//! Coarse region bitmaps (paper §5.3).
//!
//! For each region WALRUS stores a bitmap of the pixels covered by the
//! region's member windows, used by the image-matching step to compute the
//! area covered by (possibly overlapping) matched regions. To cut storage,
//! the paper keeps one bit per `k × k` pixel block — e.g. the §6.4
//! configuration stores a 16×16 (32-byte) bitmap per region regardless of
//! image size.
//!
//! This implementation follows that design: a [`RegionBitmap`] is a fixed
//! `gw × gh` grid of bits over a `width × height` image. A grid cell is set
//! when any member window overlaps it; the *area* of a bitmap is the total
//! number of image pixels in set cells (edge cells can be smaller than
//! interior ones, which the accounting respects exactly).

/// A coarse occupancy bitmap over an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionBitmap {
    width: usize,
    height: usize,
    gw: usize,
    gh: usize,
    bits: Vec<u64>,
}

impl RegionBitmap {
    /// Creates an empty bitmap with a `grid × grid` cell layout over a
    /// `width × height` image (the paper's 16×16 default corresponds to
    /// `grid = 16`). The grid is clamped so cells are at least one pixel.
    pub fn new(width: usize, height: usize, grid: usize) -> Self {
        assert!(width > 0 && height > 0 && grid > 0, "degenerate bitmap");
        let gw = grid.min(width);
        let gh = grid.min(height);
        let words = (gw * gh).div_ceil(64);
        Self { width, height, gw, gh, bits: vec![0; words] }
    }

    /// Image width this bitmap covers.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height this bitmap covers.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Grid columns.
    pub fn grid_width(&self) -> usize {
        self.gw
    }

    /// Grid rows.
    pub fn grid_height(&self) -> usize {
        self.gh
    }

    /// Storage footprint in bytes (the paper quotes 32 bytes for 16×16).
    pub fn storage_bytes(&self) -> usize {
        (self.gw * self.gh).div_ceil(8)
    }

    #[inline]
    fn idx(&self, cx: usize, cy: usize) -> usize {
        cy * self.gw + cx
    }

    /// Whether grid cell `(cx, cy)` is set.
    #[inline]
    pub fn get_cell(&self, cx: usize, cy: usize) -> bool {
        let i = self.idx(cx, cy);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets grid cell `(cx, cy)`.
    #[inline]
    pub fn set_cell(&mut self, cx: usize, cy: usize) {
        let i = self.idx(cx, cy);
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Pixel extent of grid cell `(cx, cy)`: `(x0, y0, w, h)`. Cells tile
    /// the image as evenly as possible.
    pub fn cell_pixels(&self, cx: usize, cy: usize) -> (usize, usize, usize, usize) {
        let x0 = cx * self.width / self.gw;
        let x1 = (cx + 1) * self.width / self.gw;
        let y0 = cy * self.height / self.gh;
        let y1 = (cy + 1) * self.height / self.gh;
        (x0, y0, x1 - x0, y1 - y0)
    }

    /// Marks every cell overlapped by the `w × h` pixel window rooted at
    /// `(x, y)` (clipped to the image).
    pub fn mark_window(&mut self, x: usize, y: usize, w: usize, h: usize) {
        if x >= self.width || y >= self.height || w == 0 || h == 0 {
            return;
        }
        let x1 = (x + w).min(self.width); // exclusive
        let y1 = (y + h).min(self.height);
        // Cell range overlapping [x, x1) × [y, y1).
        let cx0 = x * self.gw / self.width;
        let cy0 = y * self.gh / self.height;
        let cx1 = ((x1 - 1) * self.gw / self.width).min(self.gw - 1);
        let cy1 = ((y1 - 1) * self.gh / self.height).min(self.gh - 1);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                self.set_cell(cx, cy);
            }
        }
    }

    /// Number of image pixels in set cells.
    pub fn area(&self) -> usize {
        let mut total = 0;
        for cy in 0..self.gh {
            for cx in 0..self.gw {
                if self.get_cell(cx, cy) {
                    let (_, _, w, h) = self.cell_pixels(cx, cy);
                    total += w * h;
                }
            }
        }
        total
    }

    /// Number of set cells.
    pub fn cells_set(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Unions `other` into `self`. Panics when layouts differ.
    pub fn union_in_place(&mut self, other: &RegionBitmap) {
        assert_eq!(
            (self.width, self.height, self.gw, self.gh),
            (other.width, other.height, other.gw, other.gh),
            "bitmap layouts differ"
        );
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// The union of `self` and `other`.
    pub fn union(&self, other: &RegionBitmap) -> RegionBitmap {
        let mut out = self.clone();
        out.union_in_place(other);
        out
    }

    /// Pixel area of the union without materializing it.
    pub fn union_area(&self, other: &RegionBitmap) -> usize {
        assert_eq!(
            (self.width, self.height, self.gw, self.gh),
            (other.width, other.height, other.gw, other.gh),
            "bitmap layouts differ"
        );
        let mut total = 0;
        for cy in 0..self.gh {
            for cx in 0..self.gw {
                if self.get_cell(cx, cy) || other.get_cell(cx, cy) {
                    let (_, _, w, h) = self.cell_pixels(cx, cy);
                    total += w * h;
                }
            }
        }
        total
    }

    /// True when no cell is set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Fraction of the image covered (`area / (width·height)`).
    pub fn coverage(&self) -> f64 {
        self.area() as f64 / (self.width * self.height) as f64
    }

    /// The raw bit words backing this bitmap (for persistence).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Reconstructs a bitmap from its raw parts (inverse of reading
    /// [`RegionBitmap::words`] alongside the geometry accessors). Returns
    /// `None` when the geometry is inconsistent.
    pub fn from_words(
        width: usize,
        height: usize,
        gw: usize,
        gh: usize,
        bits: Vec<u64>,
    ) -> Option<Self> {
        if width == 0 || height == 0 || gw == 0 || gh == 0 || gw > width || gh > height {
            return None;
        }
        if bits.len() != (gw * gh).div_ceil(64) {
            return None;
        }
        // Reject set bits beyond the last cell (would corrupt counts).
        let tail_bits = (gw * gh) % 64;
        if tail_bits != 0 {
            let mask = !0u64 << tail_bits;
            if bits.last().copied().unwrap_or(0) & mask != 0 {
                return None;
            }
        }
        Some(Self { width, height, gw, gh, bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bitmap() {
        let b = RegionBitmap::new(128, 96, 16);
        assert!(b.is_empty());
        assert_eq!(b.area(), 0);
        assert_eq!(b.cells_set(), 0);
        assert_eq!(b.coverage(), 0.0);
    }

    #[test]
    fn paper_storage_claim() {
        // §6.4: "with each region, we stored a 16×16 (32 byte) bitmap".
        let b = RegionBitmap::new(128, 96, 16);
        assert_eq!(b.storage_bytes(), 32);
    }

    #[test]
    fn full_cover() {
        let mut b = RegionBitmap::new(64, 64, 16);
        b.mark_window(0, 0, 64, 64);
        assert_eq!(b.area(), 64 * 64);
        assert_eq!(b.cells_set(), 256);
        assert!((b.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_window_marks_overlapped_cells() {
        // 64×64 image, 16×16 grid → 4-px cells. Window (4,4,8,8) spans
        // cells (1..=2, 1..=2).
        let mut b = RegionBitmap::new(64, 64, 16);
        b.mark_window(4, 4, 8, 8);
        assert_eq!(b.cells_set(), 4);
        assert_eq!(b.area(), 4 * 16);
        assert!(b.get_cell(1, 1) && b.get_cell(2, 2));
        assert!(!b.get_cell(0, 0) && !b.get_cell(3, 3));
    }

    #[test]
    fn partial_cell_overlap_sets_cell() {
        let mut b = RegionBitmap::new(64, 64, 16);
        b.mark_window(3, 3, 2, 2); // straddles cells (0,0),(1,0),(0,1),(1,1)
        assert_eq!(b.cells_set(), 4);
    }

    #[test]
    fn window_clipped_at_edges() {
        let mut b = RegionBitmap::new(64, 64, 16);
        b.mark_window(60, 60, 100, 100);
        assert_eq!(b.cells_set(), 1);
        assert!(b.get_cell(15, 15));
        // Fully outside: no-op.
        b.mark_window(64, 0, 4, 4);
        b.mark_window(0, 70, 4, 4);
        assert_eq!(b.cells_set(), 1);
    }

    #[test]
    fn area_respects_uneven_cells() {
        // 10×10 image on a 3×3 grid: cells are 3/3/4 wide.
        let b = RegionBitmap::new(10, 10, 3);
        let mut total = 0;
        for cy in 0..3 {
            for cx in 0..3 {
                let (_, _, w, h) = b.cell_pixels(cx, cy);
                total += w * h;
            }
        }
        assert_eq!(total, 100, "cells must tile the image exactly");
        let mut full = b.clone();
        full.mark_window(0, 0, 10, 10);
        assert_eq!(full.area(), 100);
    }

    #[test]
    fn grid_clamped_for_tiny_images() {
        let mut b = RegionBitmap::new(4, 2, 16);
        assert_eq!(b.grid_width(), 4);
        assert_eq!(b.grid_height(), 2);
        b.mark_window(0, 0, 1, 1);
        assert_eq!(b.area(), 1);
    }

    #[test]
    fn union_and_union_area() {
        let mut a = RegionBitmap::new(64, 64, 16);
        let mut b = RegionBitmap::new(64, 64, 16);
        a.mark_window(0, 0, 16, 16); // cells (0..=3, 0..=3)
        b.mark_window(8, 8, 16, 16); // cells (2..=5, 2..=5)
        let union = a.union(&b);
        assert_eq!(union.cells_set(), 16 + 16 - 4);
        assert_eq!(a.union_area(&b), union.area());
        // Union is commutative.
        assert_eq!(b.union(&a), union);
        // a unchanged by non-destructive union.
        assert_eq!(a.cells_set(), 16);
    }

    #[test]
    fn overlapping_windows_do_not_double_count() {
        let mut b = RegionBitmap::new(64, 64, 16);
        b.mark_window(0, 0, 32, 32);
        let area1 = b.area();
        b.mark_window(0, 0, 32, 32);
        b.mark_window(16, 16, 16, 16);
        assert_eq!(b.area(), area1, "re-marking covered space adds nothing");
    }

    #[test]
    #[should_panic(expected = "bitmap layouts differ")]
    fn union_layout_mismatch_panics() {
        let a = RegionBitmap::new(64, 64, 16);
        let b = RegionBitmap::new(32, 64, 16);
        let _ = a.union_area(&b);
    }

    #[test]
    fn zero_sized_window_is_noop() {
        let mut b = RegionBitmap::new(64, 64, 16);
        b.mark_window(10, 10, 0, 5);
        b.mark_window(10, 10, 5, 0);
        assert!(b.is_empty());
    }
}
