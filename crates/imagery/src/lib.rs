//! # walrus-imagery
//!
//! Image substrate for the WALRUS reproduction: multi-channel floating-point
//! images, color-space conversions (RGB / YCC / YIQ / HSV / grayscale),
//! plain-text and binary PPM/PGM codecs, and a deterministic synthetic scene
//! generator that stands in for the paper's `misc` photo collection.
//!
//! The WALRUS paper (Natsev, Rastogi, Shim; SIGMOD 1999) used the
//! ImageMagick library for decoding and color-space conversion and a 10 000
//! image JPEG dataset downloaded from VIRAGE. Neither is available here, so
//! this crate provides:
//!
//! * [`Image`] / [`Channel`] — resolution-independent `f32` pixel storage in
//!   `[0, 1]`, the common currency of every other crate in the workspace.
//! * [`color`] — the color spaces the paper mentions (RGB, YCC, YIQ, HSV).
//! * [`ppm`] — PPM/PGM readers and writers for getting images in and out.
//! * [`synth`] — labeled synthetic scenes (flowers, brick walls, sunsets,
//!   lawns, …) with controlled object translation / scaling / color shifts,
//!   which is exactly the ground truth the paper's retrieval-quality
//!   experiments require.
//!
//! ## Example
//!
//! ```
//! use walrus_imagery::{ColorSpace, Image};
//!
//! // Build an image procedurally, convert color spaces, crop.
//! let img = Image::from_fn(32, 16, ColorSpace::Rgb, |x, _, c| {
//!     if c == 0 { x as f32 / 31.0 } else { 0.25 }
//! })?;
//! let ycc = img.to_space(ColorSpace::Ycc)?;
//! assert_eq!(ycc.space(), ColorSpace::Ycc);
//! let patch = img.crop(8, 4, 16, 8)?;
//! assert_eq!((patch.width(), patch.height()), (16, 8));
//! # Ok::<(), walrus_imagery::ImageError>(())
//! ```

pub mod color;
pub mod image;
pub mod ops;
pub mod ppm;
pub mod synth;

pub use color::ColorSpace;
pub use image::{Channel, Image};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImageError {
    /// The requested dimensions are invalid (zero-sized, or mismatched with
    /// the provided pixel buffer).
    InvalidDimensions {
        /// Width that was requested.
        width: usize,
        /// Height that was requested.
        height: usize,
        /// Length of the pixel buffer supplied, if any.
        buffer_len: Option<usize>,
    },
    /// An operation required two images/channels of identical shape.
    ShapeMismatch {
        /// Shape of the left operand `(width, height, channels)`.
        left: (usize, usize, usize),
        /// Shape of the right operand.
        right: (usize, usize, usize),
    },
    /// A crop or window fell outside the image bounds.
    OutOfBounds {
        /// Requested origin.
        origin: (usize, usize),
        /// Requested size.
        size: (usize, usize),
        /// Actual image size.
        image: (usize, usize),
    },
    /// A PPM/PGM stream could not be parsed.
    Codec(String),
    /// A color-space conversion was requested that this crate does not define
    /// (e.g. HSV → YIQ directly; go through RGB instead).
    UnsupportedConversion {
        /// Source space.
        from: ColorSpace,
        /// Destination space.
        to: ColorSpace,
    },
    /// A decoded image would exceed the caller's pixel budget (or overflow
    /// `usize`). Raised **before** any raster allocation, so hostile headers
    /// cannot trigger allocation bombs.
    TooLarge {
        /// Declared width.
        width: usize,
        /// Declared height.
        height: usize,
        /// The pixel budget that was exceeded.
        max_pixels: usize,
    },
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::InvalidDimensions { width, height, buffer_len } => match buffer_len {
                Some(len) => write!(
                    f,
                    "invalid dimensions {width}x{height} for buffer of length {len}"
                ),
                None => write!(f, "invalid dimensions {width}x{height}"),
            },
            ImageError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            ImageError::OutOfBounds { origin, size, image } => write!(
                f,
                "window {size:?} at {origin:?} exceeds image bounds {image:?}"
            ),
            ImageError::Codec(msg) => write!(f, "codec error: {msg}"),
            ImageError::UnsupportedConversion { from, to } => {
                write!(f, "unsupported color conversion {from:?} -> {to:?}")
            }
            ImageError::TooLarge { width, height, max_pixels } => write!(
                f,
                "declared image size {width}x{height} exceeds the pixel budget {max_pixels}"
            ),
        }
    }
}

impl std::error::Error for ImageError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ImageError>;
