//! The CF-tree: BIRCH's height-balanced incremental clustering index.
//!
//! Each leaf holds up to `L` clustering features (sub-clusters); each
//! internal node holds up to `B` children, each summarized by the CF of its
//! subtree. Inserting a point descends to the closest leaf entry (by
//! centroid distance at every level), absorbs the point when the merged
//! radius stays within the threshold `T`, and otherwise starts a new entry —
//! splitting nodes on overflow with farthest-pair seeding, exactly the
//! BIRCH phase-1 insertion.
//!
//! When an optional budget on the number of leaf entries is exceeded, the
//! tree *rebuilds*: the threshold is escalated and all leaf entries are
//! reinserted (CFs merge with the same radius test), shrinking the tree —
//! BIRCH's answer to a fixed memory budget. WALRUS passes the cluster
//! threshold `ε_c` straight through as `T`, so each harvested cluster's
//! radius is (by construction) at most `ε_c`.

use crate::cf::ClusteringFeature;
use crate::{BirchError, Result};

/// CF-tree parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BirchParams {
    /// Maximum children per internal node (`B`), ≥ 2.
    pub branching: usize,
    /// Maximum entries per leaf (`L`), ≥ 2.
    pub leaf_capacity: usize,
    /// Radius threshold `T` (WALRUS's `ε_c`), ≥ 0.
    pub threshold: f64,
    /// Optional cap on total leaf entries; exceeding it triggers threshold
    /// escalation + rebuild.
    pub max_leaf_entries: Option<usize>,
}

impl Default for BirchParams {
    /// Defaults in the spirit of the BIRCH paper's suggested configuration.
    fn default() -> Self {
        Self { branching: 8, leaf_capacity: 8, threshold: 0.0, max_leaf_entries: None }
    }
}

impl BirchParams {
    /// Validates the parameter combination.
    pub fn validate(&self) -> Result<()> {
        if self.branching < 2 {
            return Err(BirchError::BadParams("branching factor must be >= 2".into()));
        }
        if self.leaf_capacity < 2 {
            return Err(BirchError::BadParams("leaf capacity must be >= 2".into()));
        }
        if !self.threshold.is_finite() || self.threshold < 0.0 {
            return Err(BirchError::BadParams(format!("threshold {} invalid", self.threshold)));
        }
        if let Some(m) = self.max_leaf_entries {
            if m < 2 {
                return Err(BirchError::BadParams("max_leaf_entries must be >= 2".into()));
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct Child {
    cf: ClusteringFeature,
    node: Box<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(Vec<ClusteringFeature>),
    Internal(Vec<Child>),
}

struct InsertOutcome {
    sibling: Option<Node>,
    new_entry: bool,
    /// Node splits (leaf + internal) this insertion caused.
    splits: usize,
}

/// The CF-tree.
#[derive(Debug, Clone)]
pub struct CfTree {
    root: Node,
    dims: usize,
    params: BirchParams,
    threshold: f64,
    leaf_entries: usize,
    points: u64,
    rebuilds: usize,
    splits: usize,
}

impl CfTree {
    /// Creates an empty tree over `dims`-dimensional points.
    pub fn new(dims: usize, params: BirchParams) -> Result<Self> {
        params.validate()?;
        if dims == 0 {
            return Err(BirchError::BadParams("dimensionality must be >= 1".into()));
        }
        Ok(Self {
            root: Node::Leaf(Vec::new()),
            dims,
            threshold: params.threshold,
            params,
            leaf_entries: 0,
            points: 0,
            rebuilds: 0,
            splits: 0,
        })
    }

    /// Inserts one point.
    pub fn insert(&mut self, point: &[f32]) -> Result<()> {
        if point.len() != self.dims {
            return Err(BirchError::DimensionMismatch { expected: self.dims, got: point.len() });
        }
        self.insert_cf(ClusteringFeature::from_point(point))
    }

    /// Inserts a pre-summarized cluster (used by rebuilds and by callers
    /// merging trees).
    pub fn insert_cf(&mut self, cf: ClusteringFeature) -> Result<()> {
        if cf.dims() != self.dims {
            return Err(BirchError::DimensionMismatch { expected: self.dims, got: cf.dims() });
        }
        if cf.count() == 0 {
            return Ok(());
        }
        self.points += cf.count();
        let outcome = insert_rec(&mut self.root, &cf, self.threshold, &self.params);
        self.splits += outcome.splits;
        if outcome.new_entry {
            self.leaf_entries += 1;
        }
        if let Some(sibling) = outcome.sibling {
            let old = std::mem::replace(&mut self.root, Node::Leaf(Vec::new()));
            let c1 = Child { cf: node_cf(&old, self.dims), node: Box::new(old) };
            let c2 = Child { cf: node_cf(&sibling, self.dims), node: Box::new(sibling) };
            self.root = Node::Internal(vec![c1, c2]);
        }
        if let Some(budget) = self.params.max_leaf_entries {
            while self.leaf_entries > budget {
                self.rebuild();
            }
        }
        Ok(())
    }

    /// Escalates the threshold and reinserts every leaf entry, shrinking the
    /// tree. Public so callers can compact explicitly.
    pub fn rebuild(&mut self) {
        let entries = self.leaf_entry_clones();
        self.threshold = escalate_threshold(self.threshold, &entries);
        self.rebuilds += 1;
        self.root = Node::Leaf(Vec::new());
        self.leaf_entries = 0;
        self.points = 0;
        for cf in entries {
            // Reinsertion cannot trigger a nested rebuild loop: we bypass
            // `insert_cf`'s budget check by replaying the core path.
            self.points += cf.count();
            let outcome = insert_rec(&mut self.root, &cf, self.threshold, &self.params);
            self.splits += outcome.splits;
            if outcome.new_entry {
                self.leaf_entries += 1;
            }
            if let Some(sibling) = outcome.sibling {
                let old = std::mem::replace(&mut self.root, Node::Leaf(Vec::new()));
                let c1 = Child { cf: node_cf(&old, self.dims), node: Box::new(old) };
                let c2 = Child { cf: node_cf(&sibling, self.dims), node: Box::new(sibling) };
                self.root = Node::Internal(vec![c1, c2]);
            }
        }
    }

    /// All leaf entries (the clusters), cloned out of the tree.
    pub fn leaf_entry_clones(&self) -> Vec<ClusteringFeature> {
        let mut out = Vec::with_capacity(self.leaf_entries);
        collect_leaves(&self.root, &mut out);
        out
    }

    /// Number of leaf entries (= clusters).
    pub fn num_clusters(&self) -> usize {
        self.leaf_entries
    }

    /// Number of points inserted (counting CF weights).
    pub fn num_points(&self) -> u64 {
        self.points
    }

    /// Current radius threshold (may exceed the initial `T` after rebuilds).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// How many threshold-escalation rebuilds have happened.
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds
    }

    /// Cumulative node splits (leaf + internal) over the tree's lifetime,
    /// including splits replayed during rebuilds.
    pub fn split_count(&self) -> usize {
        self.splits
    }

    /// Tree height (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal(children) = node {
            h += 1;
            node = &children[0].node;
        }
        h
    }
}

fn insert_rec(node: &mut Node, cf: &ClusteringFeature, threshold: f64, params: &BirchParams) -> InsertOutcome {
    match node {
        Node::Leaf(entries) => {
            // Closest entry by centroid distance.
            let closest = entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.centroid_distance(cf)
                        .partial_cmp(&b.centroid_distance(cf))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i);
            if let Some(i) = closest {
                if entries[i].merged(cf).radius() <= threshold {
                    entries[i].merge(cf);
                    return InsertOutcome { sibling: None, new_entry: false, splits: 0 };
                }
            }
            entries.push(cf.clone());
            if entries.len() > params.leaf_capacity {
                let sibling = split_leaf(entries);
                InsertOutcome { sibling: Some(sibling), new_entry: true, splits: 1 }
            } else {
                InsertOutcome { sibling: None, new_entry: true, splits: 0 }
            }
        }
        Node::Internal(children) => {
            let i = children
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.cf.centroid_distance(cf)
                        .partial_cmp(&b.cf.centroid_distance(cf))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
                .expect("internal nodes are never empty");
            let outcome = insert_rec(&mut children[i].node, cf, threshold, params);
            children[i].cf.merge(cf);
            let mut sibling = None;
            let mut splits = outcome.splits;
            if let Some(sib) = outcome.sibling {
                // Recompute both summaries after the split below.
                children[i].cf = node_cf(&children[i].node, cf.dims());
                let sib_cf = node_cf(&sib, cf.dims());
                children.insert(i + 1, Child { cf: sib_cf, node: Box::new(sib) });
                if children.len() > params.branching {
                    sibling = Some(split_internal(children));
                    splits += 1;
                }
            }
            InsertOutcome { sibling, new_entry: outcome.new_entry, splits }
        }
    }
}

/// Splits an over-full leaf: seeds are the farthest entry pair; each entry
/// joins the nearer seed. The sibling leaf is returned.
fn split_leaf(entries: &mut Vec<ClusteringFeature>) -> Node {
    let (i, j) = farthest_pair(entries, |a, b| a.centroid_distance(b));
    let taken = std::mem::take(entries);
    let mut right = Vec::new();
    let seed_a = taken[i].clone();
    let seed_b = taken[j].clone();
    for (k, e) in taken.into_iter().enumerate() {
        if k == i {
            entries.push(e);
        } else if k == j {
            right.push(e);
        } else if seed_a.centroid_distance(&e) <= seed_b.centroid_distance(&e) {
            entries.push(e);
        } else {
            right.push(e);
        }
    }
    Node::Leaf(right)
}

/// Splits an over-full internal node the same way, seeded by child-summary
/// centroid distance.
fn split_internal(children: &mut Vec<Child>) -> Node {
    let (i, j) = farthest_pair(children, |a, b| a.cf.centroid_distance(&b.cf));
    let taken = std::mem::take(children);
    let mut right = Vec::new();
    let seed_a = taken[i].cf.clone();
    let seed_b = taken[j].cf.clone();
    for (k, c) in taken.into_iter().enumerate() {
        if k == i {
            children.push(c);
        } else if k == j {
            right.push(c);
        } else if seed_a.centroid_distance(&c.cf) <= seed_b.centroid_distance(&c.cf) {
            children.push(c);
        } else {
            right.push(c);
        }
    }
    Node::Internal(right)
}

fn farthest_pair<T>(items: &[T], dist: impl Fn(&T, &T) -> f64) -> (usize, usize) {
    debug_assert!(items.len() >= 2);
    let mut best = (0usize, 1usize);
    let mut best_d = -1.0f64;
    for i in 0..items.len() {
        for j in i + 1..items.len() {
            let d = dist(&items[i], &items[j]);
            if d > best_d {
                best_d = d;
                best = (i, j);
            }
        }
    }
    best
}

fn node_cf(node: &Node, dims: usize) -> ClusteringFeature {
    let mut cf = ClusteringFeature::empty(dims);
    match node {
        Node::Leaf(entries) => {
            for e in entries {
                cf.merge(e);
            }
        }
        Node::Internal(children) => {
            for c in children {
                cf.merge(&c.cf);
            }
        }
    }
    cf
}

fn collect_leaves(node: &Node, out: &mut Vec<ClusteringFeature>) {
    match node {
        Node::Leaf(entries) => out.extend(entries.iter().cloned()),
        Node::Internal(children) => {
            for c in children {
                collect_leaves(&c.node, out);
            }
        }
    }
}

/// New threshold after a budget overflow: double the old one, or — when the
/// old threshold is zero/tiny — the smallest nonzero distance between leaf
/// entry centroids, so the next pass is guaranteed to merge *something*.
fn escalate_threshold(old: f64, entries: &[ClusteringFeature]) -> f64 {
    let mut min_dist = f64::INFINITY;
    for i in 0..entries.len().min(256) {
        for j in i + 1..entries.len().min(256) {
            let d = entries[i].centroid_distance(&entries[j]);
            if d > 0.0 && d < min_dist {
                min_dist = d;
            }
        }
    }
    let floor = if min_dist.is_finite() { min_dist } else { 1e-6 };
    (old * 2.0).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(threshold: f64) -> CfTree {
        CfTree::new(2, BirchParams { threshold, ..BirchParams::default() }).unwrap()
    }

    #[test]
    fn empty_tree() {
        let t = tree(0.1);
        assert_eq!(t.num_clusters(), 0);
        assert_eq!(t.num_points(), 0);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn two_well_separated_blobs_become_two_clusters() {
        let mut t = tree(0.5);
        for i in 0..20 {
            let eps = (i % 5) as f32 * 0.01;
            t.insert(&[0.0 + eps, 0.0 - eps]).unwrap();
            t.insert(&[10.0 + eps, 10.0 - eps]).unwrap();
        }
        assert_eq!(t.num_clusters(), 2);
        assert_eq!(t.num_points(), 40);
        let mut centroids: Vec<Vec<f64>> =
            t.leaf_entry_clones().iter().map(|c| c.centroid()).collect();
        centroids.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        assert!(centroids[0][0] < 1.0 && centroids[1][0] > 9.0);
    }

    #[test]
    fn every_cluster_radius_within_threshold() {
        let mut t = tree(0.2);
        // A pseudo-random scatter.
        for i in 0..500u32 {
            let x = ((i.wrapping_mul(2654435761)) % 1000) as f32 / 1000.0;
            let y = ((i.wrapping_mul(40503)) % 1000) as f32 / 1000.0;
            t.insert(&[x, y]).unwrap();
        }
        for cf in t.leaf_entry_clones() {
            assert!(cf.radius() <= 0.2 + 1e-9, "radius {} exceeds threshold", cf.radius());
        }
        // Point count is conserved across splits.
        let total: u64 = t.leaf_entry_clones().iter().map(|c| c.count()).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn zero_threshold_keeps_distinct_points_distinct() {
        let mut t = tree(0.0);
        for i in 0..20 {
            t.insert(&[i as f32, 0.0]).unwrap();
        }
        assert_eq!(t.num_clusters(), 20);
        // Identical points still merge (radius stays 0).
        t.insert(&[0.0, 0.0]).unwrap();
        assert_eq!(t.num_clusters(), 20);
        assert_eq!(t.num_points(), 21);
    }

    #[test]
    fn tree_grows_in_height_under_load() {
        let mut t = tree(0.0);
        for i in 0..200 {
            t.insert(&[(i * 7 % 199) as f32, (i * 13 % 197) as f32]).unwrap();
        }
        assert!(t.height() > 1, "200 singleton clusters need internal nodes");
        assert_eq!(t.num_clusters(), 200);
    }

    #[test]
    fn large_threshold_collapses_everything() {
        let mut t = tree(1000.0);
        for i in 0..100 {
            t.insert(&[i as f32, -(i as f32)]).unwrap();
        }
        assert_eq!(t.num_clusters(), 1);
        assert_eq!(t.leaf_entry_clones()[0].count(), 100);
    }

    #[test]
    fn budget_triggers_rebuild_and_respects_budget() {
        let params = BirchParams {
            threshold: 0.0,
            max_leaf_entries: Some(16),
            ..BirchParams::default()
        };
        let mut t = CfTree::new(1, params).unwrap();
        for i in 0..200 {
            t.insert(&[i as f32]).unwrap();
        }
        assert!(t.num_clusters() <= 16, "got {} clusters", t.num_clusters());
        assert!(t.rebuild_count() > 0);
        assert!(t.threshold() > 0.0);
        assert_eq!(t.num_points(), 200);
    }

    #[test]
    fn explicit_rebuild_shrinks_cluster_count() {
        let mut t = tree(0.0);
        for i in 0..50 {
            t.insert(&[i as f32 * 0.01, 0.0]).unwrap();
        }
        let before = t.num_clusters();
        t.rebuild();
        assert!(t.num_clusters() < before);
        assert_eq!(t.num_points(), 50);
    }

    #[test]
    fn insert_cf_merges_weighted_clusters() {
        let mut t = tree(10.0);
        let mut cf = ClusteringFeature::empty(2);
        for p in [[1.0f32, 1.0], [1.2, 0.8], [0.9, 1.1]] {
            cf.add_point(&p);
        }
        t.insert_cf(cf).unwrap();
        t.insert(&[1.05, 0.95]).unwrap();
        assert_eq!(t.num_clusters(), 1);
        assert_eq!(t.num_points(), 4);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut t = tree(0.1);
        assert!(matches!(
            t.insert(&[1.0, 2.0, 3.0]),
            Err(BirchError::DimensionMismatch { expected: 2, got: 3 })
        ));
    }

    #[test]
    fn bad_params_rejected() {
        assert!(CfTree::new(0, BirchParams::default()).is_err());
        assert!(CfTree::new(2, BirchParams { branching: 1, ..Default::default() }).is_err());
        assert!(CfTree::new(2, BirchParams { leaf_capacity: 1, ..Default::default() }).is_err());
        assert!(CfTree::new(2, BirchParams { threshold: -1.0, ..Default::default() }).is_err());
        assert!(CfTree::new(2, BirchParams { threshold: f64::NAN, ..Default::default() }).is_err());
        assert!(CfTree::new(2, BirchParams { max_leaf_entries: Some(1), ..Default::default() })
            .is_err());
    }

    #[test]
    fn insertion_order_independence_of_point_totals() {
        // Cluster *shapes* may depend on order (BIRCH is incremental), but
        // conservation laws must hold for any order.
        let pts: Vec<[f32; 2]> =
            (0..100).map(|i| [((i * 37) % 100) as f32 / 10.0, ((i * 61) % 100) as f32 / 10.0]).collect();
        let mut fwd = tree(0.3);
        let mut rev = tree(0.3);
        for p in &pts {
            fwd.insert(p).unwrap();
        }
        for p in pts.iter().rev() {
            rev.insert(p).unwrap();
        }
        assert_eq!(fwd.num_points(), rev.num_points());
        let sum = |t: &CfTree| -> f64 {
            t.leaf_entry_clones().iter().map(|c| c.centroid()[0] * c.count() as f64).sum()
        };
        assert!((sum(&fwd) - sum(&rev)).abs() < 1e-6, "mass centroids must agree");
    }
}
