//! Querying by **user-specified scene** — the "US" in WALRUS.
//!
//! The paper's title promises retrieval of *user-specified scenes*: the
//! user cares about one part of the query image (the flowers, not the sky)
//! and wants images containing *that*, anywhere, at any size. This module
//! provides that workflow on top of the engine:
//!
//! 1. the caller marks a rectangle of interest in the query image;
//! 2. regions are extracted from the cropped scene only (windows that fit
//!    inside it), so background outside the marked area contributes no
//!    regions;
//! 3. matching uses the [`crate::params::SimilarityKind::QueryFraction`]
//!    denominator — "fraction of the query image covered by matching
//!    regions" — which §4 singles out as the natural variant for partial
//!    queries (a small scene can be fully present in a big target without
//!    the target's extra content diluting the score).

use crate::database::{ImageDatabase, QueryOutcome};
use crate::params::SimilarityKind;
use crate::{Result, WalrusError};
use walrus_imagery::Image;

/// A rectangle of interest within a query image (pixel coordinates,
/// half-open on the right/bottom).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SceneRect {
    /// Left edge.
    pub x: usize,
    /// Top edge.
    pub y: usize,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

impl SceneRect {
    /// The whole image as a scene.
    pub fn full(image: &Image) -> Self {
        Self { x: 0, y: 0, width: image.width(), height: image.height() }
    }

    /// Validates against an image and the engine's minimum window size.
    fn validate(&self, image: &Image, omega_min: usize) -> Result<()> {
        if self.width == 0 || self.height == 0 {
            return Err(WalrusError::BadParams("empty scene rectangle".into()));
        }
        if self.x + self.width > image.width() || self.y + self.height > image.height() {
            return Err(WalrusError::BadParams(format!(
                "scene {:?} exceeds image {}x{}",
                self,
                image.width(),
                image.height()
            )));
        }
        if self.width < omega_min || self.height < omega_min {
            return Err(WalrusError::BadParams(format!(
                "scene {}x{} smaller than the minimum window size {omega_min}",
                self.width, self.height
            )));
        }
        Ok(())
    }
}

impl ImageDatabase {
    /// Queries for images containing the marked scene of `query`, ranked by
    /// the fraction of the *scene* covered by matching regions. Returns
    /// images whose scene-coverage reaches `min_coverage ∈ [0, 1]`.
    pub fn query_scene(
        &self,
        query: &Image,
        scene: SceneRect,
        min_coverage: f64,
    ) -> Result<QueryOutcome> {
        self.query_scene_guarded(query, scene, min_coverage, &walrus_guard::Guard::none())
    }

    /// [`ImageDatabase::query_scene`] under a lifecycle guard, with the
    /// same degradation semantics as [`ImageDatabase::query_guarded`]: a
    /// deadline yields a best-so-far [`crate::ResultStatus::Partial`]
    /// outcome, cancellation is an error.
    pub fn query_scene_guarded(
        &self,
        query: &Image,
        scene: SceneRect,
        min_coverage: f64,
        guard: &walrus_guard::Guard,
    ) -> Result<QueryOutcome> {
        if !(0.0..=1.0).contains(&min_coverage) || min_coverage.is_nan() {
            return Err(WalrusError::BadParams(format!(
                "min_coverage {min_coverage} must be in [0, 1]"
            )));
        }
        scene.validate(query, self.params().sliding.omega_min)?;
        let cropped = query.crop(scene.x, scene.y, scene.width, scene.height)?;
        // Region extraction on the scene only, with the query-fraction
        // similarity so target size does not dilute coverage.
        let mut params = *self.params();
        params.similarity = SimilarityKind::QueryFraction;
        let regions =
            match crate::extract::extract_regions_guarded(&cropped, &params, params.threads, guard)
            {
                Ok(r) => r,
                Err(WalrusError::DeadlineExceeded) => return Ok(QueryOutcome::empty_partial()),
                Err(e) => return Err(e),
            };
        self.query_regions_with_params_guarded(
            &params,
            &regions,
            cropped.area(),
            min_coverage,
            guard,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::WalrusParams;
    use walrus_imagery::synth::scene::{Scene, SceneObject};
    use walrus_imagery::synth::shapes::Shape;
    use walrus_imagery::synth::texture::{Rgb, Texture};
    use walrus_wavelet::SlidingParams;

    fn params() -> WalrusParams {
        WalrusParams {
            sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 16, stride: 4 },
            ..WalrusParams::paper_defaults()
        }
    }

    /// A two-part scene: a large red disc on the left, blue sky elsewhere.
    /// The disc (centre ≈ (32, 32), radius ≈ 18 px) fully contains the
    /// 32×32 scene rectangle used by the tests.
    fn query_image() -> Image {
        Scene::new(Texture::Solid(Rgb(0.3, 0.5, 0.9)))
            .with(SceneObject::new(
                Shape::Ellipse { rx: 0.8, ry: 0.8 },
                Texture::Solid(Rgb(0.9, 0.15, 0.1)),
                (0.25, 0.5),
                0.7,
            ))
            .render(128, 64)
            .unwrap()
    }

    /// Target containing only the red disc (over green), at a new position.
    fn disc_target() -> Image {
        Scene::new(Texture::Solid(Rgb(0.1, 0.55, 0.2)))
            .with(SceneObject::new(
                Shape::Ellipse { rx: 0.8, ry: 0.8 },
                Texture::Solid(Rgb(0.9, 0.15, 0.1)),
                (0.7, 0.45),
                0.75,
            ))
            .render(128, 64)
            .unwrap()
    }

    /// Target containing only blue sky.
    fn sky_target() -> Image {
        Scene::new(Texture::Solid(Rgb(0.3, 0.5, 0.9))).render(128, 64).unwrap()
    }

    fn db() -> ImageDatabase {
        let mut db = ImageDatabase::new(params()).unwrap();
        db.insert_image("disc", &disc_target()).unwrap();
        db.insert_image("sky", &sky_target()).unwrap();
        db
    }

    #[test]
    fn scene_query_targets_the_marked_object() {
        let db = db();
        let query = query_image();
        // Mark a rectangle inside the red disc.
        let scene = SceneRect { x: 16, y: 16, width: 32, height: 32 };
        let out = db.query_scene(&query, scene, 0.3).unwrap();
        assert!(!out.matches.is_empty());
        assert_eq!(out.matches[0].name, "disc", "scene query should find the disc image");
        // The sky image must not outrank the disc image.
        if let Some(sky) = out.matches.iter().find(|m| m.name == "sky") {
            assert!(sky.similarity < out.matches[0].similarity);
        }
    }

    #[test]
    fn opposite_scene_flips_the_ranking() {
        let db = db();
        let query = query_image();
        // Mark the blue half instead.
        let scene = SceneRect { x: 72, y: 8, width: 48, height: 48 };
        let out = db.query_scene(&query, scene, 0.3).unwrap();
        assert!(!out.matches.is_empty());
        assert_eq!(out.matches[0].name, "sky", "marking the sky should retrieve the sky image");
    }

    #[test]
    fn full_scene_equals_whole_image_region_set() {
        let db = db();
        let query = query_image();
        let out = db.query_scene(&query, SceneRect::full(&query), 0.0).unwrap();
        let direct = db.query(&query).unwrap();
        assert_eq!(out.stats.query_regions, direct.stats.query_regions);
    }

    #[test]
    fn coverage_threshold_filters() {
        let db = db();
        let query = query_image();
        let scene = SceneRect { x: 16, y: 16, width: 32, height: 32 };
        let strict = db.query_scene(&query, scene, 0.98).unwrap();
        let loose = db.query_scene(&query, scene, 0.0).unwrap();
        assert!(strict.matches.len() <= loose.matches.len());
        for m in &strict.matches {
            assert!(m.similarity >= 0.98);
        }
    }

    #[test]
    fn invalid_scenes_rejected() {
        let db = db();
        let query = query_image();
        // Empty.
        assert!(db
            .query_scene(&query, SceneRect { x: 0, y: 0, width: 0, height: 10 }, 0.5)
            .is_err());
        // Out of bounds.
        assert!(db
            .query_scene(&query, SceneRect { x: 100, y: 0, width: 64, height: 32 }, 0.5)
            .is_err());
        // Smaller than the minimum window.
        assert!(db
            .query_scene(&query, SceneRect { x: 0, y: 0, width: 4, height: 4 }, 0.5)
            .is_err());
        // Bad coverage threshold.
        assert!(db.query_scene(&query, SceneRect::full(&query), 1.5).is_err());
        assert!(db.query_scene(&query, SceneRect::full(&query), f64::NAN).is_err());
    }
}
