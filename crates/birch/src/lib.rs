//! # walrus-birch
//!
//! A from-scratch implementation of the **pre-clustering phase of BIRCH**
//! (Zhang, Ramakrishnan, Livny; SIGMOD 1996), the clustering algorithm the
//! WALRUS paper uses to group sliding-window signatures into image regions
//! (paper §5.3).
//!
//! WALRUS's requirements, quoted from the paper, drive the scope:
//!
//! * linear time in the number of points (thousands of windows per image);
//! * a user threshold `ε_c` on the **radius** of each cluster, so windows in
//!   a cluster are guaranteed alike;
//! * cluster summaries (centroid / bounding box) usable as region
//!   signatures.
//!
//! Accordingly this crate implements:
//!
//! * [`cf`] — the clustering-feature algebra: `CF = (N, LS, SS)` with O(1)
//!   merge, centroid, radius and diameter, plus the standard inter-cluster
//!   distance metrics D0/D2 from the BIRCH paper.
//! * [`tree`] — the CF-tree: height-balanced insertion that absorbs a point
//!   into the closest leaf entry when the merged radius stays within the
//!   threshold, leaf/node splits seeded by the farthest entry pair, and
//!   automatic threshold escalation + rebuild when a leaf-entry budget is
//!   exceeded (BIRCH's memory-bound rebuilding).
//! * [`precluster`] — the driver WALRUS calls: fit all points, harvest leaf
//!   entries as clusters, and assign each input point to its nearest
//!   cluster so callers can recover per-cluster membership (WALRUS needs
//!   the member windows to build region bitmaps).

pub mod cf;
pub mod global;
pub mod precluster;
pub mod tree;

pub use cf::ClusteringFeature;
pub use global::{agglomerate_by_distance, agglomerate_to_k, GlobalClustering, Linkage};
pub use precluster::{precluster, precluster_guarded, Cluster, Preclustering};
pub use tree::{BirchParams, CfTree};
pub use walrus_guard::{Guard, Interrupt};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BirchError {
    /// A point's dimensionality does not match the tree's.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Dimensionality of the offending point.
        got: usize,
    },
    /// Invalid parameters (zero capacities, negative threshold, …).
    BadParams(String),
    /// A guarded clustering run was stopped by cancellation or deadline
    /// expiry.
    Interrupted(Interrupt),
}

impl From<Interrupt> for BirchError {
    fn from(int: Interrupt) -> Self {
        BirchError::Interrupted(int)
    }
}

impl std::fmt::Display for BirchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BirchError::DimensionMismatch { expected, got } => {
                write!(f, "point has {got} dimensions, tree expects {expected}")
            }
            BirchError::BadParams(msg) => write!(f, "bad BIRCH parameters: {msg}"),
            BirchError::Interrupted(int) => write!(f, "BIRCH pre-clustering interrupted: {int}"),
        }
    }
}

impl std::error::Error for BirchError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BirchError>;
