//! The WALRUS image database: region index + query processing
//! (paper §5.1 "Indexing of images", §5.4 "Region Matching", §5.5 "Image
//! Matching").
//!
//! Regions of every inserted image are indexed in an R\*-tree keyed by their
//! signature (centroid point or signature bounding box). A query extracts
//! the regions of the query image the same way, probes the index with the
//! querying epsilon `ε`, groups matching regions by target image, and scores
//! each candidate with the configured matching algorithm. Images whose
//! similarity reaches `τ` are returned ranked.
//!
//! [`QueryStats`] carries the two selectivity measures of the paper's
//! Table 1: the average number of regions retrieved per query region, and
//! the number of distinct images containing at least one matching region.

use crate::extract::{extract_regions, extract_regions_guarded};
use crate::matching::{self, MatchPair};
use crate::params::{SignatureKind, WalrusParams};
use crate::region::Region;
use crate::{Result, WalrusError};
use std::collections::HashMap;
use std::sync::Arc;
use walrus_guard::{Budgets, Guard, Interrupt};
use walrus_imagery::Image;
use walrus_parallel::{parallel_map_partial, resolve_threads, try_parallel_map_guarded};
use walrus_rstar::{bulk_load, RStarParams, RStarTree, SearchStats};
use walrus_wavelet::{BinarySignature, QueryCode};

/// Extra widening applied to the prefilter's probe interval beyond the
/// query epsilon: absorbs f32 rounding in the exact distance test plus the
/// tiny centroid-outside-bbox slop BIRCH's incremental means can accrue, so
/// the popcount test can only reject candidates the exact test would also
/// reject.
const PREFILTER_SLACK: f32 = 1e-4;

/// A region's address in the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RegionKey {
    image: usize,
    region: usize,
}

/// An indexed image: its extracted regions plus metadata.
#[derive(Debug, Clone)]
pub struct IndexedImage {
    /// Database id (stable; ids of removed images are not reused).
    pub id: usize,
    /// Caller-supplied name.
    pub name: String,
    /// Pixel width.
    pub width: usize,
    /// Pixel height.
    pub height: usize,
    /// Extracted regions.
    pub regions: Vec<Region>,
}

/// One ranked query answer.
#[derive(Debug, Clone)]
pub struct RankedImage {
    /// Database id of the matched image.
    pub image_id: usize,
    /// Its name.
    pub name: String,
    /// Similarity under the configured [`crate::params::SimilarityKind`].
    pub similarity: f64,
    /// Number of matching region pairs between query and this image.
    pub matched_pairs: usize,
}

/// Selectivity statistics of one query (the measures of paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryStats {
    /// Regions extracted from the query image.
    pub query_regions: usize,
    /// Total matching database regions over all query regions.
    pub total_matching_regions: usize,
    /// `total_matching_regions / query_regions` ("Avg. No. of Regions
    /// Retrieved" in Table 1).
    pub avg_regions_per_query_region: f64,
    /// Distinct database images containing ≥ 1 matching region ("No. of
    /// Distinct Images").
    pub distinct_images: usize,
}

/// Whether a query ran to completion or was stopped early by its deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResultStatus {
    /// Every query region was probed and every candidate image scored.
    Complete,
    /// The request deadline expired mid-query. `matches` ranks only the
    /// candidates scored before the interrupt and `stats` counts only the
    /// completed probes: a best-so-far answer — everything reported is
    /// correctly scored and ranked, but images the query never reached are
    /// silently absent.
    Partial,
    /// One or more shards of a [`crate::sharded::ShardedStore`] were
    /// quarantined when the query ran. `matches` covers every healthy
    /// shard completely (or partially, if a deadline also fired) but
    /// images living on the listed shards are silently absent.
    Degraded {
        /// Indices of the quarantined shards that were skipped.
        shards_unavailable: Vec<usize>,
    },
}

/// Full result of a query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Images with similarity ≥ `τ`, descending by similarity (ties broken
    /// by ascending id for determinism).
    pub matches: Vec<RankedImage>,
    /// Selectivity statistics.
    pub stats: QueryStats,
    /// Whether the result is complete or a deadline-truncated prefix.
    pub status: ResultStatus,
}

/// Per-request query knobs, the shape a serving layer assembles from request
/// parameters. Every field is optional; `QueryOptions::default()` reproduces
/// [`ImageDatabase::query_guarded`] exactly, and `k: Some(k)` alone
/// reproduces [`ImageDatabase::top_k_guarded`] exactly — the HTTP path and
/// the in-process path run the same code, which is what lets integration
/// tests demand bit-identical rankings across the two.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryOptions {
    /// Keep only the best `k` matches. Also drops the `τ` similarity floor
    /// (top-k is "best k regardless of τ", matching
    /// [`ImageDatabase::top_k_guarded`]) unless `min_similarity` says
    /// otherwise.
    pub k: Option<usize>,
    /// Override of the querying epsilon `ε` for this request only.
    pub epsilon: Option<f32>,
    /// Explicit similarity floor; defaults to `τ` without `k` and `0.0`
    /// with `k`.
    pub min_similarity: Option<f64>,
    /// Per-request resource ceilings; defaults to the database-wide
    /// [`WalrusParams::budgets`].
    pub budgets: Option<Budgets>,
}

/// Owned metadata snapshot of one indexed image — the response shape lookup
/// endpoints hand out. Unlike [`IndexedImage`] it carries no region data, so
/// cloning it out from under a shared lock is cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageMeta {
    /// Database id.
    pub id: usize,
    /// Caller-supplied name.
    pub name: String,
    /// Pixel width.
    pub width: usize,
    /// Pixel height.
    pub height: usize,
    /// Number of extracted regions.
    pub regions: usize,
}

/// The database.
#[derive(Debug, Clone)]
pub struct ImageDatabase {
    params: WalrusParams,
    images: Vec<Option<IndexedImage>>,
    index: RStarTree<(RegionKey, BinarySignature)>,
    region_count: usize,
}

impl ImageDatabase {
    /// Creates an empty database with the given engine configuration.
    pub fn new(params: WalrusParams) -> Result<Self> {
        params.validate()?;
        let index = RStarTree::with_dims(params.signature_dims())?;
        Ok(Self { params, images: Vec::new(), index, region_count: 0 })
    }

    /// The engine configuration.
    pub fn params(&self) -> &WalrusParams {
        &self.params
    }

    /// Overrides the worker-thread knob ([`WalrusParams::threads`]) on an
    /// existing database. The knob is not persisted (snapshots reload as
    /// `0` = auto), and changing it never changes results — only how many
    /// workers compute them.
    pub fn set_threads(&mut self, threads: usize) {
        self.params.threads = threads;
    }

    /// Overrides the signature-prefilter knob ([`WalrusParams::prefilter`])
    /// on an existing database. Like [`ImageDatabase::set_threads`] this is
    /// a runtime knob, not persisted, and — because the prefilter is
    /// admissible — it never changes results, only how many exact geometry
    /// tests the probe runs.
    pub fn set_prefilter(&mut self, prefilter: Option<bool>) {
        self.params.prefilter = prefilter;
    }

    /// Number of indexed images.
    pub fn len(&self) -> usize {
        self.images.iter().filter(|i| i.is_some()).count()
    }

    /// True when no images are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of indexed regions across all images.
    pub fn num_regions(&self) -> usize {
        self.region_count
    }

    /// Looks up an indexed image by id.
    pub fn image(&self, id: usize) -> Option<&IndexedImage> {
        self.images.get(id).and_then(|i| i.as_ref())
    }

    /// Owned metadata snapshot for an image, or `None` when the id is
    /// unknown or removed.
    pub fn image_meta(&self, id: usize) -> Option<ImageMeta> {
        self.image(id).map(|img| ImageMeta {
            id,
            name: img.name.clone(),
            width: img.width,
            height: img.height,
            regions: img.regions.len(),
        })
    }

    /// All image slots in id order; removed images appear as `None`
    /// (tombstones). Used by persistence to round-trip id assignment.
    pub fn image_slots(&self) -> &[Option<IndexedImage>] {
        &self.images
    }

    /// Appends a tombstone slot, consuming the next id without storing an
    /// image — persistence uses this to restore id stability after
    /// removals.
    pub fn insert_tombstone(&mut self) {
        self.images.push(None);
    }

    /// Extracts regions of `image` and indexes them. Returns the new id.
    pub fn insert_image(&mut self, name: &str, image: &Image) -> Result<usize> {
        let regions = extract_regions(image, &self.params)?;
        self.insert_regions(name, image.width(), image.height(), regions)
    }

    /// Batch ingest: extracts regions for every image **in parallel**
    /// (`params.threads` workers; see [`WalrusParams::threads`]), then
    /// indexes them in order. Returns the new ids, which are identical to
    /// what a serial [`ImageDatabase::insert_image`] loop would assign, as
    /// are all subsequent query results. Extraction is all-or-nothing: if
    /// any image fails, nothing is inserted and the error reported is the
    /// first failing image's (lowest index).
    pub fn insert_images_batch(&mut self, items: &[(&str, &Image)]) -> Result<Vec<usize>> {
        self.insert_images_batch_guarded(items, &Guard::none())
    }

    /// [`ImageDatabase::insert_images_batch`] under a lifecycle [`Guard`].
    /// Ingest is **all-or-nothing under interruption**: every guard poll
    /// happens during extraction, before the first index mutation, plus one
    /// final poll right before applying — a cancellation or deadline that
    /// lands anywhere in the batch leaves the database untouched.
    pub fn insert_images_batch_guarded(
        &mut self,
        items: &[(&str, &Image)],
        guard: &Guard,
    ) -> Result<Vec<usize>> {
        let threads = resolve_threads(self.params.threads);
        let params = self.params;
        let ingest_span = guard.span("ingest");
        if let Some(s) = &ingest_span {
            s.add("images", items.len() as u64);
        }
        // One worker per image; per-image extraction runs serial so worker
        // counts do not multiply. Workers poll the same interrupt sources
        // but carry no trace: spans are only opened by this orchestrating
        // thread so the span tree is identical for every thread count.
        let extract_span = guard.span("extract");
        let worker_guard = guard.without_trace();
        let extracted: Vec<Vec<Region>> =
            try_parallel_map_guarded(threads, guard, items, |_, (_, image)| {
                extract_regions_guarded(image, &params, 1, &worker_guard)
            })?;
        if let Some(s) = &extract_span {
            s.add("regions", extracted.iter().map(Vec::len).sum::<usize>() as u64);
        }
        drop(extract_span);
        guard.poll().map_err(WalrusError::from)?;
        let batch: Vec<(String, usize, usize, Vec<Region>)> = items
            .iter()
            .zip(extracted)
            .map(|((name, image), regions)| {
                (name.to_string(), image.width(), image.height(), regions)
            })
            .collect();
        let index_span = guard.span("index");
        let ids = self.insert_regions_batch(batch);
        if let (Some(s), Ok(ids)) = (&index_span, &ids) {
            s.add("images_indexed", ids.len() as u64);
        }
        ids
    }

    /// Indexes many pre-extracted images at once. When the index is empty
    /// (initial load), the R\*-tree is built with the `O(n log n)` STR
    /// bulk-load path instead of one-at-a-time insertions; otherwise
    /// entries are inserted incrementally. Validation is all-or-nothing:
    /// a dimension mismatch anywhere inserts nothing.
    pub fn insert_regions_batch(
        &mut self,
        batch: Vec<(String, usize, usize, Vec<Region>)>,
    ) -> Result<Vec<usize>> {
        let dims = self.params.signature_dims();
        for (_, _, _, regions) in &batch {
            for r in regions {
                if r.dims() != dims {
                    return Err(WalrusError::BadParams(format!(
                        "region has {} dims, database expects {dims}",
                        r.dims()
                    )));
                }
            }
        }
        let first_id = self.images.len();
        if self.index.is_empty() {
            // Fresh index: pack every region of the batch in one STR build.
            let mut entries = Vec::new();
            for (offset, (_, _, _, regions)) in batch.iter().enumerate() {
                let id = first_id + offset;
                for (ri, region) in regions.iter().enumerate() {
                    entries.push((
                        region.index_rect(self.params.signature_kind),
                        (RegionKey { image: id, region: ri }, region.signature),
                    ));
                }
            }
            self.index = bulk_load(dims, RStarParams::default(), entries)?;
        } else {
            for (offset, (_, _, _, regions)) in batch.iter().enumerate() {
                let id = first_id + offset;
                for (ri, region) in regions.iter().enumerate() {
                    self.index.insert(
                        region.index_rect(self.params.signature_kind),
                        (RegionKey { image: id, region: ri }, region.signature),
                    )?;
                }
            }
        }
        let mut ids = Vec::with_capacity(batch.len());
        for (name, width, height, regions) in batch {
            let id = self.images.len();
            self.region_count += regions.len();
            self.images.push(Some(IndexedImage { id, name, width, height, regions }));
            ids.push(id);
        }
        Ok(ids)
    }

    /// Indexes pre-extracted regions (useful when the caller already ran
    /// [`extract_regions`], e.g. to reuse extraction across parameter
    /// sweeps). The regions must have been extracted with compatible
    /// parameters (same signature dimensionality).
    pub fn insert_regions(
        &mut self,
        name: &str,
        width: usize,
        height: usize,
        regions: Vec<Region>,
    ) -> Result<usize> {
        let dims = self.params.signature_dims();
        for r in &regions {
            if r.dims() != dims {
                return Err(WalrusError::BadParams(format!(
                    "region has {} dims, database expects {dims}",
                    r.dims()
                )));
            }
        }
        let id = self.images.len();
        for (ri, region) in regions.iter().enumerate() {
            self.index.insert(
                region.index_rect(self.params.signature_kind),
                (RegionKey { image: id, region: ri }, region.signature),
            )?;
        }
        self.region_count += regions.len();
        self.images.push(Some(IndexedImage {
            id,
            name: name.to_string(),
            width,
            height,
            regions,
        }));
        Ok(id)
    }

    /// Removes an image and all its regions from the index.
    pub fn remove_image(&mut self, id: usize) -> Result<()> {
        let slot = self.images.get_mut(id).ok_or(WalrusError::UnknownImage(id))?;
        let img = slot.take().ok_or(WalrusError::UnknownImage(id))?;
        for (ri, region) in img.regions.iter().enumerate() {
            let rect = region.index_rect(self.params.signature_kind);
            let removed = self
                .index
                .remove(&rect, &(RegionKey { image: id, region: ri }, region.signature))?;
            debug_assert!(removed, "index out of sync with image store");
        }
        self.region_count -= img.regions.len();
        Ok(())
    }

    /// Runs a full query: extract regions of `query`, match against the
    /// database, return images with similarity ≥ `τ`.
    pub fn query(&self, query: &Image) -> Result<QueryOutcome> {
        let regions = extract_regions(query, &self.params)?;
        self.query_regions(&regions, query.area(), self.params.tau)
    }

    /// [`ImageDatabase::query`] under a lifecycle [`Guard`].
    ///
    /// Degradation semantics: a *deadline* that expires anywhere in the
    /// pipeline yields `Ok` with [`ResultStatus::Partial`] — the best-so-far
    /// ranked answer (empty if the deadline hit during query-region
    /// extraction, before any candidate could be scored). *Cancellation* is
    /// a caller's explicit abort and always surfaces as
    /// [`WalrusError::Cancelled`]; budget breaches surface as
    /// [`WalrusError::BudgetExceeded`].
    pub fn query_guarded(&self, query: &Image, guard: &Guard) -> Result<QueryOutcome> {
        let _query_span = guard.span("query");
        let regions =
            match extract_regions_guarded(query, &self.params, self.params.threads, guard) {
                Ok(r) => r,
                Err(WalrusError::DeadlineExceeded) => {
                    return Ok(QueryOutcome::empty_partial());
                }
                Err(e) => return Err(e),
            };
        self.query_regions_with_params_guarded(
            &self.params,
            &regions,
            query.area(),
            self.params.tau,
            guard,
        )
    }

    /// The `k` most similar images regardless of `τ`, under a lifecycle
    /// [`Guard`] (same degradation semantics as
    /// [`ImageDatabase::query_guarded`]).
    pub fn top_k_guarded(&self, query: &Image, k: usize, guard: &Guard) -> Result<QueryOutcome> {
        let _query_span = guard.span("query");
        let regions =
            match extract_regions_guarded(query, &self.params, self.params.threads, guard) {
                Ok(r) => r,
                Err(WalrusError::DeadlineExceeded) => {
                    return Ok(QueryOutcome::empty_partial());
                }
                Err(e) => return Err(e),
            };
        let mut outcome = self.query_regions_with_params_guarded(
            &self.params,
            &regions,
            query.area(),
            0.0,
            guard,
        )?;
        outcome.matches.truncate(k);
        Ok(outcome)
    }

    /// Runs a query shaped by per-request [`QueryOptions`], under a
    /// lifecycle [`Guard`] (same degradation semantics as
    /// [`ImageDatabase::query_guarded`]). Default options are bit-identical
    /// to [`ImageDatabase::query_guarded`]; `k: Some(k)` alone is
    /// bit-identical to [`ImageDatabase::top_k_guarded`].
    pub fn query_with_options_guarded(
        &self,
        query: &Image,
        opts: &QueryOptions,
        guard: &Guard,
    ) -> Result<QueryOutcome> {
        let (params, min_similarity) = opts.resolve(&self.params)?;
        let _query_span = guard.span("query");
        let regions = match extract_regions_guarded(query, &params, params.threads, guard) {
            Ok(r) => r,
            Err(WalrusError::DeadlineExceeded) => return Ok(QueryOutcome::empty_partial()),
            Err(e) => return Err(e),
        };
        let mut outcome = self.query_regions_with_params_guarded(
            &params,
            &regions,
            query.area(),
            min_similarity,
            guard,
        )?;
        if let Some(k) = opts.k {
            outcome.matches.truncate(k);
        }
        Ok(outcome)
    }

    /// Like [`ImageDatabase::query`] but with an explicit querying epsilon,
    /// overriding `params.query_epsilon` for this query only. This is how
    /// the Table 1 selectivity sweep varies `ε` without rebuilding the
    /// index (the index itself is ε-independent).
    pub fn query_with_epsilon(&self, query: &Image, epsilon: f32) -> Result<QueryOutcome> {
        self.query_with_epsilon_guarded(query, epsilon, &Guard::none())
    }

    /// [`ImageDatabase::query_with_epsilon`] under a lifecycle [`Guard`]
    /// (same degradation semantics as [`ImageDatabase::query_guarded`]).
    pub fn query_with_epsilon_guarded(
        &self,
        query: &Image,
        epsilon: f32,
        guard: &Guard,
    ) -> Result<QueryOutcome> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(WalrusError::BadParams(format!("epsilon {epsilon} invalid")));
        }
        let _query_span = guard.span("query");
        let regions = match extract_regions_guarded(query, &self.params, self.params.threads, guard)
        {
            Ok(r) => r,
            Err(WalrusError::DeadlineExceeded) => return Ok(QueryOutcome::empty_partial()),
            Err(e) => return Err(e),
        };
        let mut params = self.params;
        params.query_epsilon = epsilon;
        self.query_regions_with_params_guarded(
            &params,
            &regions,
            query.area(),
            self.params.tau,
            guard,
        )
    }

    /// The `k` most similar images regardless of `τ`.
    pub fn top_k(&self, query: &Image, k: usize) -> Result<Vec<RankedImage>> {
        let regions = extract_regions(query, &self.params)?;
        let mut outcome = self.query_regions(&regions, query.area(), 0.0)?;
        outcome.matches.truncate(k);
        Ok(outcome.matches)
    }

    /// Queries with pre-extracted regions and an explicit similarity floor.
    /// `query_area` is the pixel count of the query image.
    pub fn query_regions(
        &self,
        q_regions: &[Region],
        query_area: usize,
        min_similarity: f64,
    ) -> Result<QueryOutcome> {
        self.query_regions_with_params(&self.params, q_regions, query_area, min_similarity)
    }

    /// [`ImageDatabase::query_regions`] under a lifecycle guard, with the
    /// same degradation semantics as [`ImageDatabase::query_guarded`]: a
    /// deadline yields a best-so-far [`ResultStatus::Partial`] outcome,
    /// cancellation is an error.
    pub fn query_regions_guarded(
        &self,
        q_regions: &[Region],
        query_area: usize,
        min_similarity: f64,
        guard: &Guard,
    ) -> Result<QueryOutcome> {
        self.query_regions_with_params_guarded(
            &self.params,
            q_regions,
            query_area,
            min_similarity,
            guard,
        )
    }

    pub(crate) fn query_regions_with_params(
        &self,
        params: &WalrusParams,
        q_regions: &[Region],
        query_area: usize,
        min_similarity: f64,
    ) -> Result<QueryOutcome> {
        self.query_regions_with_params_guarded(
            params,
            q_regions,
            query_area,
            min_similarity,
            &Guard::none(),
        )
    }

    pub(crate) fn query_regions_with_params_guarded(
        &self,
        params: &WalrusParams,
        q_regions: &[Region],
        query_area: usize,
        min_similarity: f64,
        guard: &Guard,
    ) -> Result<QueryOutcome> {
        let threads = resolve_threads(params.threads);
        let mut partial = false;

        // Step 1 (paper §5.4): probe the index, one independent probe per
        // query region, fanned out across the pool. Each probe's hit list
        // preserves the tree's deterministic traversal order. Under a
        // deadline the probe fan-out may stop early; the merge below then
        // sees only the completed probes. The probe span is opened here on
        // the orchestrating thread and its counters are order-independent
        // sums over completed probes, so traces are thread-count-invariant.
        let probe_span = guard.span("rstar_probe");
        let prefilter_on = params.prefilter_enabled();
        let slack = params.query_epsilon + PREFILTER_SLACK;
        let probe_out = parallel_map_partial(
            threads,
            guard,
            q_regions,
            |_, qr| -> Result<(Vec<RegionKey>, SearchStats)> {
                let (hits, stats) = match params.signature_kind {
                    SignatureKind::Centroid => {
                        if prefilter_on {
                            let code = QueryCode::around(&qr.centroid, slack);
                            self.index.search_within_filtered_stats(
                                &qr.centroid,
                                params.query_epsilon,
                                |(_, sig)| !code.certainly_disjoint(sig),
                            )?
                        } else {
                            self.index.search_within_stats(&qr.centroid, params.query_epsilon)?
                        }
                    }
                    SignatureKind::BoundingBox => {
                        let probe = qr
                            .index_rect(SignatureKind::BoundingBox)
                            .extended(params.query_epsilon);
                        if prefilter_on {
                            let lo: Vec<f32> = qr.bbox_min.iter().map(|v| v - slack).collect();
                            let hi: Vec<f32> = qr.bbox_max.iter().map(|v| v + slack).collect();
                            let code = QueryCode::from_interval(&lo, &hi);
                            self.index.search_intersecting_filtered_stats(&probe, |(_, sig)| {
                                !code.certainly_disjoint(sig)
                            })?
                        } else {
                            self.index.search_intersecting_stats(&probe)?
                        }
                    }
                };
                Ok((hits.into_iter().map(|(_, (key, _))| *key).collect(), stats))
            },
        );
        match probe_out.interrupted {
            Some(Interrupt::Cancelled) => return Err(WalrusError::Cancelled),
            Some(Interrupt::DeadlineExceeded) => partial = true,
            None => {}
        }
        let mut probes: Vec<(usize, Vec<RegionKey>)> = Vec::with_capacity(probe_out.completed.len());
        let mut probe_stats = SearchStats::default();
        for (qi, res) in probe_out.completed {
            let (keys, stats) = res?;
            probe_stats.nodes_visited += stats.nodes_visited;
            probe_stats.pruned += stats.pruned;
            probe_stats.prefilter_rejected += stats.prefilter_rejected;
            probe_stats.exact_tested += stats.exact_tested;
            probes.push((qi, keys));
        }
        probes.sort_unstable_by_key(|(qi, _)| *qi);

        // Deterministic merge: group hits by target image in (query region,
        // hit) order — exactly the order the serial loop produced.
        let mut by_image: HashMap<usize, Vec<MatchPair>> = HashMap::new();
        let mut total_hits = 0usize;
        for (qi, keys) in &probes {
            total_hits += keys.len();
            for key in keys {
                by_image.entry(key.image).or_default().push(MatchPair { q: *qi, t: key.region });
            }
        }
        if let Some(s) = &probe_span {
            s.add("probes", probes.len() as u64);
            s.add("nodes_visited", probe_stats.nodes_visited as u64);
            s.add("pruned", probe_stats.pruned as u64);
            s.add("signatures_rejected", probe_stats.prefilter_rejected as u64);
            s.add("candidates_exact", probe_stats.exact_tested as u64);
            s.add("hits", total_hits as u64);
        }
        drop(probe_span);
        if total_hits > params.budgets.max_index_candidates {
            return Err(WalrusError::BudgetExceeded {
                what: "index candidates",
                used: total_hits,
                limit: params.budgets.max_index_candidates,
            });
        }

        // Step 2 (paper §5.5): score each candidate image, fanned out
        // across the pool in ascending-id order so results are reproducible
        // run to run (the serial path's HashMap order was not). A dead image
        // slot would mean the index and the image store desynced; that is a
        // bug, but it degrades to an impossible score (filtered below)
        // rather than a panic inside the worker pool.
        let mut candidates: Vec<(usize, Vec<MatchPair>)> = by_image.into_iter().collect();
        candidates.sort_unstable_by_key(|(id, _)| *id);
        let distinct_images = candidates.len();
        let match_span = guard.span("match");
        let score_out = parallel_map_partial(threads, guard, &candidates, |_, (image_id, pairs)| {
            let Some(img) = self.images.get(*image_id).and_then(|s| s.as_ref()) else {
                debug_assert!(false, "index points at dead image slot {image_id}");
                return (*image_id, f64::NEG_INFINITY, 0);
            };
            let score = matching::score(
                params,
                q_regions,
                &img.regions,
                pairs,
                query_area,
                img.width * img.height,
            );
            (*image_id, score.similarity, pairs.len())
        });
        match score_out.interrupted {
            Some(Interrupt::Cancelled) => return Err(WalrusError::Cancelled),
            Some(Interrupt::DeadlineExceeded) => partial = true,
            None => {}
        }
        let mut matches = Vec::new();
        for (_, (image_id, similarity, matched_pairs)) in score_out.completed {
            if similarity >= min_similarity {
                if let Some(img) = self.images.get(image_id).and_then(|s| s.as_ref()) {
                    matches.push(RankedImage {
                        image_id,
                        name: img.name.clone(),
                        similarity,
                        matched_pairs,
                    });
                }
            }
        }
        matches.sort_by(|a, b| {
            b.similarity
                .partial_cmp(&a.similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.image_id.cmp(&b.image_id))
        });
        if let Some(s) = &match_span {
            s.add("candidates", distinct_images as u64);
            s.add("matches", matches.len() as u64);
        }
        drop(match_span);

        let query_regions = q_regions.len();
        let stats = QueryStats {
            query_regions,
            total_matching_regions: total_hits,
            avg_regions_per_query_region: if query_regions == 0 {
                0.0
            } else {
                total_hits as f64 / query_regions as f64
            },
            distinct_images,
        };
        let status = if partial { ResultStatus::Partial } else { ResultStatus::Complete };
        Ok(QueryOutcome { matches, stats, status })
    }
}

impl QueryOptions {
    /// Resolves this request's effective engine parameters and similarity
    /// floor against the database-wide configuration, validating overrides
    /// the same way the dedicated entry points do.
    pub(crate) fn resolve(&self, base: &WalrusParams) -> Result<(WalrusParams, f64)> {
        let mut params = *base;
        if let Some(epsilon) = self.epsilon {
            if !epsilon.is_finite() || epsilon < 0.0 {
                return Err(WalrusError::BadParams(format!("epsilon {epsilon} invalid")));
            }
            params.query_epsilon = epsilon;
        }
        if let Some(budgets) = self.budgets {
            params.budgets = budgets;
        }
        let min_similarity = match self.min_similarity {
            Some(min) => {
                if !min.is_finite() {
                    return Err(WalrusError::BadParams(format!(
                        "min_similarity {min} invalid"
                    )));
                }
                min
            }
            None if self.k.is_some() => 0.0,
            None => params.tau,
        };
        Ok((params, min_similarity))
    }
}

impl QueryOutcome {
    /// The outcome of a query whose deadline expired before any candidate
    /// could be probed or scored: no matches, zeroed statistics,
    /// [`ResultStatus::Partial`].
    pub(crate) fn empty_partial() -> Self {
        QueryOutcome {
            matches: Vec::new(),
            stats: QueryStats {
                query_regions: 0,
                total_matching_regions: 0,
                avg_regions_per_query_region: 0.0,
                distinct_images: 0,
            },
            status: ResultStatus::Partial,
        }
    }
}

/// A thread-safe handle over an [`ImageDatabase`]: many concurrent readers
/// (queries), exclusive writers (inserts/removals). Cloning the handle
/// shares the database.
#[derive(Debug, Clone)]
pub struct SharedDatabase {
    inner: Arc<parking_lot::RwLock<ImageDatabase>>,
}

impl SharedDatabase {
    /// Wraps a database for shared use.
    pub fn new(db: ImageDatabase) -> Self {
        Self { inner: Arc::new(parking_lot::RwLock::new(db)) }
    }

    /// A cheap copy of the engine configuration (shared lock held only for
    /// the copy). Parameters are fixed at construction, so a snapshot
    /// taken before a lock-free extraction cannot go stale.
    pub fn params(&self) -> WalrusParams {
        *self.inner.read().params()
    }

    /// Inserts an image. Region extraction — the expensive part — runs
    /// **outside** any lock; the exclusive lock is held only for the index
    /// insertion, so concurrent queries are not starved by ingest.
    pub fn insert_image(&self, name: &str, image: &Image) -> Result<usize> {
        let params = self.params();
        let regions = extract_regions(image, &params)?;
        self.inner.write().insert_regions(name, image.width(), image.height(), regions)
    }

    /// Batch ingest: extracts regions for all images in parallel with **no
    /// lock held**, then indexes everything under one short exclusive
    /// lock (the R\*-tree bulk-load path when the index is empty). Ids and
    /// query results are identical to a serial insert loop.
    pub fn insert_images_batch(&self, items: &[(&str, &Image)]) -> Result<Vec<usize>> {
        self.insert_images_batch_guarded(items, &Guard::none())
    }

    /// [`SharedDatabase::insert_images_batch`] under a lifecycle [`Guard`];
    /// all-or-nothing under interruption (the last poll happens before the
    /// exclusive lock is even taken, so a cancelled batch never mutates the
    /// shared index).
    pub fn insert_images_batch_guarded(
        &self,
        items: &[(&str, &Image)],
        guard: &Guard,
    ) -> Result<Vec<usize>> {
        let params = self.params();
        let threads = resolve_threads(params.threads);
        let ingest_span = guard.span("ingest");
        if let Some(s) = &ingest_span {
            s.add("images", items.len() as u64);
        }
        // Workers share the interrupt sources but not the trace (spans are
        // opened only on this orchestrating thread).
        let extract_span = guard.span("extract");
        let worker_guard = guard.without_trace();
        let extracted: Vec<Vec<Region>> =
            try_parallel_map_guarded(threads, guard, items, |_, (_, image)| {
                extract_regions_guarded(image, &params, 1, &worker_guard)
            })?;
        if let Some(s) = &extract_span {
            s.add("regions", extracted.iter().map(Vec::len).sum::<usize>() as u64);
        }
        drop(extract_span);
        guard.poll().map_err(WalrusError::from)?;
        let batch: Vec<(String, usize, usize, Vec<Region>)> = items
            .iter()
            .zip(extracted)
            .map(|((name, image), regions)| {
                (name.to_string(), image.width(), image.height(), regions)
            })
            .collect();
        let index_span = guard.span("index");
        let ids = self.inner.write().insert_regions_batch(batch);
        if let (Some(s), Ok(ids)) = (&index_span, &ids) {
            s.add("images_indexed", ids.len() as u64);
        }
        ids
    }

    /// Removes an image (exclusive lock).
    pub fn remove_image(&self, id: usize) -> Result<()> {
        self.inner.write().remove_image(id)
    }

    /// Runs a query. Query-region extraction runs **outside** the lock;
    /// the shared lock covers only the index probes and scoring, so writers
    /// wait for milliseconds, not for a full wavelet sweep.
    pub fn query(&self, query: &Image) -> Result<QueryOutcome> {
        let params = self.params();
        let regions = extract_regions(query, &params)?;
        self.inner.read().query_regions(&regions, query.area(), params.tau)
    }

    /// [`SharedDatabase::query`] under a lifecycle [`Guard`] (deadline →
    /// `Ok` + [`ResultStatus::Partial`]; cancellation →
    /// [`WalrusError::Cancelled`]). Extraction stays outside the lock, so a
    /// deadline firing there never holds up writers either.
    pub fn query_guarded(&self, query: &Image, guard: &Guard) -> Result<QueryOutcome> {
        let params = self.params();
        let _query_span = guard.span("query");
        let regions = match extract_regions_guarded(query, &params, params.threads, guard) {
            Ok(r) => r,
            Err(WalrusError::DeadlineExceeded) => return Ok(QueryOutcome::empty_partial()),
            Err(e) => return Err(e),
        };
        self.inner.read().query_regions_with_params_guarded(
            &params,
            &regions,
            query.area(),
            params.tau,
            guard,
        )
    }

    /// [`ImageDatabase::query_with_options_guarded`] on the shared handle:
    /// extraction (with the per-request parameter overrides applied) runs
    /// outside the lock, probe/score under the shared lock.
    pub fn query_with_options_guarded(
        &self,
        query: &Image,
        opts: &QueryOptions,
        guard: &Guard,
    ) -> Result<QueryOutcome> {
        let (params, min_similarity) = opts.resolve(&self.params())?;
        let _query_span = guard.span("query");
        let regions = match extract_regions_guarded(query, &params, params.threads, guard) {
            Ok(r) => r,
            Err(WalrusError::DeadlineExceeded) => return Ok(QueryOutcome::empty_partial()),
            Err(e) => return Err(e),
        };
        let mut outcome = self.inner.read().query_regions_with_params_guarded(
            &params,
            &regions,
            query.area(),
            min_similarity,
            guard,
        )?;
        if let Some(k) = opts.k {
            outcome.matches.truncate(k);
        }
        Ok(outcome)
    }

    /// Owned metadata snapshot for an image (shared lock held only for the
    /// clone).
    pub fn image_meta(&self, id: usize) -> Option<ImageMeta> {
        self.inner.read().image_meta(id)
    }

    /// The `k` most similar images (extraction unlocked, probe/score under
    /// the shared lock).
    pub fn top_k(&self, query: &Image, k: usize) -> Result<Vec<RankedImage>> {
        let params = self.params();
        let regions = extract_regions(query, &params)?;
        let mut outcome = self.inner.read().query_regions(&regions, query.area(), 0.0)?;
        outcome.matches.truncate(k);
        Ok(outcome.matches)
    }

    /// Number of indexed images (shared lock).
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when empty (shared lock).
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Number of indexed regions (shared lock).
    pub fn num_regions(&self) -> usize {
        self.inner.read().num_regions()
    }

    /// Atomically snapshots the database to `path` (shared lock held for
    /// serialization only; see [`crate::persist::save_to_file`]).
    pub fn save_to_file(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        crate::persist::save_to_file(&self.inner.read(), path)
    }

    /// Loads a snapshot (v1 or v2) into a fresh shared handle.
    pub fn load_from_file(path: impl AsRef<std::path::Path>) -> Result<Self> {
        Ok(Self::new(crate::persist::load_from_file(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walrus_imagery::synth::scene::{Scene, SceneObject};
    use walrus_imagery::synth::shapes::Shape;
    use walrus_imagery::synth::texture::{Rgb, Texture};

    fn params() -> WalrusParams {
        WalrusParams {
            sliding: walrus_wavelet::SlidingParams { s: 2, omega_min: 16, omega_max: 16, stride: 8 },
            ..WalrusParams::paper_defaults()
        }
    }

    fn flower_at(cx: f32, cy: f32, scale: f32) -> Image {
        Scene::new(Texture::Solid(Rgb(0.1, 0.5, 0.15)))
            .with(SceneObject::new(
                Shape::Flower { petals: 6, core_radius: 0.3, petal_len: 0.95, petal_width: 0.22 },
                Texture::Solid(Rgb(0.85, 0.12, 0.18)),
                (cx, cy),
                scale,
            ))
            .render(64, 64)
            .unwrap()
    }

    fn blue_image() -> Image {
        Scene::new(Texture::Solid(Rgb(0.1, 0.15, 0.8))).render(64, 64).unwrap()
    }

    #[test]
    fn empty_database_query() {
        let db = ImageDatabase::new(params()).unwrap();
        let out = db.query(&flower_at(0.5, 0.5, 0.5)).unwrap();
        assert!(out.matches.is_empty());
        assert_eq!(out.stats.distinct_images, 0);
        assert!(out.stats.query_regions > 0);
        assert_eq!(out.stats.avg_regions_per_query_region, 0.0);
    }

    #[test]
    fn identical_image_is_top_match() {
        let mut db = ImageDatabase::new(params()).unwrap();
        let q = flower_at(0.5, 0.5, 0.5);
        db.insert_image("same", &q).unwrap();
        db.insert_image("blue", &blue_image()).unwrap();
        let top = db.top_k(&q, 2).unwrap();
        assert!(!top.is_empty());
        assert_eq!(top[0].name, "same");
        assert!(top[0].similarity > 0.9, "self-similarity {}", top[0].similarity);
    }

    #[test]
    fn translated_flower_found_blue_not() {
        // The headline WALRUS property.
        let mut db = ImageDatabase::new(params()).unwrap();
        db.insert_image("moved", &flower_at(0.3, 0.35, 0.5)).unwrap();
        db.insert_image("blue", &blue_image()).unwrap();
        let q = flower_at(0.65, 0.6, 0.5);
        let top = db.top_k(&q, 2).unwrap();
        assert!(!top.is_empty());
        assert_eq!(top[0].name, "moved");
        let blue = top.iter().find(|r| r.name == "blue");
        if let Some(b) = blue {
            assert!(top[0].similarity > b.similarity);
        }
    }

    #[test]
    fn tau_filters_matches() {
        let mut db = ImageDatabase::new(WalrusParams { tau: 0.95, ..params() }).unwrap();
        let q = flower_at(0.5, 0.5, 0.5);
        db.insert_image("same", &q).unwrap();
        db.insert_image("different", &flower_at(0.3, 0.3, 0.25)).unwrap();
        let out = db.query(&q).unwrap();
        // Only the (near-)identical image clears τ = 0.95.
        assert!(out.matches.iter().all(|m| m.similarity >= 0.95));
        assert!(out.matches.iter().any(|m| m.name == "same"));
    }

    #[test]
    fn stats_reflect_selectivity() {
        let mut db = ImageDatabase::new(params()).unwrap();
        for i in 0..4 {
            db.insert_image(&format!("f{i}"), &flower_at(0.4 + 0.05 * i as f32, 0.5, 0.5)).unwrap();
        }
        db.insert_image("blue", &blue_image()).unwrap();
        let out = db.query(&flower_at(0.5, 0.5, 0.5)).unwrap();
        assert!(out.stats.query_regions >= 1);
        assert!(out.stats.distinct_images >= 4, "flowers should all match");
        assert!(out.stats.avg_regions_per_query_region > 0.0);
        assert_eq!(
            out.stats.avg_regions_per_query_region,
            out.stats.total_matching_regions as f64 / out.stats.query_regions as f64
        );
    }

    #[test]
    fn larger_epsilon_retrieves_more() {
        // Table 1's monotone trend.
        let build = |eps: f32| {
            let mut db = ImageDatabase::new(WalrusParams { query_epsilon: eps, ..params() }).unwrap();
            for i in 0..5 {
                db.insert_image(&format!("f{i}"), &flower_at(0.35 + 0.06 * i as f32, 0.5, 0.4)).unwrap();
            }
            db.insert_image("blue", &blue_image()).unwrap();
            db.query(&flower_at(0.5, 0.5, 0.5)).unwrap().stats
        };
        let tight = build(0.02);
        let loose = build(0.3);
        assert!(loose.total_matching_regions >= tight.total_matching_regions);
        assert!(loose.distinct_images >= tight.distinct_images);
    }

    #[test]
    fn remove_image_unindexes_it() {
        let mut db = ImageDatabase::new(params()).unwrap();
        let q = flower_at(0.5, 0.5, 0.5);
        let id = db.insert_image("same", &q).unwrap();
        db.insert_image("other", &flower_at(0.4, 0.4, 0.5)).unwrap();
        assert_eq!(db.len(), 2);
        let regions_before = db.num_regions();
        db.remove_image(id).unwrap();
        assert_eq!(db.len(), 1);
        assert!(db.num_regions() < regions_before);
        assert!(db.image(id).is_none());
        let top = db.top_k(&q, 5).unwrap();
        assert!(top.iter().all(|m| m.image_id != id));
        // Double removal errors.
        assert!(matches!(db.remove_image(id), Err(WalrusError::UnknownImage(_))));
        assert!(matches!(db.remove_image(99), Err(WalrusError::UnknownImage(99))));
    }

    #[test]
    fn bounding_box_signatures_also_work() {
        let mut db = ImageDatabase::new(WalrusParams {
            signature_kind: SignatureKind::BoundingBox,
            ..params()
        })
        .unwrap();
        let q = flower_at(0.5, 0.5, 0.5);
        db.insert_image("same", &q).unwrap();
        db.insert_image("blue", &blue_image()).unwrap();
        let top = db.top_k(&q, 1).unwrap();
        assert_eq!(top[0].name, "same");
        assert!(top[0].similarity > 0.9);
    }

    #[test]
    fn shared_database_concurrent_queries() {
        let mut db = ImageDatabase::new(params()).unwrap();
        db.insert_image("a", &flower_at(0.5, 0.5, 0.5)).unwrap();
        db.insert_image("b", &blue_image()).unwrap();
        let shared = SharedDatabase::new(db);
        let q = flower_at(0.5, 0.5, 0.5);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = shared.clone();
                let q = q.clone();
                std::thread::spawn(move || s.top_k(&q, 1).unwrap())
            })
            .collect();
        for h in handles {
            let top = h.join().unwrap();
            assert_eq!(top[0].name, "a");
        }
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn batch_insert_matches_serial_inserts() {
        let images: Vec<(String, Image)> = (0..5)
            .map(|i| (format!("f{i}"), flower_at(0.3 + 0.08 * i as f32, 0.5, 0.45)))
            .collect();
        let items: Vec<(&str, &Image)> =
            images.iter().map(|(n, i)| (n.as_str(), i)).collect();

        let mut serial = ImageDatabase::new(params()).unwrap();
        for (name, img) in &images {
            serial.insert_image(name, img).unwrap();
        }
        for threads in [1usize, 4] {
            let mut batch = ImageDatabase::new(WalrusParams { threads, ..params() }).unwrap();
            let ids = batch.insert_images_batch(&items).unwrap();
            assert_eq!(ids, vec![0, 1, 2, 3, 4]);
            assert_eq!(batch.len(), serial.len());
            assert_eq!(batch.num_regions(), serial.num_regions());
            let q = flower_at(0.5, 0.5, 0.45);
            let a = serial.top_k(&q, 5).unwrap();
            let b = batch.top_k(&q, 5).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.image_id, y.image_id);
                assert_eq!(x.name, y.name);
                assert_eq!(x.similarity.to_bits(), y.similarity.to_bits(), "threads={threads}");
                assert_eq!(x.matched_pairs, y.matched_pairs);
            }
        }
    }

    #[test]
    fn batch_insert_extends_nonempty_index() {
        // Second batch exercises the incremental path (index non-empty).
        let mut db = ImageDatabase::new(params()).unwrap();
        db.insert_image("first", &blue_image()).unwrap();
        let a = flower_at(0.5, 0.5, 0.5);
        let b = flower_at(0.3, 0.35, 0.4);
        let ids = db.insert_images_batch(&[("a", &a), ("b", &b)]).unwrap();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(db.len(), 3);
        let top = db.top_k(&a, 1).unwrap();
        assert_eq!(top[0].name, "a");
        // Removal still works on batch-inserted images.
        db.remove_image(1).unwrap();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn batch_insert_is_atomic_on_extraction_failure() {
        let mut db = ImageDatabase::new(params()).unwrap();
        let good = flower_at(0.5, 0.5, 0.5);
        let tiny = Scene::new(Texture::Solid(Rgb(0.5, 0.5, 0.5))).render(4, 4).unwrap();
        let err = db.insert_images_batch(&[("good", &good), ("tiny", &tiny)]);
        assert!(err.is_err());
        assert_eq!(db.len(), 0, "no partial batch visible");
        assert_eq!(db.num_regions(), 0);
        assert!(db.index.is_empty());
    }

    #[test]
    fn shared_batch_insert_and_concurrent_queries() {
        let shared = SharedDatabase::new(ImageDatabase::new(params()).unwrap());
        let a = flower_at(0.5, 0.5, 0.5);
        let b = blue_image();
        let ids = shared.insert_images_batch(&[("a", &a), ("b", &b)]).unwrap();
        assert_eq!(ids, vec![0, 1]);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = shared.clone();
                let q = a.clone();
                std::thread::spawn(move || s.top_k(&q, 1).unwrap())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap()[0].name, "a");
        }
    }

    #[test]
    fn parallel_query_identical_to_serial() {
        let build = |threads: usize| {
            let mut db = ImageDatabase::new(WalrusParams { threads, ..params() }).unwrap();
            for i in 0..6 {
                db.insert_image(&format!("f{i}"), &flower_at(0.3 + 0.07 * i as f32, 0.5, 0.45))
                    .unwrap();
            }
            db.insert_image("blue", &blue_image()).unwrap();
            db
        };
        let serial = build(1);
        let q = flower_at(0.5, 0.5, 0.45);
        let base = serial.query(&q).unwrap();
        for threads in [2usize, 8] {
            let par_db = build(threads);
            let out = par_db.query(&q).unwrap();
            assert_eq!(out.stats, base.stats, "threads={threads}");
            assert_eq!(out.matches.len(), base.matches.len());
            for (x, y) in out.matches.iter().zip(&base.matches) {
                assert_eq!(x.image_id, y.image_id);
                assert_eq!(x.similarity.to_bits(), y.similarity.to_bits(), "threads={threads}");
                assert_eq!(x.matched_pairs, y.matched_pairs);
            }
        }
    }

    #[test]
    fn insert_regions_dimension_check() {
        let mut db = ImageDatabase::new(params()).unwrap();
        let bad = Region::new(
            vec![0.0; 5],
            vec![0.0; 5],
            vec![0.0; 5],
            crate::bitmap::RegionBitmap::new(64, 64, 16),
            1,
        );
        assert!(db.insert_regions("bad", 64, 64, vec![bad]).is_err());
    }

    #[test]
    fn unguarded_queries_report_complete() {
        let mut db = ImageDatabase::new(params()).unwrap();
        db.insert_image("a", &flower_at(0.5, 0.5, 0.5)).unwrap();
        let out = db.query(&flower_at(0.5, 0.5, 0.5)).unwrap();
        assert_eq!(out.status, ResultStatus::Complete);
        let out = db.query_guarded(&flower_at(0.5, 0.5, 0.5), &Guard::none()).unwrap();
        assert_eq!(out.status, ResultStatus::Complete);
        assert!(!out.matches.is_empty());
    }

    #[test]
    fn expired_deadline_query_returns_empty_partial() {
        let mut db = ImageDatabase::new(params()).unwrap();
        db.insert_image("a", &flower_at(0.5, 0.5, 0.5)).unwrap();
        // A deadline that already passed: extraction trips on its first
        // poll, and the query degrades to an empty Partial outcome.
        let guard = Guard::with_timeout(std::time::Duration::ZERO);
        let out = db.query_guarded(&flower_at(0.5, 0.5, 0.5), &guard).unwrap();
        assert_eq!(out.status, ResultStatus::Partial);
        assert!(out.matches.is_empty());
        assert_eq!(out.stats.query_regions, 0);
    }

    #[test]
    fn cancelled_query_is_an_error_not_partial() {
        let mut db = ImageDatabase::new(params()).unwrap();
        db.insert_image("a", &flower_at(0.5, 0.5, 0.5)).unwrap();
        let token = walrus_guard::CancelToken::new();
        token.cancel();
        let guard = Guard::with_token(token);
        match db.query_guarded(&flower_at(0.5, 0.5, 0.5), &guard) {
            Err(WalrusError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn candidate_budget_enforced_at_probe_merge() {
        let mut db = ImageDatabase::new(params()).unwrap();
        for i in 0..4 {
            db.insert_image(&format!("f{i}"), &flower_at(0.4 + 0.05 * i as f32, 0.5, 0.5))
                .unwrap();
        }
        let q = flower_at(0.5, 0.5, 0.5);
        let hits = db.query(&q).unwrap().stats.total_matching_regions;
        assert!(hits >= 2);
        db.params.budgets.max_index_candidates = hits - 1;
        match db.query(&q) {
            Err(WalrusError::BudgetExceeded { what, used, limit }) => {
                assert_eq!(what, "index candidates");
                assert_eq!(used, hits);
                assert_eq!(limit, hits - 1);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_batch_ingest_leaves_database_untouched() {
        let mut db = ImageDatabase::new(params()).unwrap();
        db.insert_image("pre", &blue_image()).unwrap();
        let regions_before = db.num_regions();
        let a = flower_at(0.5, 0.5, 0.5);
        let b = flower_at(0.3, 0.35, 0.4);
        let token = walrus_guard::CancelToken::new();
        token.cancel();
        let guard = Guard::with_token(token);
        match db.insert_images_batch_guarded(&[("a", &a), ("b", &b)], &guard) {
            Err(WalrusError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert_eq!(db.len(), 1, "cancelled batch must not insert");
        assert_eq!(db.num_regions(), regions_before);
        assert_eq!(db.image_slots().len(), 1);
    }

    #[test]
    fn tripped_serial_query_yields_ranked_prefix() {
        // threads = 1 makes partial results an exact prefix: with the trip
        // armed after the probes, scoring stops after a deterministic number
        // of candidates and the reported ranking is the ranking of exactly
        // those candidates.
        let mut db = ImageDatabase::new(WalrusParams { threads: 1, ..params() }).unwrap();
        for i in 0..6 {
            db.insert_image(&format!("f{i}"), &flower_at(0.3 + 0.07 * i as f32, 0.5, 0.45))
                .unwrap();
        }
        let q = flower_at(0.5, 0.5, 0.45);
        let q_regions = extract_regions(&q, db.params()).unwrap();
        let full = db.query_regions(&q_regions, q.area(), 0.0).unwrap();
        assert_eq!(full.status, ResultStatus::Complete);
        assert!(full.stats.distinct_images >= 3);

        // Allow every probe poll plus two scoring polls, then trip as a
        // deadline: exactly two candidates (ids 0 and 1, ascending order)
        // get scored.
        let polls = q_regions.len() + 2;
        let guard = Guard::none().trip_after(polls, Interrupt::DeadlineExceeded);
        let part = db
            .query_regions_with_params_guarded(db.params(), &q_regions, q.area(), 0.0, &guard)
            .unwrap();
        assert_eq!(part.status, ResultStatus::Partial);
        assert_eq!(part.stats.total_matching_regions, full.stats.total_matching_regions);
        assert_eq!(part.matches.len(), 2);
        let mut expect: Vec<RankedImage> = full
            .matches
            .iter()
            .filter(|m| m.image_id < 2)
            .cloned()
            .collect();
        expect.sort_by(|a, b| {
            b.similarity
                .partial_cmp(&a.similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.image_id.cmp(&b.image_id))
        });
        for (got, want) in part.matches.iter().zip(&expect) {
            assert_eq!(got.image_id, want.image_id);
            assert_eq!(got.similarity.to_bits(), want.similarity.to_bits());
        }
    }

    #[test]
    fn results_sorted_descending() {
        let mut db = ImageDatabase::new(params()).unwrap();
        for i in 0..6 {
            db.insert_image(&format!("f{i}"), &flower_at(0.3 + 0.07 * i as f32, 0.5, 0.45)).unwrap();
        }
        let out = db.query(&flower_at(0.5, 0.5, 0.45)).unwrap();
        for w in out.matches.windows(2) {
            assert!(w[0].similarity >= w[1].similarity);
        }
    }
}
