//! **§6.6** — number of regions per image as the cluster epsilon `ε_c`
//! varies, for RGB vs YCC.
//!
//! Paper claims: the number of clusters (regions) decreases as `ε_c`
//! increases, and RGB typically produces ≈4× more clusters than YCC for the
//! same `ε_c` (RGB spreads color variation over all three channels; YCC
//! concentrates it in chroma).
//!
//! Run: `cargo run --release -p walrus-bench --bin regions_per_image`

use walrus_bench::report::{f3, Table};
use walrus_bench::scale;
use walrus_bench::workloads::{flower_query, retrieval_dataset, retrieval_params};
use walrus_core::extract_regions;
use walrus_imagery::ColorSpace;

fn main() {
    let dataset = retrieval_dataset(scale());
    let query = flower_query();
    // The query image plus a sample of database images.
    let mut images: Vec<(&str, &walrus_imagery::Image)> = vec![("query", &query)];
    for img in dataset.images.iter().step_by(dataset.len() / 6) {
        images.push((&img.name, &img.image));
    }

    println!(
        "Section 6.6: regions per image vs cluster epsilon, RGB vs YCC\n\
         ({} images sampled)\n",
        images.len()
    );
    let mut table = Table::new(
        "Regions Per Image",
        &["cluster_eps", "avg_regions_ycc", "avg_regions_rgb", "rgb_over_ycc"],
    );
    for eps in [0.025f64, 0.05, 0.075, 0.1] {
        let mut counts = std::collections::HashMap::new();
        for space in [ColorSpace::Ycc, ColorSpace::Rgb] {
            let mut params = retrieval_params();
            params.color_space = space;
            params.cluster_epsilon = eps;
            let total: usize = images
                .iter()
                .map(|(_, img)| extract_regions(img, &params).expect("extraction succeeds").len())
                .sum();
            counts.insert(space.name(), total as f64 / images.len() as f64);
        }
        let ycc = counts["ycc"];
        let rgb = counts["rgb"];
        table.row(&[format!("{eps:.3}"), f3(ycc), f3(rgb), f3(rgb / ycc.max(1e-9))]);
    }
    table.print();
    println!(
        "Paper shape check: both columns must fall as epsilon grows, and\n\
         RGB must produce more clusters than YCC at every epsilon (the\n\
         paper reports roughly 4x)."
    );
}
