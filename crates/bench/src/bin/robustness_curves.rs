//! **Robustness curves** — §1.1 quantified as dose–response curves.
//!
//! The paper *claims* robustness to "resolution changes, dithering effects,
//! color shifts, orientation, size, and location" without measuring it.
//! This harness perturbs a query image with increasing strength and records
//! the similarity WALRUS assigns to the unperturbed original, alongside the
//! rank the WBIIS baseline gives it — showing where each system's tolerance
//! ends.
//!
//! Run: `cargo run --release -p walrus-bench --bin robustness_curves`

use walrus_baselines::{Retriever, WbiisRetriever};
use walrus_bench::report::{f3, Table};
use walrus_bench::scale;
use walrus_bench::workloads::{build_walrus_db, flower_query, retrieval_dataset, retrieval_params};
use walrus_core::ImageDatabase;
use walrus_imagery::{ops, Image};

fn main() {
    let dataset = retrieval_dataset(scale());
    let mut db = build_walrus_db(&dataset, retrieval_params());
    let original = flower_query();
    let target_id = db.insert_image("original", &original).expect("insertion succeeds");
    let mut wbiis = WbiisRetriever::new();
    for img in &dataset.images {
        wbiis.insert(&img.name, &img.image).expect("insert succeeds");
    }
    wbiis.insert("original", &original).expect("insert succeeds");

    println!(
        "Robustness curves: similarity of the original under growing\n\
         perturbation of the query ({} database images + the original)\n",
        dataset.len()
    );

    run_curve(&db, &wbiis, target_id, "dither_levels", &[256, 8, 4, 2], |img, &levels| {
        ops::dither(img, levels).expect("dithering succeeds")
    });
    run_curve(
        &db,
        &wbiis,
        target_id,
        "color_shift",
        &[0.0f32, 0.02, 0.05, 0.1, 0.2],
        |img, &shift| ops::color_shift(img, shift, -shift / 2.0, shift / 2.0).expect("shift succeeds"),
    );
    run_curve(
        &db,
        &wbiis,
        target_id,
        "downscale_percent",
        &[100usize, 75, 50, 33, 25],
        |img, &pct| {
            let w = (img.width() * pct / 100).max(32);
            let h = (img.height() * pct / 100).max(32);
            img.resize_bilinear(w, h).expect("resize succeeds")
        },
    );
    run_curve(&db, &wbiis, target_id, "blur_radius", &[0usize, 1, 2, 4], |img, &r| {
        ops::box_blur(img, r)
    });
    println!(
        "Expectation: WALRUS similarity stays near 1.0 for mild\n\
         perturbations and degrades gracefully; WBIIS rank-of-original\n\
         deteriorates faster under the same doses."
    );
}

fn run_curve<P: std::fmt::Display>(
    db: &ImageDatabase,
    wbiis: &WbiisRetriever,
    target_id: usize,
    name: &str,
    doses: &[P],
    perturb: impl Fn(&Image, &P) -> Image,
) {
    let original = flower_query();
    let mut table = Table::new(
        &format!("Robustness {name}"),
        &["dose", "walrus_similarity", "walrus_rank", "wbiis_rank"],
    );
    for dose in doses {
        let query = perturb(&original, dose);
        let outcome = db.query(&query).expect("query succeeds");
        // Rank = 1 + number of images *strictly* more similar: the quick
        // metric ties many strong matches at 1.0, and tie order (by id)
        // carries no information.
        let (sim, rank) = outcome
            .matches
            .iter()
            .find(|m| m.image_id == target_id)
            .map(|m| {
                let better =
                    outcome.matches.iter().filter(|o| o.similarity > m.similarity + 1e-12).count();
                (m.similarity, (better + 1).to_string())
            })
            .unwrap_or((0.0, "-".into()));
        let wbiis_rank = wbiis
            .top_k(&query, usize::MAX)
            .expect("query succeeds")
            .iter()
            .position(|r| r.name == "original")
            .map(|i| (i + 1).to_string())
            .unwrap_or_else(|| "-".into());
        table.row(&[dose.to_string(), f3(sim), rank, wbiis_rank]);
    }
    table.print();
}
