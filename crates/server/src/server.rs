//! The serving shell: TCP accept loop, worker pool, graceful shutdown.
//!
//! Threading model (DESIGN.md §11): one accept thread owns the non-blocking
//! listener and is the **only** job submitter; a fixed
//! [`WorkerPool`](walrus_parallel::WorkerPool) runs one connection per job.
//! Backpressure is explicit — when the pool queue is full the accept thread
//! answers `503` itself and closes, so overload degrades into fast rejections
//! instead of unbounded queues.
//!
//! Shutdown ordering (SIGTERM / ctrl-c via [`signals`], or
//! [`ServerHandle::shutdown`]):
//!
//! 1. stop accepting (new connections are refused by the dead listener);
//! 2. flip the `stopping` flag — idle keep-alive connections close on their
//!    next read tick, busy ones finish their current request and close;
//! 3. drain the pool under `drain_timeout`;
//! 4. if the drain deadline passes, cancel the shared request token — every
//!    in-flight guarded engine call aborts with `Cancelled` (HTTP 503);
//! 5. join the workers and take a final checkpoint so recovery replays an
//!    empty WAL.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use walrus_core::{monotonic, CancelToken, Result, SharedClock, Store, WalrusError};
use walrus_parallel::{resolve_threads, WorkerPool};

use crate::cache::QueryCache;
use crate::http::{Conn, HttpLimits, ParseError, ReadOpts, Response};
use crate::metrics::{Metrics, TraceStore};
use crate::router::{self, AppState};

/// Everything tunable about one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8167` (port `0` = ephemeral).
    pub addr: String,
    /// Worker threads; `0` resolves via the engine-wide policy
    /// ([`resolve_threads`]: request > `WALRUS_THREADS` > cores).
    pub threads: usize,
    /// Connections that may wait for a worker before new ones get `503`.
    pub queue_depth: usize,
    /// Default per-request deadline when the client sends no `timeout_ms`.
    pub default_timeout: Option<Duration>,
    /// Wall-clock budget for receiving one complete request (slowloris cap).
    pub read_timeout: Duration,
    /// How long an idle keep-alive connection is kept open.
    pub idle_timeout: Duration,
    /// Drain budget during graceful shutdown before in-flight requests are
    /// cancelled.
    pub drain_timeout: Duration,
    /// Requests served per connection before it is closed (keep-alive cap).
    pub keep_alive_max: usize,
    /// HTTP parse limits.
    pub limits: HttpLimits,
    /// Time source for request deadlines, read pacing, latency metrics, and
    /// trace spans. Production uses the process-wide monotonic clock; tests
    /// inject a [`TestClock`](walrus_core::TestClock) to drive timeouts
    /// without sleeping. (Socket poll ticks still ride the OS timer — the
    /// clock decides *whether* a deadline has passed, not when reads wake.)
    pub clock: SharedClock,
    /// Serve connections on the epoll reactor (one event-loop thread, fds
    /// instead of blocked threads; CPU work still runs on the pool) instead
    /// of thread-per-connection. Defaults from `WALRUS_REACTOR=1`. Silently
    /// falls back to the threaded backend where epoll is unavailable.
    pub reactor: bool,
    /// Query-result cache entries (0 disables the cache).
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8167".to_string(),
            threads: 0,
            queue_depth: 64,
            default_timeout: None,
            read_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(15),
            drain_timeout: Duration::from_secs(10),
            keep_alive_max: 1000,
            limits: HttpLimits::default(),
            clock: monotonic(),
            reactor: std::env::var("WALRUS_REACTOR").map(|v| v == "1").unwrap_or(false),
            cache_capacity: QueryCache::DEFAULT_CAPACITY,
        }
    }
}

/// Socket poll granularity: how often blocked reads (and the reactor's
/// `epoll_wait`) wake up to check deadlines and the stopping flag.
pub(crate) const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// The server. [`Server::start`] returns a handle; the listener and workers
/// run on background threads until [`ServerHandle::shutdown`].
pub struct Server;

impl Server {
    /// Binds the listener, spins up the pool, and starts accepting. Takes
    /// any [`Store`] — the monolithic
    /// [`SharedDurableDatabase`](walrus_core::SharedDurableDatabase) or a
    /// [`ShardedStore`](walrus_core::ShardedStore).
    pub fn start(config: ServerConfig, store: impl Store + 'static) -> Result<ServerHandle> {
        Server::start_arc(config, Arc::new(store))
    }

    /// [`Server::start`] over an already-shared store.
    pub fn start_arc(config: ServerConfig, store: Arc<dyn Store>) -> Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr).map_err(|e| WalrusError::Io {
            context: format!("bind {}", config.addr),
            source: e,
        })?;
        let addr = listener.local_addr().map_err(|e| WalrusError::Io {
            context: "local_addr".to_string(),
            source: e,
        })?;
        listener.set_nonblocking(true).map_err(|e| WalrusError::Io {
            context: "set_nonblocking".to_string(),
            source: e,
        })?;

        let threads = resolve_threads(config.threads);
        let pool = WorkerPool::new(threads, config.queue_depth);
        let state = Arc::new(AppState {
            store,
            metrics: Metrics::with_clock(config.clock.clone()),
            clock: config.clock.clone(),
            traces: TraceStore::default(),
            request_ids: AtomicU64::new(0),
            default_timeout: config.default_timeout,
            cancel: CancelToken::new(),
            stopping: Arc::new(AtomicBool::new(false)),
            pool_threads: pool.threads(),
            pool_queue_depth: pool.capacity(),
            cache: QueryCache::new(config.cache_capacity),
        });
        let stop_accept = Arc::new(AtomicBool::new(false));

        // Backend selection: the reactor multiplexes every connection on
        // one epoll thread (connections cost fds, not pool workers); the
        // threaded backend parks one worker per connection. Same pool,
        // same router, same bytes either way.
        let use_reactor = config.reactor && walrus_reactor::supported();
        let accept_thread = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop_accept);
            let config = config.clone();
            // The pool is shared with the serving thread for submission;
            // the handle keeps it too for drain/shutdown.
            let pool = Arc::new(pool);
            let pool_for_handle = Arc::clone(&pool);
            let (name, body): (&str, Box<dyn FnOnce() + Send>) = if use_reactor {
                ("walrus-reactor", Box::new(move || {
                    crate::reactor::serve(listener, pool, state, stop, config)
                }))
            } else {
                ("walrus-accept", Box::new(move || {
                    accept_loop(listener, pool, state, stop, config)
                }))
            };
            let thread = std::thread::Builder::new()
                .name(name.to_string())
                .spawn(body)
                .map_err(|e| WalrusError::Io {
                    context: "spawn accept thread".to_string(),
                    source: e,
                })?;
            (thread, pool_for_handle)
        };
        let (accept, pool) = accept_thread;

        Ok(ServerHandle {
            addr,
            state,
            stop_accept,
            accept_thread: Some(accept),
            pool: Some(pool),
            drain_timeout: config.drain_timeout,
            finished: false,
        })
    }
}

pub(crate) fn accept_loop(
    listener: TcpListener,
    pool: Arc<WorkerPool>,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    config: ServerConfig,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                state.metrics.connections_total.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                // Load-shedding: the accept thread is the only submitter, so
                // this check is not racy — the queue can only drain between
                // here and try_execute.
                if pool.pending() >= pool.capacity() {
                    state.metrics.rejected_total.fetch_add(1, Ordering::Relaxed);
                    reject_overload(stream);
                    continue;
                }
                let conn_state = Arc::clone(&state);
                let conn_config = config.clone();
                let submitted = pool.try_execute(move || {
                    handle_connection(conn_state, stream, &conn_config);
                });
                if submitted.is_err() {
                    // Only reachable when shutdown won the race; the closure
                    // (and its stream) is dropped, which closes the socket.
                    state.metrics.rejected_total.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // Transient accept failure (EMFILE, ECONNABORTED, ...);
                // back off briefly rather than spinning.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Answers `503` from the accept thread when the pool is saturated.
fn reject_overload(stream: TcpStream) {
    let mut conn = Conn::new(stream);
    let mut resp = Response::error(503, "server overloaded; retry later");
    resp.close = true;
    let _ = conn.write_response(&resp);
}

/// Serves one connection until it closes, errors, asks to close, hits the
/// keep-alive cap, or the server starts stopping. Generic over the stream so
/// tests can drive it with scripted in-memory connections.
fn handle_connection<S: Read + Write>(state: Arc<AppState>, stream: S, config: &ServerConfig) {
    let mut conn = Conn::new(stream);
    let stopping = || state.is_stopping() || state.cancel.is_cancelled();
    for served in 0..config.keep_alive_max {
        let opts = ReadOpts {
            idle_timeout: config.idle_timeout,
            read_timeout: config.read_timeout,
            stopping: &stopping,
            clock: config.clock.as_ref(),
        };
        match conn.read_request(&config.limits, &opts) {
            Ok(req) => {
                // The in-flight gauge covers routing *and* the response
                // write: a `/metrics` scrape during graceful drain must see
                // stragglers until their bytes are out (RAII also keeps the
                // gauge balanced if response writing panics).
                let in_flight = state.metrics.begin_request();
                let mut resp = router::handle(&state, &req);
                resp.close = !req.keep_alive
                    || state.is_stopping()
                    || served + 1 == config.keep_alive_max;
                let write = conn.write_response(&resp);
                drop(in_flight);
                if write.is_err() || resp.close {
                    return;
                }
            }
            Err(ParseError::Closed) | Err(ParseError::Io(_)) => return,
            Err(ParseError::Bad { status, message }) => {
                // Protocol violations get one best-effort answer, then the
                // connection closes — framing can no longer be trusted. The
                // answer is a response in flight like any other: without the
                // marker, a drain-time scrape would under-report while these
                // 503s/4xxs are written.
                let in_flight = state.metrics.begin_request();
                state.metrics.count_response(status);
                let mut resp = Response::error(status, &message);
                resp.close = true;
                let _ = conn.write_response(&resp);
                drop(in_flight);
                return;
            }
        }
    }
}

/// Handle to a running server. Dropping it shuts the server down
/// (best-effort); call [`ServerHandle::shutdown`] for the checked path.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    stop_accept: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    pool: Option<Arc<WorkerPool>>,
    drain_timeout: Duration,
    finished: bool,
}

impl ServerHandle {
    /// The bound address (resolves port `0` to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state — tests and the CLI read metrics and store size here.
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Graceful shutdown; see the module docs for the ordering. Returns once
    /// the workers are joined and the final checkpoint is on disk.
    pub fn shutdown(mut self) -> Result<()> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;

        self.stop_accept.store(true, Ordering::Release);
        self.state.stopping.store(true, Ordering::Release);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        if let Some(pool) = self.pool.take() {
            if !pool.wait_idle(self.drain_timeout) {
                // Drain budget exhausted: abort stragglers. Guarded engine
                // calls observe the token within a chunk; connection reads
                // observe it within one poll interval.
                self.state.cancel.cancel();
                pool.wait_idle(Duration::from_secs(5));
            }
            // The accept thread is joined, so this Arc is the last one.
            if let Some(mut pool) = Arc::into_inner(pool) {
                pool.shutdown();
            }
        }
        // Rolling per-shard checkpoint; on a degraded store the healthy
        // shards still land their snapshots.
        self.state.store.checkpoint()?;
        self.state.metrics.checkpoints_total.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

/// Process signal plumbing for `walrus serve`, dependency-free via the libc
/// `signal(2)` symbol every unix target links anyway. The handler only flips
/// an atomic — the serve loop polls [`shutdown_requested`] and runs the
/// normal graceful path, so no async-signal-unsafe work happens in handler
/// context.
///
/// [`shutdown_requested`]: signals::shutdown_requested
#[cfg(unix)]
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // `signal(2)`; the handler slot is declared as a proper function
        // pointer so no integer casts are needed. The previous-handler
        // return value is ignored, so its type is left opaque.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Installs SIGINT + SIGTERM handlers that request shutdown.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// True once SIGINT or SIGTERM has been received.
    pub fn shutdown_requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

/// Stub for non-unix targets: signals never fire, `walrus serve` runs until
/// killed.
#[cfg(not(unix))]
pub mod signals {
    pub fn install() {}
    pub fn shutdown_requested() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use walrus_core::{DurableDatabase, SharedDurableDatabase, SlidingParams, WalrusParams};

    fn test_config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            queue_depth: 8,
            read_timeout: Duration::from_millis(500),
            idle_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        }
    }

    fn test_store(tag: &str) -> (SharedDurableDatabase, std::path::PathBuf) {
        let dir = std::env::temp_dir()
            .join(format!("walrus_server_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let params = WalrusParams {
            sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 8, stride: 4 },
            ..WalrusParams::paper_defaults()
        };
        let (store, _) = DurableDatabase::open(&dir, params).unwrap();
        (SharedDurableDatabase::new(store), dir)
    }

    /// Regression (in-flight under-report during graceful drain): a
    /// half-received request answered `503` while the server is stopping
    /// must be visible in `walrus_in_flight` for the whole response write.
    /// Before the RAII marker, this error path never touched the gauge, so
    /// a drain-time `/metrics` scrape read 0 while 503s were still being
    /// written.
    #[test]
    fn drain_time_error_responses_are_counted_in_flight() {
        let (store, dir) = test_store("inflight");
        let state = Arc::new(AppState {
            store: Arc::new(store),
            metrics: Metrics::default(),
            clock: monotonic(),
            traces: TraceStore::default(),
            request_ids: AtomicU64::new(0),
            default_timeout: None,
            cancel: walrus_core::CancelToken::new(),
            // Drain in progress from the first read tick.
            stopping: Arc::new(AtomicBool::new(true)),
            pool_threads: 1,
            pool_queue_depth: 1,
            cache: QueryCache::new(QueryCache::DEFAULT_CAPACITY),
        });

        /// Half a request head, then endless ticks; the write side records
        /// what the in-flight gauge said while the response went out.
        struct HalfRequest {
            state: Arc<AppState>,
            sent: bool,
            observed: Arc<AtomicU64>,
        }
        impl Read for HalfRequest {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.sent {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                self.sent = true;
                let head = b"POST /query HTTP/1.1\r\n";
                buf[..head.len()].copy_from_slice(head);
                Ok(head.len())
            }
        }
        impl Write for HalfRequest {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.observed
                    .store(self.state.metrics.in_flight.load(Ordering::Acquire), Ordering::Release);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let observed = Arc::new(AtomicU64::new(u64::MAX));
        let stream = HalfRequest {
            state: Arc::clone(&state),
            sent: false,
            observed: Arc::clone(&observed),
        };
        handle_connection(Arc::clone(&state), stream, &test_config());

        assert_eq!(
            observed.load(Ordering::Acquire),
            1,
            "the drain-time 503 must be in flight while its bytes are written"
        );
        assert_eq!(
            state.metrics.in_flight.load(Ordering::Acquire),
            0,
            "the gauge must return to zero once the response is out"
        );
        assert_eq!(state.metrics.responses_5xx.load(Ordering::Acquire), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn starts_serves_healthz_and_shuts_down() {
        let (store, dir) = test_store("basic");
        let handle = Server::start(test_config(), store).unwrap();
        let addr = handle.addr();
        assert_ne!(addr.port(), 0);

        let mut client = Client::connect(addr).unwrap();
        let resp = client.request("GET", "/healthz", &[]).unwrap();
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8_lossy(&resp.body).contains("\"status\":\"ok\""));
        // Keep-alive: a second request on the same connection works.
        let resp = client.request("GET", "/metrics", &[]).unwrap();
        assert_eq!(resp.status, 200);

        handle.shutdown().unwrap();
        // The listener is gone after shutdown.
        assert!(TcpStream::connect(addr).is_err() || {
            // Some platforms accept briefly; a request must at least fail.
            Client::connect(addr)
                .and_then(|mut c| c.request("GET", "/healthz", &[]))
                .is_err()
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_checkpoints_the_store() {
        let (store, dir) = test_store("ckpt");
        let handle = Server::start(test_config(), store).unwrap();
        let addr = handle.addr();
        // Ingest one tiny image over HTTP so the WAL is non-empty.
        let body = b"P2\n8 8\n255\n0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 \
                     24 25 26 27 28 29 30 31 32 33 34 35 36 37 38 39 40 41 42 43 44 45 46 47 48 \
                     49 50 51 52 53 54 55 56 57 58 59 60 61 62 63\n";
        let mut client = Client::connect(addr).unwrap();
        let resp = client.request("POST", "/ingest?name=seed", body).unwrap();
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));

        let state = handle.state();
        handle.shutdown().unwrap();
        assert_eq!(
            state.store.records_since_checkpoint(),
            0,
            "shutdown must leave a fresh checkpoint"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
