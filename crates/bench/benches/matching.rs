//! Criterion micro-benchmarks for the image-matching algorithms (§5.5):
//! quick union (linear), greedy one-to-one (O(n²)) and exact
//! branch-and-bound (exponential, small n only).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use walrus_core::bitmap::RegionBitmap;
use walrus_core::matching::{score_exact, score_greedy, score_quick, MatchPair};
use walrus_core::{Region, SimilarityKind};

fn random_regions(n: usize, rng: &mut StdRng) -> Vec<Region> {
    (0..n)
        .map(|_| {
            let mut bitmap = RegionBitmap::new(128, 96, 16);
            for _ in 0..rng.gen_range(1..4usize) {
                bitmap.mark_window(
                    rng.gen_range(0..100),
                    rng.gen_range(0..70),
                    rng.gen_range(8..32),
                    rng.gen_range(8..32),
                );
            }
            Region::new(vec![0.0; 12], vec![0.0; 12], vec![0.0; 12], bitmap, 1)
        })
        .collect()
}

fn instance(pairs: usize, seed: u64) -> (Vec<Region>, Vec<Region>, Vec<MatchPair>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let nq = 8;
    let nt = 8;
    let q = random_regions(nq, &mut rng);
    let t = random_regions(nt, &mut rng);
    let p = (0..pairs)
        .map(|_| MatchPair { q: rng.gen_range(0..nq), t: rng.gen_range(0..nt) })
        .collect();
    (q, t, p)
}

fn bench_matching(c: &mut Criterion) {
    const AREA: usize = 128 * 96;
    let mut group = c.benchmark_group("matching");
    for pairs in [8usize, 32, 128] {
        let (q, t, p) = instance(pairs, 99);
        group.bench_with_input(BenchmarkId::new("quick", pairs), &p, |b, p| {
            b.iter(|| score_quick(&q, &t, p, AREA, AREA, SimilarityKind::Symmetric))
        });
        group.bench_with_input(BenchmarkId::new("greedy", pairs), &p, |b, p| {
            b.iter(|| score_greedy(&q, &t, p, AREA, AREA, SimilarityKind::Symmetric))
        });
    }
    // Exact only at small n (exponential).
    for pairs in [6usize, 10] {
        let (q, t, p) = instance(pairs, 7);
        group.bench_with_input(BenchmarkId::new("exact", pairs), &p, |b, p| {
            b.iter(|| score_exact(&q, &t, p, AREA, AREA, SimilarityKind::Symmetric))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
