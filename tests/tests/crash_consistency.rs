//! Crash-consistency sweep: exhaustively inject a fault at *every* I/O
//! operation index a workload performs, under every crash mode, and assert
//! that recovery always lands in a committed state — the state after the
//! last operation that returned `Ok`, or (when the in-flight operation's
//! WAL record reached stable storage before the crash) one operation past
//! it. Never anything older, never a panic, never silent corruption.
//!
//! Three sweeps:
//! 1. `Error` / `ShortWrite` at every op of an open+insert+remove+
//!    checkpoint workload × every [`CrashMode`];
//! 2. silent `BitFlip` at every op — recovery must either reject the
//!    store (`Corrupt`) or land in a committed state;
//! 3. faults at every op of *recovery itself* (replaying a WAL with a
//!    torn tail), crash, recover again — still the committed state.

use std::path::Path;
use std::sync::Arc;
use walrus_core::recovery::{DurableDatabase, SNAPSHOT_FILE, WAL_FILE};
use walrus_core::storage::{CrashMode, Fault, FaultIo, FaultKind, ALL_CRASH_MODES};
use walrus_core::{extract_regions, Region, Result, StorageIo, WalrusError, WalrusParams};
use walrus_imagery::synth::scene::{Scene, SceneObject};
use walrus_imagery::synth::shapes::Shape;
use walrus_imagery::synth::texture::{Rgb, Texture};
use walrus_imagery::Image;
use walrus_wavelet::SlidingParams;

fn params() -> WalrusParams {
    WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 16, stride: 4 },
        ..WalrusParams::paper_defaults()
    }
}

fn scene(hue: f32) -> Image {
    Scene::new(Texture::Solid(Rgb(hue, 0.4, 0.3)))
        .with(SceneObject::new(
            Shape::Ellipse { rx: 0.5, ry: 0.5 },
            Texture::Solid(Rgb(0.9, 0.2, 0.2)),
            (0.5, 0.5),
            0.4,
        ))
        .render(32, 32)
        .unwrap()
}

/// Pre-extracted regions for the four workload images, so each of the
/// hundreds of sweep iterations skips the (deterministic) wavelet work.
struct Fixtures {
    regions: Vec<(&'static str, Vec<Region>)>,
}

impl Fixtures {
    fn new() -> Self {
        let p = params();
        let names = ["a", "b", "c", "d"];
        let regions = names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                (*name, extract_regions(&scene(0.15 + 0.2 * i as f32), &p).unwrap())
            })
            .collect();
        Self { regions }
    }

    fn insert(&self, store: &mut DurableDatabase, name: &str) -> Result<()> {
        let regions =
            self.regions.iter().find(|(n, _)| *n == name).expect("fixture").1.clone();
        store.insert_regions(name, 32, 32, regions)?;
        Ok(())
    }
}

/// The workload: each step mutates the store and is a commit point.
/// Returns the step list; `apply(store, k)` runs step `k`.
const STEPS: usize = 6;

fn apply(fx: &Fixtures, store: &mut DurableDatabase, step: usize) -> Result<()> {
    match step {
        0 => fx.insert(store, "a"),
        1 => fx.insert(store, "b"),
        2 => store.remove_image(0),
        3 => store.checkpoint(),
        4 => fx.insert(store, "c"),
        5 => fx.insert(store, "d"),
        _ => unreachable!(),
    }
}

/// Live image names, sorted — the observable state the oracle compares.
fn live_names(store: &DurableDatabase) -> Vec<String> {
    let mut names: Vec<String> =
        store.db().image_slots().iter().flatten().map(|i| i.name.clone()).collect();
    names.sort();
    names
}

/// Runs the workload fault-free and records the state after `k` completed
/// steps, for k = 0..=STEPS.
fn committed_states(fx: &Fixtures) -> Vec<Vec<String>> {
    let io = Arc::new(FaultIo::new());
    let (mut store, _) = DurableDatabase::open_with(io, "db", params()).unwrap();
    let mut states = vec![live_names(&store)];
    for step in 0..STEPS {
        apply(fx, &mut store, step).unwrap();
        states.push(live_names(&store));
    }
    states
}

/// Runs open + workload with `fault` armed. Returns `(completed_steps,
/// fault_fired)`; `completed_steps` is `None` if the open itself failed.
fn faulted_run(fx: &Fixtures, io: &Arc<FaultIo>, fault: Fault) -> (Option<usize>, bool) {
    io.set_fault(Some(fault));
    let opened = DurableDatabase::open_with(io.clone(), "db", params());
    let completed = match opened {
        Err(_) => None,
        Ok((mut store, _)) => {
            let mut done = 0;
            for step in 0..STEPS {
                match apply(fx, &mut store, step) {
                    Ok(()) => done += 1,
                    Err(_) => break,
                }
            }
            Some(done)
        }
    };
    // `op_count` advanced past `at_op` iff the fault actually fired.
    let fired = io.op_count() > fault.at_op || io.is_halted();
    (completed, fired)
}

#[test]
fn every_fault_point_recovers_to_a_committed_state() {
    let fx = Fixtures::new();
    let states = committed_states(&fx);
    let mut swept = 0;

    for kind in [FaultKind::Error, FaultKind::ShortWrite] {
        for mode in ALL_CRASH_MODES {
            let mut at_op = 0;
            loop {
                let io = Arc::new(FaultIo::new());
                let (completed, fired) =
                    faulted_run(&fx, &io, Fault { at_op, kind });
                if !fired {
                    // The workload uses fewer ops than `at_op`: sweep done.
                    assert_eq!(completed, Some(STEPS));
                    break;
                }
                swept += 1;

                // Machine dies; disk contents meet their fate; restart.
                io.crash(mode);
                let (store, _report) =
                    DurableDatabase::open_with(io.clone(), "db", params())
                        .unwrap_or_else(|e| {
                            panic!("recovery failed ({kind:?} at op {at_op}, {mode:?}): {e}")
                        });

                let got = live_names(&store);
                let completed = completed.unwrap_or(0);
                let old = &states[completed];
                let new = states.get(completed + 1);
                assert!(
                    got == *old || Some(&got) == new,
                    "{kind:?} at op {at_op}, {mode:?}: recovered {got:?}, \
                     expected {old:?} or {new:?}"
                );

                // The recovered store accepts new writes.
                drop(store);
                at_op += 1;
            }
            assert!(at_op > 10, "sweep must cover a real span of ops, got {at_op}");
        }
    }
    // Sanity: the sweep exercised a substantial matrix.
    assert!(swept > 100, "only {swept} fault points swept");
}

#[test]
fn silent_bit_flips_are_detected_or_harmless() {
    let fx = Fixtures::new();
    let states = committed_states(&fx);

    let mut at_op = 0;
    loop {
        let io = Arc::new(FaultIo::new());
        let (completed, fired) =
            faulted_run(&fx, &io, Fault { at_op, kind: FaultKind::BitFlip });
        if !fired {
            break;
        }
        // BitFlip never halts: the workload itself must have finished
        // (flips corrupt data in flight, they do not fail operations).
        assert_eq!(completed, Some(STEPS), "bit flip at op {at_op} broke the run");

        io.crash(CrashMode::KeepAll);
        match DurableDatabase::open_with(io.clone(), "db", params()) {
            Ok((store, _)) => {
                let got = live_names(&store);
                assert!(
                    states.contains(&got),
                    "bit flip at op {at_op}: recovered to uncommitted state {got:?}"
                );
            }
            Err(WalrusError::Corrupt(_)) => {} // detected — the point of the checksums
            Err(other) => panic!("bit flip at op {at_op}: unexpected error {other}"),
        }
        at_op += 1;
    }
    assert!(at_op > 10, "bit-flip sweep ended after only {at_op} ops");
}

#[test]
fn faults_during_recovery_itself_are_survivable() {
    let fx = Fixtures::new();

    // Expected surviving state: snapshot {a} + committed wal record {b}.
    let build = |io: &Arc<FaultIo>| {
        let (mut store, _) =
            DurableDatabase::open_with(io.clone(), "db", params()).unwrap();
        fx.insert(&mut store, "a").unwrap();
        store.checkpoint().unwrap();
        fx.insert(&mut store, "b").unwrap();
        let committed = store.wal_len() as usize;
        drop(store);
        // A torn record trails the log, as a crash mid-append would leave.
        let wal = io.file_bytes(Path::new("db/wal.log")).unwrap();
        let mut torn = wal.clone();
        torn.extend_from_slice(&wal[committed / 2..]);
        io.write(Path::new("db/wal.log"), &torn).unwrap();
        io.fsync(Path::new("db/wal.log")).unwrap();
    };

    for mode in ALL_CRASH_MODES {
        let mut at_op = 0;
        loop {
            let io = Arc::new(FaultIo::new());
            build(&io);
            io.crash(CrashMode::KeepAll); // reset op counter, keep the torn file
            io.set_fault(Some(Fault { at_op, kind: FaultKind::Error }));
            let first = DurableDatabase::open_with(io.clone(), "db", params());
            let fired = io.op_count() > at_op || io.is_halted();

            if let Ok((store, report)) = &first {
                assert_eq!(live_names(store), ["a", "b"]);
                assert!(report.torn_tail_truncated);
                if !fired {
                    break; // recovery used fewer than `at_op` ops: done
                }
            } else {
                // Recovery died mid-repair; crash and recover again, clean.
                io.crash(mode);
                let (store, _) = DurableDatabase::open_with(io.clone(), "db", params())
                    .unwrap_or_else(|e| {
                        panic!("second recovery failed (op {at_op}, {mode:?}): {e}")
                    });
                assert_eq!(
                    live_names(&store),
                    ["a", "b"],
                    "fault at recovery op {at_op}, {mode:?}"
                );
            }
            at_op += 1;
        }
        assert!(at_op >= 3, "recovery sweep too short: {at_op} ops");
    }
}

#[test]
fn snapshot_and_wal_files_have_the_documented_names() {
    // The store layout is part of the public contract (ops tooling relies
    // on it); pin the names.
    let io = Arc::new(FaultIo::new());
    let (mut store, _) = DurableDatabase::open_with(io.clone(), "db", params()).unwrap();
    Fixtures::new().insert(&mut store, "a").unwrap();
    assert_eq!(SNAPSHOT_FILE, "snapshot.walrus");
    assert_eq!(WAL_FILE, "wal.log");
    let names = io.file_names();
    assert!(names.contains(&Path::new("db/snapshot.walrus").to_path_buf()));
    assert!(names.contains(&Path::new("db/wal.log").to_path_buf()));
}
