//! Property tests for the observability primitives: the fixed-bucket
//! [`Histogram`] behind the per-stage `/metrics` series and the
//! [`LatencyRing`] nearest-rank percentile estimator.
//!
//! Written with a small in-file seeded PRNG rather than `proptest` so the
//! cases are fully deterministic, shrink-free, and runnable in environments
//! where the external dev-dependencies are unavailable.

use std::time::Duration;

use walrus_server::metrics::LatencyRing;
use walrus_trace::{bucket_bound_micros, Histogram, HISTOGRAM_BUCKETS};

/// SplitMix64: tiny, deterministic, well-distributed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// Values spanning many orders of magnitude (so every histogram bucket
    /// range gets exercised): 2^[0,40) scaled by a small factor.
    fn wide(&mut self) -> u64 {
        let exp = self.below(40);
        let base = 1u64 << exp;
        base + self.below(base.max(1))
    }
}

fn hist_of(values: &[u64]) -> Histogram {
    let h = Histogram::default();
    for &v in values {
        h.record_micros(v);
    }
    h
}

#[test]
fn bucket_bounds_are_monotone_and_exhaustive() {
    // Bounds strictly increase, so cumulative bucket walks terminate at a
    // unique quantile; the last bucket absorbs everything.
    let mut prev = bucket_bound_micros(0);
    assert_eq!(prev, 0);
    for i in 1..HISTOGRAM_BUCKETS {
        let bound = bucket_bound_micros(i);
        assert!(bound > prev, "bucket {i} bound {bound} <= {prev}");
        prev = bound;
    }
    assert_eq!(bucket_bound_micros(HISTOGRAM_BUCKETS - 1), u64::MAX);
}

#[test]
fn count_and_sum_are_exact_for_random_samples() {
    let mut rng = Rng(0xA11CE);
    for _ in 0..20 {
        let n = 1 + rng.below(300) as usize;
        let values: Vec<u64> = (0..n).map(|_| rng.wide()).collect();
        let h = hist_of(&values);
        assert_eq!(h.count(), n as u64);
        assert_eq!(h.sum_micros(), values.iter().sum::<u64>());
        assert_eq!(h.snapshot().iter().sum::<u64>(), n as u64);
    }
}

#[test]
fn merge_is_commutative_and_associative() {
    let mut rng = Rng(0xBEEF);
    for _ in 0..10 {
        let mk = |rng: &mut Rng| -> Vec<u64> {
            let n = rng.below(100) as usize;
            (0..n).map(|_| rng.wide()).collect()
        };
        let (a, b, c) = (mk(&mut rng), mk(&mut rng), mk(&mut rng));

        // (a + b) vs (b + a).
        let ab = hist_of(&a);
        ab.merge_from(&hist_of(&b));
        let ba = hist_of(&b);
        ba.merge_from(&hist_of(&a));
        assert_eq!(ab.snapshot(), ba.snapshot());
        assert_eq!(ab.sum_micros(), ba.sum_micros());

        // ((a + b) + c) vs (a + (b + c)).
        let ab_c = hist_of(&a);
        ab_c.merge_from(&hist_of(&b));
        ab_c.merge_from(&hist_of(&c));
        let bc = hist_of(&b);
        bc.merge_from(&hist_of(&c));
        let a_bc = hist_of(&a);
        a_bc.merge_from(&bc);
        assert_eq!(ab_c.snapshot(), a_bc.snapshot());
        assert_eq!(ab_c.count(), (a.len() + b.len() + c.len()) as u64);

        // Merging is bucket-wise, so every quantile of the merge matches
        // between the two association orders.
        for q in [0.0, 0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(ab_c.quantile_micros(q), a_bc.quantile_micros(q));
        }
    }
}

#[test]
fn quantiles_are_monotone_in_q() {
    let mut rng = Rng(0xCAFE);
    for _ in 0..20 {
        let n = 1 + rng.below(500) as usize;
        let h = hist_of(&(0..n).map(|_| rng.wide()).collect::<Vec<_>>());
        let mut prev = 0u64;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile_micros(q).expect("non-empty histogram");
            assert!(v >= prev, "quantile({q}) = {v} < quantile at lower q = {prev}");
            prev = v;
        }
    }
}

#[test]
fn quantile_brackets_the_true_nearest_rank_value() {
    // The histogram quantile answers the inclusive upper bound of the bucket
    // holding the true nearest-rank sample: exact for values of the form
    // 2^k - 1 (and 0), otherwise within one power of two above the truth.
    // Only holds below the overflow bucket, whose bound is u64::MAX.
    let cap = bucket_bound_micros(HISTOGRAM_BUCKETS - 2);
    let mut rng = Rng(0xD15C0);
    for _ in 0..20 {
        let n = 1 + rng.below(200) as usize;
        let mut values: Vec<u64> = (0..n).map(|_| rng.wide().min(cap)).collect();
        let h = hist_of(&values);
        values.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let truth = values[rank - 1];
            let est = h.quantile_micros(q).unwrap();
            assert!(est >= truth, "q={q}: estimate {est} below true {truth}");
            assert!(
                est <= truth.saturating_mul(2).max(1),
                "q={q}: estimate {est} more than a bucket above true {truth}"
            );
        }
    }
}

#[test]
fn bucket_boundary_values_are_exact() {
    // 0 and every 2^k - 1 are bucket upper bounds, so a histogram of such
    // values reproduces them exactly at the matching quantiles.
    let values: Vec<u64> = std::iter::once(0).chain((1..20).map(|k| (1u64 << k) - 1)).collect();
    let h = hist_of(&values);
    for (i, &v) in values.iter().enumerate() {
        // Mid-rank q avoids float round-off at exact rank boundaries:
        // ceil(q * n) = i + 1 for q = (i + 0.5) / n.
        let q = (i as f64 + 0.5) / values.len() as f64;
        assert_eq!(h.quantile_micros(q), Some(v), "boundary value {v} at q={q}");
    }
}

#[test]
fn empty_and_single_sample_edges() {
    let h = Histogram::default();
    assert_eq!(h.count(), 0);
    assert_eq!(h.quantile_micros(0.5), None);
    assert_eq!(h.quantile_micros(1.0), None);

    h.record_micros(7);
    for q in [0.0, 0.001, 0.5, 1.0] {
        assert_eq!(h.quantile_micros(q), Some(7), "single-sample q={q}");
    }

    // Zero is representable exactly (bucket 0).
    let z = Histogram::default();
    z.record_micros(0);
    assert_eq!(z.quantile_micros(0.5), Some(0));
    assert_eq!(z.sum_micros(), 0);
}

#[test]
fn overflow_values_land_in_the_last_bucket() {
    let h = Histogram::default();
    h.record_micros(u64::MAX);
    h.record_micros(1u64 << 60);
    assert_eq!(h.count(), 2);
    let snap = h.snapshot();
    assert_eq!(snap[HISTOGRAM_BUCKETS - 1], 2);
    assert_eq!(h.quantile_micros(1.0), Some(u64::MAX));
}

#[test]
fn latency_ring_matches_a_sorted_model() {
    // The ring's nearest-rank percentiles must agree with a straightforward
    // model over the same (windowed) samples.
    let mut rng = Rng(0x5EED);
    for round in 0..10 {
        let ring = LatencyRing::default();
        let n = 1 + rng.below(2200) as usize; // sometimes beyond CAPACITY
        let mut all: Vec<u64> = Vec::with_capacity(n);
        for _ in 0..n {
            let us = rng.below(1_000_000);
            ring.record(Duration::from_micros(us));
            all.push(us);
        }
        let window: Vec<u64> = if all.len() <= LatencyRing::CAPACITY {
            all.clone()
        } else {
            all[all.len() - LatencyRing::CAPACITY..].to_vec()
        };
        let mut sorted = window.clone();
        sorted.sort_unstable();
        let model = |q: f64| -> u64 {
            sorted[((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1]
        };
        let [p50, p95, p99] = ring.percentiles().unwrap();
        assert_eq!(p50, model(0.50), "round {round} p50");
        assert_eq!(p95, model(0.95), "round {round} p95");
        assert_eq!(p99, model(0.99), "round {round} p99");
        assert_eq!(ring.len(), sorted.len());
    }
}
