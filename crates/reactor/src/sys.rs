//! Thin FFI over the handful of kernel calls the reactor needs.
//!
//! Same philosophy as the `signal(2)` shim in walrus-server: the container
//! has no libc crate, but every unix target links libc anyway, so the
//! symbols are declared directly. Only the constants and calls actually
//! used are bound, and every wrapper converts `-1` into
//! [`std::io::Error::last_os_error`] so callers never touch `errno`.

#![allow(clippy::missing_safety_doc)]

use std::io;
use std::os::unix::io::RawFd;

/// `epoll_event.events` bits (from `<sys/epoll.h>`).
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half — lets keep-alive connections be reaped
/// without waiting for a read to return 0.
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;

/// `epoll_create1` flag: close-on-exec.
pub const EPOLL_CLOEXEC: i32 = 0o2000000;

/// `pipe2` flags.
pub const O_NONBLOCK: i32 = 0o4000;
pub const O_CLOEXEC: i32 = 0o2000000;

/// Mirror of the kernel's `struct epoll_event`. On x86-64 the kernel ABI
/// packs it (no padding between `events` and `data`); other arches use
/// natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// `epoll_create1(EPOLL_CLOEXEC)`.
pub fn sys_epoll_create() -> io::Result<RawFd> {
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// `epoll_ctl`; `event` may be `None` only for `EPOLL_CTL_DEL`.
pub fn sys_epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
    let mut ev = event.unwrap_or(EpollEvent { events: 0, data: 0 });
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) })?;
    Ok(())
}

/// `epoll_wait`, retried on `EINTR` so signal delivery (SIGTERM during
/// graceful drain) never surfaces as a spurious error.
pub fn sys_epoll_wait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let n = unsafe {
            epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
        };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// `pipe2(O_NONBLOCK | O_CLOEXEC)` → `(read_end, write_end)`.
pub fn sys_pipe() -> io::Result<(RawFd, RawFd)> {
    let mut fds = [0i32; 2];
    cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
    Ok((fds[0], fds[1]))
}

/// `close(2)`; errors ignored (nothing useful can be done at teardown).
pub fn sys_close(fd: RawFd) {
    unsafe {
        close(fd);
    }
}

/// Nonblocking `read(2)`; `Ok(0)` is EOF, `WouldBlock` means drained.
pub fn sys_read(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
    let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Nonblocking `write(2)`.
pub fn sys_write(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
    let n = unsafe { write(fd, buf.as_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}
