//! Retrieval evaluation metrics.
//!
//! The paper argues quality visually ("semantically more related"); with a
//! labeled dataset the same judgments become numbers. These are the
//! standard rank-based metrics used by the benchmark harnesses and tests to
//! compare WALRUS against the single-signature baselines: precision@k,
//! recall@k, average precision, and the rank of the first relevant result.
//!
//! All functions take a ranked list of item ids (best first) and a
//! predicate for relevance, so they work unchanged for WALRUS's
//! similarity-ranked output and the baselines' distance-ranked output.

/// Precision@k: fraction of the first `k` results that are relevant.
/// Returns 0 for an empty list; `k` is clamped to the list length.
pub fn precision_at_k(ranked: &[usize], relevant: impl Fn(usize) -> bool, k: usize) -> f64 {
    let k = k.min(ranked.len());
    if k == 0 {
        return 0.0;
    }
    let hits = ranked[..k].iter().filter(|&&id| relevant(id)).count();
    hits as f64 / k as f64
}

/// Recall@k: fraction of all `total_relevant` items found in the first `k`
/// results. Returns 0 when `total_relevant` is 0.
pub fn recall_at_k(
    ranked: &[usize],
    relevant: impl Fn(usize) -> bool,
    k: usize,
    total_relevant: usize,
) -> f64 {
    if total_relevant == 0 {
        return 0.0;
    }
    let k = k.min(ranked.len());
    let hits = ranked[..k].iter().filter(|&&id| relevant(id)).count();
    hits as f64 / total_relevant as f64
}

/// Average precision: mean of precision@r over the ranks `r` where a
/// relevant item appears, normalized by `total_relevant` (the standard AP
/// used in mean-average-precision). 0 when `total_relevant` is 0.
pub fn average_precision(
    ranked: &[usize],
    relevant: impl Fn(usize) -> bool,
    total_relevant: usize,
) -> f64 {
    if total_relevant == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0f64;
    for (i, &id) in ranked.iter().enumerate() {
        if relevant(id) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / total_relevant as f64
}

/// Mean average precision over several queries' ranked lists.
pub fn mean_average_precision(
    runs: &[(Vec<usize>, usize)],
    relevant: impl Fn(usize) -> bool + Copy,
) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter()
        .map(|(ranked, total)| average_precision(ranked, relevant, *total))
        .sum::<f64>()
        / runs.len() as f64
}

/// 1-based rank of the first relevant result, or `None` if none appears.
pub fn first_relevant_rank(ranked: &[usize], relevant: impl Fn(usize) -> bool) -> Option<usize> {
    ranked.iter().position(|&id| relevant(id)).map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Relevant ids: even numbers.
    fn even(id: usize) -> bool {
        id % 2 == 0
    }

    #[test]
    fn precision_basics() {
        let ranked = vec![2, 4, 1, 3, 6];
        assert_eq!(precision_at_k(&ranked, even, 2), 1.0);
        assert_eq!(precision_at_k(&ranked, even, 4), 0.5);
        assert_eq!(precision_at_k(&ranked, even, 5), 0.6);
        // k beyond the list clamps.
        assert_eq!(precision_at_k(&ranked, even, 50), 0.6);
        assert_eq!(precision_at_k(&[], even, 3), 0.0);
        assert_eq!(precision_at_k(&ranked, even, 0), 0.0);
    }

    #[test]
    fn recall_basics() {
        let ranked = vec![2, 1, 4];
        assert_eq!(recall_at_k(&ranked, even, 3, 4), 0.5);
        assert_eq!(recall_at_k(&ranked, even, 1, 4), 0.25);
        assert_eq!(recall_at_k(&ranked, even, 3, 0), 0.0);
    }

    #[test]
    fn average_precision_perfect_ranking_is_one() {
        // All relevant items first.
        let ranked = vec![0, 2, 4, 1, 3];
        assert!((average_precision(&ranked, even, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_precision_worst_ranking() {
        // Single relevant item at the end of 4.
        let ranked = vec![1, 3, 5, 2];
        assert!((average_precision(&ranked, even, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn average_precision_interleaved() {
        // Relevant at ranks 1 and 3 of [2, 1, 4]; total relevant = 2.
        // AP = (1/1 + 2/3) / 2 = 5/6.
        let ranked = vec![2, 1, 4];
        assert!((average_precision(&ranked, even, 2) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn average_precision_penalizes_missing_items() {
        // Only 1 of 2 relevant items retrieved, at rank 1: AP = (1/1)/2.
        let ranked = vec![2, 1, 3];
        assert!((average_precision(&ranked, even, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn map_averages_runs() {
        let runs = vec![(vec![2, 1], 1), (vec![1, 2], 1)];
        // AP of first run = 1.0, second = 0.5 → MAP = 0.75.
        assert!((mean_average_precision(&runs, even) - 0.75).abs() < 1e-12);
        assert_eq!(mean_average_precision(&[], even), 0.0);
    }

    #[test]
    fn first_relevant() {
        assert_eq!(first_relevant_rank(&[1, 3, 2], even), Some(3));
        assert_eq!(first_relevant_rank(&[2], even), Some(1));
        assert_eq!(first_relevant_rank(&[1, 3, 5], even), None);
        assert_eq!(first_relevant_rank(&[], even), None);
    }

    #[test]
    fn metrics_are_consistent() {
        // precision@k * k == recall@k * total_relevant (both count hits).
        let ranked = vec![2, 1, 4, 6, 3, 8];
        for k in 1..=6 {
            let p = precision_at_k(&ranked, even, k);
            let r = recall_at_k(&ranked, even, k, 4);
            assert!((p * k as f64 - r * 4.0).abs() < 1e-12, "k = {k}");
        }
    }
}
