//! Minimal PPM (P3/P6) and PGM (P2/P5) codecs.
//!
//! The paper used ImageMagick purely for image I/O and color-space
//! conversion; this module is the workspace's substitute. Netpbm formats are
//! trivially parseable without external dependencies, which keeps the
//! reproduction self-contained.
//!
//! Writers clamp to `[0, 1]` and quantize to 8 bits; readers rescale by the
//! declared `maxval`. RGB images round-trip within one quantization step.

use crate::color::ColorSpace;
use crate::image::{Channel, Image};
use crate::{ImageError, Result};
use std::io::{Read, Write};
use std::path::Path;

/// Encodes an RGB image as binary PPM (P6).
pub fn write_ppm<W: Write>(img: &Image, mut out: W) -> Result<()> {
    let rgb = img.to_space(ColorSpace::Rgb)?;
    let header = format!("P6\n{} {}\n255\n", rgb.width(), rgb.height());
    let mut buf = Vec::with_capacity(header.len() + rgb.area() * 3);
    buf.extend_from_slice(header.as_bytes());
    for y in 0..rgb.height() {
        for x in 0..rgb.width() {
            for c in 0..3 {
                buf.push(quantize(rgb.channel(c).get(x, y)));
            }
        }
    }
    out.write_all(&buf).map_err(|e| ImageError::Codec(e.to_string()))
}

/// Encodes a grayscale view of the image as binary PGM (P5).
pub fn write_pgm<W: Write>(img: &Image, mut out: W) -> Result<()> {
    let gray = img.to_space(ColorSpace::Gray)?;
    let header = format!("P5\n{} {}\n255\n", gray.width(), gray.height());
    let mut buf = Vec::with_capacity(header.len() + gray.area());
    buf.extend_from_slice(header.as_bytes());
    for y in 0..gray.height() {
        for x in 0..gray.width() {
            buf.push(quantize(gray.channel(0).get(x, y)));
        }
    }
    out.write_all(&buf).map_err(|e| ImageError::Codec(e.to_string()))
}

/// Writes a P6 PPM file at `path`.
pub fn save_ppm(img: &Image, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path).map_err(|e| ImageError::Codec(e.to_string()))?;
    write_ppm(img, std::io::BufWriter::new(file))
}

/// Reads any of P2/P3/P5/P6 from a byte stream. P2/P5 produce grayscale
/// images; P3/P6 produce RGB.
pub fn read_netpbm<R: Read>(mut input: R) -> Result<Image> {
    let mut bytes = Vec::new();
    input.read_to_end(&mut bytes).map_err(|e| ImageError::Codec(e.to_string()))?;
    parse_netpbm(&bytes)
}

/// Loads a PPM/PGM file from `path`.
pub fn load_netpbm(path: impl AsRef<Path>) -> Result<Image> {
    load_netpbm_limited(path, usize::MAX)
}

/// [`load_netpbm`] with a pixel budget (see [`parse_netpbm_limited`]).
pub fn load_netpbm_limited(path: impl AsRef<Path>, max_pixels: usize) -> Result<Image> {
    let bytes = std::fs::read(path).map_err(|e| ImageError::Codec(e.to_string()))?;
    parse_netpbm_limited(&bytes, max_pixels)
}

/// Parses an in-memory PPM/PGM byte buffer.
pub fn parse_netpbm(bytes: &[u8]) -> Result<Image> {
    parse_netpbm_limited(bytes, usize::MAX)
}

/// [`parse_netpbm`] with a pixel budget: headers declaring more than
/// `max_pixels` pixels — or whose width×height×channels product overflows —
/// are rejected with [`ImageError::TooLarge`] **before any allocation**, and
/// the declared raster size is validated against the actual input length
/// (also before allocation), so a small hostile file cannot demand a huge
/// buffer.
pub fn parse_netpbm_limited(bytes: &[u8], max_pixels: usize) -> Result<Image> {
    parse_netpbm_limited_prefix(bytes, max_pixels).map(|(image, _)| image)
}

/// Parses one PPM/PGM image from the **front** of `bytes` and returns it
/// together with the number of bytes consumed. Netpbm rasters are
/// self-delimiting (the header declares exactly how long the raster is), so
/// several images can be concatenated into one buffer — the batch-ingest wire
/// format — and peeled off one at a time:
///
/// ```ignore
/// let mut rest = body;
/// while !rest.is_empty() {
///     let (image, used) = parse_netpbm_limited_prefix(rest, max_pixels)?;
///     rest = &rest[used..];
/// }
/// ```
///
/// Trailing whitespace after an ASCII raster is *not* consumed; the next
/// parse skips leading whitespace, so concatenation still composes. All
/// validation (overflow, pixel budget, raster length before allocation) is
/// identical to [`parse_netpbm_limited`].
pub fn parse_netpbm_limited_prefix(bytes: &[u8], max_pixels: usize) -> Result<(Image, usize)> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let magic = cursor.token()?;
    let (channels, binary) = match magic.as_str() {
        "P2" => (1usize, false),
        "P3" => (3, false),
        "P5" => (1, true),
        "P6" => (3, true),
        other => return Err(ImageError::Codec(format!("unsupported magic {other:?}"))),
    };
    let width: usize = cursor.token()?.parse().map_err(|_| bad("width"))?;
    let height: usize = cursor.token()?.parse().map_err(|_| bad("height"))?;
    let maxval: u32 = cursor.token()?.parse().map_err(|_| bad("maxval"))?;
    if width == 0 || height == 0 {
        return Err(ImageError::InvalidDimensions { width, height, buffer_len: None });
    }
    if maxval == 0 || maxval > 65535 {
        return Err(ImageError::Codec(format!("maxval {maxval} out of range")));
    }
    let too_large = ImageError::TooLarge { width, height, max_pixels };
    let pixels = width.checked_mul(height).ok_or_else(|| too_large.clone())?;
    if pixels > max_pixels {
        return Err(too_large);
    }
    let count = pixels.checked_mul(channels).ok_or(too_large)?;
    let scale = 1.0 / maxval as f32;
    let data: Vec<f32> = if binary {
        // One whitespace byte separates the header from raster data.
        cursor.pos += 1;
        let wide = maxval > 255;
        let bytes_per = if wide { 2 } else { 1 };
        // Validate the declared raster against the real input length before
        // allocating anything: a 20-byte file must not be able to request a
        // multi-gigabyte buffer.
        let raster_len = count.checked_mul(bytes_per).ok_or_else(|| bad("raster size"))?;
        let raster_end = cursor.pos.checked_add(raster_len).ok_or_else(|| bad("raster size"))?;
        if cursor.bytes.len() < raster_end {
            return Err(ImageError::Codec("truncated raster".into()));
        }
        let mut data = Vec::with_capacity(count);
        for i in 0..count {
            let v = if wide {
                let hi = cursor.bytes[cursor.pos + 2 * i] as u32;
                let lo = cursor.bytes[cursor.pos + 2 * i + 1] as u32;
                (hi << 8) | lo
            } else {
                cursor.bytes[cursor.pos + i] as u32
            };
            data.push(v as f32 * scale);
        }
        cursor.pos = raster_end;
        data
    } else {
        // ASCII samples are at least one digit plus a separator each, so
        // `count` samples need at least `2·count − 1` remaining bytes; check
        // before allocating for the same allocation-bomb reason as above.
        let remaining = cursor.bytes.len().saturating_sub(cursor.pos);
        if remaining < count.saturating_mul(2).saturating_sub(1) {
            return Err(ImageError::Codec("truncated raster".into()));
        }
        let mut data = Vec::with_capacity(count);
        for _ in 0..count {
            let v: u32 = cursor.token()?.parse().map_err(|_| bad("sample"))?;
            data.push(v.min(maxval) as f32 * scale);
        }
        data
    };
    // De-interleave into channels.
    let mut planes = vec![Vec::with_capacity(width * height); channels];
    for (i, v) in data.into_iter().enumerate() {
        planes[i % channels].push(v);
    }
    let chans = planes
        .into_iter()
        .map(|p| Channel::from_vec(width, height, p))
        .collect::<Result<Vec<_>>>()?;
    let space = if channels == 1 { ColorSpace::Gray } else { ColorSpace::Rgb };
    Image::from_channels(chans, space).map(|image| (image, cursor.pos))
}

#[inline]
fn quantize(v: f32) -> u8 {
    (v.clamp(0.0, 1.0) * 255.0).round() as u8
}

fn bad(what: &str) -> ImageError {
    ImageError::Codec(format!("malformed {what}"))
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    /// Next whitespace-delimited token, skipping `#` comments.
    fn token(&mut self) -> Result<String> {
        loop {
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.bytes.len() && self.bytes[self.pos] == b'#' {
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
        let start = self.pos;
        while self.pos < self.bytes.len() && !self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(ImageError::Codec("unexpected end of header".into()));
        }
        String::from_utf8(self.bytes[start..self.pos].to_vec())
            .map_err(|_| ImageError::Codec("non-UTF8 header token".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image() -> Image {
        Image::from_fn(5, 4, ColorSpace::Rgb, |x, y, c| {
            ((x * 13 + y * 7 + c * 29) % 32) as f32 / 31.0
        })
        .unwrap()
    }

    #[test]
    fn p6_round_trip_within_quantization() {
        let img = test_image();
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).unwrap();
        let back = parse_netpbm(&buf).unwrap();
        assert_eq!(back.width(), 5);
        assert_eq!(back.height(), 4);
        assert_eq!(back.space(), ColorSpace::Rgb);
        for c in 0..3 {
            for (a, b) in back.channel(c).as_slice().iter().zip(img.channel(c).as_slice()) {
                assert!((a - b).abs() <= 1.0 / 255.0 + 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn p5_round_trip_of_gray() {
        let img = test_image();
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = parse_netpbm(&buf).unwrap();
        assert_eq!(back.space(), ColorSpace::Gray);
        let gray = img.to_space(ColorSpace::Gray).unwrap();
        for (a, b) in back.channel(0).as_slice().iter().zip(gray.channel(0).as_slice()) {
            assert!((a - b).abs() <= 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn parses_ascii_p3_with_comments() {
        let text = b"P3\n# a comment\n2 1\n# another\n255\n255 0 0  0 255 0\n";
        let img = parse_netpbm(text).unwrap();
        assert_eq!(img.pixel(0, 0), vec![1.0, 0.0, 0.0]);
        assert_eq!(img.pixel(1, 0), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn parses_ascii_p2() {
        let text = b"P2\n3 1\n10\n0 5 10\n";
        let img = parse_netpbm(text).unwrap();
        assert_eq!(img.space(), ColorSpace::Gray);
        assert!((img.channel(0).get(1, 0) - 0.5).abs() < 1e-6);
        assert_eq!(img.channel(0).get(2, 0), 1.0);
    }

    #[test]
    fn sixteen_bit_p5() {
        // 2x1, maxval 65535, big-endian samples 0 and 65535.
        let mut bytes = b"P5\n2 1\n65535\n".to_vec();
        bytes.extend_from_slice(&[0, 0, 0xFF, 0xFF]);
        let img = parse_netpbm(&bytes).unwrap();
        assert_eq!(img.channel(0).get(0, 0), 0.0);
        assert_eq!(img.channel(0).get(1, 0), 1.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_netpbm(b"PX\n1 1\n255\n0").is_err());
        assert!(parse_netpbm(b"P6\n0 4\n255\n").is_err());
        assert!(parse_netpbm(b"P6\n2 2\n255\nxx").is_err()); // truncated raster
        assert!(parse_netpbm(b"P3\n1 1\n255\n12 bogus 3").is_err());
        assert!(parse_netpbm(b"").is_err());
    }

    #[test]
    fn rejects_hostile_headers_before_allocation() {
        // width × height overflows usize: must be rejected, not wrapped.
        let huge = format!("P5\n{} {}\n255\n", usize::MAX, 2);
        assert!(matches!(
            parse_netpbm(huge.as_bytes()),
            Err(ImageError::TooLarge { .. })
        ));
        // width × height × channels overflows even when pixels does not.
        let huge = format!("P6\n{} {}\n255\n", usize::MAX / 2, 2);
        assert!(matches!(
            parse_netpbm(huge.as_bytes()),
            Err(ImageError::TooLarge { .. })
        ));
        // Non-overflowing but absurd size with a tiny raster: the length
        // check fires before any allocation.
        assert!(parse_netpbm(b"P6\n1000000 1000000\n255\nxx").is_err());
        assert!(parse_netpbm(b"P2\n1000000 1000000\n255\n0 1 2").is_err());
        // Pixel budget enforced on otherwise valid declarations.
        let img = test_image();
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).unwrap();
        assert!(parse_netpbm_limited(&buf, 5 * 4).is_ok());
        assert!(matches!(
            parse_netpbm_limited(&buf, 5 * 4 - 1),
            Err(ImageError::TooLarge { max_pixels: 19, .. })
        ));
    }

    #[test]
    fn prefix_parse_peels_concatenated_images() {
        // Binary P6 + ASCII P2 + binary P5 back to back in one buffer.
        let mut buf = Vec::new();
        write_ppm(&test_image(), &mut buf).unwrap();
        let first_len = buf.len();
        buf.extend_from_slice(b"P2\n3 1\n10\n0 5 10\n");
        write_pgm(&test_image(), &mut buf).unwrap();

        let (a, used_a) = parse_netpbm_limited_prefix(&buf, usize::MAX).unwrap();
        assert_eq!(used_a, first_len);
        assert_eq!((a.width(), a.height()), (5, 4));

        let rest = &buf[used_a..];
        let (b, used_b) = parse_netpbm_limited_prefix(rest, usize::MAX).unwrap();
        assert_eq!((b.width(), b.height()), (3, 1));
        assert_eq!(b.space(), ColorSpace::Gray);

        let rest = &rest[used_b..];
        let (c, used_c) = parse_netpbm_limited_prefix(rest, usize::MAX).unwrap();
        assert_eq!((c.width(), c.height()), (5, 4));
        // Only inter-image whitespace may remain.
        assert!(rest[used_c..].iter().all(|b| b.is_ascii_whitespace()));

        // The pixel budget applies per image, not to the whole buffer.
        assert!(parse_netpbm_limited_prefix(&buf, 2).is_err());
    }

    #[test]
    fn rejects_bad_maxval() {
        assert!(parse_netpbm(b"P5\n1 1\n0\n\x00").is_err());
        assert!(parse_netpbm(b"P5\n1 1\n65536\n\x00\x00").is_err());
        assert!(parse_netpbm(b"P5\n1 1\n-1\n\x00").is_err());
    }

    #[test]
    fn writer_clamps_out_of_range_values() {
        let img = Image::from_fn(2, 1, ColorSpace::Rgb, |x, _, _| if x == 0 { -3.0 } else { 7.0 }).unwrap();
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).unwrap();
        let back = parse_netpbm(&buf).unwrap();
        assert_eq!(back.pixel(0, 0), vec![0.0, 0.0, 0.0]);
        assert_eq!(back.pixel(1, 0), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn save_and_load_from_disk() {
        let dir = std::env::temp_dir().join("walrus_ppm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.ppm");
        let img = test_image();
        save_ppm(&img, &path).unwrap();
        let back = load_netpbm(&path).unwrap();
        assert_eq!(back.width(), img.width());
        assert_eq!(back.height(), img.height());
        std::fs::remove_file(&path).ok();
    }
}
