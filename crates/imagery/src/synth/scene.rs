//! Scene composition: textured shapes over a textured background.
//!
//! A [`Scene`] is the unit the dataset generator manipulates. Its objects can
//! be translated, scaled and color-shifted *individually*, which is exactly
//! the family of intra-image transformations the WALRUS similarity model is
//! designed to tolerate (paper §1.1, Figure 1).

use crate::color::ColorSpace;
use crate::image::Image;
use crate::synth::shapes::Shape;
use crate::synth::texture::{Rgb, Texture};
use crate::Result;

/// One textured shape placed in an image.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneObject {
    /// The shape, in local coordinates `[-1, 1]²`.
    pub shape: Shape,
    /// Fill for the shape's interior.
    pub texture: Texture,
    /// Centre position as a fraction of image width/height (`0.5, 0.5` is
    /// the image centre). Fractions may fall outside `[0,1]` for partially
    /// visible objects.
    pub center: (f32, f32),
    /// Scale: local unit `1.0` maps to `scale * min(width, height) / 2`
    /// pixels, so `scale = 1.0` makes the shape span roughly the image.
    pub scale: f32,
    /// Whether the object's texture is anchored to the object (`true`, so it
    /// travels with translation) or to the image (`false`).
    pub local_texture: bool,
}

impl SceneObject {
    /// Convenience constructor with object-anchored texture.
    pub fn new(shape: Shape, texture: Texture, center: (f32, f32), scale: f32) -> Self {
        Self { shape, texture, center, scale, local_texture: true }
    }

    /// Returns a copy translated by `(dx, dy)` in image fractions.
    pub fn translated(&self, dx: f32, dy: f32) -> Self {
        let mut o = self.clone();
        o.center = (o.center.0 + dx, o.center.1 + dy);
        o
    }

    /// Returns a copy scaled by `factor` about its own centre.
    pub fn scaled(&self, factor: f32) -> Self {
        let mut o = self.clone();
        o.scale *= factor;
        o
    }

    /// Returns a copy with the texture color-shifted by `(dr, dg, db)`.
    pub fn color_shifted(&self, dr: f32, dg: f32, db: f32) -> Self {
        let mut o = self.clone();
        o.texture = o.texture.color_shifted(dr, dg, db);
        o
    }
}

/// A background plus an ordered list of objects (later objects composite on
/// top of earlier ones).
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    /// Background fill evaluated over the whole image.
    pub background: Texture,
    /// Foreground objects, painter's order.
    pub objects: Vec<SceneObject>,
}

impl Scene {
    /// Creates a scene with the given background and no objects.
    pub fn new(background: Texture) -> Self {
        Self { background, objects: Vec::new() }
    }

    /// Adds an object on top of the current stack (builder style).
    pub fn with(mut self, object: SceneObject) -> Self {
        self.objects.push(object);
        self
    }

    /// Renders the scene to a `width × height` RGB image.
    pub fn render(&self, width: usize, height: usize) -> Result<Image> {
        let mut img = Image::zeros(width, height, ColorSpace::Rgb)?;
        let (fw, fh) = (width as f32, height as f32);
        // Paint the background.
        for y in 0..height {
            for x in 0..width {
                let c = self.background.eval(x as f32, y as f32, fw, fh);
                img.set_pixel(x, y, &[c.0, c.1, c.2]);
            }
        }
        // Composite each object with per-pixel coverage alpha.
        for obj in &self.objects {
            let px_scale = obj.scale * fw.min(fh) / 2.0;
            if px_scale <= 0.0 {
                continue;
            }
            let cx = obj.center.0 * fw;
            let cy = obj.center.1 * fh;
            let ext = obj.shape.bounding_half_extent() * px_scale + 2.0;
            let x0 = ((cx - ext).floor().max(0.0)) as usize;
            let y0 = ((cy - ext).floor().max(0.0)) as usize;
            let x1 = ((cx + ext).ceil().min(fw - 1.0)).max(0.0) as usize;
            let y1 = ((cy + ext).ceil().min(fh - 1.0)).max(0.0) as usize;
            if x0 > x1 || y0 > y1 {
                continue;
            }
            let feather = 1.0 / px_scale; // ~1 pixel soft edge in local units
            for y in y0..=y1 {
                for x in x0..=x1 {
                    let lx = (x as f32 + 0.5 - cx) / px_scale;
                    let ly = (y as f32 + 0.5 - cy) / px_scale;
                    let alpha = obj.shape.coverage(lx, ly, feather);
                    if alpha <= 0.0 {
                        continue;
                    }
                    let c = if obj.local_texture {
                        // Texture coordinates anchored to the object so the
                        // pattern travels with it under translation/scale.
                        let ox = (lx + 1.0) * px_scale;
                        let oy = (ly + 1.0) * px_scale;
                        obj.texture.eval(ox, oy, 2.0 * px_scale, 2.0 * px_scale)
                    } else {
                        obj.texture.eval(x as f32, y as f32, fw, fh)
                    };
                    let under = img.pixel(x, y);
                    let blended = Rgb(under[0], under[1], under[2]).lerp(c, alpha);
                    img.set_pixel(x, y, &[blended.0, blended.1, blended.2]);
                }
            }
        }
        Ok(img)
    }

    /// Fraction of the image covered by object `idx` (hard-edged estimate on
    /// an integer grid) — used by tests and by ground-truth bookkeeping.
    pub fn object_coverage(&self, idx: usize, width: usize, height: usize) -> f32 {
        let obj = &self.objects[idx];
        let (fw, fh) = (width as f32, height as f32);
        let px_scale = obj.scale * fw.min(fh) / 2.0;
        if px_scale <= 0.0 {
            return 0.0;
        }
        let cx = obj.center.0 * fw;
        let cy = obj.center.1 * fh;
        let mut covered = 0usize;
        for y in 0..height {
            for x in 0..width {
                let lx = (x as f32 + 0.5 - cx) / px_scale;
                let ly = (y as f32 + 0.5 - cy) / px_scale;
                if obj.shape.inside_depth(lx, ly) >= 0.0 {
                    covered += 1;
                }
            }
        }
        covered as f32 / (width * height) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RED: Rgb = Rgb(0.9, 0.1, 0.1);
    const GREEN: Rgb = Rgb(0.1, 0.6, 0.15);

    fn flower_scene() -> Scene {
        Scene::new(Texture::Noise { a: GREEN, b: Rgb(0.05, 0.4, 0.1), scale: 6, seed: 3 }).with(
            SceneObject::new(
                Shape::Flower { petals: 6, core_radius: 0.25, petal_len: 0.9, petal_width: 0.2 },
                Texture::Solid(RED),
                (0.5, 0.5),
                0.5,
            ),
        )
    }

    #[test]
    fn render_has_requested_dimensions() {
        let img = flower_scene().render(64, 48).unwrap();
        assert_eq!(img.width(), 64);
        assert_eq!(img.height(), 48);
        assert_eq!(img.space(), ColorSpace::Rgb);
    }

    #[test]
    fn object_paints_over_background() {
        let img = flower_scene().render(64, 64).unwrap();
        // Image centre is inside the flower core: red dominates.
        let p = img.pixel(32, 32);
        assert!(p[0] > 0.7 && p[1] < 0.3, "centre should be red, got {p:?}");
        // Far corner is background: green dominates.
        let q = img.pixel(2, 2);
        assert!(q[1] > q[0], "corner should be green, got {q:?}");
    }

    #[test]
    fn translation_moves_the_object() {
        let base = flower_scene();
        let mut moved = base.clone();
        moved.objects[0] = moved.objects[0].translated(0.25, 0.0);
        let a = base.render(64, 64).unwrap();
        let b = moved.render(64, 64).unwrap();
        // Original centre is red in `a` but background in `b`.
        assert!(a.pixel(32, 32)[0] > 0.7);
        assert!(b.pixel(32, 32)[0] < 0.5);
        // New centre (x + 16px) is red in `b`.
        assert!(b.pixel(48, 32)[0] > 0.7);
    }

    #[test]
    fn scaling_changes_coverage_quadratically() {
        let base = flower_scene();
        let mut big = base.clone();
        big.objects[0] = big.objects[0].scaled(1.6);
        let c1 = base.object_coverage(0, 64, 64);
        let c2 = big.object_coverage(0, 64, 64);
        assert!(c1 > 0.02, "flower should cover some area, got {c1}");
        let ratio = c2 / c1;
        assert!((1.8..3.5).contains(&ratio), "expected ≈2.56x coverage, got {ratio}");
    }

    #[test]
    fn color_shift_changes_object_pixels_only() {
        let base = flower_scene();
        let mut shifted = base.clone();
        shifted.objects[0] = shifted.objects[0].color_shifted(-0.4, 0.3, 0.0);
        let a = base.render(64, 64).unwrap();
        let b = shifted.render(64, 64).unwrap();
        // Background pixel unchanged.
        assert_eq!(a.pixel(2, 2), b.pixel(2, 2));
        // Flower pixel changed.
        assert_ne!(a.pixel(32, 32), b.pixel(32, 32));
    }

    #[test]
    fn painter_order_composites_later_on_top() {
        let scene = Scene::new(Texture::Solid(Rgb(0.0, 0.0, 0.0)))
            .with(SceneObject::new(
                Shape::Rect { hx: 0.9, hy: 0.9 },
                Texture::Solid(Rgb(1.0, 0.0, 0.0)),
                (0.5, 0.5),
                0.8,
            ))
            .with(SceneObject::new(
                Shape::Rect { hx: 0.5, hy: 0.5 },
                Texture::Solid(Rgb(0.0, 0.0, 1.0)),
                (0.5, 0.5),
                0.8,
            ));
        let img = scene.render(32, 32).unwrap();
        let centre = img.pixel(16, 16);
        assert!(centre[2] > 0.9 && centre[0] < 0.1, "blue rect should win at centre");
    }

    #[test]
    fn offscreen_object_renders_nothing() {
        let scene = Scene::new(Texture::Solid(Rgb(0.2, 0.2, 0.2))).with(SceneObject::new(
            Shape::Ellipse { rx: 0.5, ry: 0.5 },
            Texture::Solid(Rgb(1.0, 1.0, 1.0)),
            (5.0, 5.0), // far outside
            0.3,
        ));
        let img = scene.render(16, 16).unwrap();
        for y in 0..16 {
            for x in 0..16 {
                assert!((img.pixel(x, y)[0] - 0.2).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn local_texture_travels_with_translation() {
        let obj = SceneObject::new(
            Shape::Rect { hx: 1.0, hy: 1.0 },
            Texture::Checker { a: Rgb(1.0, 1.0, 1.0), b: Rgb(0.0, 0.0, 0.0), cell: 4 },
            (0.25, 0.5),
            0.4,
        );
        let s1 = Scene::new(Texture::Solid(Rgb(0.5, 0.5, 0.5))).with(obj.clone());
        // Translate by exactly 16px on a 64px image: 0.25 fraction.
        let s2 = Scene::new(Texture::Solid(Rgb(0.5, 0.5, 0.5))).with(obj.translated(0.25, 0.0));
        let a = s1.render(64, 64).unwrap();
        let b = s2.render(64, 64).unwrap();
        // Pattern at the object's centre should be identical after the move.
        assert_eq!(a.pixel(16, 32), b.pixel(32, 32));
    }

    #[test]
    fn zero_scale_object_is_skipped() {
        let scene = Scene::new(Texture::Solid(Rgb(0.3, 0.3, 0.3))).with(SceneObject::new(
            Shape::Ellipse { rx: 0.5, ry: 0.5 },
            Texture::Solid(Rgb(1.0, 0.0, 0.0)),
            (0.5, 0.5),
            0.0,
        ));
        let img = scene.render(8, 8).unwrap();
        assert!((img.pixel(4, 4)[0] - 0.3).abs() < 1e-6);
    }
}
