//! Database persistence: serialize an [`crate::ImageDatabase`] to a compact
//! binary image and load it back.
//!
//! The paper's deployment stores regions in a *disk-based* R\*-tree (GiST)
//! so the index survives restarts and scales past memory. This module
//! provides the equivalent capability for the in-memory engine: the full
//! database — parameters, image metadata, every region's signature, bbox
//! and bitmap — round-trips through a versioned, endian-stable byte format.
//! The R\*-tree itself is rebuilt on load (bulk re-insertion), which keeps
//! the format independent of index implementation details.
//!
//! Format (little-endian throughout):
//!
//! ```text
//! magic "WALRUSDB" | u32 version | params block | u64 image_count
//! per image: u64 id | name (u32 len + bytes) | u64 w | u64 h | u64 live(0/1)
//!            u64 region_count | regions…
//! per region: u64 window_count | dims (u32) | centroid f32s | bbox_min | bbox_max
//!             bitmap: u64 w,h,gw,gh | u64 word_count | u64 words…
//! ```

use crate::bitmap::RegionBitmap;
use crate::database::ImageDatabase;
use crate::params::{MatchingKind, SignatureKind, SimilarityKind, WalrusParams};
use crate::region::Region;
use crate::{Result, WalrusError};
use walrus_imagery::ColorSpace;
use walrus_wavelet::SlidingParams;

const MAGIC: &[u8; 8] = b"WALRUSDB";
const VERSION: u32 = 1;

/// Serializes the database to bytes.
pub fn save(db: &ImageDatabase) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    write_params(&mut out, db.params());
    let slots = db.image_slots();
    put_u64(&mut out, slots.len() as u64);
    for (id, slot) in slots.iter().enumerate() {
        put_u64(&mut out, id as u64);
        match slot {
            Some(img) => {
                put_str(&mut out, &img.name);
                put_u64(&mut out, img.width as u64);
                put_u64(&mut out, img.height as u64);
                put_u64(&mut out, 1);
                put_u64(&mut out, img.regions.len() as u64);
                for r in &img.regions {
                    write_region(&mut out, r);
                }
            }
            None => {
                put_str(&mut out, "");
                put_u64(&mut out, 0);
                put_u64(&mut out, 0);
                put_u64(&mut out, 0);
                put_u64(&mut out, 0);
            }
        }
    }
    out
}

/// Writes the database to a file.
pub fn save_to_file(db: &ImageDatabase, path: impl AsRef<std::path::Path>) -> Result<()> {
    std::fs::write(path, save(db)).map_err(|e| WalrusError::BadParams(format!("io error: {e}")))
}

/// Deserializes a database from bytes, rebuilding the spatial index.
pub fn load(bytes: &[u8]) -> Result<ImageDatabase> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(8)?;
    if magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let params = read_params(&mut r)?;
    let mut db = ImageDatabase::new(params)?;
    let image_count = r.u64()? as usize;
    if image_count > 100_000_000 {
        return Err(corrupt("implausible image count"));
    }
    for expected_id in 0..image_count {
        let id = r.u64()? as usize;
        if id != expected_id {
            return Err(corrupt("image ids out of order"));
        }
        let name = r.string()?;
        let width = r.u64()? as usize;
        let height = r.u64()? as usize;
        let live = r.u64()?;
        let region_count = r.u64()? as usize;
        if region_count > 10_000_000 {
            return Err(corrupt("implausible region count"));
        }
        if live == 1 {
            let mut regions = Vec::with_capacity(region_count);
            for _ in 0..region_count {
                regions.push(read_region(&mut r)?);
            }
            let got = db.insert_regions(&name, width, height, regions)?;
            debug_assert_eq!(got, id);
        } else {
            db.insert_tombstone();
        }
    }
    if r.pos != bytes.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(db)
}

/// Reads a database from a file.
pub fn load_from_file(path: impl AsRef<std::path::Path>) -> Result<ImageDatabase> {
    let bytes =
        std::fs::read(path).map_err(|e| WalrusError::BadParams(format!("io error: {e}")))?;
    load(&bytes)
}

fn corrupt(what: &str) -> WalrusError {
    WalrusError::BadParams(format!("corrupt database image: {what}"))
}

// --- primitive encoders -------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_f32(out, v);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(corrupt("truncated"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        if len > 1 << 20 {
            return Err(corrupt("implausible string length"));
        }
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| corrupt("non-UTF8 string"))
    }

    fn f32s(&mut self) -> Result<Vec<f32>> {
        let len = self.u32()? as usize;
        if len > 1 << 24 {
            return Err(corrupt("implausible vector length"));
        }
        (0..len).map(|_| self.f32()).collect()
    }
}

// --- params -------------------------------------------------------------

fn write_params(out: &mut Vec<u8>, p: &WalrusParams) {
    put_u64(out, p.sliding.s as u64);
    put_u64(out, p.sliding.omega_min as u64);
    put_u64(out, p.sliding.omega_max as u64);
    put_u64(out, p.sliding.stride as u64);
    put_u32(out, color_space_tag(p.color_space));
    put_f64(out, p.cluster_epsilon);
    put_f32(out, p.query_epsilon);
    put_f64(out, p.tau);
    put_u32(out, match p.signature_kind {
        SignatureKind::Centroid => 0,
        SignatureKind::BoundingBox => 1,
    });
    put_u32(out, match p.matching {
        MatchingKind::Quick => 0,
        MatchingKind::Greedy => 1,
        MatchingKind::Exact => 2,
    });
    put_u32(out, match p.similarity {
        SimilarityKind::Symmetric => 0,
        SimilarityKind::QueryFraction => 1,
        SimilarityKind::MinImage => 2,
    });
    put_u64(out, p.bitmap_grid as u64);
    put_u64(out, p.max_regions_per_image.map(|m| m as u64 + 1).unwrap_or(0));
    put_u64(out, p.exact_pair_limit as u64);
}

fn read_params(r: &mut Reader<'_>) -> Result<WalrusParams> {
    let sliding = SlidingParams {
        s: r.u64()? as usize,
        omega_min: r.u64()? as usize,
        omega_max: r.u64()? as usize,
        stride: r.u64()? as usize,
    };
    let color_space = color_space_from_tag(r.u32()?)?;
    let cluster_epsilon = r.f64()?;
    let query_epsilon = r.f32()?;
    let tau = r.f64()?;
    let signature_kind = match r.u32()? {
        0 => SignatureKind::Centroid,
        1 => SignatureKind::BoundingBox,
        other => return Err(corrupt(&format!("bad signature kind {other}"))),
    };
    let matching = match r.u32()? {
        0 => MatchingKind::Quick,
        1 => MatchingKind::Greedy,
        2 => MatchingKind::Exact,
        other => return Err(corrupt(&format!("bad matching kind {other}"))),
    };
    let similarity = match r.u32()? {
        0 => SimilarityKind::Symmetric,
        1 => SimilarityKind::QueryFraction,
        2 => SimilarityKind::MinImage,
        other => return Err(corrupt(&format!("bad similarity kind {other}"))),
    };
    let bitmap_grid = r.u64()? as usize;
    let max_regions = match r.u64()? {
        0 => None,
        v => Some((v - 1) as usize),
    };
    let exact_pair_limit = r.u64()? as usize;
    Ok(WalrusParams {
        sliding,
        color_space,
        cluster_epsilon,
        query_epsilon,
        tau,
        signature_kind,
        matching,
        similarity,
        bitmap_grid,
        max_regions_per_image: max_regions,
        exact_pair_limit,
    })
}

fn color_space_tag(c: ColorSpace) -> u32 {
    match c {
        ColorSpace::Rgb => 0,
        ColorSpace::Ycc => 1,
        ColorSpace::Yiq => 2,
        ColorSpace::Hsv => 3,
        ColorSpace::Gray => 4,
    }
}

fn color_space_from_tag(tag: u32) -> Result<ColorSpace> {
    Ok(match tag {
        0 => ColorSpace::Rgb,
        1 => ColorSpace::Ycc,
        2 => ColorSpace::Yiq,
        3 => ColorSpace::Hsv,
        4 => ColorSpace::Gray,
        other => return Err(corrupt(&format!("bad color space {other}"))),
    })
}

// --- regions ------------------------------------------------------------

fn write_region(out: &mut Vec<u8>, r: &Region) {
    put_u64(out, r.window_count as u64);
    put_f32s(out, &r.centroid);
    put_f32s(out, &r.bbox_min);
    put_f32s(out, &r.bbox_max);
    let bm = &r.bitmap;
    put_u64(out, bm.width() as u64);
    put_u64(out, bm.height() as u64);
    put_u64(out, bm.grid_width() as u64);
    put_u64(out, bm.grid_height() as u64);
    let words = bm.words();
    put_u64(out, words.len() as u64);
    for &w in words {
        put_u64(out, w);
    }
}

fn read_region(r: &mut Reader<'_>) -> Result<Region> {
    let window_count = r.u64()? as usize;
    let centroid = r.f32s()?;
    let bbox_min = r.f32s()?;
    let bbox_max = r.f32s()?;
    if centroid.len() != bbox_min.len() || centroid.len() != bbox_max.len() {
        return Err(corrupt("signature arity mismatch"));
    }
    let width = r.u64()? as usize;
    let height = r.u64()? as usize;
    let gw = r.u64()? as usize;
    let gh = r.u64()? as usize;
    let word_count = r.u64()? as usize;
    if word_count > 1 << 24 {
        return Err(corrupt("implausible bitmap size"));
    }
    let mut words = Vec::with_capacity(word_count);
    for _ in 0..word_count {
        words.push(r.u64()?);
    }
    let bitmap = RegionBitmap::from_words(width, height, gw, gh, words)
        .ok_or_else(|| corrupt("invalid bitmap geometry"))?;
    Ok(Region { centroid, bbox_min, bbox_max, bitmap, window_count })
}

#[cfg(test)]
mod tests {
    use super::*;
    use walrus_imagery::synth::scene::{Scene, SceneObject};
    use walrus_imagery::synth::shapes::Shape;
    use walrus_imagery::synth::texture::{Rgb, Texture};
    use walrus_imagery::Image;

    fn params() -> WalrusParams {
        WalrusParams {
            sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 16, stride: 4 },
            ..WalrusParams::paper_defaults()
        }
    }

    fn scene(hue: f32) -> Image {
        Scene::new(Texture::Solid(Rgb(hue, 0.4, 0.3)))
            .with(SceneObject::new(
                Shape::Ellipse { rx: 0.6, ry: 0.6 },
                Texture::Solid(Rgb(0.9, 0.2, 0.2)),
                (0.5, 0.5),
                0.4,
            ))
            .render(64, 48)
            .unwrap()
    }

    fn populated() -> ImageDatabase {
        let mut db = ImageDatabase::new(params()).unwrap();
        for i in 0..5 {
            db.insert_image(&format!("img{i}"), &scene(0.1 * i as f32)).unwrap();
        }
        db
    }

    #[test]
    fn round_trip_preserves_everything() {
        let db = populated();
        let bytes = save(&db);
        let restored = load(&bytes).unwrap();
        assert_eq!(restored.len(), db.len());
        assert_eq!(restored.num_regions(), db.num_regions());
        assert_eq!(restored.params(), db.params());
        for id in 0..5 {
            let (a, b) = (db.image(id).unwrap(), restored.image(id).unwrap());
            assert_eq!(a.name, b.name);
            assert_eq!((a.width, a.height), (b.width, b.height));
            assert_eq!(a.regions.len(), b.regions.len());
            for (ra, rb) in a.regions.iter().zip(&b.regions) {
                assert_eq!(ra.centroid, rb.centroid);
                assert_eq!(ra.bitmap, rb.bitmap);
                assert_eq!(ra.window_count, rb.window_count);
            }
        }
    }

    #[test]
    fn restored_database_answers_queries_identically() {
        let db = populated();
        let restored = load(&save(&db)).unwrap();
        let query = scene(0.15);
        let a = db.top_k(&query, 5).unwrap();
        let b = restored.top_k(&query, 5).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.image_id, y.image_id);
            assert!((x.similarity - y.similarity).abs() < 1e-12);
        }
    }

    #[test]
    fn tombstones_survive_round_trip() {
        let mut db = populated();
        db.remove_image(2).unwrap();
        let restored = load(&save(&db)).unwrap();
        assert_eq!(restored.len(), 4);
        assert!(restored.image(2).is_none());
        assert!(restored.image(3).is_some());
        // New insertions continue from the right id.
        let mut restored = restored;
        let new_id = restored.insert_image("new", &scene(0.9)).unwrap();
        assert_eq!(new_id, 5);
    }

    #[test]
    fn corrupt_inputs_rejected() {
        let db = populated();
        let good = save(&db);
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(load(&bad).is_err());
        // Bad version.
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(load(&bad).is_err());
        // Truncations at every prefix length must error, never panic.
        for cut in [0usize, 7, 11, 40, good.len() / 2, good.len() - 1] {
            assert!(load(&good[..cut]).is_err(), "cut at {cut} should fail");
        }
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(load(&bad).is_err());
    }

    #[test]
    fn file_round_trip() {
        let db = populated();
        let dir = std::env::temp_dir().join("walrus_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.walrus");
        save_to_file(&db, &path).unwrap();
        let restored = load_from_file(&path).unwrap();
        assert_eq!(restored.len(), db.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_database_round_trips() {
        let db = ImageDatabase::new(params()).unwrap();
        let restored = load(&save(&db)).unwrap();
        assert!(restored.is_empty());
        assert_eq!(restored.params(), db.params());
    }
}
