//! Per-request span trees.
//!
//! A [`TraceContext`] is a cheap clonable handle carried alongside a
//! request's cancellation guard. Pipeline stages open [`Span`]s on it —
//! strictly from the orchestrating thread, never from parallel workers, so
//! the recorded tree is identical regardless of thread count — and attach
//! aggregate counters (windows computed, CF-tree splits, nodes visited, …).
//! The finished tree is snapshotted into a [`TraceReport`] for rendering,
//! histogram folding, and golden-file comparison.

use std::sync::{Arc, Mutex};

use crate::clock::{monotonic, SharedClock};

/// One recorded span: a named stage with start/end times, a nesting depth,
/// and accumulated counters in first-touch order.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub name: &'static str,
    pub depth: usize,
    pub start_nanos: u64,
    /// `None` while the span is still open.
    pub end_nanos: Option<u64>,
    pub counters: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    /// Span duration in microseconds; open spans are measured to `now`.
    fn duration_micros(&self, now: u64) -> u64 {
        let end = self.end_nanos.unwrap_or(now);
        end.saturating_sub(self.start_nanos) / 1_000
    }
}

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanRecord>,
    /// Indices of currently-open spans, innermost last.
    stack: Vec<usize>,
}

#[derive(Debug)]
struct Inner {
    clock: SharedClock,
    state: Mutex<State>,
}

/// Handle to a per-request trace. Clones share the same span tree.
#[derive(Debug, Clone)]
pub struct TraceContext {
    inner: Arc<Inner>,
}

impl TraceContext {
    /// A trace timed by `clock` (use a `TestClock` for zeroed durations).
    pub fn new(clock: SharedClock) -> Self {
        TraceContext {
            inner: Arc::new(Inner { clock, state: Mutex::new(State::default()) }),
        }
    }

    /// A trace timed by the process monotonic clock.
    pub fn monotonic() -> Self {
        TraceContext::new(monotonic())
    }

    pub fn clock(&self) -> SharedClock {
        Arc::clone(&self.inner.clock)
    }

    /// Open a span nested under the innermost open span. Ends when the
    /// returned handle drops.
    pub fn span(&self, name: &'static str) -> Span {
        let start = self.inner.clock.now_nanos();
        let mut st = self.inner.state.lock().unwrap();
        let idx = st.spans.len();
        let depth = st.stack.len();
        st.spans.push(SpanRecord {
            name,
            depth,
            start_nanos: start,
            end_nanos: None,
            counters: Vec::new(),
        });
        st.stack.push(idx);
        Span { ctx: self.clone(), idx }
    }

    fn add_counter(&self, idx: usize, counter: &'static str, amount: u64) {
        let mut st = self.inner.state.lock().unwrap();
        let span = &mut st.spans[idx];
        match span.counters.iter_mut().find(|(name, _)| *name == counter) {
            Some((_, v)) => *v += amount,
            None => span.counters.push((counter, amount)),
        }
    }

    fn end_span(&self, idx: usize) {
        let now = self.inner.clock.now_nanos();
        let mut st = self.inner.state.lock().unwrap();
        if st.spans[idx].end_nanos.is_none() {
            st.spans[idx].end_nanos = Some(now);
        }
        st.stack.retain(|&open| open != idx);
    }

    /// Snapshot the tree recorded so far. Still-open spans are reported
    /// with their duration measured to now.
    pub fn report(&self) -> TraceReport {
        let now = self.inner.clock.now_nanos();
        let st = self.inner.state.lock().unwrap();
        TraceReport { spans: st.spans.clone(), now_nanos: now }
    }

    /// Append finished span records from another trace, nested under the
    /// innermost span currently open here.
    ///
    /// This is how parallel fan-out keeps the only-the-orchestrating-thread
    /// rule: each worker records into a *private* trace (sharing this
    /// trace's clock, so timestamps are comparable), and the orchestrator
    /// grafts the workers' trees in a deterministic order once the fan-out
    /// completes. Records are appended as-is with their depths shifted, so
    /// the resulting tree renders exactly as if the orchestrator had
    /// recorded the spans itself. Still-open donor spans are closed at
    /// their start time (a donor should be finished before grafting).
    pub fn graft(&self, records: &[SpanRecord]) {
        let mut st = self.inner.state.lock().unwrap();
        let base = st.stack.len();
        for rec in records {
            let mut rec = rec.clone();
            rec.depth += base;
            if rec.end_nanos.is_none() {
                rec.end_nanos = Some(rec.start_nanos);
            }
            st.spans.push(rec);
        }
    }
}

/// RAII handle for an open span. Counters may be added at any time before
/// drop; dropping records the end time.
#[derive(Debug)]
pub struct Span {
    ctx: TraceContext,
    idx: usize,
}

impl Span {
    /// Accumulate `amount` into the named counter.
    pub fn add(&self, counter: &'static str, amount: u64) {
        self.ctx.add_counter(self.idx, counter, amount);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.ctx.end_span(self.idx);
    }
}

/// An immutable snapshot of a span tree.
#[derive(Debug, Clone)]
pub struct TraceReport {
    pub spans: Vec<SpanRecord>,
    now_nanos: u64,
}

impl TraceReport {
    /// Duration of the first span named `name`, in microseconds.
    pub fn duration_micros(&self, name: &str) -> Option<u64> {
        self.spans
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.duration_micros(self.now_nanos))
    }

    /// Value of `counter` on the first span named `span`.
    pub fn counter(&self, span: &str, counter: &str) -> Option<u64> {
        self.spans
            .iter()
            .find(|s| s.name == span)
            .and_then(|s| s.counters.iter().find(|(n, _)| *n == counter).map(|(_, v)| *v))
    }

    /// Every `(stage name, duration µs)` pair, for histogram folding.
    pub fn stage_durations_micros(&self) -> Vec<(&'static str, u64)> {
        self.spans
            .iter()
            .map(|s| (s.name, s.duration_micros(self.now_nanos)))
            .collect()
    }

    /// Render the tree as indented text, one span per line:
    /// `name <µs>us counter=value ...`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            for _ in 0..span.depth {
                out.push_str("  ");
            }
            out.push_str(span.name);
            out.push_str(&format!(" {}us", span.duration_micros(self.now_nanos)));
            for (name, value) in &span.counters {
                out.push_str(&format!(" {name}={value}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;
    use std::time::Duration;

    #[test]
    fn spans_nest_and_render() {
        let clock = TestClock::new();
        let ctx = TraceContext::new(clock.clone());
        {
            let root = ctx.span("query");
            clock.advance(Duration::from_micros(10));
            {
                let child = ctx.span("decode");
                child.add("pixels", 256);
                child.add("pixels", 256);
                clock.advance(Duration::from_micros(5));
            }
            root.add("total", 1);
        }
        let report = ctx.report();
        assert_eq!(report.duration_micros("query"), Some(15));
        assert_eq!(report.duration_micros("decode"), Some(5));
        assert_eq!(report.counter("decode", "pixels"), Some(512));
        assert_eq!(report.render(), "query 15us total=1\n  decode 5us pixels=512\n");
    }

    #[test]
    fn grafted_records_nest_under_the_open_span() {
        let clock = TestClock::new();
        let main = TraceContext::new(clock.clone());
        let root = main.span("query");
        // A worker records into a private trace on the same clock.
        let worker = TraceContext::new(main.clock());
        {
            let probe = worker.span("shard_probe");
            probe.add("shard", 3);
            clock.advance(Duration::from_micros(4));
            let inner = worker.span("rstar_probe");
            inner.add("hits", 9);
        }
        main.graft(&worker.report().spans);
        drop(root);
        let report = main.report();
        assert_eq!(
            report.render(),
            "query 4us\n  shard_probe 4us shard=3\n    rstar_probe 0us hits=9\n"
        );
        assert_eq!(report.counter("shard_probe", "shard"), Some(3));
    }

    #[test]
    fn open_spans_measure_to_now() {
        let clock = TestClock::new();
        let ctx = TraceContext::new(clock.clone());
        let _open = ctx.span("stage");
        clock.advance(Duration::from_micros(7));
        assert_eq!(ctx.report().duration_micros("stage"), Some(7));
    }
}
