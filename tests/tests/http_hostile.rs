//! Hostile-input defense for the HTTP service layer, mirroring
//! `ppm_hostile.rs` one level up the stack: every case throws malformed or
//! abusive bytes at a *live* `walrus-server` over a real socket and asserts
//! the server answers 4xx (or closes cleanly), never panics, never leaks an
//! in-flight slot, and never mutates the store.
//!
//! Runs under `WALRUS_THREADS=1` and `=4` in CI — the config requests
//! `threads: 0` so the env-var policy applies.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use walrus_core::{DurableDatabase, SharedDurableDatabase, SlidingParams, WalrusParams};
use walrus_server::{Client, HttpLimits, Server, ServerConfig, ServerHandle};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("walrus_hostile_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_server(tag: &str) -> (ServerHandle, SocketAddr, PathBuf) {
    let dir = tmp_dir(tag);
    let params = WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 8, stride: 4 },
        ..WalrusParams::paper_defaults()
    };
    let (store, _) = DurableDatabase::open(&dir, params).unwrap();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 0, // resolve via WALRUS_THREADS so CI exercises 1 and 4
        queue_depth: 16,
        read_timeout: Duration::from_millis(600),
        idle_timeout: Duration::from_secs(3),
        drain_timeout: Duration::from_secs(5),
        limits: HttpLimits::default(),
        ..ServerConfig::default()
    };
    let handle = Server::start(config, SharedDurableDatabase::new(store)).unwrap();
    let addr = handle.addr();
    (handle, addr, dir)
}

/// Fires raw bytes at the server and returns the response status, or `None`
/// when the server closed without answering (a clean close). Write errors
/// (server hung up mid-send) also count as a clean close.
fn raw_status(addr: SocketAddr, payload: &[u8]) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let _ = stream.write_all(payload);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    parse_status(&out)
}

fn parse_status(response: &[u8]) -> Option<u16> {
    let text = String::from_utf8_lossy(response);
    let line = text.lines().next()?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The server survived: it still answers /healthz with an untouched store
/// and no leaked in-flight slot.
fn assert_still_healthy(handle: &ServerHandle, addr: SocketAddr) {
    let mut client = Client::connect(addr).expect("server must still accept");
    let resp = client.request("GET", "/healthz", &[]).expect("healthz must answer");
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("\"images\":0"), "store mutated: {}", resp.text());
    // The hostile connection's handler may still be unwinding on another
    // thread (especially on single-core machines); give the RAII decrement
    // a bounded moment before calling the slot leaked.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let in_flight = handle.state().metrics.in_flight.load(Ordering::Relaxed);
        if in_flight == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "leaked in-flight slot: {in_flight}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn oversized_request_line_is_bounded() {
    let (handle, addr, dir) = start_server("reqline");
    // 1 MiB request line: must die at the head cap (431) or the line cap
    // (414) — long before a megabyte is buffered per the limits.
    let mut payload = b"GET /".to_vec();
    payload.extend_from_slice(&vec![b'a'; 1 << 20]);
    payload.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    let status = raw_status(addr, &payload);
    assert!(
        matches!(status, Some(431) | Some(414) | None),
        "expected 431/414/close, got {status:?}"
    );
    assert_still_healthy(&handle, addr);
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn header_bomb_is_bounded() {
    let (handle, addr, dir) = start_server("headers");
    let mut payload = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..10_000 {
        payload.extend_from_slice(format!("x-bomb-{i}: {i}\r\n").as_bytes());
    }
    payload.extend_from_slice(b"\r\n");
    let status = raw_status(addr, &payload);
    assert!(
        matches!(status, Some(431) | None),
        "expected 431/close, got {status:?}"
    );
    assert_still_healthy(&handle, addr);
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_body_is_a_400_not_a_hang() {
    let (handle, addr, dir) = start_server("truncated");
    let started = Instant::now();
    let status = raw_status(addr, b"POST /ingest HTTP/1.1\r\nContent-Length: 100\r\n\r\nP6 oops");
    assert_eq!(status, Some(400), "truncated body must answer 400");
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "server sat on a truncated body for {:?}",
        started.elapsed()
    );
    assert_still_healthy(&handle, addr);
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slowloris_dribble_times_out() {
    let (handle, addr, dir) = start_server("slowloris");
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let started = Instant::now();
    // One byte per 150 ms never completes a request; the 600 ms read budget
    // runs from the first byte, so the server must cut us off quickly even
    // though data keeps arriving.
    for b in b"GET /healthz HTTP/1.1\r\nHost: walrus\r\n\r\n" {
        if stream.write_all(&[*b]).is_err() {
            break; // server already hung up — that's the point
        }
        std::thread::sleep(Duration::from_millis(150));
        if started.elapsed() > Duration::from_secs(8) {
            panic!("server tolerated the dribble for too long");
        }
    }
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    let status = parse_status(&out);
    assert!(
        matches!(status, Some(408) | None),
        "expected 408/close, got {status:?}"
    );
    assert!(started.elapsed() < Duration::from_secs(8));
    assert_still_healthy(&handle, addr);
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_garbage_is_4xx_or_clean_close() {
    let (handle, addr, dir) = start_server("garbage");
    let cases: &[(&[u8], &[u16])] = &[
        (b"\x00\x01\x02\x03\xff\xfe\r\n\r\n", &[400]),
        (b"GET / HTTP/2.0\r\n\r\n", &[505]),
        (b"POST /ingest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n", &[411]),
        (b"POST /ingest HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n", &[400]),
        (b"POST /ingest HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n", &[413]),
        (b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\nabcde", &[400]),
        (b"GET / HTTP/1.1 trailing-junk\r\n\r\n", &[400]),
        (b"get /healthz HTTP/1.1\r\n\r\n", &[400]), // lowercase method token
        (b"GET /healthz HTTP/1.1\r\nbroken header line\r\n\r\n", &[400]),
    ];
    for (payload, expected) in cases {
        let status = raw_status(addr, payload);
        let ok = match status {
            Some(code) => expected.contains(&code),
            None => true, // clean close is always acceptable
        };
        assert!(
            ok,
            "payload {:?}: expected one of {expected:?} or close, got {status:?}",
            String::from_utf8_lossy(&payload[..payload.len().min(40)])
        );
    }
    // A connect-then-quit probe (load balancer style) must be a non-event.
    drop(TcpStream::connect(addr).unwrap());
    assert_still_healthy(&handle, addr);
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hostile_bodies_never_mutate_the_store() {
    let (handle, addr, dir) = start_server("bodies");
    let mut client = Client::connect(addr).unwrap();
    // Well-framed HTTP around hostile PPM payloads: the decoder layer must
    // bounce each one and the store must stay empty.
    let bodies: &[&[u8]] = &[
        b"not a ppm at all",
        b"P6\n999999999 999999999\n255\n\x00\x00\x00",
        b"P6\n4 4\n255\n\x00",                  // truncated raster
        b"P9\n4 4\n255\n0123456789ab",          // bogus magic
        b"P6\n-4 4\n255\n0123456789ab",         // negative dims
    ];
    for body in bodies {
        let resp = client.request("POST", "/ingest", body).unwrap();
        assert!(
            (400..500).contains(&resp.status),
            "hostile body answered {}: {}",
            resp.status,
            resp.text()
        );
    }
    // Oversize-by-budget: a legitimate image that exceeds a tiny request
    // budget is 413, and still no mutation.
    let resp = client
        .request("POST", "/ingest?max_pixels=4", b"P2\n8 8\n255\n0 1 2 3 4 5 6 7 0 1 2 3 4 5 6 7 0 1 2 3 4 5 6 7 0 1 2 3 4 5 6 7 0 1 2 3 4 5 6 7 0 1 2 3 4 5 6 7 0 1 2 3 4 5 6 7 0 1 2 3 4 5 6 7\n")
        .unwrap();
    assert_eq!(resp.status, 413, "{}", resp.text());
    assert_still_healthy(&handle, addr);
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
