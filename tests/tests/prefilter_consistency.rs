//! Binary-signature prefilter: admissibility and bit-identity.
//!
//! The quantized 128-bit region signature is a *lossy* summary, so the only
//! thing that makes it safe is the lower-bound guarantee: a popcount
//! rejection must prove the exact test could not have matched. These tests
//! pin that guarantee from three sides:
//!
//! 1. property tests: a random region/query pair rejected by the code can
//!    never pass the exact centroid (L2) or bbox (rect) test;
//! 2. seeded sweeps: rankings are bit-identical with the prefilter on and
//!    off, across thread counts and shard counts;
//! 3. persistence: a version-2 snapshot (no signature lanes) reopens with
//!    signatures rebuilt from bounds and answers queries identically.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;
use walrus_core::bitmap::RegionBitmap;
use walrus_core::recovery::{DurableDatabase, SNAPSHOT_FILE};
use walrus_core::storage::FaultIo;
use walrus_core::{
    persist, Guard, ImageDatabase, QueryOutcome, Region, ShardedStore, StorageIo, TestClock,
    TraceContext, WalrusParams,
};
use walrus_imagery::{ColorSpace, Image};
use walrus_wavelet::sliding::l2_distance;
use walrus_wavelet::{QueryCode, SlidingParams};

/// Slack the engine adds to the quantization interval on top of `ε` (must
/// cover f32 rounding and the BIRCH centroid-vs-bbox slop; see
/// `PREFILTER_SLACK` in walrus-core).
const SLACK: f32 = 1e-4;

fn params(prefilter: Option<bool>, threads: usize) -> WalrusParams {
    WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 8, stride: 4 },
        prefilter,
        threads,
        ..WalrusParams::paper_defaults()
    }
}

/// The deterministic 16×16 block pattern the golden-trace suite ingests.
fn seeded_image(seed: usize) -> Image {
    Image::from_fn(16, 16, ColorSpace::Rgb, |x, y, c| {
        ((x / 4 + y / 4 + c + seed) % 4) as f32 / 3.0
    })
    .unwrap()
}

fn seeded_items() -> Vec<(String, Image)> {
    (0..16).map(|seed| (format!("img-{seed}"), seeded_image(seed))).collect()
}

fn assert_outcomes_identical(a: &QueryOutcome, b: &QueryOutcome, ctx: &str) {
    assert_eq!(a.stats, b.stats, "{ctx}: stats diverged");
    assert_eq!(a.status, b.status, "{ctx}: status diverged");
    assert_eq!(a.matches.len(), b.matches.len(), "{ctx}: match count diverged");
    for (x, y) in a.matches.iter().zip(&b.matches) {
        assert_eq!(x.image_id, y.image_id, "{ctx}: ranking diverged");
        assert_eq!(x.name, y.name, "{ctx}: name diverged");
        assert_eq!(
            x.similarity.to_bits(),
            y.similarity.to_bits(),
            "{ctx}: similarity of {} diverged",
            x.name
        );
        assert_eq!(x.matched_pairs, y.matched_pairs, "{ctx}: matched pairs of {}", x.name);
    }
}

// ---------------------------------------------------------------------------
// 1. Admissibility: a rejection is a proof, never a guess.
// ---------------------------------------------------------------------------

/// Builds a region whose bbox brackets its centroid per dimension — the
/// shape every extractor-produced region has — from raw per-dim triples.
fn region_from(triples: &[(f32, f32, f32)]) -> Region {
    let mut lo = Vec::new();
    let mut mid = Vec::new();
    let mut hi = Vec::new();
    for &(a, b, c) in triples {
        let mut v = [a, b, c];
        v.sort_by(f32::total_cmp);
        lo.push(v[0]);
        mid.push(v[1]);
        hi.push(v[2]);
    }
    let n = lo.len();
    Region::new(mid, lo, hi, RegionBitmap::new(16, 16, 4), n)
}

proptest! {
    #[test]
    fn centroid_rejection_implies_l2_exceeds_epsilon(
        triples in proptest::collection::vec(
            (-0.5f32..1.0, -0.5f32..1.0, -0.5f32..1.0), 2..12),
        center_raw in proptest::collection::vec(-0.5f32..1.0, 12),
        eps in 0.01f32..0.4,
    ) {
        let region = region_from(&triples);
        let center = &center_raw[..triples.len()];
        let code = QueryCode::around(center, eps + SLACK);
        if code.certainly_disjoint(&region.signature) {
            let d = l2_distance(center, &region.centroid);
            prop_assert!(
                d > eps,
                "prefilter rejected a true match: d={d} eps={eps} center={center:?} \
                 centroid={:?}",
                region.centroid
            );
        }
    }

    #[test]
    fn bbox_rejection_implies_extended_rects_disjoint(
        pairs in proptest::collection::vec(
            ((-0.5f32..1.0, -0.5f32..1.0, -0.5f32..1.0),
             (-0.5f32..1.0, -0.5f32..1.0, -0.5f32..1.0)), 2..12),
        eps in 0.01f32..0.4,
    ) {
        let dims = pairs.len();
        let region = region_from(&pairs.iter().map(|p| p.0).collect::<Vec<_>>());
        let query = region_from(&pairs.iter().map(|p| p.1).collect::<Vec<_>>());
        let lo: Vec<f32> = query.bbox_min.iter().map(|v| v - (eps + SLACK)).collect();
        let hi: Vec<f32> = query.bbox_max.iter().map(|v| v + (eps + SLACK)).collect();
        let code = QueryCode::from_interval(&lo, &hi);
        if code.certainly_disjoint(&region.signature) {
            let intersects = (0..dims).all(|d| {
                query.bbox_min[d] - eps <= region.bbox_max[d]
                    && query.bbox_max[d] + eps >= region.bbox_min[d]
            });
            prop_assert!(
                !intersects,
                "prefilter rejected intersecting boxes: eps={eps} q=[{:?},{:?}] t=[{:?},{:?}]",
                query.bbox_min, query.bbox_max, region.bbox_min, region.bbox_max
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Bit-identity: prefilter on/off × threads × shards.
// ---------------------------------------------------------------------------

#[test]
fn rankings_bit_identical_with_prefilter_on_and_off_across_threads_and_shards() {
    let items = seeded_items();
    let refs: Vec<(&str, &Image)> = items.iter().map(|(n, i)| (n.as_str(), i)).collect();
    let queries = [seeded_image(0), seeded_image(3)];

    // Reference: monolithic, single-threaded, prefilter off.
    let mut reference_db = ImageDatabase::new(params(Some(false), 1)).unwrap();
    reference_db.insert_images_batch(&refs).unwrap();
    let reference: Vec<QueryOutcome> =
        queries.iter().map(|q| reference_db.query(q).unwrap()).collect();
    assert!(
        reference.iter().all(|o| !o.matches.is_empty()),
        "the seeded queries must match something"
    );

    for prefilter in [Some(false), Some(true)] {
        for threads in [1, 8] {
            let p = params(prefilter, threads);
            let mut db = ImageDatabase::new(p).unwrap();
            db.insert_images_batch(&refs).unwrap();
            for (qi, q) in queries.iter().enumerate() {
                let got = db.query(q).unwrap();
                assert_outcomes_identical(
                    &reference[qi],
                    &got,
                    &format!("monolithic prefilter={prefilter:?} threads={threads} query={qi}"),
                );
            }
            for shards in [1, 4] {
                let io = Arc::new(FaultIo::new());
                let (store, _) = ShardedStore::open_with(io, "db", p, shards).unwrap();
                store.insert_images_batch_guarded(&refs, &Guard::none()).unwrap();
                for (qi, q) in queries.iter().enumerate() {
                    let got = store.query(q).unwrap();
                    assert_outcomes_identical(
                        &reference[qi],
                        &got,
                        &format!(
                            "sharded={shards} prefilter={prefilter:?} threads={threads} query={qi}"
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn prefilter_counters_report_rejections_on_the_seeded_workload() {
    let items = seeded_items();
    let refs: Vec<(&str, &Image)> = items.iter().map(|(n, i)| (n.as_str(), i)).collect();

    let trace_counters = |prefilter: bool| -> (u64, u64) {
        let io = Arc::new(FaultIo::new());
        let (store, _) =
            ShardedStore::open_with(io, "db", params(Some(prefilter), 1), 4).unwrap();
        store.insert_images_batch_guarded(&refs, &Guard::none()).unwrap();
        let trace = TraceContext::new(TestClock::new());
        let guard = Guard::none().tracing(trace.clone());
        store.query_guarded(&seeded_image(0), &guard).unwrap();
        let report = trace.report();
        let sum = |counter: &str| -> u64 {
            report
                .spans
                .iter()
                .flat_map(|s| s.counters.iter())
                .filter(|(name, _)| *name == counter)
                .map(|(_, v)| *v)
                .sum()
        };
        (sum("signatures_rejected"), sum("candidates_exact"))
    };

    let (rejected_on, exact_on) = trace_counters(true);
    let (rejected_off, exact_off) = trace_counters(false);
    assert!(rejected_on > 0, "prefilter rejected nothing on the seeded workload");
    assert!(exact_on > 0, "no candidate reached the exact test");
    assert_eq!(rejected_off, 0, "prefilter off must not reject");
    assert_eq!(
        exact_off,
        exact_on + rejected_on,
        "every rejected candidate must otherwise have reached the exact test"
    );
}

// ---------------------------------------------------------------------------
// 3. Persistence: v2 snapshots reopen with signatures rebuilt.
// ---------------------------------------------------------------------------

#[test]
fn v2_snapshot_reopens_with_signatures_rebuilt_and_identical_rankings() {
    let items = seeded_items();
    let refs: Vec<(&str, &Image)> = items.iter().map(|(n, i)| (n.as_str(), i)).collect();
    let p = params(Some(true), 1);

    let io = Arc::new(FaultIo::new());
    let (mut original, _) = DurableDatabase::open_with(io.clone(), "a", p).unwrap();
    original.insert_images_batch(&refs).unwrap();
    let reference = original.db().query(&seeded_image(0)).unwrap();
    assert!(!reference.matches.is_empty());

    // Re-encode the database as a version-2 snapshot — the pre-signature
    // format — and open a fresh store from it.
    let v2_bytes = persist::save_v2(original.db());
    let dir = PathBuf::from("b");
    io.create_dir_all(&dir).unwrap();
    io.write(&dir.join(SNAPSHOT_FILE), &v2_bytes).unwrap();
    let (reopened, report) = DurableDatabase::open_with(io.clone(), "b", p).unwrap();
    assert!(report.snapshot_loaded, "the v2 snapshot must load");

    // Rebuilt signatures are byte-identical to the originally derived ones:
    // saving both stores in the current format produces the same bytes.
    assert_eq!(
        persist::save(reopened.db()),
        persist::save(original.db()),
        "signatures rebuilt from a v2 snapshot diverged from the originals"
    );
    let got = reopened.db().query(&seeded_image(0)).unwrap();
    assert_outcomes_identical(&reference, &got, "v2 reopen");
}
