//! Region visualization: render what WALRUS "sees" in an image.
//!
//! Produces overlay images where each region's coarse bitmap is tinted in a
//! distinct palette color over a dimmed copy of the source — the quickest
//! way to sanity-check a parameter choice (`ε_c` too loose? windows too
//! big?) with human eyes. Used by the `region_explorer` example and handy
//! in downstream debugging.

use crate::region::Region;
use crate::Result;
use walrus_imagery::{ColorSpace, Image};

/// A fixed, high-contrast palette for painting regions (cycled when there
/// are more regions than entries).
pub const PALETTE: [(f32, f32, f32); 8] = [
    (0.90, 0.10, 0.10),
    (0.10, 0.40, 0.90),
    (0.95, 0.75, 0.10),
    (0.55, 0.10, 0.75),
    (0.10, 0.75, 0.70),
    (0.95, 0.45, 0.10),
    (0.35, 0.70, 0.15),
    (0.80, 0.15, 0.55),
];

/// Rendering options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlayOptions {
    /// How much of the original image survives in uncovered areas.
    pub background_dim: f32,
    /// Opacity of the region tint over covered areas.
    pub tint_alpha: f32,
}

impl Default for OverlayOptions {
    fn default() -> Self {
        Self { background_dim: 0.25, tint_alpha: 0.5 }
    }
}

/// Renders all `regions` of `image` as a tinted overlay. Regions are
/// painted in order, so later (usually smaller) regions appear on top where
/// they overlap.
pub fn region_overlay(image: &Image, regions: &[Region], opts: OverlayOptions) -> Result<Image> {
    let rgb = image.to_space(ColorSpace::Rgb)?;
    let mut out = Image::zeros(rgb.width(), rgb.height(), ColorSpace::Rgb)?;
    let dim = opts.background_dim.clamp(0.0, 1.0);
    for y in 0..rgb.height() {
        for x in 0..rgb.width() {
            let p = rgb.pixel(x, y);
            out.set_pixel(x, y, &[p[0] * dim, p[1] * dim, p[2] * dim]);
        }
    }
    let alpha = opts.tint_alpha.clamp(0.0, 1.0);
    for (i, region) in regions.iter().enumerate() {
        let (cr, cg, cb) = PALETTE[i % PALETTE.len()];
        paint_bitmap(&mut out, region, cr, cg, cb, alpha);
    }
    Ok(out)
}

/// Renders a single region's coverage as a binary mask (white = covered).
pub fn region_mask(image_width: usize, image_height: usize, region: &Region) -> Result<Image> {
    let mut out = Image::zeros(image_width, image_height, ColorSpace::Gray)?;
    let bm = &region.bitmap;
    for cy in 0..bm.grid_height() {
        for cx in 0..bm.grid_width() {
            if !bm.get_cell(cx, cy) {
                continue;
            }
            let (x0, y0, w, h) = bm.cell_pixels(cx, cy);
            for y in y0..(y0 + h).min(image_height) {
                for x in x0..(x0 + w).min(image_width) {
                    out.channel_mut(0).set(x, y, 1.0);
                }
            }
        }
    }
    Ok(out)
}

fn paint_bitmap(out: &mut Image, region: &Region, cr: f32, cg: f32, cb: f32, alpha: f32) {
    let bm = &region.bitmap;
    for cy in 0..bm.grid_height() {
        for cx in 0..bm.grid_width() {
            if !bm.get_cell(cx, cy) {
                continue;
            }
            let (x0, y0, w, h) = bm.cell_pixels(cx, cy);
            for y in y0..(y0 + h).min(out.height()) {
                for x in x0..(x0 + w).min(out.width()) {
                    let p = out.pixel(x, y);
                    out.set_pixel(x, y, &[
                        p[0] * (1.0 - alpha) + cr * alpha,
                        p[1] * (1.0 - alpha) + cg * alpha,
                        p[2] * (1.0 - alpha) + cb * alpha,
                    ]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::RegionBitmap;

    fn region_covering(x: usize, y: usize, w: usize, h: usize) -> Region {
        let mut bitmap = RegionBitmap::new(64, 64, 16);
        bitmap.mark_window(x, y, w, h);
        Region::new(vec![0.0; 4], vec![0.0; 4], vec![0.0; 4], bitmap, 1)
    }

    fn base_image() -> Image {
        Image::from_fn(64, 64, ColorSpace::Rgb, |_, _, _| 1.0).unwrap()
    }

    #[test]
    fn overlay_dims_uncovered_and_tints_covered() {
        let img = base_image();
        let regions = [region_covering(0, 0, 16, 16)];
        let out = region_overlay(&img, &regions, OverlayOptions::default()).unwrap();
        // Covered pixel (8,8): blend of dimmed white and palette red.
        let covered = out.pixel(8, 8);
        let (cr, _, _) = PALETTE[0];
        assert!((covered[0] - (1.0 * 0.25 * 0.5 + cr * 0.5)).abs() < 1e-5);
        // Uncovered pixel (40,40): just dimmed.
        let uncovered = out.pixel(40, 40);
        assert!((uncovered[0] - 0.25).abs() < 1e-5);
        assert_eq!(uncovered[0], uncovered[1]);
    }

    #[test]
    fn overlay_cycles_palette() {
        let img = base_image();
        let regions: Vec<Region> =
            (0..10).map(|i| region_covering((i * 6) % 48, 0, 4, 4)).collect();
        // 10 regions with an 8-color palette must not panic.
        region_overlay(&img, &regions, OverlayOptions::default()).unwrap();
    }

    #[test]
    fn later_regions_paint_on_top() {
        let img = base_image();
        let regions = [region_covering(0, 0, 32, 32), region_covering(0, 0, 16, 16)];
        let out = region_overlay(&img, &regions, OverlayOptions { background_dim: 0.0, tint_alpha: 1.0 }).unwrap();
        let (_, c1g, _) = PALETTE[1];
        // Pixel inside both: second region's color wins.
        assert!((out.pixel(8, 8)[1] - c1g).abs() < 1e-5);
        let (c0r, _, _) = PALETTE[0];
        // Pixel only in the first region.
        assert!((out.pixel(24, 24)[0] - c0r).abs() < 1e-5);
    }

    #[test]
    fn mask_matches_bitmap_area() {
        let region = region_covering(4, 4, 8, 8);
        let mask = region_mask(64, 64, &region).unwrap();
        let white: usize =
            mask.channel(0).as_slice().iter().filter(|&&v| v == 1.0).count();
        assert_eq!(white, region.area());
    }

    #[test]
    fn empty_region_list_gives_pure_dim() {
        let img = base_image();
        let out = region_overlay(&img, &[], OverlayOptions::default()).unwrap();
        assert!(out.channel(0).as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-5));
    }
}
