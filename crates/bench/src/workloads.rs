//! Shared workload builders for the experiment harnesses.
//!
//! These encode the substitutions documented in DESIGN.md: the paper's
//! `misc` photo collection becomes a labeled synthetic dataset with the same
//! image sizes and the same semantic structure (a flower class whose members
//! share an object up to translation/scale, plus color-confusable
//! distractors), and the paper's timing image becomes a deterministic busy
//! synthetic scene.

use crate::Scale;
use walrus_core::{ImageDatabase, WalrusParams};
use walrus_imagery::synth::dataset::{
    flower_query_scenario, timing_image, DatasetSpec, ImageClass, SyntheticDataset,
};
use walrus_imagery::{ColorSpace, Image};
use walrus_wavelet::SlidingParams;

/// The three color planes of the deterministic timing scene at `side × side`
/// (Figure 6 uses 256×256).
pub fn timing_planes(side: usize, space: ColorSpace) -> (Vec<Vec<f32>>, usize) {
    let img = timing_image(side, side, 0xBEEF)
        .and_then(|i| i.to_space(space))
        .expect("timing image generation is infallible for valid sides");
    let planes = img.channels().iter().map(|c| c.as_slice().to_vec()).collect();
    (planes, side)
}

/// The retrieval dataset standing in for `misc`: six classes at the paper's
/// image scale (128×96). The flower (query) class is held at 16 images —
/// more than the top-14 cut, so precision cannot saturate by class size,
/// but *rare* relative to the distractors, matching the regime of the
/// paper's 10,000-photo collection where flower photos were a small
/// minority.
pub fn retrieval_dataset(scale: Scale) -> SyntheticDataset {
    let distractors = match scale {
        Scale::Quick => 16,
        Scale::Full => 50,
    };
    let counts: Vec<(ImageClass, usize)> = ImageClass::ALL
        .iter()
        .map(|&c| (c, if c == ImageClass::Flowers { 16 } else { distractors }))
        .collect();
    SyntheticDataset::generate_mixed(
        DatasetSpec {
            images_per_class: 0, // superseded by `counts`
            width: 128,
            height: 96,
            seed: 0x5EED_CAFE,
            classes: ImageClass::ALL.to_vec(),
        },
        &counts,
    )
    .expect("dataset generation is deterministic and infallible")
}

/// Engine parameters mirroring the paper's §6.4 configuration, adapted to
/// the 128×96 synthetic images: multi-size windows 8–32 px with stride 4
/// (the paper's 64×64 windows barely fit its 85–128 px images; the small
/// end of the range is what lets windows fall *inside* objects and carry
/// position/scale-invariant region signatures), 2×2 signatures per YCC
/// channel, `ε_c = 0.05`, `ε = 0.085`, centroid signatures, quick matching.
pub fn retrieval_params() -> WalrusParams {
    WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 32, stride: 4 },
        ..WalrusParams::paper_defaults()
    }
}

/// Builds and populates a WALRUS database over the dataset.
pub fn build_walrus_db(dataset: &SyntheticDataset, params: WalrusParams) -> ImageDatabase {
    let mut db = ImageDatabase::new(params).expect("params validated by caller");
    for img in &dataset.images {
        db.insert_image(&img.name, &img.image).expect("dataset images satisfy extraction bounds");
    }
    db
}

/// The Figure-7/8 style query: a flower image rendered by the same
/// generator family as the dataset's flower class (but not a member of it).
pub fn flower_query() -> Image {
    let (query, _) = flower_query_scenario(0xF10_3E5, 128, 96, 0)
        .expect("query scenario generation is infallible");
    query
}

/// A translated/scaled variant set of the query's flower, for robustness
/// experiments: `(query, variants)`.
pub fn flower_query_with_variants(n: usize) -> (Image, Vec<Image>) {
    flower_query_scenario(0xF10_3E5, 128, 96, n).expect("scenario generation is infallible")
}

/// Precision of a ranked id list against the flower class.
pub fn precision_at(dataset: &SyntheticDataset, ids: &[usize], k: usize) -> f64 {
    let k = k.min(ids.len());
    if k == 0 {
        return 0.0;
    }
    let hits = ids[..k]
        .iter()
        .filter(|&&id| dataset.images[id].class == ImageClass::Flowers)
        .count();
    hits as f64 / k as f64
}

/// Resolves a database/baseline result name (`flowers_0003`) back to the
/// dataset id. Harness results carry names; the dataset is the ground
/// truth.
pub fn id_of_name(dataset: &SyntheticDataset, name: &str) -> Option<usize> {
    dataset.images.iter().find(|i| i.name == name).map(|i| i.id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_planes_shape() {
        let (planes, side) = timing_planes(64, ColorSpace::Ycc);
        assert_eq!(side, 64);
        assert_eq!(planes.len(), 3);
        assert!(planes.iter().all(|p| p.len() == 64 * 64));
    }

    #[test]
    fn quick_dataset_shape() {
        let d = retrieval_dataset(Scale::Quick);
        assert_eq!(d.len(), 96);
        assert_eq!(d.images[0].image.width(), 128);
        assert_eq!(d.images[0].image.height(), 96);
    }

    #[test]
    fn retrieval_params_validate() {
        retrieval_params().validate().unwrap();
    }

    #[test]
    fn precision_math() {
        let d = retrieval_dataset(Scale::Quick);
        let flower_ids: Vec<usize> =
            d.of_class(ImageClass::Flowers).map(|i| i.id).collect();
        assert_eq!(precision_at(&d, &flower_ids, 8), 1.0);
        let brick_ids: Vec<usize> =
            d.of_class(ImageClass::BrickWall).map(|i| i.id).collect();
        assert_eq!(precision_at(&d, &brick_ids, 8), 0.0);
        assert_eq!(precision_at(&d, &[], 5), 0.0);
    }

    #[test]
    fn name_resolution() {
        let d = retrieval_dataset(Scale::Quick);
        let id = id_of_name(&d, "flowers_0000").unwrap();
        assert_eq!(d.images[id].name, "flowers_0000");
        assert!(id_of_name(&d, "nope").is_none());
    }

    #[test]
    fn query_is_not_a_dataset_member() {
        let d = retrieval_dataset(Scale::Quick);
        let q = flower_query();
        assert!(d.images.iter().all(|i| i.image != q));
    }

    #[test]
    fn variants_generated() {
        let (q, vs) = flower_query_with_variants(3);
        assert_eq!(vs.len(), 3);
        assert!(vs.iter().all(|v| v.width() == q.width()));
    }
}
