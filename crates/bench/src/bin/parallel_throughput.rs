//! **Parallel engine throughput** — serial vs parallel batch ingest and
//! query latency across thread counts, recorded as the repo's first
//! performance trajectory datapoint (`BENCH_parallel.json`).
//!
//! Measures, on the synthetic stand-in collection:
//!
//! * **batch ingest** — `insert_images_batch` wall time and images/sec for
//!   `threads ∈ {1, 2, 4, 8}` (extraction fans out across the pool, the
//!   index is built under one bulk load);
//! * **query latency** — p50 / p99 / mean over repeated full-pipeline
//!   queries (extraction + index probes + scoring) at each thread count;
//! * **determinism** — asserts that every parallel configuration returns
//!   results identical to serial before any number is written.
//!
//! The JSON records `host_cpus`: speedups are only meaningful relative to
//! the parallelism the host actually offers (a 1-CPU container measures
//! scheduling overhead, not scaling).
//!
//! Run: `cargo run --release -p walrus-bench --bin parallel_throughput`
//! (`WALRUS_BENCH_SCALE=full` for the larger dataset,
//! `WALRUS_BENCH_OUT=<path>` to redirect the JSON, default
//! `BENCH_parallel.json`).

use walrus_bench::report::{f3, host_cpus, BenchReport, Table};
use walrus_bench::workloads::{flower_query_with_variants, retrieval_dataset, retrieval_params};
use walrus_bench::{scale, time, Scale};
use walrus_core::{ImageDatabase, QueryOutcome, WalrusParams};
use walrus_imagery::Image;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let sc = scale();
    let dataset = retrieval_dataset(sc);
    let params = retrieval_params();
    let host_cpus = host_cpus();
    let items: Vec<(&str, &Image)> =
        dataset.images.iter().map(|i| (i.name.as_str(), &i.image)).collect();
    let query_reps = match sc {
        Scale::Quick => 15,
        Scale::Full => 40,
    };
    println!(
        "Parallel engine throughput: {} images ({}x{}), host cpus: {host_cpus}\n",
        items.len(),
        dataset.images[0].image.width(),
        dataset.images[0].image.height(),
    );

    // --- batch ingest across thread counts -----------------------------
    let mut ingest_rows: Vec<(usize, f64, f64)> = Vec::new(); // (threads, secs, img/s)
    let mut reference_db: Option<ImageDatabase> = None;
    let mut ingest_table =
        Table::new("Batch Ingest", &["threads", "seconds", "images_per_sec", "speedup"]);
    for &threads in &THREAD_COUNTS {
        let p = WalrusParams { threads, ..params };
        // Best of two runs: the second is warm (allocator, page cache).
        let mut best = f64::INFINITY;
        let mut db_out = None;
        for _ in 0..2 {
            let mut db = ImageDatabase::new(p).expect("params are valid");
            let (ids, secs) =
                time(|| db.insert_images_batch(&items).expect("dataset images extract cleanly"));
            assert_eq!(ids.len(), items.len());
            if secs < best {
                best = secs;
            }
            db_out = Some(db);
        }
        let db = db_out.expect("at least one run completed");
        match &reference_db {
            None => {
                assert_eq!(db.num_regions(), {
                    // Serial one-at-a-time inserts are the ground truth the
                    // batch path must reproduce exactly.
                    let mut serial = ImageDatabase::new(p).expect("params are valid");
                    for (name, image) in &items {
                        serial.insert_image(name, image).expect("extracts cleanly");
                    }
                    serial.num_regions()
                });
                reference_db = Some(db);
            }
            Some(reference) => {
                assert_eq!(db.len(), reference.len(), "parallel ingest diverged");
                assert_eq!(db.num_regions(), reference.num_regions(), "parallel ingest diverged");
            }
        }
        let ips = items.len() as f64 / best;
        ingest_table.row(&[
            threads.to_string(),
            f3(best),
            f3(ips),
            format!("{:.2}x", ingest_rows.first().map(|(_, s, _)| s / best).unwrap_or(1.0)),
        ]);
        ingest_rows.push((threads, best, ips));
    }
    ingest_table.print();
    println!();

    // --- query latency across thread counts -----------------------------
    let db = reference_db.expect("ingest ran");
    let (query, variants) = flower_query_with_variants(4);
    let queries: Vec<&Image> = std::iter::once(&query).chain(variants.iter()).collect();
    let mut serial_outcomes: Option<Vec<QueryOutcome>> = None;
    let mut query_rows: Vec<(usize, f64, f64, f64)> = Vec::new(); // (threads, p50, p99, mean) ms
    let mut query_table =
        Table::new("Query Latency", &["threads", "p50_ms", "p99_ms", "mean_ms", "speedup_p50"]);
    for &threads in &THREAD_COUNTS {
        let mut db = db.clone();
        db.set_threads(threads);
        let mut latencies_ms = Vec::with_capacity(queries.len() * query_reps);
        let mut outcomes = Vec::with_capacity(queries.len());
        for (qi, q) in queries.iter().enumerate() {
            for rep in 0..query_reps {
                let (outcome, secs) = time(|| db.query(q).expect("query pipeline succeeds"));
                latencies_ms.push(secs * 1e3);
                if rep == 0 && qi < queries.len() {
                    outcomes.push(outcome);
                }
            }
        }
        match &serial_outcomes {
            None => serial_outcomes = Some(outcomes),
            Some(serial) => {
                for (a, b) in serial.iter().zip(&outcomes) {
                    assert_eq!(a.stats, b.stats, "parallel query stats diverged");
                    assert_eq!(a.matches.len(), b.matches.len());
                    for (x, y) in a.matches.iter().zip(&b.matches) {
                        assert_eq!(x.image_id, y.image_id, "parallel query ranking diverged");
                        assert_eq!(
                            x.similarity.to_bits(),
                            y.similarity.to_bits(),
                            "parallel query similarity diverged"
                        );
                    }
                }
            }
        }
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let p50 = percentile(&latencies_ms, 50.0);
        let p99 = percentile(&latencies_ms, 99.0);
        let mean = latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64;
        query_table.row(&[
            threads.to_string(),
            f3(p50),
            f3(p99),
            f3(mean),
            format!("{:.2}x", query_rows.first().map(|(_, s, _, _)| s / p50).unwrap_or(1.0)),
        ]);
        query_rows.push((threads, p50, p99, mean));
    }
    query_table.print();

    // --- JSON trajectory datapoint ---------------------------------------
    let report = build_report(
        sc,
        items.len(),
        db.num_regions(),
        query_reps * queries.len(),
        &ingest_rows,
        &query_rows,
    );
    let out_path =
        report.write("BENCH_parallel.json").expect("benchmark output path is writable");
    println!("\nwrote {out_path}");
    if host_cpus == 1 {
        println!(
            "note: host offers a single CPU; speedups measure overhead, not scaling.\n\
             Re-run on a multi-core host for a meaningful parallel datapoint."
        );
    }
}

/// Percentile by linear interpolation over a sorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

fn build_report(
    sc: Scale,
    images: usize,
    regions: usize,
    query_samples: usize,
    ingest: &[(usize, f64, f64)],
    query: &[(usize, f64, f64, f64)],
) -> BenchReport {
    let serial_ingest = ingest.first().map(|(_, s, _)| *s).unwrap_or(0.0);
    let serial_p50 = query.first().map(|(_, p, _, _)| *p).unwrap_or(0.0);
    let ingest_rows: Vec<String> = ingest
        .iter()
        .map(|(threads, secs, ips)| {
            format!(
                "    {{ \"threads\": {threads}, \"seconds\": {secs:.4}, \"images_per_sec\": {ips:.2}, \"speedup_vs_serial\": {:.3} }}",
                serial_ingest / secs
            )
        })
        .collect();
    let query_rows: Vec<String> = query
        .iter()
        .map(|(threads, p50, p99, mean)| {
            format!(
                "    {{ \"threads\": {threads}, \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}, \"mean_ms\": {mean:.3}, \"speedup_vs_serial_p50\": {:.3} }}",
                serial_p50 / p50
            )
        })
        .collect();
    BenchReport::new("parallel_throughput")
        .field_str("scale", if sc == Scale::Full { "full" } else { "quick" })
        .field(
            "dataset",
            format!(
                "{{ \"images\": {images}, \"regions\": {regions}, \"query_samples\": {query_samples} }}"
            ),
        )
        .field("determinism_checked", "true")
        .field("ingest", format!("[\n{}\n  ]", ingest_rows.join(",\n")))
        .field("query", format!("[\n{}\n  ]", query_rows.join(",\n")))
}
