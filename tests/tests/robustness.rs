//! Robustness tests for the perturbations the paper's §1.1 enumerates:
//! "resolution changes, dithering effects, color shifts, orientation, size,
//! and location". Each test perturbs a query image and checks that WALRUS
//! still retrieves the original from a database with distractors.

use walrus_core::{ImageDatabase, WalrusParams};
use walrus_imagery::ops;
use walrus_imagery::synth::scene::{Scene, SceneObject};
use walrus_imagery::synth::shapes::Shape;
use walrus_imagery::synth::texture::{Rgb, Texture};
use walrus_imagery::Image;
use walrus_wavelet::SlidingParams;

fn params() -> WalrusParams {
    WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 32, stride: 4 },
        ..WalrusParams::paper_defaults()
    }
}

fn target() -> Image {
    Scene::new(Texture::Noise {
        a: Rgb(0.08, 0.42, 0.12),
        b: Rgb(0.14, 0.55, 0.18),
        scale: 6,
        seed: 5,
    })
    .with(SceneObject::new(
        Shape::Flower { petals: 6, core_radius: 0.5, petal_len: 0.95, petal_width: 0.25 },
        Texture::Solid(Rgb(0.85, 0.12, 0.18)),
        (0.4, 0.5),
        0.55,
    ))
    .render(128, 96)
    .unwrap()
}

fn distractors() -> Vec<(String, Image)> {
    let mut out: Vec<(String, Image)> = vec![(
        "bricks".to_string(),
        Scene::new(Texture::Bricks {
            brick: Rgb(0.72, 0.22, 0.14),
            mortar: Rgb(0.38, 0.28, 0.22),
            w: 16,
            h: 8,
        })
        .render(128, 96)
        .unwrap(),
    )];
    out.push((
        "ocean".to_string(),
        Scene::new(Texture::VerticalGradient { top: Rgb(0.35, 0.55, 0.85), bottom: Rgb(0.1, 0.25, 0.55) })
            .render(128, 96)
            .unwrap(),
    ));
    out.push((
        "checker".to_string(),
        Scene::new(Texture::Checker { a: Rgb(0.9, 0.9, 0.2), b: Rgb(0.2, 0.2, 0.8), cell: 6 })
            .render(128, 96)
            .unwrap(),
    ));
    out
}

fn db_with_target() -> ImageDatabase {
    let mut db = ImageDatabase::new(params()).unwrap();
    db.insert_image("target", &target()).unwrap();
    for (name, img) in distractors() {
        db.insert_image(&name, &img).unwrap();
    }
    db
}

fn assert_target_wins(db: &ImageDatabase, query: &Image, label: &str) {
    let top = db.top_k(query, 1).unwrap();
    assert!(!top.is_empty(), "{label}: nothing retrieved");
    assert_eq!(top[0].name, "target", "{label}: wrong winner (sim {:.3})", top[0].similarity);
}

#[test]
fn survives_dithering() {
    let db = db_with_target();
    for levels in [2u32, 4, 8] {
        let q = ops::dither(&target(), levels).unwrap();
        assert_target_wins(&db, &q, &format!("dither to {levels} levels"));
    }
}

#[test]
fn survives_resolution_change() {
    let db = db_with_target();
    // Downscale then upscale back: information lost, layout preserved.
    let small = target().resize_bilinear(64, 48).unwrap();
    let restored = small.resize_bilinear(128, 96).unwrap();
    assert_target_wins(&db, &restored, "half-resolution round trip");
    // Query at a different absolute size entirely.
    let q = target().resize_bilinear(96, 72).unwrap();
    assert_target_wins(&db, &q, "three-quarter resolution");
}

#[test]
fn survives_mild_color_shift() {
    let db = db_with_target();
    let q = ops::color_shift(&target(), 0.03, -0.02, 0.03).unwrap();
    assert_target_wins(&db, &q, "mild color shift");
}

#[test]
fn survives_mild_blur() {
    let db = db_with_target();
    let q = ops::box_blur(&target(), 1);
    assert_target_wins(&db, &q, "radius-1 blur");
}

#[test]
fn survives_flips() {
    // Region signatures carry no location, so a mirrored image has the
    // same region set (modulo window tiling at the edges).
    let db = db_with_target();
    assert_target_wins(&db, &ops::flip_horizontal(&target()), "horizontal flip");
    assert_target_wins(&db, &ops::flip_vertical(&target()), "vertical flip");
    assert_target_wins(&db, &ops::rotate180(&target()), "180 degree rotation");
}

#[test]
fn large_color_shift_degrades_similarity() {
    // Sanity: robustness is not "accepts anything" — a drastic shift must
    // lower the score even when the target still wins or drops out.
    let db = db_with_target();
    let exact = db.top_k(&target(), 1).unwrap()[0].similarity;
    let shifted = ops::color_shift(&target(), 0.35, -0.3, 0.0).unwrap();
    let outcome = db.query(&shifted).unwrap();
    let shifted_sim = outcome
        .matches
        .iter()
        .find(|m| m.name == "target")
        .map(|m| m.similarity)
        .unwrap_or(0.0);
    assert!(
        shifted_sim < exact - 0.05,
        "drastic shift should cost similarity: exact {exact:.3}, shifted {shifted_sim:.3}"
    );
}
