//! Minimal vendored stand-in for `criterion`, covering the API surface the
//! workspace's benches use: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a fixed-iteration wall-clock average printed to stdout —
//! enough to run `cargo bench` for a smoke signal and to keep bench targets
//! compiling, without the statistical machinery of the real crate.
//!
//! Vendored so the workspace builds hermetically with no registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs and times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm up once, then time a small fixed batch.
        black_box(body());
        const ITERS: u64 = 10;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(body());
        }
        self.elapsed = start.elapsed();
        self.iterations = ITERS;
    }

    fn report(&self, label: &str) {
        if self.iterations == 0 {
            println!("{label}: no measurement");
            return;
        }
        let per_iter = self.elapsed / self.iterations as u32;
        println!("{label}: {per_iter:?}/iter over {} iterations", self.iterations);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut body: F) {
        let mut b = Bencher::default();
        body(&mut b);
        b.report(&format!("{}/{}", self.name, id));
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) {
        let mut b = Bencher::default();
        body(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
    }

    pub fn finish(self) {}
}

/// Benchmark driver handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut body: F) {
        let mut b = Bencher::default();
        body(&mut b);
        b.report(&id.to_string());
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sample");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }
}
