//! Criterion micro-benchmarks for BIRCH pre-clustering on WALRUS-shaped
//! inputs: thousands of 12-dimensional window signatures per image. The
//! paper's requirement is linear time in the point count — the n-sweep
//! makes the scaling visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use walrus_birch::precluster;

/// Mixture of a few tight blobs plus background noise — the typical shape
/// of window signatures from a multi-object image.
fn signature_cloud(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..5).map(|_| (0..12).map(|_| rng.gen::<f32>()).collect()).collect();
    (0..n)
        .map(|i| {
            if i % 10 == 9 {
                (0..12).map(|_| rng.gen::<f32>()).collect()
            } else {
                let c = &centers[i % centers.len()];
                c.iter().map(|v| v + rng.gen_range(-0.02..0.02f32)).collect()
            }
        })
        .collect()
}

fn bench_precluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("birch_precluster");
    for n in [500usize, 2_000, 8_000] {
        let pts = signature_cloud(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| precluster(pts, 0.05, None).unwrap())
        });
    }
    group.finish();
}

fn bench_epsilon(c: &mut Criterion) {
    let pts = signature_cloud(2_000, 42);
    let mut group = c.benchmark_group("birch_epsilon");
    for eps in [0.025f64, 0.05, 0.1] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            b.iter(|| precluster(&pts, eps, None).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_precluster, bench_epsilon);
criterion_main!(benches);
