//! Procedural texture fills.
//!
//! Every texture is evaluated at absolute image coordinates so that a texture
//! "shows through" a shape consistently regardless of where the shape moved —
//! except `Local`-phase options that anchor to the object, used when a
//! translated object must carry its texture with it (the WALRUS robustness
//! scenario).

/// RGB color, components nominally in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rgb(pub f32, pub f32, pub f32);

impl Rgb {
    /// Linear interpolation `self → other` at `t ∈ [0,1]`.
    pub fn lerp(self, other: Rgb, t: f32) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        Rgb(
            self.0 + (other.0 - self.0) * t,
            self.1 + (other.1 - self.1) * t,
            self.2 + (other.2 - self.2) * t,
        )
    }

    /// Channel-wise addition with clamping, used for color shifts.
    pub fn shifted(self, dr: f32, dg: f32, db: f32) -> Rgb {
        Rgb(
            (self.0 + dr).clamp(0.0, 1.0),
            (self.1 + dg).clamp(0.0, 1.0),
            (self.2 + db).clamp(0.0, 1.0),
        )
    }
}

/// A procedural fill evaluated per pixel.
#[derive(Debug, Clone, PartialEq)]
pub enum Texture {
    /// Uniform color.
    Solid(Rgb),
    /// Vertical gradient: `top` at v=0 to `bottom` at v=1 (v is the
    /// normalized y coordinate within the fill's reference frame).
    VerticalGradient {
        /// Color at the top edge.
        top: Rgb,
        /// Color at the bottom edge.
        bottom: Rgb,
    },
    /// Checkerboard with `cell` pixel cells alternating two colors.
    Checker {
        /// First cell color.
        a: Rgb,
        /// Second cell color.
        b: Rgb,
        /// Cell side length in pixels (≥ 1).
        cell: u32,
    },
    /// Horizontal stripes of `period` pixels, `duty` fraction color `a`.
    Stripes {
        /// Stripe color.
        a: Rgb,
        /// Gap color.
        b: Rgb,
        /// Stripe period in pixels (≥ 1).
        period: u32,
        /// Fraction of the period occupied by `a`.
        duty: f32,
    },
    /// Running-bond brick pattern: bricks of `w × h` pixels separated by
    /// 1-pixel mortar lines, odd rows offset by half a brick.
    Bricks {
        /// Brick color.
        brick: Rgb,
        /// Mortar color.
        mortar: Rgb,
        /// Brick width in pixels (≥ 2).
        w: u32,
        /// Brick height in pixels (≥ 2).
        h: u32,
    },
    /// Deterministic value noise between two colors: smooth at `scale`
    /// pixels, hashed from integer lattice points (no RNG state needed, so
    /// the same coordinates always give the same color).
    Noise {
        /// Color at noise value 0.
        a: Rgb,
        /// Color at noise value 1.
        b: Rgb,
        /// Feature size in pixels (≥ 1).
        scale: u32,
        /// Extra seed mixed into the lattice hash.
        seed: u32,
    },
}

impl Texture {
    /// Evaluates the fill at absolute pixel `(x, y)`; `(fw, fh)` is the size
    /// of the reference frame (image or object bounding box) used to
    /// normalize gradients.
    pub fn eval(&self, x: f32, y: f32, fw: f32, fh: f32) -> Rgb {
        let _ = fw;
        match *self {
            Texture::Solid(c) => c,
            Texture::VerticalGradient { top, bottom } => {
                let v = if fh > 0.0 { (y / fh).clamp(0.0, 1.0) } else { 0.0 };
                top.lerp(bottom, v)
            }
            Texture::Checker { a, b, cell } => {
                let cell = cell.max(1) as i64;
                let cx = (x.floor() as i64).div_euclid(cell);
                let cy = (y.floor() as i64).div_euclid(cell);
                if (cx + cy).rem_euclid(2) == 0 {
                    a
                } else {
                    b
                }
            }
            Texture::Stripes { a, b, period, duty } => {
                let period = period.max(1) as f32;
                let phase = (y.rem_euclid(period)) / period;
                if phase < duty.clamp(0.0, 1.0) {
                    a
                } else {
                    b
                }
            }
            Texture::Bricks { brick, mortar, w, h } => {
                let w = w.max(2) as i64;
                let h = h.max(2) as i64;
                let yi = y.floor() as i64;
                let row = yi.div_euclid(h);
                let y_in = yi.rem_euclid(h);
                let offset = if row.rem_euclid(2) == 1 { w / 2 } else { 0 };
                let x_in = (x.floor() as i64 + offset).rem_euclid(w);
                if y_in == 0 || x_in == 0 {
                    mortar
                } else {
                    brick
                }
            }
            Texture::Noise { a, b, scale, seed } => {
                let s = scale.max(1) as f32;
                let gx = x / s;
                let gy = y / s;
                let x0 = gx.floor();
                let y0 = gy.floor();
                let tx = smooth(gx - x0);
                let ty = smooth(gy - y0);
                let (x0, y0) = (x0 as i64, y0 as i64);
                let v00 = lattice(x0, y0, seed);
                let v10 = lattice(x0 + 1, y0, seed);
                let v01 = lattice(x0, y0 + 1, seed);
                let v11 = lattice(x0 + 1, y0 + 1, seed);
                let v = (v00 * (1.0 - tx) + v10 * tx) * (1.0 - ty) + (v01 * (1.0 - tx) + v11 * tx) * ty;
                a.lerp(b, v)
            }
        }
    }

    /// Returns a copy with every constituent color shifted by `(dr, dg, db)`
    /// — the "color shift" robustness transform from the paper's §1.1.
    pub fn color_shifted(&self, dr: f32, dg: f32, db: f32) -> Texture {
        let s = |c: Rgb| c.shifted(dr, dg, db);
        match *self {
            Texture::Solid(c) => Texture::Solid(s(c)),
            Texture::VerticalGradient { top, bottom } => {
                Texture::VerticalGradient { top: s(top), bottom: s(bottom) }
            }
            Texture::Checker { a, b, cell } => Texture::Checker { a: s(a), b: s(b), cell },
            Texture::Stripes { a, b, period, duty } => {
                Texture::Stripes { a: s(a), b: s(b), period, duty }
            }
            Texture::Bricks { brick, mortar, w, h } => {
                Texture::Bricks { brick: s(brick), mortar: s(mortar), w, h }
            }
            Texture::Noise { a, b, scale, seed } => Texture::Noise { a: s(a), b: s(b), scale, seed },
        }
    }
}

#[inline]
fn smooth(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

/// Deterministic hash of a lattice point to `[0, 1]`.
#[inline]
fn lattice(x: i64, y: i64, seed: u32) -> f32 {
    let mut h = (x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (y as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ ((seed as u64) << 32 | seed as u64);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h >> 40) as f32 / (1u64 << 24) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    const RED: Rgb = Rgb(1.0, 0.0, 0.0);
    const BLUE: Rgb = Rgb(0.0, 0.0, 1.0);

    #[test]
    fn lerp_endpoints_and_midpoint() {
        assert_eq!(RED.lerp(BLUE, 0.0), RED);
        assert_eq!(RED.lerp(BLUE, 1.0), BLUE);
        let mid = RED.lerp(BLUE, 0.5);
        assert!((mid.0 - 0.5).abs() < 1e-6 && (mid.2 - 0.5).abs() < 1e-6);
        // Clamped outside [0,1].
        assert_eq!(RED.lerp(BLUE, -2.0), RED);
    }

    #[test]
    fn shifted_clamps() {
        let c = Rgb(0.9, 0.5, 0.05).shifted(0.3, -0.2, -0.1);
        assert_eq!(c, Rgb(1.0, 0.3, 0.0));
    }

    #[test]
    fn gradient_interpolates_vertically() {
        let t = Texture::VerticalGradient { top: RED, bottom: BLUE };
        assert_eq!(t.eval(5.0, 0.0, 10.0, 10.0), RED);
        assert_eq!(t.eval(5.0, 10.0, 10.0, 10.0), BLUE);
        let mid = t.eval(0.0, 5.0, 10.0, 10.0);
        assert!((mid.0 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn checker_alternates() {
        let t = Texture::Checker { a: RED, b: BLUE, cell: 2 };
        assert_eq!(t.eval(0.0, 0.0, 8.0, 8.0), RED);
        assert_eq!(t.eval(2.0, 0.0, 8.0, 8.0), BLUE);
        assert_eq!(t.eval(2.0, 2.0, 8.0, 8.0), RED);
        // Negative coordinates also alternate consistently.
        assert_eq!(t.eval(-1.0, 0.0, 8.0, 8.0), BLUE);
    }

    #[test]
    fn stripes_respect_duty_cycle() {
        let t = Texture::Stripes { a: RED, b: BLUE, period: 10, duty: 0.3 };
        assert_eq!(t.eval(0.0, 0.0, 1.0, 1.0), RED);
        assert_eq!(t.eval(0.0, 2.9, 1.0, 1.0), RED);
        assert_eq!(t.eval(0.0, 3.1, 1.0, 1.0), BLUE);
        assert_eq!(t.eval(0.0, 9.9, 1.0, 1.0), BLUE);
        assert_eq!(t.eval(0.0, 10.0, 1.0, 1.0), RED);
    }

    #[test]
    fn bricks_have_mortar_lines_and_offset_rows() {
        let t = Texture::Bricks { brick: RED, mortar: BLUE, w: 8, h: 4 };
        // Mortar on the top edge of each row.
        assert_eq!(t.eval(3.0, 0.0, 1.0, 1.0), BLUE);
        assert_eq!(t.eval(3.0, 4.0, 1.0, 1.0), BLUE);
        // Brick interior.
        assert_eq!(t.eval(3.0, 2.0, 1.0, 1.0), RED);
        // Vertical mortar at x=0 on even rows; on odd rows it moves by w/2.
        assert_eq!(t.eval(0.0, 2.0, 1.0, 1.0), BLUE);
        assert_eq!(t.eval(4.0, 6.0, 1.0, 1.0), BLUE);
        assert_eq!(t.eval(0.0, 6.0, 1.0, 1.0), RED);
    }

    #[test]
    fn noise_is_deterministic_and_in_range() {
        let t = Texture::Noise { a: RED, b: BLUE, scale: 4, seed: 7 };
        let v1 = t.eval(13.7, 22.1, 64.0, 64.0);
        let v2 = t.eval(13.7, 22.1, 64.0, 64.0);
        assert_eq!(v1, v2);
        for i in 0..50 {
            let c = t.eval(i as f32 * 1.3, i as f32 * 0.7, 64.0, 64.0);
            for v in [c.0, c.1, c.2] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn noise_seed_changes_field() {
        let a = Texture::Noise { a: RED, b: BLUE, scale: 4, seed: 1 };
        let b = Texture::Noise { a: RED, b: BLUE, scale: 4, seed: 2 };
        let differs = (0..20).any(|i| {
            a.eval(i as f32 * 3.1, i as f32 * 5.7, 64.0, 64.0)
                != b.eval(i as f32 * 3.1, i as f32 * 5.7, 64.0, 64.0)
        });
        assert!(differs);
    }

    #[test]
    fn color_shift_applies_to_all_variants() {
        let tex = Texture::Bricks { brick: Rgb(0.5, 0.2, 0.1), mortar: Rgb(0.7, 0.7, 0.7), w: 8, h: 4 };
        let shifted = tex.color_shifted(0.1, 0.0, 0.0);
        match shifted {
            Texture::Bricks { brick, mortar, .. } => {
                assert!((brick.0 - 0.6).abs() < 1e-6);
                assert!((mortar.0 - 0.8).abs() < 1e-6);
            }
            _ => panic!("variant changed"),
        }
    }
}
