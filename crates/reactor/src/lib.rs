//! # walrus-reactor
//!
//! A dependency-free readiness-based event loop for Linux, built on `epoll`
//! through a thin FFI shim (the same style as the `signal(2)` binding in
//! walrus-server — no libc crate, just the symbols every unix target links
//! anyway).
//!
//! This crate is deliberately protocol-agnostic: it knows about file
//! descriptors, readiness, tokens, and cross-thread wakeups, and nothing
//! about HTTP or WALRUS. The HTTP per-connection state machine that drives
//! it lives in `walrus-server::reactor`, which keeps the dependency arrow
//! pointing one way (server → reactor).
//!
//! * [`Poller`] — one epoll instance; `register`/`modify`/`deregister` fds
//!   under opaque `u64` tokens, `wait` for decoded [`Event`]s. Level-
//!   triggered, so "still has buffered data" needs no bookkeeping.
//! * [`Waker`] — the self-pipe trick: worker threads finishing CPU-bound
//!   jobs call [`WakeHandle::wake`] to pop a blocked `epoll_wait`
//!   immediately instead of waiting out the poll tick.
//!
//! On non-Linux unix targets the module compiles to a stub and
//! [`supported`] returns `false`; callers fall back to thread-per-
//! connection serving.

#[cfg(target_os = "linux")]
pub mod poller;
#[cfg(target_os = "linux")]
pub mod sys;
#[cfg(target_os = "linux")]
pub mod wake;

#[cfg(target_os = "linux")]
pub use poller::{Event, Interest, Poller};
#[cfg(target_os = "linux")]
pub use wake::{WakeHandle, Waker};

/// True when the reactor backend can run on this target.
pub fn supported() -> bool {
    cfg!(target_os = "linux")
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poller_reports_listener_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.register(listener.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no pending connection yet");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        // Generous timeout; returns as soon as the connect lands.
        poller.wait(&mut events, 2000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn waker_pops_wait_and_coalesces() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new(&poller, 99).unwrap();
        let handle = waker.handle();

        // Multiple wakes before a wait: one event, then drained.
        handle.wake();
        handle.wake();
        handle.wake();
        let mut events = Vec::new();
        poller.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        waker.drain();

        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "drain must clear the pipe");
    }

    #[test]
    fn wake_from_another_thread_while_blocked() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new(&poller, 1).unwrap();
        let handle = waker.handle();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            handle.wake();
        });
        let mut events = Vec::new();
        let started = std::time::Instant::now();
        poller.wait(&mut events, 10_000).unwrap();
        assert!(started.elapsed() < std::time::Duration::from_secs(5));
        assert_eq!(events.len(), 1);
        t.join().unwrap();
    }

    #[test]
    fn interest_modify_switches_read_to_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.register(server_side.as_raw_fd(), 3, Interest::READ).unwrap();

        // Idle socket with read interest: nothing.
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());

        // Write interest on an idle socket: immediately writable.
        poller.modify(server_side.as_raw_fd(), 3, Interest::WRITE).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 2000).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].writable);
        assert!(!events[0].readable);

        // Back to read interest; incoming bytes fire it.
        poller.modify(server_side.as_raw_fd(), 3, Interest::READ).unwrap();
        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 2000).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable);

        poller.deregister(server_side.as_raw_fd()).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "deregistered fd must not report");
    }
}
