//! Minimal vendored stand-in for `proptest`, covering the API surface this
//! workspace uses: the `proptest!` macro, `prop_assert*` / `prop_assume`,
//! range and tuple strategies, `prop_map` / `prop_flat_map`,
//! `collection::vec`, `sample::{Index, select}`, and `any::<T>()`.
//!
//! Semantics: each test runs `ProptestConfig::cases` deterministic cases
//! seeded from the test's module path and name (so failures reproduce
//! across runs and machines). There is no shrinking — a failing case
//! reports its case number and generated inputs are visible via the
//! assertion message instead.
//!
//! Vendored so the workspace builds hermetically with no registry access.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        let mut rng = TestRng { state: seed ^ 0xA076_1D64_78BD_642F };
        rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range must be non-empty");
        self.next_u64() % n
    }
}

/// FNV-1a over a static string: stable per-test seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Config and errors
// ---------------------------------------------------------------------------

/// Per-block configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn new(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, f }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

#[derive(Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values: {}", self.whence);
    }
}

// Numeric ranges as strategies.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+);)*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

// ---------------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------------

pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};

    /// An index into a collection whose length is unknown at generation
    /// time; resolved with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps the raw draw onto `0..len`. `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }

    #[derive(Debug)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Uniformly selects one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty list");
        Select(options)
    }
}

/// Namespace alias matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::new(
                    __seed ^ ((__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest case #{} of {} failed: {}",
                        __case, stringify!($name), e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            // No shrinking or rejection accounting: an assumption failure
            // simply skips the case.
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&(5usize..9), &mut rng);
            assert!((5..9).contains(&v));
            let f = crate::Strategy::generate(&(0.25f32..=0.75), &mut rng);
            assert!((0.25..=0.75).contains(&f));
            let xs = crate::Strategy::generate(&prop::collection::vec(0u8..4, 2..6), &mut rng);
            assert!(xs.len() >= 2 && xs.len() < 6);
            assert!(xs.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trip(xs in prop::collection::vec(any::<u8>(), 0..16), k in 1usize..4) {
            prop_assert!(xs.len() < 16);
            prop_assert_eq!(k.min(3), k, "k was {}", k);
            prop_assume!(k > 0);
        }

        #[test]
        fn combinators_compose(
            pair in (1usize..4, 1usize..4).prop_map(|(a, b)| (a, a + b)),
            pick in prop::sample::select(vec![2usize, 4, 8]),
        ) {
            prop_assert!(pair.1 > pair.0);
            prop_assert!(pick.is_power_of_two());
        }

        #[test]
        fn flat_map_threads_the_rng(
            xs in (2usize..5).prop_flat_map(|n| prop::collection::vec(0.0f64..1.0, n)),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(idx.index(xs.len()) < xs.len());
        }
    }
}
