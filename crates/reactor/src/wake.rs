//! Cross-thread wakeups via the classic self-pipe trick.
//!
//! Worker threads finish CPU-bound jobs off the event loop; they call
//! [`WakeHandle::wake`] to make a blocked `epoll_wait` return immediately
//! so the loop can collect completions. The pipe is nonblocking on both
//! ends: a full pipe means a wakeup is already pending, so `EAGAIN` on
//! write is success, and the loop drains the read end each time it fires.

use std::io;
use std::os::unix::io::RawFd;
use std::sync::Arc;

use crate::poller::{Interest, Poller};
use crate::sys::{sys_close, sys_pipe, sys_read, sys_write};

/// Owns the write end so it stays open as long as any [`WakeHandle`] is
/// alive — workers may outlive the event loop briefly during shutdown, and
/// a wake must never hit a closed (or recycled) fd.
struct WriteEnd(RawFd);

impl Drop for WriteEnd {
    fn drop(&mut self) {
        sys_close(self.0);
    }
}

/// The read half lives in the event loop (registered with the poller);
/// [`WakeHandle`]s are cloned into worker completion callbacks.
pub struct Waker {
    read_fd: RawFd,
    write: Arc<WriteEnd>,
}

impl Waker {
    /// Creates the pipe and registers its read end under `token`.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        let (read_fd, write_fd) = sys_pipe()?;
        poller.register(read_fd, token, Interest::READ)?;
        Ok(Waker { read_fd, write: Arc::new(WriteEnd(write_fd)) })
    }

    /// Signals the event loop. Safe to call from any thread; coalesces —
    /// many wakes before one drain still cause only one loop iteration.
    pub fn wake(&self) {
        // EAGAIN (pipe full) means a wakeup is already queued; any other
        // error leaves the 100ms poll tick as the fallback.
        let _ = sys_write(self.write.0, &[1u8]);
    }

    /// Drains pending wakeups; call whenever the waker token fires.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            match sys_read(self.read_fd, &mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(_) => break, // EAGAIN: drained
            }
        }
    }

    /// A handle that can wake the loop from other threads; keeps the write
    /// end open for as long as it lives.
    pub fn handle(&self) -> WakeHandle {
        WakeHandle { write: Arc::clone(&self.write) }
    }
}

/// Cheap cloneable cross-thread wake handle.
#[derive(Clone)]
pub struct WakeHandle {
    write: Arc<WriteEnd>,
}

impl WakeHandle {
    pub fn wake(&self) {
        let _ = sys_write(self.write.0, &[1u8]);
    }
}

// The raw fds inside are plain integers; the pipe syscalls are thread-safe.
unsafe impl Send for WakeHandle {}
unsafe impl Sync for WakeHandle {}

impl Drop for Waker {
    fn drop(&mut self) {
        sys_close(self.read_fd);
    }
}
