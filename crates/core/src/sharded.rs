//! Sharded durable store: fault isolation, rolling checkpoints,
//! degraded-mode queries, and crash-safe online rebalancing.
//!
//! [`ShardedStore`] splits one logical image database across `N`
//! independent [`DurableDatabase`] shards. Each shard owns its own
//! R\*-tree, write-ahead log, and snapshot under an epoch-scoped
//! directory; an image id is hashed to its shard with [`shard_of`], so
//! every region of an image lives on exactly one shard. The layout —
//! epoch, shard count, and any in-flight migration — is recorded in a
//! checksummed `MANIFEST` at the store root.
//!
//! ## Why the answers are bit-identical to one shard
//!
//! The R\*-tree probe is exact — a query region's ε-neighborhood is
//! enumerated fully on every shard — and an image is scored only from its
//! own region pairs. Scattering a query over N shards therefore produces
//! exactly the per-image similarities the monolithic store produces, and
//! the gather merges them with the same deterministic order (similarity
//! descending, id ascending). The parallel-consistency suite asserts this
//! bit-for-bit — and because the property holds for *any* N, it also holds
//! across a rebalance: the same images grouped differently yield the same
//! ranked answer.
//!
//! ## Fault isolation
//!
//! A shard whose storage fails — at open (unreadable snapshot, corrupt
//! WAL) or at runtime (append failure, poisoned WAL tail) — is
//! **quarantined**: queries skip it and report
//! [`ResultStatus::Degraded`] naming the missing shards, while the store
//! goes *read-only* (every mutation answers
//! [`WalrusError::ShardUnavailable`]). Writes must stop because ids are
//! assigned globally: a quarantined shard may hold the highest id, and
//! handing that id out again would corrupt the store on recovery.
//! `walrus recover <db> --shard <i>` repairs the shard's WAL to its
//! longest clean prefix ([`crate::wal::scan_valid_prefix`]) and swaps the
//! shard back in, restoring writes.
//!
//! ## Rolling checkpoints
//!
//! [`ShardedStore::checkpoint`] folds shards **one at a time**: only the
//! shard being checkpointed takes its exclusive lock, so ingest and
//! queries on every other shard proceed concurrently — the store never
//! stops the world. Writability is tracked in lock-free flags, so ingest
//! admission never blocks on a checkpointing shard's lock.
//!
//! ## Online rebalancing (manifest v2)
//!
//! [`ShardedStore::rebalance`] migrates a live store from `N` to `M`
//! shards without a rewrite-in-place:
//!
//! 1. every mutation in flight is drained (they all hold the ingest lock),
//!    and new mutations/checkpoints are shed with
//!    [`WalrusError::Rebalancing`] while queries keep answering from the
//!    source layout;
//! 2. each **target** shard is built in turn by streaming every global id
//!    through [`shard_of`] under the target count, copying region
//!    signatures byte-identically and padding the sparse id space with
//!    tombstones; the finished shard is written as a fresh snapshot (LSN
//!    0) plus an empty WAL into the next epoch's directory
//!    (`e<epoch>-shard-<i>/`, so no directory is ever renamed);
//! 3. the manifest records the migration as it advances — each target
//!    steps `Stable → Draining → Migrated` with an atomic manifest write
//!    around each build — and one final atomic manifest write commits the
//!    new layout and schedules the old directories for garbage collection.
//!
//! A crash at any step leaves the manifest describing exactly what was
//! durably finished: [`ShardedStore::open`] resumes the migration from the
//! last `Migrated` boundary (rebuilding at most one partially written
//! target), or — when resuming is impossible, e.g. a source shard is
//! damaged — rolls the store back to the untouched source layout. The
//! rebalance fault sweeps drive a crash into every I/O operation of both
//! phases and assert the reopened store is bit-identical to a
//! never-migrated oracle.

use crate::database::{ImageDatabase, ImageMeta, QueryOptions, ResultStatus};
use crate::extract::{extract_regions, extract_regions_guarded};
use crate::params::WalrusParams;
use crate::persist::{self, put_u32, put_u64};
use crate::recovery::{scrub_dir, DirScrub, DurableDatabase, RecoveryReport, SNAPSHOT_FILE, WAL_FILE};
use crate::region::Region;
use crate::storage::{DiskIo, RetryIo, StorageIo};
use crate::store::{RebalanceStatus, ShardCheckpoint, ShardHealth, Store};
use crate::wal;
use crate::{crc32::crc32, QueryOutcome, QueryStats, Result, WalrusError};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use walrus_guard::{Guard, RetryPolicy, SpanRecord, TraceContext};
use walrus_imagery::Image;

/// Manifest file name at the store root.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Most shards a store may have (bounds query fan-out).
pub const MAX_SHARDS: usize = 64;

const MANIFEST_MAGIC: &[u8; 8] = b"WALRUSMF";
const MANIFEST_VERSION: u32 = 2;
/// v1: magic (8) + version (4) + shard count (8) + crc32 (4).
const MANIFEST_V1_LEN: usize = 24;
/// v2 fixed prefix: magic (8) + version (4) + epoch (8) + shard count (8)
/// + gc_prev (8) + migrating flag (1).
const MANIFEST_V2_PREFIX: usize = 37;

/// Per-target-shard migration progress, as recorded in a migrating
/// manifest. The state machine only moves forward: `Stable → Draining →
/// Migrated`, one manifest write per transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationState {
    /// Not started; the target directory may not exist.
    Stable,
    /// Build in progress; the target directory holds partial bytes and
    /// must be rebuilt on resume.
    Draining,
    /// Durably built: snapshot + empty WAL written and fsynced. Resume
    /// trusts this directory byte-for-byte.
    Migrated,
}

/// An in-flight migration, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Migration {
    /// Shard count being migrated to.
    pub target_count: usize,
    /// Per-target-shard progress, indexed by target shard.
    pub states: Vec<MigrationState>,
}

/// The store's layout record (`MANIFEST` v2). v1 manifests (epoch-less,
/// never migrated) decode as epoch 0 with no migration, so pre-rebalance
/// stores open unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Layout epoch: how many committed rebalances this store has seen.
    /// Epoch 0 shards live in `shard-<i>/`, epoch `E ≥ 1` shards in
    /// `e<E>-shard-<i>/` — migration never renames a directory.
    pub epoch: u64,
    /// Current shard count.
    pub shard_count: usize,
    /// When non-zero: the previous epoch's layout had this many shards
    /// and its files still await garbage collection (cleared, by one more
    /// manifest write, once they are gone).
    pub gc_prev: usize,
    /// The in-flight migration, if any.
    pub migration: Option<Migration>,
}

impl Manifest {
    /// A stable (non-migrating, nothing to collect) layout record.
    pub fn stable(epoch: u64, shard_count: usize) -> Self {
        Manifest { epoch, shard_count, gc_prev: 0, migration: None }
    }
}

/// Directory name of shard `shard` in layout epoch `epoch`.
pub fn shard_dir_name_at(epoch: u64, shard: usize) -> String {
    if epoch == 0 {
        format!("shard-{shard:03}")
    } else {
        format!("e{epoch}-shard-{shard:03}")
    }
}

/// Directory name of shard `i` in the original (epoch 0) layout.
pub fn shard_dir_name(shard: usize) -> String {
    shard_dir_name_at(0, shard)
}

/// Maps a global image id to its shard. The hash is the splitmix64
/// finalizer — uniform over sequential ids, platform-independent, and
/// **stable**: it is part of the manifest format, so changing it requires
/// a new manifest version.
pub fn shard_of(id: usize, shard_count: usize) -> usize {
    let mut z = (id as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % shard_count as u64) as usize
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut out = Vec::with_capacity(MANIFEST_V2_PREFIX + 16);
    out.extend_from_slice(MANIFEST_MAGIC);
    put_u32(&mut out, MANIFEST_VERSION);
    put_u64(&mut out, m.epoch);
    put_u64(&mut out, m.shard_count as u64);
    put_u64(&mut out, m.gc_prev as u64);
    match &m.migration {
        None => out.push(0),
        Some(mig) => {
            out.push(1);
            put_u64(&mut out, mig.target_count as u64);
            for state in &mig.states {
                out.push(match state {
                    MigrationState::Stable => 0,
                    MigrationState::Draining => 1,
                    MigrationState::Migrated => 2,
                });
            }
        }
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

fn read_u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("length checked"))
}

fn decode_manifest(bytes: &[u8]) -> Result<Manifest> {
    let corrupt = |what: String| WalrusError::Corrupt(format!("store manifest: {what}"));
    if bytes.len() < 16 {
        return Err(corrupt(format!("wrong length {}", bytes.len())));
    }
    if &bytes[..8] != MANIFEST_MAGIC {
        return Err(corrupt("bad magic".to_string()));
    }
    // Checksum first: any damage — to either version, any field — is
    // "corrupt", not a misdecoded value.
    let stored_crc =
        u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("length checked"));
    if crc32(&bytes[..bytes.len() - 4]) != stored_crc {
        return Err(corrupt("checksum mismatch".to_string()));
    }
    let shard_range = |count: usize, what: &str| {
        if (1..=MAX_SHARDS).contains(&count) {
            Ok(count)
        } else {
            Err(corrupt(format!("implausible {what} {count}")))
        }
    };
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("length checked"));
    match version {
        1 => {
            // Pre-rebalance stores: a bare shard count, read as epoch 0.
            if bytes.len() != MANIFEST_V1_LEN {
                return Err(corrupt(format!(
                    "wrong v1 length {} (want {MANIFEST_V1_LEN})",
                    bytes.len()
                )));
            }
            let count = shard_range(read_u64_at(bytes, 12) as usize, "shard count")?;
            Ok(Manifest::stable(0, count))
        }
        2 => {
            if bytes.len() < MANIFEST_V2_PREFIX + 4 {
                return Err(corrupt(format!("wrong length {}", bytes.len())));
            }
            let epoch = read_u64_at(bytes, 12);
            let shard_count = shard_range(read_u64_at(bytes, 20) as usize, "shard count")?;
            let gc_prev = read_u64_at(bytes, 28) as usize;
            if gc_prev > MAX_SHARDS {
                return Err(corrupt(format!("implausible gc_prev {gc_prev}")));
            }
            if gc_prev != 0 && epoch == 0 {
                return Err(corrupt("gc_prev without a prior epoch".to_string()));
            }
            let migration = match bytes[36] {
                0 => {
                    if bytes.len() != MANIFEST_V2_PREFIX + 4 {
                        return Err(corrupt(format!("wrong length {}", bytes.len())));
                    }
                    None
                }
                1 => {
                    if bytes.len() < MANIFEST_V2_PREFIX + 8 + 4 {
                        return Err(corrupt(format!("wrong length {}", bytes.len())));
                    }
                    let target_count =
                        shard_range(read_u64_at(bytes, 37) as usize, "target shard count")?;
                    let want = MANIFEST_V2_PREFIX + 8 + target_count + 4;
                    if bytes.len() != want {
                        return Err(corrupt(format!(
                            "wrong length {} (want {want})",
                            bytes.len()
                        )));
                    }
                    let mut states = Vec::with_capacity(target_count);
                    for (i, &b) in bytes[45..45 + target_count].iter().enumerate() {
                        states.push(match b {
                            0 => MigrationState::Stable,
                            1 => MigrationState::Draining,
                            2 => MigrationState::Migrated,
                            other => {
                                return Err(corrupt(format!(
                                    "bad migration state {other} for target shard {i}"
                                )))
                            }
                        });
                    }
                    Some(Migration { target_count, states })
                }
                other => return Err(corrupt(format!("bad migrating flag {other}"))),
            };
            Ok(Manifest { epoch, shard_count, gc_prev, migration })
        }
        v => Err(corrupt(format!("unsupported version {v}"))),
    }
}

/// Writes the manifest atomically (temp file → fsync → rename → directory
/// fsync), same discipline as snapshots. This single write is the commit
/// point for every layout transition.
fn write_manifest(io: &dyn StorageIo, root: &Path, manifest: &Manifest) -> Result<()> {
    let path = root.join(MANIFEST_FILE);
    persist::atomic_write_bytes(io, &path, &encode_manifest(manifest)).map_err(|e| match e {
        WalrusError::Io { context, source } if context.is_empty() => WalrusError::Io {
            context: format!("write manifest {}", path.display()),
            source,
        },
        other => other,
    })
}

/// Reads and validates the manifest.
pub fn read_manifest(io: &dyn StorageIo, root: &Path) -> Result<Manifest> {
    let path = root.join(MANIFEST_FILE);
    let bytes = io.read(&path).map_err(WalrusError::io_context("read manifest", &path))?;
    decode_manifest(&bytes)
}

/// True when `root` holds a sharded store (its manifest is present).
pub fn is_sharded_store(root: &Path) -> bool {
    root.join(MANIFEST_FILE).exists()
}

/// What opening one shard found: its recovery report, or the error that
/// quarantined it.
#[derive(Debug, Clone)]
pub struct ShardRecovery {
    /// Shard index.
    pub shard: usize,
    /// Recovery report when the shard opened cleanly.
    pub report: Option<RecoveryReport>,
    /// Open error when the shard was quarantined.
    pub error: Option<String>,
}

/// What [`ShardedStore::recover_shard`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRepair {
    /// Shard index.
    pub shard: usize,
    /// WAL bytes dropped to restore a clean log (0 = log was clean).
    pub truncated_bytes: u64,
    /// Committed WAL records that survived the repair.
    pub records_kept: usize,
    /// The reopen's recovery report.
    pub report: RecoveryReport,
}

/// What a committed [`ShardedStore::rebalance`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Shard count before the migration.
    pub from_shards: usize,
    /// Shard count after the migration.
    pub to_shards: usize,
    /// The committed layout epoch.
    pub epoch: u64,
    /// Live images carried across (every one of them).
    pub images: usize,
}

/// One shard's verdict from [`scrub_store`].
#[derive(Debug)]
pub struct ShardScrub {
    /// Shard index.
    pub shard: usize,
    /// What the walk of its snapshot and WAL found.
    pub scrub: DirScrub,
}

/// Read-only integrity walk of a sharded store: every shard's snapshot is
/// re-read and CRC-validated and its WAL checked to be one clean prefix,
/// without opening (or mutating) the store. `only` restricts the walk to
/// one shard. A mid-migration store is refused — open it once first so the
/// migration resumes or rolls back and the layout is unambiguous.
pub fn scrub_store(io: &dyn StorageIo, root: &Path, only: Option<usize>) -> Result<Vec<ShardScrub>> {
    let manifest = read_manifest(io, root)?;
    if manifest.migration.is_some() {
        return Err(WalrusError::BadParams(
            "store is mid-migration; open it once to resume or roll back, then scrub".to_string(),
        ));
    }
    if let Some(shard) = only {
        if shard >= manifest.shard_count {
            return Err(WalrusError::BadParams(format!(
                "shard {shard} out of range (store has {} shards; valid shards are 0..={})",
                manifest.shard_count,
                manifest.shard_count - 1
            )));
        }
    }
    let mut verdicts = Vec::new();
    for shard in 0..manifest.shard_count {
        if only.is_some_and(|o| o != shard) {
            continue;
        }
        let dir = root.join(shard_dir_name_at(manifest.epoch, shard));
        verdicts.push(ShardScrub { shard, scrub: scrub_dir(io, &dir) });
    }
    Ok(verdicts)
}

#[derive(Debug)]
enum ShardSlot {
    Healthy(Box<DurableDatabase>),
    /// A failed shard, retaining the last counts observed while it was
    /// healthy so health reporting doesn't pretend the shard is empty.
    /// Both are 0 when the shard never opened (its contents are unknown).
    Quarantined { error: String, images: usize, wal_bytes: u64 },
}

/// One complete layout: the epoch plus every shard of that epoch. The
/// store holds the current set behind an `Arc` swap, so a committed
/// rebalance replaces the whole layout in one pointer store while
/// in-flight queries keep the set they started on.
#[derive(Debug)]
struct ShardSet {
    epoch: u64,
    shards: Vec<parking_lot::RwLock<ShardSlot>>,
    /// Lock-free mirror of each slot's quarantine bit, so write admission
    /// never blocks on a shard lock held by a rolling checkpoint.
    quarantined: Vec<AtomicBool>,
}

/// Opens every shard of one layout epoch, quarantining the ones that
/// fail. Returns the set, what happened per shard, and the resolved
/// parameters (persisted shard parameters win over the caller's, the same
/// precedence the monolithic open has).
fn open_shard_set(
    io: &Arc<dyn StorageIo>,
    root: &Path,
    params: WalrusParams,
    epoch: u64,
    count: usize,
) -> (ShardSet, Vec<ShardRecovery>, WalrusParams) {
    let mut slots = Vec::with_capacity(count);
    let mut quarantined = Vec::with_capacity(count);
    let mut recoveries = Vec::with_capacity(count);
    let mut resolved_params: Option<WalrusParams> = None;
    for shard in 0..count {
        let dir = root.join(shard_dir_name_at(epoch, shard));
        match DurableDatabase::open_with(io.clone(), &dir, params) {
            Ok((db, report)) => {
                if resolved_params.is_none() {
                    resolved_params = Some(*db.db().params());
                }
                slots.push(parking_lot::RwLock::new(ShardSlot::Healthy(Box::new(db))));
                quarantined.push(AtomicBool::new(false));
                recoveries.push(ShardRecovery { shard, report: Some(report), error: None });
            }
            Err(e) => {
                let error = e.to_string();
                slots.push(parking_lot::RwLock::new(ShardSlot::Quarantined {
                    error: error.clone(),
                    images: 0,
                    wal_bytes: 0,
                }));
                quarantined.push(AtomicBool::new(true));
                recoveries.push(ShardRecovery { shard, report: None, error: Some(error) });
            }
        }
    }
    (
        ShardSet { epoch, shards: slots, quarantined },
        recoveries,
        resolved_params.unwrap_or(params),
    )
}

/// Builds target shard `target` of the next epoch from the source
/// databases: every global id below `next_id` that hashes to `target`
/// under the target count is copied (regions, and therefore signatures,
/// byte-identically), and every other slot below `next_id` becomes a
/// tombstone. The full-span padding is what preserves the global id
/// high-water mark even when the highest ids are removed images — id
/// assignment after reopen scans slot lengths, and handing out an old id
/// again would corrupt the store.
///
/// The shard is durably finished in three steps: snapshot at LSN 0
/// (atomic write), fresh empty WAL, directory fsync.
fn build_target_shard(
    io: &dyn StorageIo,
    root: &Path,
    epoch: u64,
    sources: &[&ImageDatabase],
    next_id: usize,
    target: usize,
    target_count: usize,
) -> Result<()> {
    let dir = root.join(shard_dir_name_at(epoch + 1, target));
    io.create_dir_all(&dir)
        .map_err(WalrusError::io_context("create target shard dir", &dir))?;
    let mut db = ImageDatabase::new(*sources[0].params())?;
    for id in 0..next_id {
        if shard_of(id, target_count) != target {
            db.insert_tombstone();
            continue;
        }
        match sources[shard_of(id, sources.len())].image(id) {
            Some(img) => {
                let got = db.insert_regions(&img.name, img.width, img.height, img.regions.clone())?;
                debug_assert_eq!(got, id, "dense copy keeps global ids");
            }
            None => db.insert_tombstone(),
        }
    }
    let snapshot = dir.join(SNAPSHOT_FILE);
    persist::save_to_file_with(io, &db, &snapshot, 0)?;
    let wal_path = dir.join(WAL_FILE);
    wal::reset(io, &wal_path).map_err(WalrusError::io_context("reset wal", &wal_path))?;
    io.fsync(&dir).map_err(WalrusError::io_context("fsync target shard dir", &dir))?;
    Ok(())
}

/// Drives a migrating manifest to its committed end: builds every target
/// shard not already durably `Migrated`, stepping the manifest
/// `Draining → Migrated` around each build, then writes the committed
/// stable manifest (next epoch, target count, previous layout scheduled
/// for GC). `manifest` always tracks the *last durably written* state —
/// it is assigned only after the corresponding write succeeds — so a
/// failure leaves the caller knowing exactly what is on disk.
fn complete_migration(
    io: &dyn StorageIo,
    root: &Path,
    sources: &[&ImageDatabase],
    manifest: &mut Manifest,
    progress: Option<&AtomicUsize>,
) -> Result<()> {
    let migration = manifest.migration.clone().expect("caller passes a migrating manifest");
    let epoch = manifest.epoch;
    let target_count = migration.target_count;
    let next_id = sources.iter().map(|s| s.image_slots().len()).max().unwrap_or(0);
    if let Some(p) = progress {
        let done = migration.states.iter().filter(|s| **s == MigrationState::Migrated).count();
        p.store(done, Ordering::Release);
    }
    for target in 0..target_count {
        let state = manifest.migration.as_ref().expect("still migrating").states[target];
        if state == MigrationState::Migrated {
            continue; // durably built by a previous attempt
        }
        let mut draining = manifest.clone();
        draining.migration.as_mut().expect("still migrating").states[target] =
            MigrationState::Draining;
        write_manifest(io, root, &draining)?;
        *manifest = draining;
        build_target_shard(io, root, epoch, sources, next_id, target, target_count)?;
        let mut migrated = manifest.clone();
        migrated.migration.as_mut().expect("still migrating").states[target] =
            MigrationState::Migrated;
        write_manifest(io, root, &migrated)?;
        *manifest = migrated;
        if let Some(p) = progress {
            p.fetch_add(1, Ordering::AcqRel);
        }
    }
    let committed = Manifest {
        epoch: epoch + 1,
        shard_count: target_count,
        gc_prev: sources.len(),
        migration: None,
    };
    write_manifest(io, root, &committed)?;
    *manifest = committed;
    Ok(())
}

/// Resumes a migration found in the manifest at open: reopens every
/// source shard and drives [`complete_migration`] to the commit. Returns
/// the committed manifest. Fails (without touching the manifest) when a
/// source shard cannot open — the caller then rolls back.
fn resume_migration(
    io: &Arc<dyn StorageIo>,
    root: &Path,
    params: WalrusParams,
    manifest: &Manifest,
) -> Result<Manifest> {
    let mut manifest = manifest.clone();
    let epoch = manifest.epoch;
    let mut sources = Vec::with_capacity(manifest.shard_count);
    for shard in 0..manifest.shard_count {
        let dir = root.join(shard_dir_name_at(epoch, shard));
        let (db, _report) = DurableDatabase::open_with(io.clone(), &dir, params)?;
        sources.push(db);
    }
    let source_dbs: Vec<&ImageDatabase> = sources.iter().map(|d| d.db()).collect();
    complete_migration(io.as_ref(), root, &source_dbs, &mut manifest, None)?;
    Ok(manifest)
}

/// Abandons a migration: durably restores the stable source manifest —
/// the single write that makes the staged targets unreachable — then
/// drops their staging files. Returns the restored manifest.
fn rollback_migration(io: &dyn StorageIo, root: &Path, manifest: &Manifest) -> Result<Manifest> {
    let migration = manifest.migration.as_ref().expect("rollback needs a migrating manifest");
    let stable = Manifest::stable(manifest.epoch, manifest.shard_count);
    write_manifest(io, root, &stable)?;
    gc_layout_files(io, root, manifest.epoch + 1, migration.target_count);
    Ok(stable)
}

/// Removes the store files (snapshot, WAL, and their temp siblings) of
/// `count` shards in layout `epoch`. Returns false when something that
/// exists could not be removed — the caller then leaves `gc_prev` set so
/// a later open retries.
fn gc_layout_files(io: &dyn StorageIo, root: &Path, epoch: u64, count: usize) -> bool {
    let mut clean = true;
    for shard in 0..count {
        let dir = root.join(shard_dir_name_at(epoch, shard));
        for file in [SNAPSHOT_FILE, WAL_FILE] {
            let path = dir.join(file);
            let mut tmp = path.as_os_str().to_owned();
            tmp.push(".tmp");
            for victim in [path, PathBuf::from(tmp)] {
                if io.exists(&victim) && io.remove(&victim).is_err() {
                    clean = false;
                }
            }
        }
    }
    clean
}

/// Collects the previous layout a committed manifest scheduled for GC
/// (`gc_prev`), then clears the marker with one more manifest write.
/// Entirely best-effort: any failure leaves `gc_prev` in place and the
/// next open retries.
fn gc_previous_layout(io: &dyn StorageIo, root: &Path, manifest: &mut Manifest) {
    if manifest.gc_prev == 0 {
        return;
    }
    debug_assert!(manifest.epoch >= 1, "decode_manifest enforces gc_prev ⇒ epoch ≥ 1");
    if !gc_layout_files(io, root, manifest.epoch - 1, manifest.gc_prev) {
        return;
    }
    let cleared = Manifest { gc_prev: 0, ..manifest.clone() };
    if write_manifest(io, root, &cleared).is_ok() {
        *manifest = cleared;
    }
}

/// N-shard durable store. See the module docs for the design.
#[derive(Debug)]
pub struct ShardedStore {
    io: Arc<dyn StorageIo>,
    root: PathBuf,
    params: WalrusParams,
    /// The current layout. Queries clone the `Arc` once and run entirely
    /// on that consistent set; a committed rebalance swaps the pointer.
    layout: parking_lot::RwLock<Arc<ShardSet>>,
    /// Global id assignment: the next id to hand out. Held across the
    /// target shard's WAL append so ids arrive at each shard in strictly
    /// increasing order (a WAL invariant). Also the rebalance drain
    /// point: acquiring it once guarantees no mutation is in flight.
    ingest: parking_lot::Mutex<usize>,
    /// Set for the whole duration of a rebalance; mutations and
    /// checkpoints shed with [`WalrusError::Rebalancing`] while it holds.
    rebalancing: AtomicBool,
    /// Target shard count of the in-flight rebalance (0 otherwise).
    rebalance_target: AtomicUsize,
    /// Target shards durably `Migrated` so far (monotone during one
    /// rebalance; retains the final count afterwards).
    shards_migrated: AtomicUsize,
}

fn quarantine_worthy(e: &WalrusError) -> bool {
    matches!(e, WalrusError::Io { .. } | WalrusError::Corrupt(_))
}

impl ShardedStore {
    /// Opens (or creates) a sharded store on the real filesystem.
    ///
    /// `shards` is the shard count for a **new** store; pass `0` to accept
    /// an existing store's manifest. A non-zero `shards` that disagrees
    /// with an existing manifest is an error — the layout is changed with
    /// [`ShardedStore::rebalance`], never by re-opening.
    ///
    /// An interrupted migration is finished (or rolled back) here, before
    /// the store opens: the manifest says exactly which target shards are
    /// durably built, so the open resumes from that boundary and the
    /// caller always sees a stable layout.
    ///
    /// A shard that fails to open is quarantined, not fatal: the returned
    /// [`ShardRecovery`] list says what happened to each shard. Only a
    /// missing or corrupt manifest fails the open itself.
    pub fn open(
        root: impl AsRef<Path>,
        params: WalrusParams,
        shards: usize,
    ) -> Result<(Self, Vec<ShardRecovery>)> {
        Self::open_with(
            Arc::new(RetryIo::new(Arc::new(DiskIo), RetryPolicy::default())),
            root,
            params,
            shards,
        )
    }

    /// Like [`ShardedStore::open`] but over a pluggable I/O layer — the
    /// entry point for fault-injection tests.
    pub fn open_with(
        io: Arc<dyn StorageIo>,
        root: impl AsRef<Path>,
        params: WalrusParams,
        shards: usize,
    ) -> Result<(Self, Vec<ShardRecovery>)> {
        let root = root.as_ref().to_path_buf();
        io.create_dir_all(&root)?;
        let manifest_path = root.join(MANIFEST_FILE);
        let mut manifest = if io.exists(&manifest_path) {
            let bytes = io
                .read(&manifest_path)
                .map_err(WalrusError::io_context("read manifest", &manifest_path))?;
            decode_manifest(&bytes)?
        } else {
            if io.exists(&root.join(SNAPSHOT_FILE)) {
                return Err(WalrusError::BadParams(
                    "directory holds a non-sharded store (snapshot present, no manifest)"
                        .to_string(),
                ));
            }
            if shards == 0 {
                return Err(WalrusError::BadParams(
                    "no sharded store here; a shard count is required to create one".to_string(),
                ));
            }
            if !(1..=MAX_SHARDS).contains(&shards) {
                return Err(WalrusError::BadParams(format!(
                    "shard count {shards} out of range 1..={MAX_SHARDS}"
                )));
            }
            let m = Manifest::stable(0, shards);
            write_manifest(io.as_ref(), &root, &m)?;
            m
        };

        if manifest.migration.is_some() {
            // A rebalance was interrupted. Resume it from the last durable
            // boundary; if the sources can't carry it (e.g. one is
            // damaged), roll back to the untouched source layout so the
            // store still opens.
            manifest = match resume_migration(&io, &root, params, &manifest) {
                Ok(committed) => committed,
                Err(resume_err) => match rollback_migration(io.as_ref(), &root, &manifest) {
                    Ok(stable) => stable,
                    Err(_) => return Err(resume_err),
                },
            };
        }
        if manifest.gc_prev != 0 {
            gc_previous_layout(io.as_ref(), &root, &mut manifest);
        }
        if shards != 0 && shards != manifest.shard_count {
            return Err(WalrusError::BadParams(format!(
                "store has {} shards; requested {shards} (change the layout with `walrus \
                 rebalance --shards {shards}`)",
                manifest.shard_count
            )));
        }

        let (set, recoveries, resolved_params) =
            open_shard_set(&io, &root, params, manifest.epoch, manifest.shard_count);
        let next_id = set
            .shards
            .iter()
            .map(|slot| match &*slot.read() {
                ShardSlot::Healthy(db) => db.db().image_slots().len(),
                ShardSlot::Quarantined { .. } => 0,
            })
            .max()
            .unwrap_or(0);

        let store = ShardedStore {
            io,
            root,
            params: resolved_params,
            layout: parking_lot::RwLock::new(Arc::new(set)),
            ingest: parking_lot::Mutex::new(next_id),
            rebalancing: AtomicBool::new(false),
            rebalance_target: AtomicUsize::new(0),
            shards_migrated: AtomicUsize::new(0),
        };
        Ok((store, recoveries))
    }

    /// The current layout, as one consistent set.
    fn layout(&self) -> Arc<ShardSet> {
        self.layout.read().clone()
    }

    /// Store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of shards in the current layout.
    pub fn shard_count(&self) -> usize {
        self.layout().shards.len()
    }

    /// Current layout epoch (how many committed rebalances).
    pub fn epoch(&self) -> u64 {
        self.layout().epoch
    }

    /// A copy of the engine configuration.
    pub fn params(&self) -> WalrusParams {
        self.params
    }

    /// The next global id that would be assigned — an exclusive upper bound
    /// on every id the store has handed out.
    pub fn next_id(&self) -> usize {
        *self.ingest.lock()
    }

    /// Indices of the currently quarantined shards.
    pub fn quarantined_shards(&self) -> Vec<usize> {
        let set = self.layout();
        set.quarantined
            .iter()
            .enumerate()
            .filter(|(_, q)| q.load(Ordering::Acquire))
            .map(|(i, _)| i)
            .collect()
    }

    /// Admission check for mutations: shed while rebalancing (checked
    /// first, then the layout is fetched, so a cleared flag implies the
    /// committed layout is visible), and refuse while any shard is
    /// quarantined (ids are global; see the module docs). Lock-free, so
    /// admission never waits behind a shard checkpoint.
    fn writable_layout(&self) -> Result<Arc<ShardSet>> {
        if self.rebalancing.load(Ordering::Acquire) {
            return Err(WalrusError::Rebalancing);
        }
        let set = self.layout();
        match set.quarantined.iter().position(|q| q.load(Ordering::Acquire)) {
            Some(shard) => Err(WalrusError::ShardUnavailable { shard }),
            None => Ok(set),
        }
    }

    fn mark_quarantined(&self, set: &ShardSet, shard: usize, slot: &mut ShardSlot, error: String) {
        set.quarantined[shard].store(true, Ordering::Release);
        // Keep the last counts the shard reported while healthy: health
        // gauges should say what the quarantined shard held, not zero.
        let (images, wal_bytes) = match &*slot {
            ShardSlot::Healthy(db) => (db.len(), db.wal_len()),
            ShardSlot::Quarantined { images, wal_bytes, .. } => (*images, *wal_bytes),
        };
        *slot = ShardSlot::Quarantined { error, images, wal_bytes };
    }

    /// Inserts pre-extracted regions at the next global id. Caller holds
    /// the ingest lock (`next`).
    fn insert_extracted_locked(
        &self,
        set: &ShardSet,
        next: &mut usize,
        name: &str,
        width: usize,
        height: usize,
        regions: Vec<Region>,
    ) -> Result<usize> {
        let id = *next;
        let shard = shard_of(id, set.shards.len());
        let mut slot = set.shards[shard].write();
        let (result, poisoned) = match &mut *slot {
            ShardSlot::Healthy(db) => {
                let r = db.insert_regions_at(id, name, width, height, regions);
                let poisoned = db.is_poisoned();
                (r, poisoned)
            }
            ShardSlot::Quarantined { .. } => {
                return Err(WalrusError::ShardUnavailable { shard });
            }
        };
        match result {
            Ok(got) => {
                *next = id + 1;
                Ok(got)
            }
            Err(e) => {
                if poisoned || quarantine_worthy(&e) {
                    self.mark_quarantined(set, shard, &mut slot, e.to_string());
                }
                Err(e)
            }
        }
    }

    /// Extracts regions of `image` and durably inserts them; returns the
    /// new global id.
    pub fn insert_image(&self, name: &str, image: &Image) -> Result<usize> {
        let regions = extract_regions(image, &self.params)?;
        let mut next = self.ingest.lock();
        let set = self.writable_layout()?;
        self.insert_extracted_locked(&set, &mut next, name, image.width(), image.height(), regions)
    }

    /// Durably inserts pre-extracted regions at the next global id — the
    /// sharded counterpart of [`DurableDatabase::insert_regions`], used by
    /// fault sweeps that pre-compute extraction once per fixture.
    pub fn insert_regions(
        &self,
        name: &str,
        width: usize,
        height: usize,
        regions: Vec<Region>,
    ) -> Result<usize> {
        let mut next = self.ingest.lock();
        let set = self.writable_layout()?;
        self.insert_extracted_locked(&set, &mut next, name, width, height, regions)
    }

    /// Durable batch ingest: parallel lock-free extraction, then the
    /// ingest lock for id assignment and **shard-parallel** WAL
    /// append/index — images are grouped by [`shard_of`] and each shard's
    /// group runs as one work unit on the parallel pool (ids ascending
    /// within the shard, so each shard's WAL bytes are identical to a
    /// serial insert loop). A mid-batch failure commits a per-shard
    /// prefix: every shard keeps the records it appended before the
    /// failure, and the returned error is the one a serial left-to-right
    /// loop would have hit first (lowest failing id).
    pub fn insert_images_batch(&self, items: &[(&str, &Image)]) -> Result<Vec<usize>> {
        self.insert_images_batch_guarded(items, &Guard::none())
    }

    /// [`ShardedStore::insert_images_batch`] under a lifecycle [`Guard`];
    /// all-or-nothing under interruption, with the final poll before the
    /// ingest lock is taken.
    pub fn insert_images_batch_guarded(
        &self,
        items: &[(&str, &Image)],
        guard: &Guard,
    ) -> Result<Vec<usize>> {
        let params = self.params;
        let threads = walrus_parallel::resolve_threads(params.threads);
        let ingest_span = guard.span("ingest");
        if let Some(s) = &ingest_span {
            s.add("images", items.len() as u64);
        }
        // Workers share the interrupt sources but not the trace (spans are
        // opened only on this orchestrating thread).
        let extract_span = guard.span("extract");
        let worker_guard = guard.without_trace();
        let extracted: Vec<Vec<Region>> =
            walrus_parallel::try_parallel_map_guarded(threads, guard, items, |_, (_, image)| {
                extract_regions_guarded(image, &params, 1, &worker_guard)
            })?;
        if let Some(s) = &extract_span {
            s.add("regions", extracted.iter().map(Vec::len).sum::<usize>() as u64);
        }
        drop(extract_span);
        guard.poll().map_err(WalrusError::from)?;
        let wal_span = guard.span("wal_append");
        let mut next = self.ingest.lock();
        let set = self.writable_layout()?;
        let wal_before = self.wal_len();

        // Pre-assign the whole id range under the ingest lock, then group
        // by destination shard. Shards are independent append streams, so
        // each group becomes one pool work unit holding its shard's write
        // lock once; within a shard ids stay ascending, which keeps the
        // per-shard WAL bytes identical to a serial insert loop.
        // One shard's work: (global id, item index, extracted regions).
        type ShardWork = Vec<(usize, usize, Vec<Region>)>;
        let base = *next;
        let shard_count = set.shards.len();
        let mut groups: Vec<ShardWork> = (0..shard_count).map(|_| Vec::new()).collect();
        for (i, regions) in extracted.into_iter().enumerate() {
            let id = base + i;
            groups[shard_of(id, shard_count)].push((id, i, regions));
        }
        let batches: Vec<(usize, parking_lot::Mutex<ShardWork>)> = groups
            .into_iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(shard, g)| (shard, parking_lot::Mutex::new(g)))
            .collect();

        struct ShardIngest {
            /// Ids durably committed on this shard (an in-order prefix of
            /// the shard's assigned group).
            committed: Vec<usize>,
            /// First failure on this shard, tagged with its failing id.
            error: Option<(usize, WalrusError)>,
        }

        let shard_workers = threads.min(batches.len().max(1));
        let results: Vec<ShardIngest> =
            walrus_parallel::parallel_map(shard_workers, &batches, |_, (shard, work)| {
                let work = std::mem::take(&mut *work.lock());
                let mut committed = Vec::with_capacity(work.len());
                let mut error = None;
                let mut slot = set.shards[*shard].write();
                for (id, idx, regions) in work {
                    let (name, image) = items[idx];
                    let step = match &mut *slot {
                        ShardSlot::Healthy(db) => {
                            let r = db.insert_regions_at(
                                id,
                                name,
                                image.width(),
                                image.height(),
                                regions,
                            );
                            let poisoned = db.is_poisoned();
                            Some((r, poisoned))
                        }
                        ShardSlot::Quarantined { .. } => None,
                    };
                    match step {
                        Some((Ok(got), _)) => committed.push(got),
                        Some((Err(e), poisoned)) => {
                            if poisoned || quarantine_worthy(&e) {
                                self.mark_quarantined(&set, *shard, &mut slot, e.to_string());
                            }
                            error = Some((id, e));
                            break;
                        }
                        None => {
                            error = Some((id, WalrusError::ShardUnavailable { shard: *shard }));
                            break;
                        }
                    }
                }
                ShardIngest { committed, error }
            });

        // Ids are never reused: advance past the highest committed id even
        // when a lower id on another shard failed (the failed slot becomes
        // a tombstone-padded hole in its shard, like any sparse global id).
        let max_committed = results.iter().flat_map(|r| r.committed.iter().copied()).max();
        if let Some(max_id) = max_committed {
            *next = (*next).max(max_id + 1);
        }
        if let Some((_, e)) =
            results.into_iter().filter_map(|r| r.error).min_by_key(|(id, _)| *id)
        {
            return Err(e);
        }

        let ids: Vec<usize> = (base..base + items.len()).collect();
        if let Some(s) = &wal_span {
            s.add("records", ids.len() as u64);
            s.add("bytes", self.wal_len().saturating_sub(wal_before));
        }
        Ok(ids)
    }

    /// Durably removes an image from its shard.
    pub fn remove_image(&self, id: usize) -> Result<()> {
        let _next = self.ingest.lock();
        let set = self.writable_layout()?;
        let shard = shard_of(id, set.shards.len());
        let mut slot = set.shards[shard].write();
        let (result, poisoned) = match &mut *slot {
            ShardSlot::Healthy(db) => {
                let r = db.remove_image(id);
                let poisoned = db.is_poisoned();
                (r, poisoned)
            }
            ShardSlot::Quarantined { .. } => {
                return Err(WalrusError::ShardUnavailable { shard });
            }
        };
        result.map_err(|e| {
            if poisoned || quarantine_worthy(&e) {
                self.mark_quarantined(set.as_ref(), shard, &mut slot, e.to_string());
            }
            e
        })
    }

    /// Scatter-gather query under per-request [`QueryOptions`]. Healthy
    /// shards are probed in parallel on the `walrus-parallel` pool (each
    /// worker records its `shard_probe` span into a private trace that is
    /// grafted back in shard order, so the trace tree is identical for
    /// every thread count); quarantined shards are skipped and reported in
    /// [`ResultStatus::Degraded`]. The whole query runs on one layout
    /// `Arc`: a rebalance committing mid-query does not change the set
    /// this query reads.
    pub fn query_with_options_guarded(
        &self,
        query: &Image,
        opts: &QueryOptions,
        guard: &Guard,
    ) -> Result<QueryOutcome> {
        let (params, min_similarity) = opts.resolve(&self.params)?;
        let _query_span = guard.span("query");
        let regions = match extract_regions_guarded(query, &params, params.threads, guard) {
            Ok(r) => r,
            Err(WalrusError::DeadlineExceeded) => return Ok(QueryOutcome::empty_partial()),
            Err(e) => return Err(e),
        };
        let set = self.layout();
        let mut outcome =
            self.scatter_gather(&set, &params, &regions, query.area(), min_similarity, guard)?;
        if let Some(k) = opts.k {
            outcome.matches.truncate(k);
        }
        Ok(outcome)
    }

    /// Query with default options (the sharded counterpart of
    /// [`crate::ImageDatabase::query_guarded`]).
    pub fn query_guarded(&self, query: &Image, guard: &Guard) -> Result<QueryOutcome> {
        self.query_with_options_guarded(query, &QueryOptions::default(), guard)
    }

    /// Full query without a guard.
    pub fn query(&self, query: &Image) -> Result<QueryOutcome> {
        self.query_guarded(query, &Guard::none())
    }

    /// Probes one shard under `guard` (a worker guard carrying a private
    /// trace when the request is traced). `Ok(None)` = shard quarantined.
    #[allow(clippy::too_many_arguments)]
    fn probe_shard(
        &self,
        set: &ShardSet,
        i: usize,
        params: &WalrusParams,
        q_regions: &[Region],
        query_area: usize,
        min_similarity: f64,
        guard: &Guard,
    ) -> Result<Option<QueryOutcome>> {
        let probe_span = guard.span("shard_probe");
        if let Some(s) = &probe_span {
            s.add("shard", i as u64);
        }
        let slot = set.shards[i].read();
        let db = match &*slot {
            ShardSlot::Healthy(db) => db,
            ShardSlot::Quarantined { .. } => return Ok(None),
        };
        // Each shard probes under the *full* candidate budget; the
        // aggregate is enforced after the gather. Splitting the budget
        // across shards instead would reject queries the monolithic
        // store accepts (one hot shard vs. an even spread), breaking
        // the error/no-error equivalence the bit-identity tests pin.
        let shard_outcome = db.db().query_regions_with_params_guarded(
            params,
            q_regions,
            query_area,
            min_similarity,
            guard,
        )?;
        if let Some(s) = &probe_span {
            s.add("images", shard_outcome.stats.distinct_images as u64);
            s.add("hits", shard_outcome.stats.total_matching_regions as u64);
        }
        Ok(Some(shard_outcome))
    }

    fn scatter_gather(
        &self,
        set: &ShardSet,
        params: &WalrusParams,
        q_regions: &[Region],
        query_area: usize,
        min_similarity: f64,
        guard: &Guard,
    ) -> Result<QueryOutcome> {
        // Shards are probed in parallel: each worker runs one shard under a
        // clone of the guard whose trace is swapped for a *private* one (on
        // the request clock), and the orchestrator grafts the recorded
        // spans back in shard order once the fan-out completes — so the
        // span tree and every result byte are identical at any thread
        // count. With one worker the fan-out runs inline on this thread,
        // which is exactly the old sequential loop.
        let shard_workers = walrus_parallel::resolve_threads(params.threads).min(set.shards.len());
        // When shards fan out across workers, each shard's own probe runs
        // single-threaded — one level of parallelism, not two multiplied.
        let mut shard_params = *params;
        if shard_workers > 1 {
            shard_params.threads = 1;
        }
        let trace = guard.trace().cloned();
        let worker_base = guard.without_trace();
        let indices: Vec<usize> = (0..set.shards.len()).collect();
        let probed: Vec<(Option<QueryOutcome>, Option<Vec<SpanRecord>>)> =
            walrus_parallel::try_parallel_map(shard_workers, &indices, |_, &i| {
                let worker_trace = trace.as_ref().map(|t| TraceContext::new(t.clock()));
                let wg = match &worker_trace {
                    Some(t) => worker_base.clone().tracing(t.clone()),
                    None => worker_base.clone(),
                };
                let outcome = self.probe_shard(set, i, &shard_params, q_regions, query_area,
                    min_similarity, &wg)?;
                Ok::<_, WalrusError>((outcome, worker_trace.map(|t| t.report().spans)))
            })?;
        if let Some(t) = &trace {
            for (_, spans) in probed.iter() {
                if let Some(spans) = spans {
                    t.graft(spans);
                }
            }
        }
        let mut shards_unavailable = Vec::new();
        let mut partial = false;
        let mut matches = Vec::new();
        let mut total_hits = 0usize;
        let mut distinct_images = 0usize;
        for (i, (outcome, _)) in probed.into_iter().enumerate() {
            let Some(shard_outcome) = outcome else {
                shards_unavailable.push(i);
                continue;
            };
            partial |= shard_outcome.status == ResultStatus::Partial;
            total_hits += shard_outcome.stats.total_matching_regions;
            distinct_images += shard_outcome.stats.distinct_images;
            matches.extend(shard_outcome.matches);
        }
        if total_hits > params.budgets.max_index_candidates {
            return Err(WalrusError::BudgetExceeded {
                what: "index candidates",
                used: total_hits,
                limit: params.budgets.max_index_candidates,
            });
        }
        // Deterministic gather: the same total order the monolithic store
        // sorts into (each image lives on exactly one shard, with a
        // distinct id, so the comparator is total).
        matches.sort_by(|a, b| {
            b.similarity
                .partial_cmp(&a.similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.image_id.cmp(&b.image_id))
        });
        let query_regions = q_regions.len();
        let stats = QueryStats {
            query_regions,
            total_matching_regions: total_hits,
            avg_regions_per_query_region: if query_regions == 0 {
                0.0
            } else {
                total_hits as f64 / query_regions as f64
            },
            distinct_images,
        };
        let status = if !shards_unavailable.is_empty() {
            ResultStatus::Degraded { shards_unavailable }
        } else if partial {
            ResultStatus::Partial
        } else {
            ResultStatus::Complete
        };
        Ok(QueryOutcome { matches, stats, status })
    }

    /// Owned metadata for an image. `Ok(None)` = unknown or removed;
    /// `Err(ShardUnavailable)` = its shard is quarantined, so its
    /// existence cannot be determined.
    pub fn image_meta(&self, id: usize) -> Result<Option<ImageMeta>> {
        let set = self.layout();
        let shard = shard_of(id, set.shards.len());
        let meta = match &*set.shards[shard].read() {
            ShardSlot::Healthy(db) => Ok(db.image_meta(id)),
            ShardSlot::Quarantined { .. } => Err(WalrusError::ShardUnavailable { shard }),
        };
        meta
    }

    /// Checkpoints one shard (exclusive lock on that shard only). A
    /// storage failure during the checkpoint quarantines the shard. Shed
    /// while a rebalance holds the source layout read-locked.
    pub fn checkpoint_shard(&self, shard: usize) -> Result<ShardCheckpoint> {
        if self.rebalancing.load(Ordering::Acquire) {
            return Err(WalrusError::Rebalancing);
        }
        let set = self.layout();
        if shard >= set.shards.len() {
            return Err(WalrusError::BadParams(format!(
                "shard {shard} out of range (store has {} shards; valid shards are 0..={})",
                set.shards.len(),
                set.shards.len() - 1
            )));
        }
        let started = Instant::now();
        let mut slot = set.shards[shard].write();
        let (result, poisoned) = match &mut *slot {
            ShardSlot::Healthy(db) => {
                let r = db.checkpoint().map(|()| ShardCheckpoint {
                    shard,
                    last_lsn: db.last_lsn(),
                    duration: started.elapsed(),
                });
                let poisoned = db.is_poisoned();
                (r, poisoned)
            }
            ShardSlot::Quarantined { .. } => {
                return Err(WalrusError::ShardUnavailable { shard });
            }
        };
        result.map_err(|e| {
            if poisoned || quarantine_worthy(&e) {
                self.mark_quarantined(set.as_ref(), shard, &mut slot, e.to_string());
            }
            e
        })
    }

    /// Rolling checkpoint: folds shards one at a time — never the whole
    /// store at once — skipping quarantined shards. The report lists what
    /// each healthy shard did.
    pub fn checkpoint(&self) -> Result<Vec<ShardCheckpoint>> {
        if self.rebalancing.load(Ordering::Acquire) {
            return Err(WalrusError::Rebalancing);
        }
        let set = self.layout();
        let mut reports = Vec::with_capacity(set.shards.len());
        for shard in 0..set.shards.len() {
            if set.quarantined[shard].load(Ordering::Acquire) {
                continue;
            }
            match self.checkpoint_shard(shard) {
                Ok(report) => reports.push(report),
                // Raced with a quarantine transition: skip, like any other
                // quarantined shard.
                Err(WalrusError::ShardUnavailable { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(reports)
    }

    /// Per-shard health, in shard order.
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        let set = self.layout();
        set.shards
            .iter()
            .enumerate()
            .map(|(shard, slot)| match &*slot.read() {
                ShardSlot::Healthy(db) => ShardHealth {
                    shard,
                    healthy: true,
                    error: None,
                    images: db.len(),
                    wal_bytes: db.wal_len(),
                },
                ShardSlot::Quarantined { error, images, wal_bytes } => ShardHealth {
                    shard,
                    healthy: false,
                    error: Some(error.clone()),
                    images: *images,
                    wal_bytes: *wal_bytes,
                },
            })
            .collect()
    }

    /// Repairs a quarantined shard **in place** and swaps it back in:
    ///
    /// 1. truncate its WAL to the longest clean prefix
    ///    ([`crate::wal::scan_valid_prefix`]) — an explicit, operator-
    ///    requested acceptance that records past the damage are lost;
    /// 2. reopen the shard from its snapshot + repaired WAL;
    /// 3. on success, clear the quarantine and restore writes.
    ///
    /// Snapshot damage is not repairable this way — the reopen error is
    /// returned and the shard stays quarantined. Also works on a healthy
    /// shard (a no-op repair followed by a clean reopen).
    pub fn recover_shard(&self, shard: usize) -> Result<ShardRepair> {
        if self.rebalancing.load(Ordering::Acquire) {
            return Err(WalrusError::Rebalancing);
        }
        let set = self.layout();
        if shard >= set.shards.len() {
            return Err(WalrusError::BadParams(format!(
                "shard {shard} out of range (store has {} shards; valid shards are 0..={})",
                set.shards.len(),
                set.shards.len() - 1
            )));
        }
        // Hold the ingest lock across the swap so id assignment sees the
        // recovered shard's slots atomically.
        let mut next = self.ingest.lock();
        let mut slot = set.shards[shard].write();
        let dir = self.root.join(shard_dir_name_at(set.epoch, shard));
        let wal_path = dir.join(WAL_FILE);
        let mut truncated_bytes = 0u64;
        let mut records_kept = 0usize;
        if self.io.exists(&wal_path) {
            let bytes = self
                .io
                .read(&wal_path)
                .map_err(WalrusError::io_context("read", &wal_path))?;
            let scan = wal::scan_valid_prefix(&bytes);
            records_kept = scan.records.len();
            if scan.valid_len < bytes.len() as u64 {
                truncated_bytes = bytes.len() as u64 - scan.valid_len;
                self.io
                    .truncate(&wal_path, scan.valid_len)
                    .and_then(|()| self.io.fsync(&wal_path))
                    .map_err(WalrusError::io_context("truncate damaged", &wal_path))?;
            }
        }
        let (db, report) = DurableDatabase::open_with(self.io.clone(), &dir, self.params)?;
        *next = (*next).max(db.db().image_slots().len());
        *slot = ShardSlot::Healthy(Box::new(db));
        set.quarantined[shard].store(false, Ordering::Release);
        Ok(ShardRepair { shard, truncated_bytes, records_kept, report })
    }

    /// Migrates the store to `target_shards` shards **online**: queries
    /// keep answering (bit-identically) from the source layout for the
    /// whole migration, mutations and checkpoints are shed with
    /// [`WalrusError::Rebalancing`], and one atomic manifest write commits
    /// the new layout. Crash-safe at every step — see the module docs for
    /// the resume/rollback rules [`ShardedStore::open`] applies.
    pub fn rebalance(&self, target_shards: usize) -> Result<RebalanceReport> {
        if !(1..=MAX_SHARDS).contains(&target_shards) {
            return Err(WalrusError::BadParams(format!(
                "target shard count {target_shards} out of range 1..={MAX_SHARDS}"
            )));
        }
        if self
            .rebalancing
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(WalrusError::Rebalancing);
        }
        self.rebalance_target.store(target_shards, Ordering::Release);
        self.shards_migrated.store(0, Ordering::Release);
        let result = self.run_rebalance(target_shards);
        self.rebalance_target.store(0, Ordering::Release);
        result
    }

    /// The migration proper. On entry the `rebalancing` flag is set; every
    /// exit path that leaves the store safe to write clears it (success,
    /// refusals, and a rollback that durably restored the source
    /// manifest). When the rollback itself fails the flag **stays set**:
    /// the on-disk manifest still says "migrating", and letting ingest
    /// resume would invalidate target shards already durably marked
    /// `Migrated` — only a reopen (which resumes or rolls back) may
    /// restore writes.
    fn run_rebalance(&self, target: usize) -> Result<RebalanceReport> {
        // Drain in-flight mutations: every mutation holds the ingest lock
        // for its full duration, so acquiring it once means the source
        // WALs are quiescent; new mutations shed on the flag.
        drop(self.ingest.lock());
        let set = self.layout();
        let source_count = set.shards.len();
        let epoch = set.epoch;
        if target == source_count {
            self.rebalancing.store(false, Ordering::Release);
            return Err(WalrusError::BadParams(format!("store already has {target} shards")));
        }
        if let Some(shard) = set.quarantined.iter().position(|q| q.load(Ordering::Acquire)) {
            // A quarantined shard's contents are unknown; migrating around
            // it would silently drop its images.
            self.rebalancing.store(false, Ordering::Release);
            return Err(WalrusError::ShardUnavailable { shard });
        }
        // Hold read guards on every source shard for the whole build:
        // queries share them freely; exclusive lockers (checkpoints,
        // repairs) are already shed by the flag.
        let guards: Vec<_> = set.shards.iter().map(|slot| slot.read()).collect();
        let mut sources: Vec<&ImageDatabase> = Vec::with_capacity(source_count);
        for (shard, guard) in guards.iter().enumerate() {
            match &**guard {
                ShardSlot::Healthy(db) => sources.push(db.db()),
                // Raced with an in-flight checkpoint quarantining the
                // shard after the lock-free scan above.
                ShardSlot::Quarantined { .. } => {
                    self.rebalancing.store(false, Ordering::Release);
                    return Err(WalrusError::ShardUnavailable { shard });
                }
            }
        }
        let io = self.io.as_ref();
        let mut manifest = Manifest {
            epoch,
            shard_count: source_count,
            gc_prev: 0,
            migration: Some(Migration {
                target_count: target,
                states: vec![MigrationState::Stable; target],
            }),
        };
        let staged = write_manifest(io, &self.root, &manifest);
        let migrated = staged.and_then(|()| {
            complete_migration(io, &self.root, &sources, &mut manifest,
                Some(&self.shards_migrated))
        });
        if let Err(e) = migrated {
            // Roll back: restore the stable source manifest first (the
            // staged targets are unreachable once it lands), then drop the
            // staging files. If even the manifest write fails, the flag
            // stays set — see the method docs.
            if write_manifest(io, &self.root, &Manifest::stable(epoch, source_count)).is_ok() {
                gc_layout_files(io, &self.root, epoch + 1, target);
                self.rebalancing.store(false, Ordering::Release);
            }
            return Err(e);
        }
        drop(sources);
        drop(guards);
        // `manifest` is now the committed layout {epoch+1, target, gc}.
        let (new_set, recoveries, _) =
            open_shard_set(&self.io, &self.root, self.params, manifest.epoch, manifest.shard_count);
        if let Some(bad) = recoveries.iter().find(|r| r.error.is_some()) {
            // The commit is durable — a reopen lands on the new layout and
            // can quarantine or repair. Keep shedding writes rather than
            // swap in a degraded set the migration just wrote.
            return Err(WalrusError::Corrupt(format!(
                "rebalance committed but target shard {} failed to open: {}",
                bad.shard,
                bad.error.as_deref().unwrap_or("unknown error"),
            )));
        }
        *self.layout.write() = Arc::new(new_set);
        self.rebalancing.store(false, Ordering::Release);
        let mut committed = manifest;
        gc_previous_layout(io, &self.root, &mut committed);
        Ok(RebalanceReport {
            from_shards: source_count,
            to_shards: committed.shard_count,
            epoch: committed.epoch,
            images: self.len(),
        })
    }

    /// Current layout epoch and migration progress.
    pub fn rebalance_status(&self) -> RebalanceStatus {
        RebalanceStatus {
            epoch: self.layout().epoch,
            rebalancing: self.rebalancing.load(Ordering::Acquire),
            target_shards: self.rebalance_target.load(Ordering::Acquire),
            shards_migrated: self.shards_migrated.load(Ordering::Acquire),
        }
    }

    /// Content fingerprint for result caching — see
    /// [`Store::content_stamp`] for the contract. Folds the layout epoch,
    /// the live rebalancing flag, the shard count, and each shard's
    /// (healthy, last LSN) pair, so committed ingest, quarantine
    /// transitions, and layout changes all produce a new stamp while
    /// checkpoints (which leave LSNs untouched) do not.
    pub fn content_stamp(&self) -> u64 {
        use crate::store::{stamp_fold, STAMP_BASIS};
        let set = self.layout();
        let mut h = STAMP_BASIS;
        h = stamp_fold(h, set.epoch);
        h = stamp_fold(h, self.rebalancing.load(Ordering::Acquire) as u64);
        h = stamp_fold(h, set.shards.len() as u64);
        for slot in &set.shards {
            match &*slot.read() {
                ShardSlot::Healthy(db) => {
                    h = stamp_fold(h, 1);
                    h = stamp_fold(h, db.last_lsn());
                }
                ShardSlot::Quarantined { .. } => {
                    h = stamp_fold(h, 0);
                    h = stamp_fold(h, 0);
                }
            }
        }
        h
    }

    /// Live images across healthy shards.
    pub fn len(&self) -> usize {
        self.fold_healthy(|db| db.len())
    }

    /// True when no healthy shard holds an image.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Indexed regions across healthy shards.
    pub fn num_regions(&self) -> usize {
        self.fold_healthy(|db| db.db().num_regions())
    }

    /// Valid WAL bytes across healthy shards.
    pub fn wal_len(&self) -> u64 {
        self.fold_healthy(|db| db.wal_len())
    }

    /// WAL records since the last checkpoint, across healthy shards.
    pub fn records_since_checkpoint(&self) -> usize {
        self.fold_healthy(|db| db.records_since_checkpoint())
    }

    fn fold_healthy<T: std::iter::Sum>(&self, f: impl Fn(&DurableDatabase) -> T) -> T {
        let set = self.layout();
        let folded = set
            .shards
            .iter()
            .filter_map(|slot| match &*slot.read() {
                ShardSlot::Healthy(db) => Some(f(db)),
                ShardSlot::Quarantined { .. } => None,
            })
            .sum();
        folded
    }
}

impl Store for ShardedStore {
    fn params(&self) -> WalrusParams {
        ShardedStore::params(self)
    }

    fn shard_count(&self) -> usize {
        ShardedStore::shard_count(self)
    }

    fn len(&self) -> usize {
        ShardedStore::len(self)
    }

    fn num_regions(&self) -> usize {
        ShardedStore::num_regions(self)
    }

    fn wal_len(&self) -> u64 {
        ShardedStore::wal_len(self)
    }

    fn records_since_checkpoint(&self) -> usize {
        ShardedStore::records_since_checkpoint(self)
    }

    fn image_meta(&self, id: usize) -> Result<Option<ImageMeta>> {
        ShardedStore::image_meta(self, id)
    }

    fn insert_image(&self, name: &str, image: &Image) -> Result<usize> {
        ShardedStore::insert_image(self, name, image)
    }

    fn insert_images_batch_guarded(
        &self,
        items: &[(&str, &Image)],
        guard: &Guard,
    ) -> Result<Vec<usize>> {
        ShardedStore::insert_images_batch_guarded(self, items, guard)
    }

    fn remove_image(&self, id: usize) -> Result<()> {
        ShardedStore::remove_image(self, id)
    }

    fn query_with_options_guarded(
        &self,
        query: &Image,
        opts: &QueryOptions,
        guard: &Guard,
    ) -> Result<QueryOutcome> {
        ShardedStore::query_with_options_guarded(self, query, opts, guard)
    }

    fn checkpoint(&self) -> Result<Vec<ShardCheckpoint>> {
        ShardedStore::checkpoint(self)
    }

    fn shard_health(&self) -> Vec<ShardHealth> {
        ShardedStore::shard_health(self)
    }

    fn rebalance(&self, target_shards: usize) -> Result<RebalanceReport> {
        ShardedStore::rebalance(self, target_shards)
    }

    fn rebalance_status(&self) -> RebalanceStatus {
        ShardedStore::rebalance_status(self)
    }

    fn content_stamp(&self) -> u64 {
        ShardedStore::content_stamp(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::FaultIo;
    use walrus_imagery::synth::scene::{Scene, SceneObject};
    use walrus_imagery::synth::shapes::Shape;
    use walrus_imagery::synth::texture::{Rgb, Texture};
    use walrus_wavelet::SlidingParams;

    fn params() -> WalrusParams {
        WalrusParams {
            sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 16, stride: 4 },
            ..WalrusParams::paper_defaults()
        }
    }

    fn scene(hue: f32) -> Image {
        Scene::new(Texture::Solid(Rgb(hue, 0.4, 0.3)))
            .with(SceneObject::new(
                Shape::Ellipse { rx: 0.5, ry: 0.5 },
                Texture::Solid(Rgb(0.9, 0.2, 0.2)),
                (0.5, 0.5),
                0.4,
            ))
            .render(32, 32)
            .unwrap()
    }

    /// A query outcome reduced to its bit-exact essentials.
    fn sig(outcome: &QueryOutcome) -> Vec<(usize, u64)> {
        outcome.matches.iter().map(|m| (m.image_id, m.similarity.to_bits())).collect()
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        // Pinned values: shard routing is an on-disk compatibility surface
        // (part of the manifest format). If this test fails, bump the
        // manifest version instead of accepting the new routing.
        let pinned: Vec<usize> = (0..8).map(|id| shard_of(id, 4)).collect();
        assert_eq!(pinned, vec![3, 1, 2, 1, 2, 2, 0, 3]);
        for id in 0..10_000 {
            assert!(shard_of(id, 4) < 4);
            assert_eq!(shard_of(id, 1), 0);
        }
    }

    #[test]
    fn manifest_round_trips_and_rejects_damage() {
        let stable = Manifest::stable(0, 4);
        let committed = Manifest { epoch: 2, shard_count: 8, gc_prev: 4, migration: None };
        let migrating = Manifest {
            epoch: 1,
            shard_count: 4,
            gc_prev: 0,
            migration: Some(Migration {
                target_count: 3,
                states: vec![
                    MigrationState::Migrated,
                    MigrationState::Draining,
                    MigrationState::Stable,
                ],
            }),
        };
        for manifest in [stable, committed, migrating] {
            let bytes = encode_manifest(&manifest);
            assert_eq!(decode_manifest(&bytes).unwrap(), manifest);
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] ^= 0xFF;
                assert!(decode_manifest(&bad).is_err(), "flip at byte {i} must be caught");
            }
            assert!(decode_manifest(&bytes[..bytes.len() - 1]).is_err());
        }
    }

    #[test]
    fn manifest_v1_is_read_as_epoch_zero() {
        // A hand-built version-1 manifest (what every pre-rebalance store
        // has on disk) decodes as "epoch 0, never migrated" so the old
        // `shard-NNN/` directories keep resolving.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MANIFEST_MAGIC);
        put_u32(&mut bytes, 1);
        put_u64(&mut bytes, 4);
        let crc = crc32(&bytes);
        put_u32(&mut bytes, crc);
        assert_eq!(bytes.len(), MANIFEST_V1_LEN);
        assert_eq!(decode_manifest(&bytes).unwrap(), Manifest::stable(0, 4));
    }

    #[test]
    fn inserts_route_by_hash_and_survive_reopen() {
        let io = Arc::new(FaultIo::new());
        let (store, _) = ShardedStore::open_with(io.clone(), "db", params(), 4).unwrap();
        let a = store.insert_image("a", &scene(0.2)).unwrap();
        let b = store.insert_image("b", &scene(0.5)).unwrap();
        let c = store.insert_image("c", &scene(0.8)).unwrap();
        assert_eq!((a, b, c), (0, 1, 2), "global ids are dense");
        assert_eq!(store.len(), 3);
        store.remove_image(b).unwrap();
        drop(store);

        // Reopen with shards = 0 ("existing store only"): manifest wins.
        let (store, recoveries) = ShardedStore::open_with(io.clone(), "db", params(), 0).unwrap();
        assert_eq!(store.shard_count(), 4);
        assert!(recoveries.iter().all(|r| r.error.is_none()));
        assert_eq!(store.len(), 2);
        assert_eq!(store.image_meta(a).unwrap().unwrap().name, "a");
        assert!(store.image_meta(b).unwrap().is_none(), "removed image is gone");
        // New ids continue after the highest assigned one.
        assert_eq!(store.insert_image("d", &scene(0.35)).unwrap(), 3);

        // A mismatched shard count is refused, not silently rehashed.
        drop(store);
        let err = ShardedStore::open_with(io, "db", params(), 2).unwrap_err();
        assert!(matches!(err, WalrusError::BadParams(_)), "{err}");
    }

    #[test]
    fn legacy_monolithic_directory_is_refused() {
        let io = Arc::new(FaultIo::new());
        let (mono, _) = DurableDatabase::open_with(io.clone(), "db", params()).unwrap();
        drop(mono);
        let err = ShardedStore::open_with(io, "db", params(), 4).unwrap_err();
        assert!(matches!(err, WalrusError::BadParams(_)), "{err}");
    }

    #[test]
    fn rolling_checkpoint_reports_every_healthy_shard() {
        let io = Arc::new(FaultIo::new());
        let (store, _) = ShardedStore::open_with(io, "db", params(), 3).unwrap();
        for i in 0..5 {
            store.insert_image(&format!("img{i}"), &scene(0.1 + 0.15 * i as f32)).unwrap();
        }
        assert!(store.records_since_checkpoint() > 0);
        let reports = ShardedStore::checkpoint(&store).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(store.records_since_checkpoint(), 0);
        for r in &reports {
            assert!(r.last_lsn > 0 || store.shard_health()[r.shard].images == 0);
        }
    }

    #[test]
    fn degraded_store_serves_reads_and_sheds_writes() {
        let io = Arc::new(FaultIo::new());
        let (store, _) = ShardedStore::open_with(io.clone(), "db", params(), 4).unwrap();
        let mut by_shard = vec![Vec::new(); 4];
        for i in 0..8 {
            let id = store.insert_image(&format!("img{i}"), &scene(0.1 + 0.1 * i as f32)).unwrap();
            by_shard[shard_of(id, 4)].push(id);
        }
        drop(store);
        // Destroy shard 2's WAL header: that shard cannot open.
        let victim = 2usize;
        let wal = Path::new("db/shard-002/wal.log");
        let mut bytes = io.file_bytes(wal).unwrap();
        bytes[0] ^= 0xFF;
        io.write(wal, &bytes).unwrap();
        io.fsync(wal).unwrap();

        let (store, recoveries) = ShardedStore::open_with(io, "db", params(), 0).unwrap();
        assert!(recoveries[victim].error.is_some());
        assert_eq!(store.quarantined_shards(), vec![victim]);

        // Reads: degraded status naming the shard, healthy images present.
        let outcome = store.query(&scene(0.1)).unwrap();
        assert_eq!(
            outcome.status,
            ResultStatus::Degraded { shards_unavailable: vec![victim] }
        );
        for &id in &by_shard[0] {
            assert!(store.image_meta(id).unwrap().is_some());
        }
        for &id in &by_shard[victim] {
            assert!(matches!(
                store.image_meta(id),
                Err(WalrusError::ShardUnavailable { shard }) if shard == victim
            ));
        }

        // Writes: shed with the typed error naming the quarantined shard.
        let err = store.insert_image("new", &scene(0.9)).unwrap_err();
        assert!(matches!(err, WalrusError::ShardUnavailable { shard } if shard == victim));
        let err = store.remove_image(by_shard[0][0]).unwrap_err();
        assert!(matches!(err, WalrusError::ShardUnavailable { shard } if shard == victim));

        // A rebalance is refused too: the quarantined shard's contents are
        // unknown, so migrating would silently drop them.
        let err = store.rebalance(2).unwrap_err();
        assert!(matches!(err, WalrusError::ShardUnavailable { shard } if shard == victim));
        assert!(!store.rebalance_status().rebalancing, "refusal clears the flag");

        // Checkpoint still covers the healthy shards.
        let reports = ShardedStore::checkpoint(&store).unwrap();
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.shard != victim));
    }

    #[test]
    fn recover_shard_truncates_damage_and_restores_writes() {
        let io = Arc::new(FaultIo::new());
        let (store, _) = ShardedStore::open_with(io.clone(), "db", params(), 2).unwrap();
        // Find a shard with at least 2 records so mid-log damage exists.
        let mut ids = Vec::new();
        for i in 0..6 {
            ids.push(store.insert_image(&format!("img{i}"), &scene(0.1 + 0.12 * i as f32)).unwrap());
        }
        let victim = (0..2)
            .max_by_key(|&s| ids.iter().filter(|&&id| shard_of(id, 2) == s).count())
            .unwrap();
        drop(store);
        // Flip a byte in the victim's first record while records follow:
        // mid-log corruption, which read_wal refuses.
        let wal_path_string = format!("db/{}/wal.log", shard_dir_name(victim));
        let wal = Path::new(&wal_path_string);
        let mut bytes = io.file_bytes(wal).unwrap();
        let pos = wal::WAL_HEADER_LEN as usize + 20;
        bytes[pos] ^= 0xFF;
        io.write(wal, &bytes).unwrap();
        io.fsync(wal).unwrap();

        let (store, _) = ShardedStore::open_with(io, "db", params(), 0).unwrap();
        assert_eq!(store.quarantined_shards(), vec![victim]);
        let repair = store.recover_shard(victim).unwrap();
        assert_eq!(repair.shard, victim);
        assert!(repair.truncated_bytes > 0, "damaged suffix was dropped");
        assert!(store.quarantined_shards().is_empty());
        // Writes are restored and ids never collide with surviving ones.
        let new_id = store.insert_image("after", &scene(0.77)).unwrap();
        assert!(new_id >= ids.len() - ids.iter().filter(|&&id| shard_of(id, 2) == victim).count());
        assert_eq!(store.image_meta(new_id).unwrap().unwrap().name, "after");
    }

    #[test]
    fn rebalance_rehashes_and_collects_the_old_layout() {
        let io = Arc::new(FaultIo::new());
        let (store, _) = ShardedStore::open_with(io.clone(), "db", params(), 4).unwrap();
        for i in 0..6 {
            store.insert_image(&format!("img{i}"), &scene(0.1 + 0.12 * i as f32)).unwrap();
        }
        // Remove the *highest* id: the migration must preserve the id
        // high-water mark through tombstones alone.
        store.remove_image(5).unwrap();
        let probe = scene(0.22);
        let before = sig(&store.query(&probe).unwrap());
        assert!(!before.is_empty());

        let report = store.rebalance(2).unwrap();
        assert_eq!(
            (report.from_shards, report.to_shards, report.epoch, report.images),
            (4, 2, 1, 5)
        );
        assert_eq!(store.shard_count(), 2);
        assert_eq!(store.epoch(), 1);
        let status = store.rebalance_status();
        assert_eq!((status.epoch, status.rebalancing, status.target_shards), (1, false, 0));
        assert_eq!(status.shards_migrated, 2);

        // Same answers, new layout, old layout collected.
        assert_eq!(sig(&store.query(&probe).unwrap()), before);
        assert!(io.exists(Path::new("db/e1-shard-000/snapshot.walrus")));
        assert!(!io.exists(Path::new("db/shard-000/snapshot.walrus")), "old layout GC'd");
        // The id high-water mark survived the removed tail.
        assert_eq!(store.insert_image("g", &scene(0.9)).unwrap(), 6);

        // The committed layout survives reopen (shards = 0: manifest wins).
        drop(store);
        let (store, recoveries) = ShardedStore::open_with(io, "db", params(), 0).unwrap();
        assert_eq!(store.shard_count(), 2);
        assert!(recoveries.iter().all(|r| r.error.is_none()));
        assert_eq!(store.len(), 6);
        assert!(store.image_meta(5).unwrap().is_none(), "removed image stays gone");
        assert_eq!(store.image_meta(6).unwrap().unwrap().name, "g");
        let after: Vec<(usize, u64)> = sig(&store.query(&probe).unwrap());
        assert_eq!(
            after.iter().filter(|(id, _)| *id != 6).copied().collect::<Vec<_>>(),
            before.iter().copied().filter(|(id, _)| *id != 6).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rebalance_refuses_nonsense_targets() {
        let io = Arc::new(FaultIo::new());
        let (store, _) = ShardedStore::open_with(io, "db", params(), 2).unwrap();
        store.insert_image("a", &scene(0.3)).unwrap();
        for bad in [0, MAX_SHARDS + 1, 2] {
            let err = store.rebalance(bad).unwrap_err();
            assert!(matches!(err, WalrusError::BadParams(_)), "target {bad}: {err}");
        }
        assert!(!store.rebalance_status().rebalancing);
        // The store still writes after every refusal.
        store.insert_image("b", &scene(0.6)).unwrap();
    }

    #[test]
    fn interrupted_migration_resumes_at_open() {
        let io = Arc::new(FaultIo::new());
        let (store, _) = ShardedStore::open_with(io.clone(), "db", params(), 1).unwrap();
        for i in 0..3 {
            store.insert_image(&format!("img{i}"), &scene(0.2 + 0.2 * i as f32)).unwrap();
        }
        let probe = scene(0.2);
        let before = sig(&store.query(&probe).unwrap());
        drop(store);

        // Simulate a rebalance that crashed right after staging: the
        // manifest says "migrating to 4, nothing built yet".
        let staged = Manifest {
            epoch: 0,
            shard_count: 1,
            gc_prev: 0,
            migration: Some(Migration {
                target_count: 4,
                states: vec![MigrationState::Stable; 4],
            }),
        };
        write_manifest(io.as_ref(), Path::new("db"), &staged).unwrap();

        // Open resumes and commits the migration before serving.
        let (store, recoveries) = ShardedStore::open_with(io.clone(), "db", params(), 0).unwrap();
        assert!(recoveries.iter().all(|r| r.error.is_none()));
        assert_eq!(store.shard_count(), 4);
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.len(), 3);
        assert_eq!(sig(&store.query(&probe).unwrap()), before);
        assert!(!io.exists(Path::new("db/shard-000/snapshot.walrus")), "source GC'd");
        let manifest = read_manifest(io.as_ref(), Path::new("db")).unwrap();
        assert_eq!(manifest, Manifest::stable(1, 4));
    }

    #[test]
    fn scrub_walks_every_shard_and_flags_damage() {
        let io = Arc::new(FaultIo::new());
        let (store, _) = ShardedStore::open_with(io.clone(), "db", params(), 3).unwrap();
        for i in 0..5 {
            store.insert_image(&format!("img{i}"), &scene(0.15 + 0.12 * i as f32)).unwrap();
        }
        drop(store);

        let verdicts = scrub_store(io.as_ref(), Path::new("db"), None).unwrap();
        assert_eq!(verdicts.len(), 3);
        assert!(verdicts.iter().all(|v| v.scrub.clean()));

        let one = scrub_store(io.as_ref(), Path::new("db"), Some(1)).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].shard, 1);

        let err = scrub_store(io.as_ref(), Path::new("db"), Some(9)).unwrap_err();
        assert!(matches!(err, WalrusError::BadParams(_)), "{err}");
        assert!(err.to_string().contains("0..=2"), "{err}");

        // Damage one shard's snapshot: only that shard fails the scrub.
        assert!(io.corrupt_byte(Path::new("db/shard-002/snapshot.walrus"), 20, 0xFF));
        let verdicts = scrub_store(io.as_ref(), Path::new("db"), None).unwrap();
        assert!(verdicts[0].scrub.clean() && verdicts[1].scrub.clean());
        assert!(!verdicts[2].scrub.clean());
        assert!(verdicts[2].scrub.error.as_deref().unwrap().starts_with("snapshot:"));

        // A migrating manifest is refused: the layout is ambiguous until
        // an open resumes or rolls back.
        let migrating = Manifest {
            epoch: 0,
            shard_count: 3,
            gc_prev: 0,
            migration: Some(Migration {
                target_count: 2,
                states: vec![MigrationState::Stable; 2],
            }),
        };
        write_manifest(io.as_ref(), Path::new("db"), &migrating).unwrap();
        let err = scrub_store(io.as_ref(), Path::new("db"), None).unwrap_err();
        assert!(err.to_string().contains("mid-migration"), "{err}");
    }
}
