//! Minimal vendored stand-in for `parking_lot`, covering only the API this
//! workspace uses (`Mutex::lock`, `RwLock::read`/`write`, non-poisoning
//! guards). Backed by `std::sync`; a poisoned std lock is recovered rather
//! than propagated, matching parking_lot's no-poisoning semantics.
//!
//! Vendored so the workspace builds hermetically with no registry access.

use std::sync;

/// Non-poisoning mutex with `parking_lot`'s `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock with `parking_lot`'s signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert!(l.try_write().is_some());
    }
}
