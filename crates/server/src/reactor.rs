//! The event-driven serving core: one epoll loop, many sockets, zero
//! blocked threads.
//!
//! The threaded backend ([`crate::server`]) parks one pool worker per open
//! connection; ten thousand idle keep-alive clients would need ten thousand
//! threads. This backend multiplexes every connection through a single
//! event-loop thread on [`walrus_reactor`]: sockets are nonblocking, each
//! connection is a small state machine
//! (`Reading` → `Dispatched` → `Writing` → back), and the only threads that
//! exist are the loop itself plus the same fixed
//! [`WorkerPool`](walrus_parallel::WorkerPool) the threaded backend uses —
//! CPU-bound routing/engine work is *dispatched* to the pool and its
//! response is handed back to the loop through a completion queue and a
//! self-pipe [`Waker`](walrus_reactor::Waker).
//!
//! Behavioural parity with the threaded backend is a hard requirement — the
//! full e2e and hostile-input suites run against both and expect identical
//! bytes:
//!
//! * requests are parsed by the same [`parse_request_bytes`] pure parser,
//!   so every limit and error message matches;
//! * responses are serialized by the same [`encode_response`];
//! * idle/read (slowloris) timeouts run on the injected [`ServerConfig`]
//!   clock with the same budgets and the same 408/close behaviour;
//! * load shedding answers the same `503 server overloaded; retry later`
//!   and counts `walrus_rejected_total` (shed here happens at dispatch
//!   time — the loop never blocks, so the accept-time check is
//!   unnecessary);
//! * graceful drain follows the same phases: stop accepting, close idle
//!   connections, let in-flight requests finish for `drain_timeout`, then
//!   cancel stragglers, then (after a 5s grace) drop what remains.
//!
//! [`parse_request_bytes`]: crate::http::parse_request_bytes
//! [`encode_response`]: crate::http::encode_response
//! [`ServerConfig`]: crate::ServerConfig

/// Serves `listener` until `stop` flips, then drains. Entry point used by
/// [`Server::start_arc`](crate::Server::start_arc) when the reactor backend
/// is selected; on platforms without epoll this falls back to the threaded
/// accept loop so `--reactor` degrades gracefully instead of failing.
#[cfg(not(target_os = "linux"))]
pub(crate) fn serve(
    listener: std::net::TcpListener,
    pool: std::sync::Arc<walrus_parallel::WorkerPool>,
    state: std::sync::Arc<crate::router::AppState>,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    config: crate::server::ServerConfig,
) {
    crate::server::accept_loop(listener, pool, state, stop, config);
}

#[cfg(target_os = "linux")]
pub(crate) use linux::serve;

#[cfg(target_os = "linux")]
mod linux {
    use std::collections::HashMap;
    use std::io::{ErrorKind, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    use walrus_parallel::WorkerPool;
    use walrus_reactor::{Event, Interest, Poller, WakeHandle, Waker};

    use crate::http::{encode_response, parse_request_bytes, ParseStep, Request, Response};
    use crate::router::{self, AppState};
    use crate::server::{ServerConfig, POLL_INTERVAL};

    const LISTENER: u64 = 0;
    const WAKER: u64 = 1;
    /// First token handed to a connection.
    const FIRST_CONN: u64 = 2;

    /// Where a connection's fd currently sits in the epoll interest set.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Registered {
        None,
        Read,
        Write,
    }

    /// What the connection is doing right now.
    enum Phase {
        /// Waiting for (more of) a request; fd registered for READ.
        Reading,
        /// A request is on the worker pool; fd deregistered — a
        /// level-triggered HUP from an impatient client must not spin the
        /// loop while the answer is being computed.
        Dispatched,
        /// A response is being written; fd registered for WRITE once the
        /// socket back-pressures.
        Writing { out: Vec<u8>, written: usize, close: bool },
    }

    struct Conn {
        stream: TcpStream,
        token: u64,
        buf: Vec<u8>,
        phase: Phase,
        registered: Registered,
        /// Requests already completed on this connection (keep-alive cap).
        served: usize,
        /// Clock nanos when the wait for the current request began —
        /// anchors both the idle and the read (slowloris) deadline, exactly
        /// like the blocking `read_request`'s `started`.
        wait_started: u64,
        /// Whether the bytes received so far reach into a request body
        /// (selects the "head" vs "body" flavour of timeout/EOF errors).
        in_body: bool,
        /// True while this connection holds `walrus_in_flight` — from
        /// request dispatch (or error-response creation) until the response
        /// bytes are fully written or the connection dies.
        in_flight: bool,
    }

    /// Outcome of one nonblocking write burst.
    enum WriteStep {
        /// Response fully on the wire; `bool` is the close flag.
        Done(bool),
        /// Socket back-pressured; wait for WRITE readiness.
        Wait,
        /// Socket failed; drop the connection.
        Dead,
    }

    /// Everything the loop owns. One instance per serve() call, single
    /// threaded — only the completion queue and waker cross threads.
    struct Reactor {
        poller: Poller,
        waker: Waker,
        listener: Option<TcpListener>,
        conns: HashMap<u64, Conn>,
        next_token: u64,
        pool: Arc<WorkerPool>,
        state: Arc<AppState>,
        config: ServerConfig,
        completions: Arc<Mutex<Vec<(u64, Response)>>>,
        wake: WakeHandle,
    }

    pub(crate) fn serve(
        listener: TcpListener,
        pool: Arc<WorkerPool>,
        state: Arc<AppState>,
        stop: Arc<AtomicBool>,
        config: ServerConfig,
    ) {
        // If epoll setup fails at runtime (exotic sandbox), fall back to
        // the threaded backend rather than serving nothing.
        let poller = match Poller::new() {
            Ok(p) => p,
            Err(_) => return crate::server::accept_loop(listener, pool, state, stop, config),
        };
        let waker = match Waker::new(&poller, WAKER) {
            Ok(w) => w,
            Err(_) => return crate::server::accept_loop(listener, pool, state, stop, config),
        };
        if poller.register(listener.as_raw_fd(), LISTENER, Interest::READ).is_err() {
            return crate::server::accept_loop(listener, pool, state, stop, config);
        }
        let wake = waker.handle();
        let mut reactor = Reactor {
            poller,
            waker,
            listener: Some(listener),
            conns: HashMap::new(),
            next_token: FIRST_CONN,
            pool,
            state,
            config,
            completions: Arc::new(Mutex::new(Vec::new())),
            wake,
        };
        reactor.run(&stop);
    }

    impl Reactor {
        fn run(&mut self, stop: &AtomicBool) {
            let mut events: Vec<Event> = Vec::with_capacity(256);
            // Drain bookkeeping (wall clock — drain budgets bound real
            // time, unlike request deadlines which ride the test clock).
            let mut drain_started: Option<Instant> = None;
            let mut cancelled = false;
            let poll_ms = POLL_INTERVAL.as_millis() as i32;
            loop {
                if stop.load(Ordering::Acquire) {
                    if drain_started.is_none() {
                        drain_started = Some(Instant::now());
                        if let Some(listener) = self.listener.take() {
                            let _ = self.poller.deregister(listener.as_raw_fd());
                            // Dropping the listener refuses new connections
                            // at the TCP level, like the threaded backend's
                            // dead listener.
                        }
                    }
                    let pending =
                        !self.conns.is_empty() || !self.completions.lock().unwrap().is_empty();
                    if !pending {
                        return;
                    }
                    let elapsed = drain_started.map(|t| t.elapsed()).unwrap_or_default();
                    if !cancelled && elapsed >= self.config.drain_timeout {
                        // Drain budget exhausted: abort in-flight guarded
                        // engine calls (same trigger the threaded backend's
                        // shutdown uses after `wait_idle` fails).
                        self.state.cancel.cancel();
                        cancelled = true;
                    }
                    if elapsed >= self.config.drain_timeout + Duration::from_secs(5) {
                        // Final grace passed: abandon what's left. Workers
                        // still running are the pool's problem (the server
                        // handle joins the pool after this thread exits).
                        return;
                    }
                }

                events.clear();
                let _ = self.poller.wait(&mut events, poll_ms);
                // Detach the batch from `events`: the handlers mutate
                // `self`, and `Event` is `Copy`.
                let batch = std::mem::take(&mut events);
                for &ev in &batch {
                    match ev.token {
                        LISTENER => self.accept_ready(),
                        WAKER => {
                            self.waker.drain();
                            self.pump_completions();
                        }
                        token => self.conn_ready(token, ev),
                    }
                }
                events = batch;
                // Completions can also land between wakeups (coalesced
                // wake, or a worker finishing during event handling).
                self.pump_completions();
                self.sweep_deadlines();
            }
        }

        /// Accepts until the backlog is empty.
        fn accept_ready(&mut self) {
            loop {
                let accepted = match self.listener.as_ref() {
                    Some(listener) => listener.accept(),
                    None => return,
                };
                match accepted {
                    Ok((stream, _peer)) => {
                        self.state.metrics.connections_total.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.set_nodelay(true);
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let token = self.next_token;
                        self.next_token += 1;
                        if self.poller.register(stream.as_raw_fd(), token, Interest::READ).is_err()
                        {
                            continue;
                        }
                        self.conns.insert(
                            token,
                            Conn {
                                stream,
                                token,
                                buf: Vec::new(),
                                phase: Phase::Reading,
                                registered: Registered::Read,
                                served: 0,
                                wait_started: self.config.clock.now_nanos(),
                                in_body: false,
                                in_flight: false,
                            },
                        );
                        // A full request may already sit in the kernel
                        // buffer; level-triggered epoll would say so next
                        // tick, but serving it now saves a wait.
                        self.drive_read(token);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                    Err(_) => return, // transient (EMFILE, ECONNABORTED, ...)
                }
            }
        }

        /// Routes a readiness event to the connection's phase handler.
        fn conn_ready(&mut self, token: u64, ev: Event) {
            enum Action {
                Read,
                Write,
                Nothing,
            }
            let action = match self.conns.get(&token) {
                Some(conn) => match conn.phase {
                    Phase::Reading if ev.readable || ev.closed => Action::Read,
                    Phase::Writing { .. } if ev.writable || ev.closed => Action::Write,
                    // `Dispatched` is deregistered; a stale event from
                    // before deregistration can still be in this batch.
                    _ => Action::Nothing,
                },
                None => Action::Nothing,
            };
            match action {
                Action::Read => self.drive_read(token),
                Action::Write => self.drive_write(token),
                Action::Nothing => {}
            }
        }

        /// Reads whatever is available and advances the parser; dispatches
        /// a complete request, answers a protocol violation, or stays in
        /// `Reading`.
        fn drive_read(&mut self, token: u64) {
            let limits = self.config.limits;
            loop {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                match parse_request_bytes(&conn.buf, &limits) {
                    ParseStep::Ready { req, consumed } => {
                        conn.buf.drain(..consumed);
                        conn.in_body = false;
                        self.dispatch(token, req);
                        return;
                    }
                    ParseStep::Reject { status, message } => {
                        self.error_response(token, status, &message);
                        return;
                    }
                    ParseStep::Incomplete { in_body } => conn.in_body = in_body,
                }
                let mut chunk = [0u8; 4096];
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        // EOF. Same triage as the blocking path: clean at a
                        // request boundary closes silently; mid-request
                        // gets one best-effort 400.
                        let empty = conn.buf.is_empty();
                        let in_body = conn.in_body;
                        if empty {
                            self.close_conn(token);
                        } else if in_body {
                            self.error_response(token, 400, "connection closed mid-body");
                        } else {
                            self.error_response(token, 400, "connection closed mid-request");
                        }
                        return;
                    }
                    Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close_conn(token);
                        return;
                    }
                }
            }
        }

        /// Hands a parsed request to the worker pool; the response comes
        /// back through the completion queue.
        fn dispatch(&mut self, token: u64, req: Request) {
            // Load shedding, same policy and bytes as the threaded accept
            // loop. This loop thread is the pool's only submitter, so the
            // check is not racy.
            if self.pool.pending() >= self.pool.capacity() {
                self.state.metrics.rejected_total.fetch_add(1, Ordering::Relaxed);
                let mut resp = Response::error(503, "server overloaded; retry later");
                resp.close = true;
                // Parity: the threaded shed happens before a request is
                // ever read, so it neither counts a response status nor
                // holds the in-flight gauge.
                self.start_write(token, resp);
                return;
            }
            let (fd, was_registered, served) = {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                conn.in_flight = true;
                conn.phase = Phase::Dispatched;
                let was = conn.registered;
                conn.registered = Registered::None;
                (conn.stream.as_raw_fd(), was, conn.served)
            };
            // The in-flight gauge covers routing *and* the response write,
            // exactly like the threaded backend's RAII guard; here the
            // connection carries the marker because the work changes
            // threads mid-request.
            self.state.metrics.in_flight.fetch_add(1, Ordering::AcqRel);
            if was_registered != Registered::None {
                let _ = self.poller.deregister(fd);
            }
            let state = Arc::clone(&self.state);
            let completions = Arc::clone(&self.completions);
            let wake = self.wake.clone();
            let keep_alive_max = self.config.keep_alive_max;
            let submitted = self.pool.try_execute(move || {
                let mut resp = router::handle(&state, &req);
                resp.close =
                    !req.keep_alive || state.is_stopping() || served + 1 == keep_alive_max;
                completions.lock().unwrap().push((token, resp));
                wake.wake();
            });
            if submitted.is_err() {
                // Shutdown won the race; drop the connection like the
                // threaded backend drops the un-submitted closure.
                self.state.metrics.rejected_total.fetch_add(1, Ordering::Relaxed);
                self.close_conn(token);
            }
        }

        /// Collects finished responses from the workers and starts writing
        /// them.
        fn pump_completions(&mut self) {
            let done: Vec<(u64, Response)> =
                std::mem::take(&mut *self.completions.lock().unwrap());
            for (token, resp) in done {
                let dispatched = matches!(
                    self.conns.get(&token),
                    Some(Conn { phase: Phase::Dispatched, .. })
                );
                if dispatched {
                    self.start_write(token, resp);
                }
                // Otherwise the connection died while the worker ran
                // (force-dropped during drain); its gauge was released at
                // close and the response has nowhere to go.
            }
        }

        /// One best-effort error answer, then close — the counterpart of
        /// the threaded backend's `ParseError::Bad` arm (counted as a
        /// response and visible in-flight while written).
        fn error_response(&mut self, token: u64, status: u16, message: &str) {
            {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                conn.in_flight = true;
            }
            self.state.metrics.in_flight.fetch_add(1, Ordering::AcqRel);
            self.state.metrics.count_response(status);
            let mut resp = Response::error(status, message);
            resp.close = true;
            self.start_write(token, resp);
        }

        /// Serializes `resp` and enters `Writing`.
        fn start_write(&mut self, token: u64, resp: Response) {
            {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                let out = encode_response(&resp);
                conn.phase = Phase::Writing { out, written: 0, close: resp.close };
            }
            self.drive_write(token);
        }

        /// Pushes response bytes until done or the socket back-pressures.
        fn drive_write(&mut self, token: u64) {
            let step = {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                let Phase::Writing { out, written, close } = &mut conn.phase else { return };
                loop {
                    if *written >= out.len() {
                        break WriteStep::Done(*close);
                    }
                    match conn.stream.write(&out[*written..]) {
                        Ok(0) => break WriteStep::Dead,
                        Ok(n) => *written += n,
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break WriteStep::Wait,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => break WriteStep::Dead,
                    }
                }
            };
            match step {
                WriteStep::Done(close) => self.finish_write(token, close),
                WriteStep::Dead => self.close_conn(token),
                WriteStep::Wait => {
                    if self.rearm(token, Interest::WRITE, Registered::Write).is_err() {
                        self.close_conn(token);
                    }
                }
            }
        }

        /// A response is fully on the wire: release the gauge, then either
        /// close or rearm for the next keep-alive request.
        fn finish_write(&mut self, token: u64, close: bool) {
            let now = self.config.clock.now_nanos();
            let release = {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                let held = conn.in_flight;
                conn.in_flight = false;
                held
            };
            if release {
                self.state.metrics.in_flight.fetch_sub(1, Ordering::AcqRel);
            }
            if close {
                self.close_conn(token);
                return;
            }
            {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                conn.served += 1;
                conn.phase = Phase::Reading;
                conn.wait_started = now;
                conn.in_body = false;
            }
            if self.rearm(token, Interest::READ, Registered::Read).is_err() {
                self.close_conn(token);
                return;
            }
            // Pipelined bytes may already complete the next request.
            self.drive_read(token);
        }

        /// Moves a connection's epoll registration to `interest`.
        fn rearm(&mut self, token: u64, interest: Interest, target: Registered) -> Result<(), ()> {
            let (fd, current) = match self.conns.get(&token) {
                Some(conn) => (conn.stream.as_raw_fd(), conn.registered),
                None => return Err(()),
            };
            let res = match current {
                r if r == target => Ok(()),
                Registered::None => self.poller.register(fd, token, interest),
                _ => self.poller.modify(fd, token, interest),
            };
            match res {
                Ok(()) => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.registered = target;
                    }
                    Ok(())
                }
                Err(_) => Err(()),
            }
        }

        /// Applies stopping/idle/read deadlines to every waiting
        /// connection — the reactor's version of the blocking read loop's
        /// `Fill::Tick` arm, sharing its budgets and its clock.
        fn sweep_deadlines(&mut self) {
            let stopping = self.state.is_stopping() || self.state.cancel.is_cancelled();
            let now = self.config.clock.now_nanos();
            let idle = self.config.idle_timeout;
            let read = self.config.read_timeout;
            let due: Vec<(u64, bool, bool)> = self
                .conns
                .values()
                .filter_map(|conn| match conn.phase {
                    Phase::Reading => {
                        let waited =
                            Duration::from_nanos(now.saturating_sub(conn.wait_started));
                        if stopping {
                            Some((conn.token, conn.buf.is_empty(), conn.in_body))
                        } else if conn.buf.is_empty() {
                            (waited >= idle).then_some((conn.token, true, false))
                        } else {
                            (waited >= read).then_some((conn.token, false, conn.in_body))
                        }
                    }
                    _ => None,
                })
                .collect();
            for (token, buf_empty, in_body) in due {
                if stopping {
                    if buf_empty {
                        self.close_conn(token);
                    } else {
                        self.error_response(token, 503, "server shutting down");
                    }
                } else if buf_empty {
                    // Idle past the keep-alive window: close silently.
                    self.close_conn(token);
                } else if in_body {
                    self.error_response(token, 408, "timed out receiving request body");
                } else {
                    self.error_response(token, 408, "timed out receiving request head");
                }
            }
        }

        /// Deregisters, releases the gauge if held, and drops the socket.
        fn close_conn(&mut self, token: u64) {
            if let Some(conn) = self.conns.remove(&token) {
                if conn.registered != Registered::None {
                    let _ = self.poller.deregister(conn.stream.as_raw_fd());
                }
                if conn.in_flight {
                    self.state.metrics.in_flight.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
    }
}
