//! Injectable time sources.
//!
//! Everything in the workspace that asks "what time is it?" or "wait a
//! moment" goes through the [`Clock`] trait so tests can substitute a
//! [`TestClock`] and become sleep-free and exact. Production code uses
//! [`monotonic()`], a process-wide [`MonotonicClock`] anchored at first use.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A monotonic time source plus the ability to wait.
///
/// `now_nanos` is nanoseconds since an arbitrary (per-clock) epoch; only
/// differences are meaningful. Implementations must be monotone
/// non-decreasing.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since this clock's epoch.
    fn now_nanos(&self) -> u64;

    /// Block the calling thread for `d` — or, for a deterministic clock,
    /// advance time by `d` without blocking.
    fn sleep(&self, d: Duration);
}

/// Shared handle to a clock; cheap to clone and store in request state.
pub type SharedClock = Arc<dyn Clock>;

/// The real monotonic clock, anchored at a process-global `Instant` taken
/// the first time any `MonotonicClock` is read. All instances share the
/// anchor, so nanos from different handles are directly comparable.
#[derive(Debug, Default, Clone, Copy)]
pub struct MonotonicClock;

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        anchor().elapsed().as_nanos() as u64
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// The process-wide shared real clock.
pub fn monotonic() -> SharedClock {
    static SHARED: OnceLock<SharedClock> = OnceLock::new();
    Arc::clone(SHARED.get_or_init(|| Arc::new(MonotonicClock)))
}

/// A deterministic clock for tests: time moves only when the test says so.
///
/// `sleep` advances the clock instead of blocking, so code that waits out a
/// backoff or polls a deadline runs in zero wall time while still observing
/// the exact durations it asked for.
#[derive(Debug, Default)]
pub struct TestClock {
    nanos: AtomicU64,
}

impl TestClock {
    /// A fresh clock at t=0, ready to be shared as a [`SharedClock`].
    pub fn new() -> Arc<TestClock> {
        Arc::new(TestClock::default())
    }

    /// Move time forward by `d`.
    pub fn advance(&self, d: Duration) {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }

    /// Time elapsed since t=0.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

impl Clock for TestClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = monotonic();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn test_clock_is_deterministic() {
        let c = TestClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now_nanos(), 5_000_000);
        c.sleep(Duration::from_micros(3));
        assert_eq!(c.elapsed(), Duration::from_micros(5003));
    }
}
