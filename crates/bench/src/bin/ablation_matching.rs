//! **Ablation A2** — quick-union vs greedy one-to-one vs exact matching
//! (paper §5.5).
//!
//! Two measurements:
//!
//! 1. End-to-end: the same query under each matching algorithm — ranking
//!    quality and query time. Quick is the paper's choice; greedy enforces
//!    Definition 4.2's one-to-one constraint; exact is the NP-hard optimum
//!    (Theorem 5.1) run under a pair-count cap.
//! 2. Greedy-vs-exact gap: random small matching instances where the exact
//!    optimum is computable — reports the mean and worst ratio of greedy
//!    covered area to the optimum.
//!
//! Run: `cargo run --release -p walrus-bench --bin ablation_matching`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use walrus_bench::report::{f3, Table};
use walrus_bench::workloads::{
    build_walrus_db, flower_query, id_of_name, precision_at, retrieval_dataset, retrieval_params,
};
use walrus_bench::{scale, time};
use walrus_core::bitmap::RegionBitmap;
use walrus_core::matching::{score_exact, score_greedy, MatchPair};
use walrus_core::{MatchingKind, Region, SimilarityKind};

fn main() {
    end_to_end();
    greedy_gap();
}

fn end_to_end() {
    let dataset = retrieval_dataset(scale());
    let query = flower_query();
    println!(
        "Ablation A2 (part 1): matching algorithm end-to-end\n\
         database: {} synthetic images\n",
        dataset.len()
    );
    let mut table = Table::new(
        "Matching Kind Ablation",
        &["kind", "top1_similarity", "precision_at_14", "query_s"],
    );
    for (label, kind) in [
        ("quick", MatchingKind::Quick),
        ("greedy", MatchingKind::Greedy),
        ("exact", MatchingKind::Exact),
    ] {
        let mut params = retrieval_params();
        params.matching = kind;
        let db = build_walrus_db(&dataset, params);
        let (top, secs) = time(|| db.top_k(&query, 14).expect("query succeeds"));
        let ids: Vec<usize> =
            top.iter().filter_map(|r| id_of_name(&dataset, &r.name)).collect();
        table.row(&[
            label.to_string(),
            f3(top.first().map_or(0.0, |t| t.similarity)),
            f3(precision_at(&dataset, &ids, 14)),
            f3(secs),
        ]);
    }
    table.print();
}

/// Builds a random region over a 64×64 image.
fn random_region(rng: &mut StdRng) -> Region {
    let mut bitmap = RegionBitmap::new(64, 64, 16);
    let windows = rng.gen_range(1..4);
    for _ in 0..windows {
        let x = rng.gen_range(0..56);
        let y = rng.gen_range(0..56);
        let w = rng.gen_range(8..32);
        let h = rng.gen_range(8..32);
        bitmap.mark_window(x, y, w, h);
    }
    Region::new(vec![0.0; 4], vec![0.0; 4], vec![0.0; 4], bitmap, windows)
}

fn greedy_gap() {
    println!("Ablation A2 (part 2): greedy vs exact covered-area ratio on random instances\n");
    let mut rng = StdRng::seed_from_u64(0xA2);
    let mut table =
        Table::new("Greedy Vs Exact Gap", &["pairs", "instances", "mean_ratio", "worst_ratio"]);
    for n_pairs in [3usize, 6, 9, 12] {
        let instances = 40;
        let mut ratios = Vec::with_capacity(instances);
        for _ in 0..instances {
            let nq = rng.gen_range(2..=4usize);
            let nt = rng.gen_range(2..=4usize);
            let q: Vec<Region> = (0..nq).map(|_| random_region(&mut rng)).collect();
            let t: Vec<Region> = (0..nt).map(|_| random_region(&mut rng)).collect();
            let mut pairs = Vec::with_capacity(n_pairs);
            for _ in 0..n_pairs {
                pairs.push(MatchPair { q: rng.gen_range(0..nq), t: rng.gen_range(0..nt) });
            }
            let area = 64 * 64;
            let g = score_greedy(&q, &t, &pairs, area, area, SimilarityKind::Symmetric);
            let e = score_exact(&q, &t, &pairs, area, area, SimilarityKind::Symmetric);
            let g_cov = (g.covered_query_area + g.covered_target_area) as f64;
            let e_cov = (e.covered_query_area + e.covered_target_area) as f64;
            assert!(e_cov + 1e-9 >= g_cov, "exact must dominate greedy");
            ratios.push(if e_cov > 0.0 { g_cov / e_cov } else { 1.0 });
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let worst = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        table.row(&[n_pairs.to_string(), instances.to_string(), f3(mean), f3(worst)]);
    }
    table.print();
    println!(
        "Expectation: greedy stays close to the optimum on typical\n\
         instances (mean ratio near 1.0) — the justification for the\n\
         paper's O(n^2) heuristic."
    );
}
