//! Append-only write-ahead log for [`crate::ImageDatabase`] mutations.
//!
//! The durable store ([`crate::recovery::DurableDatabase`]) logs every
//! insert/remove here *before* applying it in memory; recovery replays the
//! log on top of the last good snapshot. Records carry pre-extracted
//! regions, so replay is deterministic and never re-runs the wavelet /
//! clustering pipeline.
//!
//! ## Framing (little-endian)
//!
//! ```text
//! file   = magic "WALRUSWL" | u32 version=2 | record…
//! record = u32 payload_len | u32 crc32(payload) | payload
//! payload = u64 lsn | u8 op | op body
//!   op 1 (insert): u64 expected_id | name (u32 len + bytes)
//!                  | u64 width | u64 height | u64 region_count | regions…
//!   op 2 (remove): u64 image_id
//! ```
//!
//! Region bodies reuse the snapshot encoding ([`crate::persist`]), so the
//! two halves of the durability layer cannot drift apart. Version 2 stores
//! each region's binary prefilter signature alongside its bounds (matching
//! snapshot v3); version-1 logs are still read in full, with signatures
//! rebuilt during decode. The record encoding is chosen per *file*: an
//! existing v1 log keeps receiving v1 records on append (mixed-version
//! records inside one file would be unreadable), while fresh logs and
//! checkpoint resets start at the current version.
//!
//! ## Torn tails vs. corruption
//!
//! A crash mid-append leaves a partial record at the end of the file.
//! [`read_wal`] stops at the first record that is truncated or fails its
//! CRC; if nothing but that broken record follows, it is a *torn tail* —
//! reported so the caller can truncate it away. If a further valid record
//! parses after the broken one, the damage is in the *middle* of the log:
//! committed history is unreadable and the log is reported
//! [`crate::WalrusError::Corrupt`] rather than silently truncated.

use crate::crc32::crc32;
use crate::persist::{put_str, put_u32, put_u64, read_region, write_region, Reader};
use crate::region::Region;
use crate::{Result, WalrusError};

pub(crate) const WAL_MAGIC: &[u8; 8] = b"WALRUSWL";
/// Legacy log version: regions without binary signature lanes.
pub(crate) const WAL_VERSION_V1: u32 = 1;
/// Current log version: regions carry their signature lanes.
pub(crate) const WAL_VERSION: u32 = 2;
/// Bytes of `magic + version`.
pub const WAL_HEADER_LEN: u64 = 12;

const OP_INSERT: u8 = 1;
const OP_REMOVE: u8 = 2;

/// One logged mutation.
#[derive(Debug, Clone)]
pub enum WalOp {
    /// Insert pre-extracted regions as image `expected_id`.
    Insert {
        /// Id the image must receive on replay (integrity check).
        expected_id: usize,
        /// Caller-supplied name.
        name: String,
        /// Pixel width.
        width: usize,
        /// Pixel height.
        height: usize,
        /// Extracted regions.
        regions: Vec<Region>,
    },
    /// Remove image `id`.
    Remove {
        /// Id of the image to remove.
        id: usize,
    },
}

/// A decoded record: sequence number + operation.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// Monotonic sequence number (snapshot `last_lsn` decides replay).
    pub lsn: u64,
    /// The logged mutation.
    pub op: WalOp,
}

/// Result of scanning a WAL image.
#[derive(Debug)]
pub struct WalScan {
    /// All intact records, in order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header + intact records). Anything
    /// past this is a torn tail and should be truncated.
    pub valid_len: u64,
    /// True when broken bytes trail the valid prefix.
    pub torn_tail: bool,
    /// The file's format version (the current version when no readable
    /// header was present). Appends to an existing file must keep encoding
    /// records in this version.
    pub version: u32,
}

/// The file header of a fresh, empty WAL (current version).
pub fn wal_header() -> Vec<u8> {
    wal_header_versioned(WAL_VERSION)
}

/// The file header of an empty WAL in an explicit format version.
pub(crate) fn wal_header_versioned(version: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN as usize);
    out.extend_from_slice(WAL_MAGIC);
    put_u32(&mut out, version);
    out
}

/// Resets `path` to a fresh, empty current-version log (header only) and
/// fsyncs it. Used by checkpoints and by shard migration, which hands every
/// freshly built target shard an empty log.
pub fn reset(io: &dyn crate::storage::StorageIo, path: &std::path::Path) -> std::io::Result<()> {
    io.write(path, &wal_header())?;
    io.fsync(path)
}

/// Encodes one record (framing + payload) ready to append to a
/// current-version log.
pub fn encode_record(lsn: u64, op: &WalOp) -> Vec<u8> {
    encode_record_versioned(lsn, op, WAL_VERSION)
}

/// Encodes one record in the format of an explicit log version (appends to
/// a v1 file must stay v1).
pub(crate) fn encode_record_versioned(lsn: u64, op: &WalOp, version: u32) -> Vec<u8> {
    let with_signature = version >= WAL_VERSION;
    let mut payload = Vec::with_capacity(64);
    put_u64(&mut payload, lsn);
    match op {
        WalOp::Insert { expected_id, name, width, height, regions } => {
            payload.push(OP_INSERT);
            put_u64(&mut payload, *expected_id as u64);
            put_str(&mut payload, name);
            put_u64(&mut payload, *width as u64);
            put_u64(&mut payload, *height as u64);
            put_u64(&mut payload, regions.len() as u64);
            for r in regions {
                write_region(&mut payload, r, with_signature);
            }
        }
        WalOp::Remove { id } => {
            payload.push(OP_REMOVE);
            put_u64(&mut payload, *id as u64);
        }
    }
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

fn corrupt(what: &str) -> WalrusError {
    WalrusError::Corrupt(format!("write-ahead log: {what}"))
}

/// Decodes the payload of one record. `Err` means the payload passed its
/// CRC but is structurally invalid — real corruption, not a torn tail.
fn decode_payload(payload: &[u8], with_signature: bool) -> Result<WalRecord> {
    let mut r = Reader { bytes: payload, pos: 0 };
    let lsn = r.u64()?;
    let op = match r.take(1)?[0] {
        OP_INSERT => {
            let expected_id = r.u64()? as usize;
            let name = r.string()?;
            let width = r.u64()? as usize;
            let height = r.u64()? as usize;
            let region_count = r.u64()? as usize;
            if region_count > 10_000_000 {
                return Err(corrupt("implausible region count"));
            }
            let mut regions = Vec::with_capacity(region_count.min(r.remaining() / 48 + 1));
            for _ in 0..region_count {
                regions.push(read_region(&mut r, with_signature)?);
            }
            WalOp::Insert { expected_id, name, width, height, regions }
        }
        OP_REMOVE => WalOp::Remove { id: r.u64()? as usize },
        other => return Err(corrupt(&format!("unknown op tag {other}"))),
    };
    if r.pos != payload.len() {
        return Err(corrupt("record payload has trailing bytes"));
    }
    Ok(WalRecord { lsn, op })
}

/// Smallest payload any real record can have: `u64 lsn + u8 op tag`.
/// Frames claiming less are broken even if their CRC matches — crucially,
/// a zero-filled tail (the classic crash artifact: filesystems extend
/// files with zero blocks) reads as `len = 0, crc = 0`, and the CRC of
/// empty input *is* 0.
const MIN_PAYLOAD: usize = 9;

/// Checks whether an intact record starts at `bytes[pos..]` (used to
/// distinguish a torn tail from mid-log damage).
fn frame_is_intact(bytes: &[u8], pos: usize) -> bool {
    if bytes.len() - pos < 8 {
        return false;
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("length checked")) as usize;
    let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("length checked"));
    let start = pos + 8;
    len >= MIN_PAYLOAD && bytes.len() - start >= len && crc32(&bytes[start..start + len]) == crc
}

/// Scans a WAL image: validates the header, decodes intact records, and
/// classifies any trailing damage. Errors only on a bad header, a
/// structurally invalid (but CRC-clean) record, or mid-log corruption.
pub fn read_wal(bytes: &[u8]) -> Result<WalScan> {
    if bytes.len() < WAL_HEADER_LEN as usize {
        // An empty or partially-created log holds no committed records.
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            torn_tail: !bytes.is_empty(),
            version: WAL_VERSION,
        });
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("length checked"));
    if !(WAL_VERSION_V1..=WAL_VERSION).contains(&version) {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let with_signature = version >= WAL_VERSION;

    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    let mut last_lsn: Option<u64> = None;
    while pos < bytes.len() {
        if !frame_is_intact(bytes, pos) {
            // Broken frame: torn tail iff no intact frame follows anywhere.
            let frame_len = if bytes.len() - pos >= 8 {
                u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("length checked"))
                    as usize
            } else {
                0
            };
            let after = pos + 8 + frame_len;
            if after < bytes.len() && frame_is_intact(bytes, after) {
                return Err(corrupt("mid-log corruption (intact records follow a broken one)"));
            }
            return Ok(WalScan { records, valid_len: pos as u64, torn_tail: true, version });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("length checked"))
            as usize;
        let payload = &bytes[pos + 8..pos + 8 + len];
        let rec = decode_payload(payload, with_signature)?;
        if let Some(prev) = last_lsn {
            if rec.lsn <= prev {
                return Err(corrupt("sequence numbers not increasing"));
            }
        }
        last_lsn = Some(rec.lsn);
        records.push(rec);
        pos += 8 + len;
    }
    Ok(WalScan { records, valid_len: pos as u64, torn_tail: false, version })
}

/// Scans the **longest clean prefix** of a WAL image without ever erroring:
/// decoding stops at the first frame that is broken, structurally invalid,
/// or carries a non-increasing LSN, regardless of what follows.
///
/// This is the basis of explicit repair (`walrus recover <db> --shard <i>`):
/// where [`read_wal`] refuses mid-log corruption because silently dropping
/// committed history is never acceptable *implicitly*, an operator who asks
/// for repair accepts exactly that loss in exchange for bringing a
/// quarantined shard back. `valid_len` is the byte length to truncate the
/// file to; `torn_tail` is true whenever anything was dropped.
pub fn scan_valid_prefix(bytes: &[u8]) -> WalScan {
    let version = if bytes.len() >= WAL_HEADER_LEN as usize && &bytes[..8] == WAL_MAGIC {
        u32::from_le_bytes(bytes[8..12].try_into().expect("length checked"))
    } else {
        0
    };
    if !(WAL_VERSION_V1..=WAL_VERSION).contains(&version) {
        // No usable header: nothing is recoverable.
        return WalScan {
            records: Vec::new(),
            valid_len: 0,
            torn_tail: !bytes.is_empty(),
            version: WAL_VERSION,
        };
    }
    let with_signature = version >= WAL_VERSION;
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    let mut last_lsn: Option<u64> = None;
    while pos < bytes.len() {
        if !frame_is_intact(bytes, pos) {
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("length checked"))
            as usize;
        let Ok(rec) = decode_payload(&bytes[pos + 8..pos + 8 + len], with_signature) else {
            break;
        };
        if last_lsn.is_some_and(|prev| rec.lsn <= prev) {
            break;
        }
        last_lsn = Some(rec.lsn);
        records.push(rec);
        pos += 8 + len;
    }
    WalScan { records, valid_len: pos as u64, torn_tail: pos < bytes.len(), version }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::RegionBitmap;

    fn region(seed: u32) -> Region {
        let mut bitmap = RegionBitmap::new(32, 32, 8);
        bitmap.set_cell(seed as usize % 4, (seed as usize / 2) % 4);
        Region::new(
            vec![seed as f32, 1.0, 2.0],
            vec![0.0, 0.5, 1.5],
            vec![seed as f32 + 1.0, 1.5, 2.5],
            bitmap,
            3 + seed as usize,
        )
    }

    fn insert_op(id: usize) -> WalOp {
        WalOp::Insert {
            expected_id: id,
            name: format!("img{id}"),
            width: 32,
            height: 32,
            regions: vec![region(id as u32), region(id as u32 + 7)],
        }
    }

    fn log_with(ops: &[(u64, WalOp)]) -> Vec<u8> {
        let mut bytes = wal_header();
        for (lsn, op) in ops {
            bytes.extend_from_slice(&encode_record(*lsn, op));
        }
        bytes
    }

    #[test]
    fn round_trip_records() {
        let bytes = log_with(&[
            (1, insert_op(0)),
            (2, WalOp::Remove { id: 0 }),
            (3, insert_op(1)),
        ]);
        let scan = read_wal(&bytes).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert!(!scan.torn_tail);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(scan.records[0].lsn, 1);
        match &scan.records[0].op {
            WalOp::Insert { expected_id, name, width, height, regions } => {
                assert_eq!(*expected_id, 0);
                assert_eq!(name, "img0");
                assert_eq!((*width, *height), (32, 32));
                assert_eq!(regions.len(), 2);
                assert_eq!(regions[0].centroid, vec![0.0, 1.0, 2.0]);
                assert_eq!(regions[0].window_count, 3);
            }
            other => panic!("wrong op: {other:?}"),
        }
        assert!(matches!(scan.records[1].op, WalOp::Remove { id: 0 }));
    }

    #[test]
    fn v1_logs_still_read_and_rebuild_signatures() {
        let op = insert_op(0);
        let v1_record = encode_record_versioned(1, &op, WAL_VERSION_V1);
        let v2_record = encode_record(1, &op);
        // v1 records are 16 bytes per region shorter (no signature lanes).
        assert_eq!(v2_record.len(), v1_record.len() + 2 * 16);
        let mut bytes = wal_header_versioned(WAL_VERSION_V1);
        bytes.extend_from_slice(&v1_record);
        bytes.extend_from_slice(&encode_record_versioned(
            2,
            &WalOp::Remove { id: 0 },
            WAL_VERSION_V1,
        ));
        let scan = read_wal(&bytes).unwrap();
        assert_eq!(scan.version, WAL_VERSION_V1);
        assert_eq!(scan.records.len(), 2);
        assert!(!scan.torn_tail);
        match &scan.records[0].op {
            WalOp::Insert { regions, .. } => {
                // The decoder rebuilt each region's signature from its
                // bounds — identical to the current-version decode.
                for (a, b) in regions.iter().zip(match op {
                    WalOp::Insert { ref regions, .. } => regions,
                    _ => unreachable!(),
                }) {
                    assert_eq!(a.signature, b.signature);
                }
            }
            other => panic!("wrong op: {other:?}"),
        }
        let prefix = scan_valid_prefix(&bytes);
        assert_eq!(prefix.version, WAL_VERSION_V1);
        assert_eq!(prefix.records.len(), 2);
    }

    #[test]
    fn empty_and_header_only_logs() {
        let scan = read_wal(&[]).unwrap();
        assert!(scan.records.is_empty());
        assert!(!scan.torn_tail);
        let scan = read_wal(&wal_header()).unwrap();
        assert!(scan.records.is_empty());
        assert!(!scan.torn_tail);
        assert_eq!(scan.valid_len, WAL_HEADER_LEN);
    }

    #[test]
    fn partially_written_header_is_a_torn_tail() {
        let scan = read_wal(&wal_header()[..5]).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.torn_tail);
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = wal_header();
        bytes[0] = b'X';
        assert!(read_wal(&bytes).is_err());
        let mut bytes = wal_header();
        bytes[8] = 9;
        assert!(read_wal(&bytes).is_err());
    }

    #[test]
    fn torn_tail_detected_at_every_truncation_point() {
        let full = log_with(&[(1, insert_op(0)), (2, WalOp::Remove { id: 0 })]);
        let first_len = log_with(&[(1, insert_op(0))]).len();
        for cut in (WAL_HEADER_LEN as usize + 1)..full.len() {
            let scan = read_wal(&full[..cut]).unwrap_or_else(|e| {
                panic!("cut at {cut} must scan cleanly, got {e}");
            });
            if cut < first_len {
                assert_eq!(scan.records.len(), 0, "cut {cut}");
                assert_eq!(scan.valid_len, WAL_HEADER_LEN, "cut {cut}");
                assert!(scan.torn_tail);
            } else if cut < full.len() {
                assert_eq!(scan.records.len(), 1, "cut {cut}");
                assert_eq!(scan.valid_len, first_len as u64, "cut {cut}");
                // A cut exactly on the record boundary leaves no tail.
                assert_eq!(scan.torn_tail, cut != first_len, "cut {cut}");
            } else {
                assert_eq!(scan.records.len(), 2);
                assert!(!scan.torn_tail);
            }
        }
    }

    #[test]
    fn flip_in_last_record_is_a_torn_tail_flip_earlier_is_corruption() {
        let bytes = log_with(&[(1, insert_op(0)), (2, WalOp::Remove { id: 0 })]);
        let first_len = log_with(&[(1, insert_op(0))]).len();
        // Flip inside the final record's payload: recoverable torn tail.
        let mut tail_flip = bytes.clone();
        let pos = first_len + 10;
        tail_flip[pos] ^= 0xFF;
        let scan = read_wal(&tail_flip).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_tail);
        // Flip inside the first record's payload while a valid record
        // follows: committed history is damaged — hard error.
        let mut mid_flip = bytes.clone();
        mid_flip[WAL_HEADER_LEN as usize + 20] ^= 0xFF;
        assert!(matches!(read_wal(&mid_flip), Err(WalrusError::Corrupt(_))));
    }

    #[test]
    fn zero_filled_tail_is_a_torn_tail_not_corruption() {
        // Filesystems extend files with zero blocks on crash; a run of
        // zeros parses as `len = 0, crc = 0` and crc32(&[]) == 0, so this
        // must be caught by the minimum-payload rule, not the CRC.
        let good = log_with(&[(1, insert_op(0))]);
        for pad in [1, 8, 9, 64, 512] {
            let mut bytes = good.clone();
            bytes.extend(std::iter::repeat(0u8).take(pad));
            let scan = read_wal(&bytes).unwrap_or_else(|e| {
                panic!("zero tail of {pad} bytes must scan cleanly, got {e}")
            });
            assert_eq!(scan.records.len(), 1, "pad {pad}");
            assert_eq!(scan.valid_len, good.len() as u64, "pad {pad}");
            assert!(scan.torn_tail, "pad {pad}");
        }
    }

    #[test]
    fn non_monotonic_lsns_rejected() {
        let bytes = log_with(&[(2, insert_op(0)), (2, WalOp::Remove { id: 0 })]);
        assert!(read_wal(&bytes).is_err());
    }

    #[test]
    fn scan_valid_prefix_stops_at_damage_where_read_wal_errors() {
        // Mid-log flip: read_wal refuses, the repair scan keeps the prefix.
        let bytes = log_with(&[(1, insert_op(0)), (2, WalOp::Remove { id: 0 }), (3, insert_op(1))]);
        let first_len = log_with(&[(1, insert_op(0))]).len();
        let mut mid_flip = bytes.clone();
        mid_flip[first_len + 10] ^= 0xFF;
        assert!(read_wal(&mid_flip).is_err());
        let scan = scan_valid_prefix(&mid_flip);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, first_len as u64);
        assert!(scan.torn_tail);

        // Non-monotonic LSN: everything before the regression survives.
        let regressed = log_with(&[(5, insert_op(0)), (4, WalOp::Remove { id: 0 })]);
        let scan = scan_valid_prefix(&regressed);
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_tail);

        // Clean log: identical verdict to read_wal.
        let scan = scan_valid_prefix(&bytes);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert!(!scan.torn_tail);

        // Destroyed header: nothing recoverable.
        let mut bad_header = bytes;
        bad_header[0] = b'X';
        let scan = scan_valid_prefix(&bad_header);
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(scan.torn_tail);
    }
}
