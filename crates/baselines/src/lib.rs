//! # walrus-baselines
//!
//! The single-signature retrieval systems WALRUS is compared against:
//!
//! * [`wbiis`] — a reimplementation of **WBIIS** (Wang, Wiederhold,
//!   Firschein, Wei; IJODL 1998), the head-to-head comparator of the
//!   paper's Figures 7 vs 8: Daubechies-D4 multi-level wavelet features per
//!   channel with a variance pre-filter and a coarse-then-fine multi-step
//!   search.
//! * [`fmiq`] — Jacobs, Finkelstein, Salesin's **fast multiresolution image
//!   querying** (SIGGRAPH 1995): truncated, sign-quantized Haar
//!   coefficients with the weighted bitmap metric, discussed in the paper's
//!   related work.
//! * [`histogram`] — a QBIC-style global **color histogram** retriever,
//!   representing the pre-wavelet generation of systems.
//!
//! All three compute **one signature per image**, which is exactly why they
//! fail on translated/scaled objects (paper §1.1) — the phenomenon the
//! workspace's retrieval-quality experiment quantifies. They share the
//! [`Retriever`] trait so the benchmark harness can drive any of them
//! interchangeably.

pub mod eval;
pub mod fmiq;
pub mod histogram;
pub mod wbiis;

pub use fmiq::FmiqRetriever;
pub use histogram::HistogramRetriever;
pub use wbiis::WbiisRetriever;

use walrus_imagery::Image;

/// Errors produced by this crate.
#[derive(Debug)]
pub enum BaselineError {
    /// Underlying image error.
    Image(walrus_imagery::ImageError),
    /// Underlying wavelet error.
    Wavelet(walrus_wavelet::WaveletError),
    /// Invalid parameters.
    BadParams(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Image(e) => write!(f, "image error: {e}"),
            BaselineError::Wavelet(e) => write!(f, "wavelet error: {e}"),
            BaselineError::BadParams(msg) => write!(f, "bad parameters: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<walrus_imagery::ImageError> for BaselineError {
    fn from(e: walrus_imagery::ImageError) -> Self {
        BaselineError::Image(e)
    }
}

impl From<walrus_wavelet::WaveletError> for BaselineError {
    fn from(e: walrus_wavelet::WaveletError) -> Self {
        BaselineError::Wavelet(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BaselineError>;

/// A ranked retrieval answer. Baselines rank by *distance* (ascending), the
/// natural output of single-signature systems.
#[derive(Debug, Clone)]
pub struct Ranked {
    /// Id assigned at insertion.
    pub id: usize,
    /// Caller-supplied name.
    pub name: String,
    /// Signature distance to the query (lower = more similar).
    pub distance: f32,
}

/// A whole-image retrieval system: one signature per image, nearest
/// signatures win.
///
/// ```
/// use walrus_baselines::{HistogramRetriever, Retriever};
/// use walrus_imagery::{ColorSpace, Image};
///
/// let mut retriever = HistogramRetriever::new();
/// let red = Image::from_fn(16, 16, ColorSpace::Rgb, |_, _, c| if c == 0 { 0.9 } else { 0.1 })?;
/// let blue = Image::from_fn(16, 16, ColorSpace::Rgb, |_, _, c| if c == 2 { 0.9 } else { 0.1 })?;
/// retriever.insert("red", &red)?;
/// retriever.insert("blue", &blue)?;
/// let top = retriever.top_k(&red, 1)?;
/// assert_eq!(top[0].name, "red");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait Retriever {
    /// Human-readable system name (for benchmark tables).
    fn system_name(&self) -> &'static str;

    /// Indexes an image; returns its id.
    fn insert(&mut self, name: &str, image: &Image) -> Result<usize>;

    /// Number of indexed images.
    fn len(&self) -> usize;

    /// True when nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k` images most similar to `query`, ascending distance.
    fn top_k(&self, query: &Image, k: usize) -> Result<Vec<Ranked>>;
}
