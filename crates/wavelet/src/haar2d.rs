//! Two-dimensional Haar transforms (paper §3.2).
//!
//! The primary transform is the **non-standard decomposition** of Figure 2
//! (`computeWavelet`): one step of horizontal pairwise averaging/differencing
//! followed by one vertical step, recursing on the quadrant of averages.
//! For a `w × w` input the output layout is
//!
//! ```text
//! ┌───────────────┬───────────────┐
//! │ transform(A)  │ horizontal    │   A = w/2 × w/2 matrix of 2×2 box
//! │ (recursive)   │ details       │       averages
//! ├───────────────┼───────────────┤
//! │ vertical      │ diagonal      │
//! │ details       │ details       │
//! └───────────────┴───────────────┘
//! ```
//!
//! with the overall average finally landing at `[0, 0]`. Matching Figure 2
//! (translated to 0-based `(x, y)`, `x` = column):
//!
//! * average     `A[i,j]     = ( TL + TR + BL + BR) / 4`
//! * upper-right `W[w/2+i,j] = (−TL + TR − BL + BR) / 4` (horizontal detail)
//! * lower-left  `W[i,w/2+j] = (−TL − TR + BL + BR) / 4` (vertical detail)
//! * lower-right `W[w/2+i,w/2+j] = (TL − TR − BL + BR) / 4` (diagonal)
//!
//! where `TL = I[2i, 2j]`, `TR = I[2i+1, 2j]`, `BL = I[2i, 2j+1]`,
//! `BR = I[2i+1, 2j+1]`.
//!
//! The **standard decomposition** (full 1-D transform of every row, then of
//! every column) is also provided; the two transforms are different bases,
//! and tests use the standard one as an independent cross-check of energy
//! and invertibility properties.
//!
//! All forward transforms here are *raw* (plain averages/differences, as in
//! Figure 2). The paper's 2-D normalization ("the normalization factor is
//! `2^i`") is the explicit [`normalize_nonstandard`] step, following the
//! same depth convention as [`crate::haar1d::normalize`].

use crate::{is_pow2, log2, Result, WaveletError};

fn check_square(len: usize, side: usize) -> Result<()> {
    if !is_pow2(side) {
        return Err(WaveletError::NotPowerOfTwo { len: side });
    }
    if len != side * side {
        return Err(WaveletError::NotSquare { width: side, height: len / side.max(1) });
    }
    Ok(())
}

/// Non-standard 2-D Haar decomposition of a `side × side` row-major matrix
/// (raw coefficients). This is `computeWavelet` from Figure 2 of the paper,
/// implemented iteratively.
pub fn nonstandard_forward(input: &[f32], side: usize) -> Result<Vec<f32>> {
    check_square(input.len(), side)?;
    let mut w = vec![0.0f32; side * side];
    if side == 1 {
        w[0] = input[0];
        return Ok(w);
    }
    // `avg` holds the current approximation matrix (starts as the image).
    let mut avg = input.to_vec();
    let mut cur = side;
    let mut next = vec![0.0f32; (side / 2) * (side / 2)];
    while cur > 1 {
        let half = cur / 2;
        for j in 0..half {
            for i in 0..half {
                let tl = avg[2 * j * cur + 2 * i];
                let tr = avg[2 * j * cur + 2 * i + 1];
                let bl = avg[(2 * j + 1) * cur + 2 * i];
                let br = avg[(2 * j + 1) * cur + 2 * i + 1];
                next[j * half + i] = (tl + tr + bl + br) / 4.0;
                // Detail quadrants of the *output* at this recursion depth
                // live in the upper-left cur×cur corner of `w`.
                w[j * side + (half + i)] = (-tl + tr - bl + br) / 4.0;
                w[(half + j) * side + i] = (-tl - tr + bl + br) / 4.0;
                w[(half + j) * side + (half + i)] = (tl - tr - bl + br) / 4.0;
            }
        }
        avg[..half * half].copy_from_slice(&next[..half * half]);
        cur = half;
    }
    w[0] = avg[0];
    Ok(w)
}

/// Inverse of [`nonstandard_forward`]; exact reconstruction.
pub fn nonstandard_inverse(coeffs: &[f32], side: usize) -> Result<Vec<f32>> {
    check_square(coeffs.len(), side)?;
    let mut img = coeffs.to_vec();
    if side == 1 {
        return Ok(img);
    }
    // Rebuild from the coarsest level outward. `avg` starts as the 1×1
    // overall average and doubles each step.
    let mut avg = vec![coeffs[0]];
    let mut cur = 1usize;
    while cur < side {
        let next_side = cur * 2;
        let mut next = vec![0.0f32; next_side * next_side];
        for j in 0..cur {
            for i in 0..cur {
                let a = avg[j * cur + i];
                let h = img[j * side + (cur + i)]; // horizontal detail
                let v = img[(cur + j) * side + i]; // vertical detail
                let d = img[(cur + j) * side + (cur + i)]; // diagonal
                next[2 * j * next_side + 2 * i] = a - h - v + d; // TL
                next[2 * j * next_side + 2 * i + 1] = a + h - v - d; // TR
                next[(2 * j + 1) * next_side + 2 * i] = a - h + v - d; // BL
                next[(2 * j + 1) * next_side + 2 * i + 1] = a + h + v + d; // BR
            }
        }
        avg = next;
        cur = next_side;
    }
    img.copy_from_slice(&avg);
    Ok(img)
}

/// Standard 2-D decomposition: full 1-D transform of every row, then of
/// every column (raw coefficients).
pub fn standard_forward(input: &[f32], side: usize) -> Result<Vec<f32>> {
    check_square(input.len(), side)?;
    let mut out = input.to_vec();
    // Rows.
    for j in 0..side {
        let row = crate::haar1d::forward(&out[j * side..(j + 1) * side])?;
        out[j * side..(j + 1) * side].copy_from_slice(&row);
    }
    // Columns.
    let mut col = vec![0.0f32; side];
    for i in 0..side {
        for j in 0..side {
            col[j] = out[j * side + i];
        }
        let t = crate::haar1d::forward(&col)?;
        for j in 0..side {
            out[j * side + i] = t[j];
        }
    }
    Ok(out)
}

/// Inverse of [`standard_forward`].
pub fn standard_inverse(coeffs: &[f32], side: usize) -> Result<Vec<f32>> {
    check_square(coeffs.len(), side)?;
    let mut out = coeffs.to_vec();
    let mut col = vec![0.0f32; side];
    for i in 0..side {
        for j in 0..side {
            col[j] = out[j * side + i];
        }
        let t = crate::haar1d::inverse(&col)?;
        for j in 0..side {
            out[j * side + i] = t[j];
        }
    }
    for j in 0..side {
        let row = crate::haar1d::inverse(&out[j * side..(j + 1) * side])?;
        out[j * side..(j + 1) * side].copy_from_slice(&row);
    }
    Ok(out)
}

/// Applies the paper's 2-D normalization in place: a detail coefficient in
/// the level-`d` quadrants (`d = 1` is the finest pass, quadrant size
/// `side/2^d`) is divided by `2^(L−d)`, `L = log2(side)` — the 2-D analog of
/// the worked 1-D example's convention. The overall average is untouched.
pub fn normalize_nonstandard(coeffs: &mut [f32], side: usize) {
    scale_nonstandard(coeffs, side, false);
}

/// Undoes [`normalize_nonstandard`].
pub fn denormalize_nonstandard(coeffs: &mut [f32], side: usize) {
    scale_nonstandard(coeffs, side, true);
}

fn scale_nonstandard(coeffs: &mut [f32], side: usize, invert: bool) {
    debug_assert_eq!(coeffs.len(), side * side);
    if side <= 1 {
        return;
    }
    let levels = log2(side);
    // Quadrant of size q = side/2^d holds depth-d details at offsets
    // (q,0), (0,q), (q,q).
    for d in 1..=levels {
        let q = side >> d;
        let factor = (2.0f32).powi((levels - d) as i32);
        let factor = if invert { factor } else { 1.0 / factor };
        for &(ox, oy) in &[(q, 0), (0, q), (q, q)] {
            for j in 0..q {
                for i in 0..q {
                    coeffs[(oy + j) * side + (ox + i)] *= factor;
                }
            }
        }
    }
}

/// Extracts the upper-left `m × m` corner of a `side × side` coefficient
/// matrix — the "lowest frequency band" the paper uses as a window
/// signature. For the non-standard transform this equals the full transform
/// of the image averaged down to `m × m`.
pub fn corner(coeffs: &[f32], side: usize, m: usize) -> Vec<f32> {
    assert!(m <= side, "corner {m} larger than matrix {side}");
    let mut out = Vec::with_capacity(m * m);
    for j in 0..m {
        out.extend_from_slice(&coeffs[j * side..j * side + m]);
    }
    out
}

/// Averages a `side × side` matrix down to `m × m` by box filtering
/// (`side/m` must be a power-of-two ratio). Used by tests to verify the
/// corner/average-pyramid identity, and by the naive signature algorithm.
pub fn average_down(input: &[f32], side: usize, m: usize) -> Vec<f32> {
    assert!(m <= side && side % m == 0);
    let k = side / m;
    let mut out = vec![0.0f32; m * m];
    for j in 0..m {
        for i in 0..m {
            let mut sum = 0.0;
            for dy in 0..k {
                for dx in 0..k {
                    sum += input[(j * k + dy) * side + (i * k + dx)];
                }
            }
            out[j * m + i] = sum / (k * k) as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(side: usize) -> Vec<f32> {
        (0..side * side).map(|i| ((i * 37 + 11) % 23) as f32 / 23.0).collect()
    }

    #[test]
    fn two_by_two_matches_figure2_by_hand() {
        // I = [1 2; 3 4] (row-major): TL=1 TR=2 BL=3 BR=4.
        let w = nonstandard_forward(&[1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(w[0], 2.5); // average
        assert_eq!(w[1], (-1.0 + 2.0 - 3.0 + 4.0) / 4.0); // horizontal = 0.5
        assert_eq!(w[2], (-1.0 - 2.0 + 3.0 + 4.0) / 4.0); // vertical = 1.0
        assert_eq!(w[3], (1.0 - 2.0 - 3.0 + 4.0) / 4.0); // diagonal = 0.0
    }

    #[test]
    fn nonstandard_round_trip() {
        for side in [1usize, 2, 4, 8, 16, 32] {
            let img = demo(side);
            let w = nonstandard_forward(&img, side).unwrap();
            let back = nonstandard_inverse(&w, side).unwrap();
            for (a, b) in img.iter().zip(&back) {
                assert!((a - b).abs() < 1e-4, "side {side}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn standard_round_trip() {
        for side in [1usize, 2, 4, 8, 16] {
            let img = demo(side);
            let w = standard_forward(&img, side).unwrap();
            let back = standard_inverse(&w, side).unwrap();
            for (a, b) in img.iter().zip(&back) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn dc_coefficient_is_global_mean() {
        let img = demo(16);
        let mean: f32 = img.iter().sum::<f32>() / img.len() as f32;
        let ns = nonstandard_forward(&img, 16).unwrap();
        assert!((ns[0] - mean).abs() < 1e-5);
        let st = standard_forward(&img, 16).unwrap();
        assert!((st[0] - mean).abs() < 1e-5);
    }

    #[test]
    fn constant_image_has_only_dc() {
        let img = vec![0.7f32; 64];
        let w = nonstandard_forward(&img, 8).unwrap();
        assert!((w[0] - 0.7).abs() < 1e-6);
        assert!(w[1..].iter().all(|&c| c.abs() < 1e-6));
    }

    #[test]
    fn standard_and_nonstandard_differ_in_general() {
        // They are different bases; agreeing everywhere would be a bug.
        let img = demo(8);
        let ns = nonstandard_forward(&img, 8).unwrap();
        let st = standard_forward(&img, 8).unwrap();
        assert!((ns[0] - st[0]).abs() < 1e-5, "DC must agree");
        let diff = ns.iter().zip(&st).any(|(a, b)| (a - b).abs() > 1e-4);
        assert!(diff, "transforms should differ off the DC");
    }

    #[test]
    fn corner_equals_transform_of_average_pyramid() {
        // The identity the DP algorithm rests on: the upper-left m×m of the
        // non-standard transform equals the transform of the m×m
        // box-average of the image.
        let side = 32;
        let img = demo(side);
        let full = nonstandard_forward(&img, side).unwrap();
        for m in [1usize, 2, 4, 8, 16] {
            let got = corner(&full, side, m);
            let avg = average_down(&img, side, m);
            let want = nonstandard_forward(&avg, m).unwrap();
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-4, "m={m}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn normalization_round_trips() {
        let img = demo(16);
        let raw = nonstandard_forward(&img, 16).unwrap();
        let mut w = raw.clone();
        normalize_nonstandard(&mut w, 16);
        assert!(w.iter().zip(&raw).any(|(a, b)| (a - b).abs() > 1e-6), "should rescale something");
        denormalize_nonstandard(&mut w, 16);
        for (a, b) in w.iter().zip(&raw) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn normalization_preserves_dc_and_finest_divides_most() {
        let img = demo(8); // L = 3
        let raw = nonstandard_forward(&img, 8).unwrap();
        let mut w = raw.clone();
        normalize_nonstandard(&mut w, 8);
        assert_eq!(w[0], raw[0]);
        // Finest detail (d=1, quadrant size 4) divided by 2^(3-1) = 4.
        let idx = 4; // first horizontal detail of finest level, row 0
        if raw[idx].abs() > 1e-9 {
            assert!((w[idx] * 4.0 - raw[idx]).abs() < 1e-6);
        }
        // Coarsest detail (d=3, quadrant size 1) untouched: offset (1,0).
        let idx = 1;
        assert!((w[idx] - raw[idx]).abs() < 1e-7);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(nonstandard_forward(&[0.0; 6], 3).is_err());
        assert!(nonstandard_forward(&[0.0; 8], 4).is_err());
        assert!(standard_forward(&[0.0; 12], 4).is_err());
    }

    #[test]
    fn average_down_identity_and_global() {
        let img = demo(8);
        assert_eq!(average_down(&img, 8, 8), img);
        let g = average_down(&img, 8, 1);
        let mean: f32 = img.iter().sum::<f32>() / 64.0;
        assert!((g[0] - mean).abs() < 1e-5);
    }

    #[test]
    fn linearity() {
        let a = demo(8);
        let b: Vec<f32> = demo(8).iter().map(|v| v * 2.0 + 0.1).collect();
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let ta = nonstandard_forward(&a, 8).unwrap();
        let tb = nonstandard_forward(&b, 8).unwrap();
        let ts = nonstandard_forward(&sum, 8).unwrap();
        for i in 0..64 {
            assert!((ta[i] + tb[i] - ts[i]).abs() < 1e-4);
        }
    }
}
