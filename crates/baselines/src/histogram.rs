//! Global color-histogram retrieval — the QBIC-generation baseline
//! (`[Nib93]`, `[FSN+95]` in the WALRUS paper).
//!
//! Each image is summarized by a normalized 3-D color histogram (default
//! 4×4×4 RGB bins); images are ranked by L1 histogram distance. Histograms
//! are invariant to *global* scale and orientation but, as the paper's §1.1
//! explains, carry no shape/location/texture information at all — two images
//! with the same color budget look identical to this retriever.

use crate::{BaselineError, Ranked, Result, Retriever};
use walrus_imagery::{ColorSpace, Image};

/// Histogram retriever parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramParams {
    /// Bins per channel (total bins = `bins³`).
    pub bins: usize,
}

impl Default for HistogramParams {
    fn default() -> Self {
        Self { bins: 4 }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    name: String,
    histogram: Vec<f32>,
}

/// The color-histogram retriever.
#[derive(Debug, Clone)]
pub struct HistogramRetriever {
    params: HistogramParams,
    images: Vec<Entry>,
}

impl HistogramRetriever {
    /// Creates an empty index with 4×4×4 bins.
    pub fn new() -> Self {
        Self::with_params(HistogramParams::default())
    }

    /// Creates an empty index with explicit parameters.
    pub fn with_params(params: HistogramParams) -> Self {
        Self { params, images: Vec::new() }
    }

    /// Computes the normalized histogram of an image.
    pub fn histogram(&self, image: &Image) -> Result<Vec<f32>> {
        let bins = self.params.bins;
        if bins == 0 {
            return Err(BaselineError::BadParams("bins must be >= 1".into()));
        }
        let rgb = image.to_space(ColorSpace::Rgb)?;
        let mut hist = vec![0.0f32; bins * bins * bins];
        let quant = |v: f32| -> usize { ((v.clamp(0.0, 1.0) * bins as f32) as usize).min(bins - 1) };
        for y in 0..rgb.height() {
            for x in 0..rgb.width() {
                let r = quant(rgb.channel(0).get(x, y));
                let g = quant(rgb.channel(1).get(x, y));
                let b = quant(rgb.channel(2).get(x, y));
                hist[(r * bins + g) * bins + b] += 1.0;
            }
        }
        let total = rgb.area() as f32;
        for h in &mut hist {
            *h /= total;
        }
        Ok(hist)
    }
}

impl Default for HistogramRetriever {
    fn default() -> Self {
        Self::new()
    }
}

/// L1 distance between two normalized histograms (∈ [0, 2]).
pub fn l1_distance(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

impl Retriever for HistogramRetriever {
    fn system_name(&self) -> &'static str {
        "ColorHistogram"
    }

    fn insert(&mut self, name: &str, image: &Image) -> Result<usize> {
        let histogram = self.histogram(image)?;
        self.images.push(Entry { name: name.to_string(), histogram });
        Ok(self.images.len() - 1)
    }

    fn len(&self) -> usize {
        self.images.len()
    }

    fn top_k(&self, query: &Image, k: usize) -> Result<Vec<Ranked>> {
        if self.images.is_empty() || k == 0 {
            return Ok(Vec::new());
        }
        let q = self.histogram(query)?;
        let mut scored: Vec<(usize, f32)> = self
            .images
            .iter()
            .enumerate()
            .map(|(i, e)| (i, l1_distance(&q, &e.histogram)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        Ok(scored
            .into_iter()
            .map(|(i, d)| Ranked { id: i, name: self.images[i].name.clone(), distance: d })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walrus_imagery::synth::scene::{Scene, SceneObject};
    use walrus_imagery::synth::shapes::Shape;
    use walrus_imagery::synth::texture::{Rgb, Texture};

    fn plain(color: Rgb) -> Image {
        Scene::new(Texture::Solid(color)).render(32, 32).unwrap()
    }

    #[test]
    fn histogram_sums_to_one() {
        let r = HistogramRetriever::new();
        let h = r.histogram(&plain(Rgb(0.3, 0.7, 0.2))).unwrap();
        let sum: f32 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert_eq!(h.len(), 64);
    }

    #[test]
    fn identical_color_distance_zero() {
        let r = HistogramRetriever::new();
        let a = r.histogram(&plain(Rgb(0.3, 0.7, 0.2))).unwrap();
        let b = r.histogram(&plain(Rgb(0.3, 0.7, 0.2))).unwrap();
        assert_eq!(l1_distance(&a, &b), 0.0);
    }

    #[test]
    fn disjoint_colors_have_max_distance() {
        let r = HistogramRetriever::new();
        let a = r.histogram(&plain(Rgb(0.95, 0.05, 0.05))).unwrap();
        let b = r.histogram(&plain(Rgb(0.05, 0.05, 0.95))).unwrap();
        assert!((l1_distance(&a, &b) - 2.0).abs() < 1e-5);
    }

    #[test]
    fn retrieval_prefers_same_palette() {
        let mut r = HistogramRetriever::new();
        r.insert("red", &plain(Rgb(0.9, 0.1, 0.1))).unwrap();
        r.insert("blue", &plain(Rgb(0.1, 0.1, 0.9))).unwrap();
        let top = r.top_k(&plain(Rgb(0.85, 0.12, 0.1)), 2).unwrap();
        assert_eq!(top[0].name, "red");
        assert!(top[0].distance < top[1].distance);
    }

    #[test]
    fn histogram_is_location_blind() {
        // The documented failure mode: the same object anywhere in the
        // frame gives a (nearly) identical histogram.
        let img_at = |c: (f32, f32)| {
            Scene::new(Texture::Solid(Rgb(0.1, 0.5, 0.15)))
                .with(SceneObject::new(
                    Shape::Rect { hx: 0.5, hy: 0.5 },
                    Texture::Solid(Rgb(0.9, 0.1, 0.1)),
                    c,
                    0.4,
                ))
                .render(64, 64)
                .unwrap()
        };
        let r = HistogramRetriever::new();
        let a = r.histogram(&img_at((0.3, 0.3))).unwrap();
        let b = r.histogram(&img_at((0.7, 0.7))).unwrap();
        assert!(l1_distance(&a, &b) < 0.05, "histograms should barely move");
    }

    #[test]
    fn empty_and_zero_k() {
        let r = HistogramRetriever::new();
        assert!(r.is_empty());
        assert!(r.top_k(&plain(Rgb(0.5, 0.5, 0.5)), 4).unwrap().is_empty());
    }

    #[test]
    fn custom_bin_count() {
        let r = HistogramRetriever::with_params(HistogramParams { bins: 8 });
        let h = r.histogram(&plain(Rgb(0.5, 0.5, 0.5))).unwrap();
        assert_eq!(h.len(), 512);
    }
}
