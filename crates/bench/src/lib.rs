//! # walrus-bench
//!
//! Workloads and harnesses that regenerate **every table and figure** of the
//! WALRUS paper's evaluation (§6), plus ablation studies for the design
//! choices the paper calls out. Each experiment is a binary:
//!
//! | Binary                | Paper artifact | What it reports |
//! |-----------------------|----------------|-----------------|
//! | `fig6a`               | Figure 6(a)    | naive vs DP signature time over window size |
//! | `fig6b`               | Figure 6(b)    | naive vs DP signature time over signature size |
//! | `fig7_8`              | Figures 7 & 8  | top-k retrieval quality, WALRUS vs WBIIS (vs FMIQ, histogram) |
//! | `table1`              | Table 1        | response time / regions retrieved / distinct images over ε |
//! | `regions_per_image`   | §6.6           | region count over ε_c, RGB vs YCC |
//! | `ablation_signature`  | Def. 4.1       | centroid vs bounding-box region signatures |
//! | `ablation_matching`   | §5.5           | quick vs greedy vs exact matching |
//! | `ablation_bitmap`     | §5.3           | bitmap granularity vs area error and storage |
//! | `ablation_windows`    | §5.2           | stride / window-range sweeps |
//! | `ablation_integral`   | beyond paper   | summed-area-table signatures vs DP vs naive |
//! | `robustness_curves`   | §1.1           | perturbation dose–response, WALRUS vs WBIIS |
//! | `parallel_throughput` | beyond paper   | serial vs parallel batch ingest & query latency over thread counts → `BENCH_parallel.json` |
//!
//! Every binary prints a plain-text table (and machine-readable CSV lines
//! prefixed `csv,`) so results can be diffed against EXPERIMENTS.md.
//!
//! Criterion micro-benchmarks for the substrates live under `benches/`.

pub mod report;
pub mod workloads;

use std::time::Instant;

/// Times a closure, returning `(result, seconds)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Reads an environment-variable knob with a default — the harnesses use
/// `WALRUS_BENCH_SCALE=quick|full` to trade runtime for fidelity.
pub fn scale() -> Scale {
    match std::env::var("WALRUS_BENCH_SCALE").as_deref() {
        Ok("full") => Scale::Full,
        _ => Scale::Quick,
    }
}

/// Harness fidelity level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes for CI-speed runs (the default).
    Quick,
    /// Paper-scale sizes (`WALRUS_BENCH_SCALE=full`).
    Full,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_something() {
        let (value, secs) = time(|| (0..10_000).sum::<u64>());
        assert_eq!(value, 49_995_000);
        assert!(secs >= 0.0);
    }

    #[test]
    fn default_scale_is_quick() {
        // Unless the environment overrides it, harnesses run quick.
        if std::env::var("WALRUS_BENCH_SCALE").is_err() {
            assert_eq!(scale(), Scale::Quick);
        }
    }
}
