//! Dynamic-dimension axis-aligned rectangles.
//!
//! All geometric accumulations (area, margin, overlap) are done in `f64`:
//! 12-dimensional products of sub-unit extents underflow `f32` quickly, and
//! the R\* heuristics compare exactly those products.

use crate::{RStarError, Result};

/// An axis-aligned box `[min, max]` in `d` dimensions. Points are degenerate
/// rectangles with `min == max`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    min: Vec<f32>,
    max: Vec<f32>,
}

impl Rect {
    /// Creates a rectangle, validating `min[d] ≤ max[d]` and finiteness.
    pub fn new(min: Vec<f32>, max: Vec<f32>) -> Result<Self> {
        if min.len() != max.len() {
            return Err(RStarError::InvalidRect(format!(
                "min has {} dims, max has {}",
                min.len(),
                max.len()
            )));
        }
        if min.is_empty() {
            return Err(RStarError::InvalidRect("zero-dimensional rectangle".into()));
        }
        for (d, (&a, &b)) in min.iter().zip(&max).enumerate() {
            if !a.is_finite() || !b.is_finite() {
                return Err(RStarError::InvalidRect(format!("non-finite coordinate in dim {d}")));
            }
            if a > b {
                return Err(RStarError::InvalidRect(format!("min {a} > max {b} in dim {d}")));
            }
        }
        Ok(Self { min, max })
    }

    /// A degenerate rectangle at `point`.
    pub fn point(point: &[f32]) -> Result<Self> {
        Self::new(point.to_vec(), point.to_vec())
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.min.len()
    }

    /// Lower corner.
    #[inline]
    pub fn min(&self) -> &[f32] {
        &self.min
    }

    /// Upper corner.
    #[inline]
    pub fn max(&self) -> &[f32] {
        &self.max
    }

    /// Geometric centre.
    pub fn center(&self) -> Vec<f32> {
        self.min.iter().zip(&self.max).map(|(&a, &b)| (a + b) / 2.0).collect()
    }

    /// Hyper-volume (product of extents).
    pub fn area(&self) -> f64 {
        self.min
            .iter()
            .zip(&self.max)
            .map(|(&a, &b)| (b - a) as f64)
            .product()
    }

    /// Margin: sum of extents (the R\* split's axis-selection criterion).
    pub fn margin(&self) -> f64 {
        self.min.iter().zip(&self.max).map(|(&a, &b)| (b - a) as f64).sum()
    }

    /// True when `self` and `other` intersect (closed boxes: touching
    /// counts).
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.min
            .iter()
            .zip(&self.max)
            .zip(other.min.iter().zip(&other.max))
            .all(|((&amin, &amax), (&bmin, &bmax))| amin <= bmax && bmin <= amax)
    }

    /// True when `self` fully contains `other`.
    pub fn contains(&self, other: &Rect) -> bool {
        self.min
            .iter()
            .zip(&self.max)
            .zip(other.min.iter().zip(&other.max))
            .all(|((&amin, &amax), (&bmin, &bmax))| amin <= bmin && bmax <= amax)
    }

    /// Volume of the intersection (0 when disjoint).
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let mut v = 1.0f64;
        for ((&amin, &amax), (&bmin, &bmax)) in
            self.min.iter().zip(&self.max).zip(other.min.iter().zip(&other.max))
        {
            let lo = amin.max(bmin);
            let hi = amax.min(bmax);
            if lo > hi {
                return 0.0;
            }
            v *= (hi - lo) as f64;
        }
        v
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dims(), other.dims());
        Rect {
            min: self.min.iter().zip(&other.min).map(|(&a, &b)| a.min(b)).collect(),
            max: self.max.iter().zip(&other.max).map(|(&a, &b)| a.max(b)).collect(),
        }
    }

    /// Grows to contain `other`, in place.
    pub fn union_in_place(&mut self, other: &Rect) {
        for (a, &b) in self.min.iter_mut().zip(&other.min) {
            if b < *a {
                *a = b;
            }
        }
        for (a, &b) in self.max.iter_mut().zip(&other.max) {
            if b > *a {
                *a = b;
            }
        }
    }

    /// Area increase required to absorb `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Rectangle extended by `eps` on every side — the paper's "bounding
    /// rectangles of regions in the query image are extended by ε" probe.
    pub fn extended(&self, eps: f32) -> Rect {
        Rect {
            min: self.min.iter().map(|&v| v - eps).collect(),
            max: self.max.iter().map(|&v| v + eps).collect(),
        }
    }

    /// Squared minimum L2 distance from `point` to this rectangle (0 when
    /// the point is inside) — the kNN priority metric.
    pub fn min_dist_sq(&self, point: &[f32]) -> f64 {
        debug_assert_eq!(self.dims(), point.len());
        self.min
            .iter()
            .zip(&self.max)
            .zip(point)
            .map(|((&lo, &hi), &p)| {
                let d = if p < lo {
                    lo - p
                } else if p > hi {
                    p - hi
                } else {
                    0.0
                };
                (d as f64) * (d as f64)
            })
            .sum()
    }

    /// Squared distance between centres (forced-reinsert ordering).
    pub fn center_dist_sq(&self, other: &Rect) -> f64 {
        self.center()
            .iter()
            .zip(other.center())
            .map(|(&a, b)| (a as f64 - b as f64) * (a as f64 - b as f64))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(min: &[f32], max: &[f32]) -> Rect {
        Rect::new(min.to_vec(), max.to_vec()).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Rect::new(vec![0.0], vec![1.0]).is_ok());
        assert!(Rect::new(vec![2.0], vec![1.0]).is_err());
        assert!(Rect::new(vec![0.0, 0.0], vec![1.0]).is_err());
        assert!(Rect::new(vec![], vec![]).is_err());
        assert!(Rect::new(vec![f32::NAN], vec![1.0]).is_err());
        assert!(Rect::new(vec![0.0], vec![f32::INFINITY]).is_err());
    }

    #[test]
    fn point_rect_has_zero_area_and_margin() {
        let p = Rect::point(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(p.area(), 0.0);
        assert_eq!(p.margin(), 0.0);
        assert_eq!(p.center(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn area_and_margin() {
        let b = r(&[0.0, 0.0, 0.0], &[2.0, 3.0, 4.0]);
        assert_eq!(b.area(), 24.0);
        assert_eq!(b.margin(), 9.0);
    }

    #[test]
    fn intersection_cases() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        assert!(a.intersects(&r(&[1.0, 1.0], &[3.0, 3.0])));
        assert!(a.intersects(&r(&[2.0, 0.0], &[3.0, 1.0]))); // touching counts
        assert!(!a.intersects(&r(&[2.1, 0.0], &[3.0, 1.0])));
        assert!(!a.intersects(&r(&[0.0, 3.0], &[1.0, 4.0])));
        // Overlap in one dim but not the other is no intersection.
        assert!(!a.intersects(&r(&[0.5, 5.0], &[1.5, 6.0])));
    }

    #[test]
    fn containment() {
        let a = r(&[0.0, 0.0], &[4.0, 4.0]);
        assert!(a.contains(&r(&[1.0, 1.0], &[2.0, 2.0])));
        assert!(a.contains(&a.clone()));
        assert!(!a.contains(&r(&[1.0, 1.0], &[5.0, 2.0])));
        assert!(!r(&[1.0, 1.0], &[2.0, 2.0]).contains(&a));
    }

    #[test]
    fn overlap_area_cases() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        assert_eq!(a.overlap_area(&r(&[1.0, 1.0], &[3.0, 3.0])), 1.0);
        assert_eq!(a.overlap_area(&r(&[5.0, 5.0], &[6.0, 6.0])), 0.0);
        assert_eq!(a.overlap_area(&a.clone()), 4.0);
        // Touching boxes overlap with zero volume.
        assert_eq!(a.overlap_area(&r(&[2.0, 0.0], &[3.0, 2.0])), 0.0);
    }

    #[test]
    fn union_and_enlargement() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[2.0, 2.0], &[3.0, 3.0]);
        let u = a.union(&b);
        assert_eq!(u.min(), &[0.0, 0.0]);
        assert_eq!(u.max(), &[3.0, 3.0]);
        assert_eq!(a.enlargement(&b), 9.0 - 1.0);
        assert_eq!(a.enlargement(&r(&[0.2, 0.2], &[0.8, 0.8])), 0.0);
        let mut c = a.clone();
        c.union_in_place(&b);
        assert_eq!(c, u);
    }

    #[test]
    fn extension_by_epsilon() {
        let p = Rect::point(&[1.0, 1.0]).unwrap().extended(0.5);
        assert_eq!(p.min(), &[0.5, 0.5]);
        assert_eq!(p.max(), &[1.5, 1.5]);
        assert_eq!(p.area(), 1.0);
    }

    #[test]
    fn min_dist_sq_cases() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        assert_eq!(a.min_dist_sq(&[1.0, 1.0]), 0.0); // inside
        assert_eq!(a.min_dist_sq(&[3.0, 1.0]), 1.0); // right of box
        assert_eq!(a.min_dist_sq(&[3.0, 3.0]), 2.0); // corner
        assert_eq!(a.min_dist_sq(&[-2.0, 1.0]), 4.0);
    }

    #[test]
    fn center_dist_sq() {
        let a = Rect::point(&[0.0, 0.0]).unwrap();
        let b = Rect::point(&[3.0, 4.0]).unwrap();
        assert_eq!(a.center_dist_sq(&b), 25.0);
    }

    #[test]
    fn high_dimensional_area_uses_f64() {
        // 12 extents of 0.01: product = 1e-24, representable in f64 but
        // denormal-adjacent in f32 products.
        let min = vec![0.0f32; 12];
        let max = vec![0.01f32; 12];
        let b = Rect::new(min, max).unwrap();
        assert!(b.area() > 0.0);
        assert!((b.area() - 1e-24).abs() / 1e-24 < 1e-3);
    }
}
