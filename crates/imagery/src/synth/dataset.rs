//! Labeled synthetic datasets.
//!
//! Mirrors the semantics of the paper's retrieval-quality experiment
//! (Figures 7 and 8): a *flower* class whose members all contain the same
//! kind of red-flower object — but at different positions, scales, counts and
//! slight color shifts — plus distractor classes deliberately chosen to share
//! *global* color composition with flower images:
//!
//! * [`ImageClass::BrickWall`] — red/orange overall, like Figure 7(d);
//! * [`ImageClass::Sunset`] — red/orange centre over dark water, Figure 7(g);
//! * [`ImageClass::Lawn`] — green-dominated with a yellow-brown blob
//!   (the dog of Figure 7(k));
//! * [`ImageClass::Ocean`] — blue scenes with an occasional red sail, like
//!   the windsurfer of Figure 8(m);
//! * [`ImageClass::Abstract`] — high-frequency checker/stripe patterns, easy
//!   negatives.
//!
//! A single-signature retriever (WBIIS-style) confuses the red/green
//! distractors with flower queries; a region-based retriever should not.
//! Because classes are constructed, precision can be *measured*, which the
//! paper could only argue visually.

use crate::color::ColorSpace;
use crate::image::Image;
use crate::synth::scene::{Scene, SceneObject};
use crate::synth::shapes::Shape;
use crate::synth::texture::{Rgb, Texture};
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Semantic class of a synthetic image; doubles as retrieval ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageClass {
    /// Red/pink flowers over green foliage — the query class.
    Flowers,
    /// Brick wall filling the frame.
    BrickWall,
    /// Sun disc over a dark sea with a gradient sky.
    Sunset,
    /// Green lawn with a tan animal-ish blob.
    Lawn,
    /// Blue water/sky, sometimes with a sailboat.
    Ocean,
    /// Abstract high-frequency pattern.
    Abstract,
}

impl ImageClass {
    /// All classes, in a stable order.
    pub const ALL: [ImageClass; 6] = [
        ImageClass::Flowers,
        ImageClass::BrickWall,
        ImageClass::Sunset,
        ImageClass::Lawn,
        ImageClass::Ocean,
        ImageClass::Abstract,
    ];

    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ImageClass::Flowers => "flowers",
            ImageClass::BrickWall => "brickwall",
            ImageClass::Sunset => "sunset",
            ImageClass::Lawn => "lawn",
            ImageClass::Ocean => "ocean",
            ImageClass::Abstract => "abstract",
        }
    }
}

/// A rendered image plus its ground-truth label.
#[derive(Debug, Clone)]
pub struct LabeledImage {
    /// Position in the dataset (stable across runs for a fixed spec).
    pub id: usize,
    /// Human-readable name, e.g. `flowers_0007`.
    pub name: String,
    /// Ground-truth class.
    pub class: ImageClass,
    /// The rendered RGB image.
    pub image: Image,
}

/// Parameters for dataset generation.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Number of images generated for each class in `classes`.
    pub images_per_class: usize,
    /// Image width in pixels (the paper's `misc` images are 85–128 px).
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Master RNG seed; the same spec always yields the same dataset.
    pub seed: u64,
    /// Which classes to include.
    pub classes: Vec<ImageClass>,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        Self {
            images_per_class: 20,
            width: 128,
            height: 96,
            seed: 0x5EED,
            classes: ImageClass::ALL.to_vec(),
        }
    }
}

/// A generated, labeled image collection.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// All images, ordered class-by-class then index.
    pub images: Vec<LabeledImage>,
    /// The spec used to generate them.
    pub spec: DatasetSpec,
}

impl SyntheticDataset {
    /// Generates the dataset described by `spec` (uniform class sizes).
    pub fn generate(spec: DatasetSpec) -> Result<Self> {
        let counts: Vec<(ImageClass, usize)> =
            spec.classes.iter().map(|&c| (c, spec.images_per_class)).collect();
        Self::generate_mixed(spec, &counts)
    }

    /// Generates a dataset with explicit per-class counts — e.g. a *rare*
    /// query class among abundant distractors, the regime of the paper's
    /// 10,000-image collection where flower photos were a small minority.
    /// `spec.images_per_class` and `spec.classes` are ignored in favour of
    /// `counts`; everything else (sizes, seed) applies.
    pub fn generate_mixed(spec: DatasetSpec, counts: &[(ImageClass, usize)]) -> Result<Self> {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let total: usize = counts.iter().map(|(_, n)| n).sum();
        let mut images = Vec::with_capacity(total);
        for &(class, n) in counts {
            for i in 0..n {
                let scene = scene_for_class(class, &mut rng);
                let image = scene.render(spec.width, spec.height)?;
                images.push(LabeledImage {
                    id: images.len(),
                    name: format!("{}_{:04}", class.name(), i),
                    class,
                    image,
                });
            }
        }
        Ok(Self { images, spec })
    }

    /// Number of images in the dataset.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Images belonging to `class`.
    pub fn of_class(&self, class: ImageClass) -> impl Iterator<Item = &LabeledImage> {
        self.images.iter().filter(move |img| img.class == class)
    }

    /// Precision of a ranked result list against a ground-truth class: the
    /// fraction of `result_ids` whose class equals `class`.
    pub fn precision(&self, result_ids: &[usize], class: ImageClass) -> f32 {
        if result_ids.is_empty() {
            return 0.0;
        }
        let hits = result_ids.iter().filter(|&&id| self.images[id].class == class).count();
        hits as f32 / result_ids.len() as f32
    }
}

/// Builds a random scene of the given class.
pub fn scene_for_class(class: ImageClass, rng: &mut StdRng) -> Scene {
    match class {
        ImageClass::Flowers => flower_scene(rng),
        ImageClass::BrickWall => brick_scene(rng),
        ImageClass::Sunset => sunset_scene(rng),
        ImageClass::Lawn => lawn_scene(rng),
        ImageClass::Ocean => ocean_scene(rng),
        ImageClass::Abstract => abstract_scene(rng),
    }
}

/// The canonical flower object: red petals in a deliberately *tight* color
/// band, used by every flower image so that the class genuinely shares a
/// region up to position/scale/shift. Everything else about flower images
/// (background, flower count, size, placement) varies widely — that is the
/// regime where single-signature retrieval breaks and region matching does
/// not (paper §1.1).
pub fn flower_object(rng: &mut StdRng) -> SceneObject {
    let red = Rgb(
        0.85 + rng.gen_range(-0.03..0.03),
        0.12 + rng.gen_range(-0.03..0.03),
        0.18 + rng.gen_range(-0.03..0.03),
    );
    // A large solid core so that small sliding windows fall entirely inside
    // the flower — those windows carry the translation/scale-invariant
    // region signature the whole experiment turns on.
    SceneObject::new(
        Shape::Flower { petals: 6, core_radius: 0.5, petal_len: 0.95, petal_width: 0.25 },
        Texture::Solid(red),
        (rng.gen_range(0.15..0.85), rng.gen_range(0.15..0.85)),
        rng.gen_range(0.35..0.8),
    )
}

/// Green foliage background for flower scenes — moderately diverse (dark to
/// mid green): diverse enough that a whole-image signature moves around
/// within the class, similar enough that flower images often share
/// background regions too, as the paper's same-series flower matches did.
fn foliage(rng: &mut StdRng) -> Texture {
    let darkness = rng.gen_range(0.2..0.8f32);
    let a = Rgb(
        0.05 + 0.1 * darkness,
        0.28 + 0.35 * darkness,
        0.07 + 0.08 * rng.gen_range(0.0..1.0f32),
    );
    let b = Rgb(a.0 + 0.06, a.1 + rng.gen_range(0.12..0.22), a.2 + 0.04);
    Texture::Noise { a, b, scale: rng.gen_range(4..10), seed: rng.gen() }
}

/// Dry lawn grass for the lawn distractor class — still "green lawn" to a
/// human (and to a coarse global signature) but a distinctly yellower,
/// brighter family than [`foliage`], so lawn backgrounds do not fall within
/// the region-matching epsilon of flower foliage.
fn lawn_grass(rng: &mut StdRng) -> Texture {
    let dryness = rng.gen_range(0.0..1.0f32);
    let a = Rgb(0.4 + 0.18 * dryness, 0.42 + 0.12 * dryness, 0.12 + 0.06 * dryness);
    let b = Rgb(a.0 + 0.1, a.1 + 0.12, a.2 + 0.05);
    Texture::Noise { a, b, scale: rng.gen_range(2..6), seed: rng.gen() }
}

fn flower_scene(rng: &mut StdRng) -> Scene {
    let mut scene = Scene::new(foliage(rng));
    let count = rng.gen_range(1..=4);
    for _ in 0..count {
        scene.objects.push(flower_object(rng));
    }
    scene
}

fn brick_scene(rng: &mut StdRng) -> Scene {
    // Deliberately close to the flower red in *global* color budget (the
    // paper's Figure 7(d) confusion case: "a wall with orange and dark
    // brown bricks") while texturally distinct at region granularity.
    Scene::new(Texture::Bricks {
        brick: Rgb(
            0.72 + rng.gen_range(-0.06..0.1),
            0.2 + rng.gen_range(-0.05..0.08),
            0.14 + rng.gen_range(-0.04..0.04),
        ),
        mortar: Rgb(0.38, 0.28, 0.22),
        w: rng.gen_range(14..24),
        h: rng.gen_range(6..10),
    })
}

fn sunset_scene(rng: &mut StdRng) -> Scene {
    let sky = Texture::VerticalGradient {
        top: Rgb(0.85, 0.45 + rng.gen_range(-0.1..0.1), 0.2),
        bottom: Rgb(0.5, 0.15, 0.25),
    };
    let sun = SceneObject::new(
        Shape::Ellipse { rx: 0.6, ry: 0.6 },
        Texture::Solid(Rgb(0.98, 0.7, 0.25)),
        (rng.gen_range(0.35..0.65), rng.gen_range(0.3..0.45)),
        rng.gen_range(0.15..0.3),
    );
    let sea = SceneObject::new(
        Shape::Rect { hx: 1.0, hy: 1.0 },
        Texture::Noise { a: Rgb(0.15, 0.1, 0.3), b: Rgb(0.3, 0.15, 0.3), scale: 5, seed: rng.gen() },
        (0.5, 1.3),
        1.4,
    );
    Scene::new(sky).with(sun).with(sea)
}

fn lawn_scene(rng: &mut StdRng) -> Scene {
    let dog = SceneObject::new(
        Shape::Ellipse { rx: 0.8, ry: 0.55 },
        Texture::Noise { a: Rgb(0.65, 0.5, 0.25), b: Rgb(0.8, 0.65, 0.35), scale: 4, seed: rng.gen() },
        (rng.gen_range(0.3..0.7), rng.gen_range(0.4..0.7)),
        rng.gen_range(0.3..0.55),
    );
    Scene::new(lawn_grass(rng)).with(dog)
}

fn ocean_scene(rng: &mut StdRng) -> Scene {
    let water = Texture::VerticalGradient {
        top: Rgb(0.35, 0.55, 0.85),
        bottom: Rgb(0.1, 0.25, 0.55 + rng.gen_range(-0.1..0.1)),
    };
    let mut scene = Scene::new(water);
    if rng.gen_bool(0.5) {
        // A red sail (the windsurfer of Figure 8(m)).
        scene.objects.push(SceneObject::new(
            Shape::Triangle { half_base: 0.6, height: 1.2 },
            Texture::Solid(Rgb(0.85, 0.15, 0.2)),
            (rng.gen_range(0.3..0.7), rng.gen_range(0.4..0.6)),
            rng.gen_range(0.2..0.4),
        ));
    }
    scene
}

fn abstract_scene(rng: &mut StdRng) -> Scene {
    if rng.gen_bool(0.5) {
        Scene::new(Texture::Checker {
            a: Rgb(rng.gen(), rng.gen(), rng.gen()),
            b: Rgb(rng.gen(), rng.gen(), rng.gen()),
            cell: rng.gen_range(3..9),
        })
    } else {
        Scene::new(Texture::Stripes {
            a: Rgb(rng.gen(), rng.gen(), rng.gen()),
            b: Rgb(rng.gen(), rng.gen(), rng.gen()),
            period: rng.gen_range(4..12),
            duty: rng.gen_range(0.3..0.7),
        })
    }
}

/// Builds the Figure-7/8 style query scenario: one query image plus `n`
/// *relevant* variants that contain the same flower object translated,
/// scaled and mildly color-shifted. Returns `(query, variants)`.
///
/// This is the sharpest test of WALRUS's claim: every variant shares a region
/// with the query up to the transformations the similarity model is supposed
/// to absorb, while global signatures differ substantially.
pub fn flower_query_scenario(
    seed: u64,
    width: usize,
    height: usize,
    n: usize,
) -> Result<(Image, Vec<Image>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base_flower = SceneObject::new(
        Shape::Flower { petals: 6, core_radius: 0.5, petal_len: 0.95, petal_width: 0.25 },
        Texture::Solid(Rgb(0.85, 0.12, 0.18)),
        (0.45, 0.5),
        0.55,
    );
    let background = foliage(&mut rng);
    let query = Scene::new(background.clone()).with(base_flower.clone()).render(width, height)?;
    let mut variants = Vec::with_capacity(n);
    for _ in 0..n {
        let obj = base_flower
            .translated(rng.gen_range(-0.3..0.3), rng.gen_range(-0.3..0.3))
            .scaled(rng.gen_range(0.6..1.5))
            .color_shifted(rng.gen_range(-0.05..0.05), 0.0, rng.gen_range(-0.03..0.03));
        variants.push(Scene::new(background.clone()).with(obj).render(width, height)?);
    }
    Ok((query, variants))
}

/// Renders a single deterministic "timing" image of the given size: a busy
/// multi-object scene used by the Figure 6 / Table 1 harnesses where pixel
/// content only needs to be non-degenerate.
pub fn timing_image(width: usize, height: usize, seed: u64) -> Result<Image> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scene = flower_scene(&mut rng);
    scene.objects.push(SceneObject::new(
        Shape::Rect { hx: 0.8, hy: 0.4 },
        Texture::Bricks { brick: Rgb(0.6, 0.3, 0.15), mortar: Rgb(0.4, 0.35, 0.3), w: 12, h: 6 },
        (0.7, 0.8),
        0.5,
    ));
    scene.render(width, height)
}

/// Converts the whole dataset to another color space in place — convenience
/// for the RGB-vs-YCC comparisons of §6.6.
pub fn convert_dataset(dataset: &mut SyntheticDataset, space: ColorSpace) -> Result<()> {
    for img in &mut dataset.images {
        img.image = img.image.to_space(space)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> DatasetSpec {
        DatasetSpec { images_per_class: 3, width: 48, height: 36, seed: 42, classes: ImageClass::ALL.to_vec() }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticDataset::generate(small_spec()).unwrap();
        let b = SyntheticDataset::generate(small_spec()).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.images.iter().zip(&b.images) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.image, y.image);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticDataset::generate(small_spec()).unwrap();
        let mut spec = small_spec();
        spec.seed = 43;
        let b = SyntheticDataset::generate(spec).unwrap();
        assert!(a.images.iter().zip(&b.images).any(|(x, y)| x.image != y.image));
    }

    #[test]
    fn class_counts_and_ids() {
        let d = SyntheticDataset::generate(small_spec()).unwrap();
        assert_eq!(d.len(), 18);
        assert_eq!(d.of_class(ImageClass::Flowers).count(), 3);
        for (i, img) in d.images.iter().enumerate() {
            assert_eq!(img.id, i);
        }
    }

    #[test]
    fn flower_images_contain_red_over_green() {
        let d = SyntheticDataset::generate(small_spec()).unwrap();
        for img in d.of_class(ImageClass::Flowers) {
            let im = &img.image;
            let r_mean = im.channel(0).mean();
            let g_mean = im.channel(1).mean();
            // Green background with red flowers: both channels present.
            assert!(g_mean > 0.15, "{}: green too weak ({g_mean})", img.name);
            assert!(r_mean > 0.1, "{}: red too weak ({r_mean})", img.name);
        }
    }

    #[test]
    fn precision_metric() {
        let d = SyntheticDataset::generate(small_spec()).unwrap();
        let flower_ids: Vec<usize> = d.of_class(ImageClass::Flowers).map(|i| i.id).collect();
        assert_eq!(d.precision(&flower_ids, ImageClass::Flowers), 1.0);
        let brick_ids: Vec<usize> = d.of_class(ImageClass::BrickWall).map(|i| i.id).collect();
        assert_eq!(d.precision(&brick_ids, ImageClass::Flowers), 0.0);
        let mixed: Vec<usize> = flower_ids.iter().chain(&brick_ids).copied().collect();
        assert!((d.precision(&mixed, ImageClass::Flowers) - 0.5).abs() < 1e-6);
        assert_eq!(d.precision(&[], ImageClass::Flowers), 0.0);
    }

    #[test]
    fn query_scenario_shapes() {
        let (query, variants) = flower_query_scenario(7, 64, 48, 5).unwrap();
        assert_eq!(query.width(), 64);
        assert_eq!(variants.len(), 5);
        for v in &variants {
            assert_eq!(v.height(), 48);
            assert_ne!(*v, query, "variant should differ from the query image");
        }
    }

    #[test]
    fn query_scenario_is_deterministic() {
        let (q1, v1) = flower_query_scenario(9, 32, 32, 3).unwrap();
        let (q2, v2) = flower_query_scenario(9, 32, 32, 3).unwrap();
        assert_eq!(q1, q2);
        assert_eq!(v1, v2);
    }

    #[test]
    fn timing_image_nondegenerate() {
        let img = timing_image(64, 64, 1).unwrap();
        // The timing image must have spatial structure, not a flat field.
        assert!(img.channel(0).variance() > 1e-3);
    }

    #[test]
    fn convert_dataset_changes_space() {
        let mut d = SyntheticDataset::generate(DatasetSpec {
            images_per_class: 1,
            classes: vec![ImageClass::Flowers],
            ..small_spec()
        })
        .unwrap();
        convert_dataset(&mut d, ColorSpace::Ycc).unwrap();
        assert!(d.images.iter().all(|i| i.image.space() == ColorSpace::Ycc));
    }
}
