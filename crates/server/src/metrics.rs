//! Plain-text service counters and latency rings.
//!
//! No external metrics stack exists in this environment, so the server keeps
//! a small set of atomics plus fixed-size latency rings and renders them in
//! the Prometheus text-exposition style (`name value` lines) at
//! `GET /metrics`. Percentiles are computed over the last
//! [`LatencyRing::CAPACITY`] samples — a sliding window, which is what an
//! operator watching a live service wants, and bounded memory, which is what
//! a hostile client demands.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Fixed-capacity ring of recent latency samples (microseconds).
#[derive(Debug, Default)]
pub struct LatencyRing {
    samples: Mutex<Ring>,
}

#[derive(Debug, Default)]
struct Ring {
    buf: Vec<u64>,
    next: usize,
}

impl LatencyRing {
    /// Samples kept per ring; old samples are overwritten.
    pub const CAPACITY: usize = 1024;

    /// Records one duration.
    pub fn record(&self, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let mut ring = self.samples.lock().expect("latency ring lock");
        let next = ring.next;
        if ring.buf.len() < Self::CAPACITY {
            ring.buf.push(micros);
        } else {
            ring.buf[next] = micros;
        }
        ring.next = (next + 1) % Self::CAPACITY;
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.lock().expect("latency ring lock").buf.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `p50/p95/p99` in microseconds over the window, or `None` when empty.
    /// Uses the nearest-rank method on a sorted copy.
    pub fn percentiles(&self) -> Option<[u64; 3]> {
        let mut sorted = self.samples.lock().expect("latency ring lock").buf.clone();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_unstable();
        let rank = |q: f64| -> u64 {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        Some([rank(0.50), rank(0.95), rank(0.99)])
    }
}

/// All counters the server exposes. One instance per server, shared across
/// workers; everything is lock-free except the latency rings.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Connections accepted.
    pub connections_total: AtomicU64,
    /// Connections bounced with 503 because the worker queue was full.
    pub rejected_total: AtomicU64,
    /// Requests fully parsed and routed.
    pub requests_total: AtomicU64,
    /// Responses by class.
    pub responses_2xx: AtomicU64,
    pub responses_4xx: AtomicU64,
    pub responses_5xx: AtomicU64,
    /// Queries answered `206`/`Partial` because their deadline expired.
    pub partial_total: AtomicU64,
    /// Requests currently being handled (gauge).
    pub in_flight: AtomicU64,
    /// `POST /ingest` requests and images ingested through them.
    pub ingest_requests_total: AtomicU64,
    pub ingest_images_total: AtomicU64,
    /// `POST /query` requests.
    pub query_requests_total: AtomicU64,
    /// Checkpoints taken via `POST /admin/checkpoint` or shutdown.
    pub checkpoints_total: AtomicU64,
    /// Query / ingest handler latency windows.
    pub query_latency: LatencyRing,
    pub ingest_latency: LatencyRing,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            connections_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            partial_total: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            ingest_requests_total: AtomicU64::new(0),
            ingest_images_total: AtomicU64::new(0),
            query_requests_total: AtomicU64::new(0),
            checkpoints_total: AtomicU64::new(0),
            query_latency: LatencyRing::default(),
            ingest_latency: LatencyRing::default(),
        }
    }
}

impl Metrics {
    /// Classifies a response status into the 2xx/4xx/5xx counters.
    pub fn count_response(&self, status: u16) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Total error responses (4xx + 5xx).
    pub fn errors_total(&self) -> u64 {
        self.responses_4xx.load(Ordering::Relaxed) + self.responses_5xx.load(Ordering::Relaxed)
    }

    /// Renders the plain-text exposition. `gauges` carries point-in-time
    /// values owned by the caller (store size, pool shape, ...) as
    /// `(name, value)` pairs appended verbatim.
    pub fn render(&self, gauges: &[(&str, u64)]) -> String {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::with_capacity(1024);
        out.push_str("walrus_up 1\n");
        out.push_str(&format!(
            "walrus_uptime_seconds {}\n",
            self.started.elapsed().as_secs()
        ));
        out.push_str(&format!("walrus_connections_total {}\n", load(&self.connections_total)));
        out.push_str(&format!("walrus_rejected_total {}\n", load(&self.rejected_total)));
        out.push_str(&format!("walrus_requests_total {}\n", load(&self.requests_total)));
        out.push_str(&format!("walrus_responses_2xx_total {}\n", load(&self.responses_2xx)));
        out.push_str(&format!("walrus_responses_4xx_total {}\n", load(&self.responses_4xx)));
        out.push_str(&format!("walrus_responses_5xx_total {}\n", load(&self.responses_5xx)));
        out.push_str(&format!("walrus_errors_total {}\n", self.errors_total()));
        out.push_str(&format!("walrus_partial_results_total {}\n", load(&self.partial_total)));
        out.push_str(&format!("walrus_in_flight {}\n", load(&self.in_flight)));
        out.push_str(&format!(
            "walrus_ingest_requests_total {}\n",
            load(&self.ingest_requests_total)
        ));
        out.push_str(&format!(
            "walrus_ingest_images_total {}\n",
            load(&self.ingest_images_total)
        ));
        out.push_str(&format!(
            "walrus_query_requests_total {}\n",
            load(&self.query_requests_total)
        ));
        out.push_str(&format!("walrus_checkpoints_total {}\n", load(&self.checkpoints_total)));
        for (ring, what) in [(&self.query_latency, "query"), (&self.ingest_latency, "ingest")] {
            if let Some([p50, p95, p99]) = ring.percentiles() {
                out.push_str(&format!("walrus_{what}_latency_p50_us {p50}\n"));
                out.push_str(&format!("walrus_{what}_latency_p95_us {p95}\n"));
                out.push_str(&format!("walrus_{what}_latency_p99_us {p99}\n"));
                out.push_str(&format!("walrus_{what}_latency_samples {}\n", ring.len()));
            }
        }
        for (name, value) in gauges {
            out.push_str(&format!("{name} {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_percentiles_nearest_rank() {
        let ring = LatencyRing::default();
        assert_eq!(ring.percentiles(), None);
        for us in 1..=100u64 {
            ring.record(Duration::from_micros(us));
        }
        let [p50, p95, p99] = ring.percentiles().unwrap();
        assert_eq!(p50, 50);
        assert_eq!(p95, 95);
        assert_eq!(p99, 99);
    }

    #[test]
    fn ring_overwrites_beyond_capacity() {
        let ring = LatencyRing::default();
        for us in 0..(LatencyRing::CAPACITY as u64 + 500) {
            ring.record(Duration::from_micros(us));
        }
        assert_eq!(ring.len(), LatencyRing::CAPACITY);
        // Every surviving sample comes from the most recent CAPACITY records.
        let [p50, _, _] = ring.percentiles().unwrap();
        assert!(p50 >= 500);
    }

    #[test]
    fn render_contains_counters_and_gauges() {
        let metrics = Metrics::default();
        metrics.count_response(200);
        metrics.count_response(404);
        metrics.count_response(500);
        metrics.query_latency.record(Duration::from_micros(123));
        let text = metrics.render(&[("walrus_images", 7)]);
        assert!(text.contains("walrus_up 1\n"));
        assert!(text.contains("walrus_requests_total 3\n"));
        assert!(text.contains("walrus_responses_4xx_total 1\n"));
        assert!(text.contains("walrus_errors_total 2\n"));
        assert!(text.contains("walrus_query_latency_p50_us 123\n"));
        assert!(text.contains("walrus_images 7\n"));
    }
}
