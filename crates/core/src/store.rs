//! The serving-layer storage abstraction.
//!
//! [`Store`] is the surface the HTTP server (and any other embedder)
//! programs against: ingest, queries, metadata lookups, checkpointing, and
//! health — nothing about *how* the bytes are laid out. Two implementations
//! exist:
//!
//! * [`crate::SharedDurableDatabase`] — the monolithic single-directory
//!   store (one R\*-tree, one WAL, one snapshot);
//! * [`crate::sharded::ShardedStore`] — N independent shards with fault
//!   isolation, rolling checkpoints, and degraded-mode queries.
//!
//! The trait is deliberately shaped so the monolithic store is exactly the
//! 1-shard special case: `checkpoint` always reports per-shard results and
//! `shard_health` always reports per-shard states, with the monolithic
//! store reporting a single shard `0`.

use crate::database::{ImageMeta, QueryOptions};
use crate::params::WalrusParams;
use crate::sharded::RebalanceReport;
use crate::{QueryOutcome, Result, SharedDurableDatabase, WalrusError};
use std::time::{Duration, Instant};
use walrus_guard::Guard;
use walrus_imagery::Image;

/// What one shard's checkpoint did. Returned per shard so a rolling
/// checkpoint over N shards reports N entries (quarantined shards are
/// skipped and absent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCheckpoint {
    /// Shard index (0 for a monolithic store).
    pub shard: usize,
    /// LSN the snapshot covers — the shard's last committed operation.
    pub last_lsn: u64,
    /// Wall-clock time the checkpoint took.
    pub duration: Duration,
}

/// Health of one shard, as reported by [`Store::shard_health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index (0 for a monolithic store).
    pub shard: usize,
    /// False when the shard is quarantined.
    pub healthy: bool,
    /// Why the shard was quarantined (`None` while healthy).
    pub error: Option<String>,
    /// Live images on this shard. While quarantined this is the last
    /// count observed before the failure (0 when the shard never opened,
    /// i.e. its contents are unknown), so monitoring doesn't see a failed
    /// shard as suddenly empty.
    pub images: usize,
    /// Valid WAL bytes on this shard; last-known while quarantined, like
    /// `images`.
    pub wal_bytes: u64,
}

/// Live rebalance progress, as reported by [`Store::rebalance_status`].
///
/// For stores that cannot rebalance (the monolithic layout) this is the
/// permanent "epoch 0, not migrating" value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebalanceStatus {
    /// Layout epoch: how many committed rebalances this store has seen.
    pub epoch: u64,
    /// True while a migration is in flight (ingest is shed).
    pub rebalancing: bool,
    /// Shard count being migrated to (0 when not rebalancing).
    pub target_shards: usize,
    /// Target shards already built and durably marked `Migrated`.
    pub shards_migrated: usize,
}

/// A thread-safe durable image store the serving layer can run on. See the
/// module docs for the two implementations.
pub trait Store: Send + Sync {
    /// A copy of the engine configuration.
    fn params(&self) -> WalrusParams;

    /// Number of shards (1 for a monolithic store).
    fn shard_count(&self) -> usize;

    /// Live images across all healthy shards.
    fn len(&self) -> usize;

    /// True when no images are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Indexed regions across all healthy shards.
    fn num_regions(&self) -> usize;

    /// Valid WAL bytes across all healthy shards.
    fn wal_len(&self) -> u64;

    /// WAL records appended since the last checkpoint, across all healthy
    /// shards.
    fn records_since_checkpoint(&self) -> usize;

    /// Owned metadata snapshot for an image. `Ok(None)` means the id is
    /// unknown or removed; `Err(ShardUnavailable)` means the id's shard is
    /// quarantined, so its existence cannot be determined.
    fn image_meta(&self, id: usize) -> Result<Option<ImageMeta>>;

    /// Durably inserts one image; returns its id.
    fn insert_image(&self, name: &str, image: &Image) -> Result<usize>;

    /// Durable batch ingest under a lifecycle [`Guard`]; returns the new
    /// ids. Extraction is all-or-nothing; a mid-batch append failure
    /// commits the prefix.
    fn insert_images_batch_guarded(
        &self,
        items: &[(&str, &Image)],
        guard: &Guard,
    ) -> Result<Vec<usize>>;

    /// Durably removes an image.
    fn remove_image(&self, id: usize) -> Result<()>;

    /// Runs a query shaped by per-request [`QueryOptions`] under a
    /// lifecycle [`Guard`].
    fn query_with_options_guarded(
        &self,
        query: &Image,
        opts: &QueryOptions,
        guard: &Guard,
    ) -> Result<QueryOutcome>;

    /// Checkpoints the store and reports what each shard did. For a
    /// sharded store this is a **rolling** checkpoint: shards are folded
    /// one at a time, and ingest/queries on other shards proceed
    /// concurrently. Quarantined shards are skipped (absent from the
    /// report), so a degraded store still checkpoints its healthy part.
    fn checkpoint(&self) -> Result<Vec<ShardCheckpoint>>;

    /// Per-shard health states, in shard order.
    fn shard_health(&self) -> Vec<ShardHealth>;

    /// Migrates the store to `target_shards` shards online (queries keep
    /// answering from the source layout; ingest is shed with
    /// [`WalrusError::Rebalancing`]). The default refuses: only layouts
    /// with a manifest can change shape.
    fn rebalance(&self, target_shards: usize) -> Result<RebalanceReport> {
        let _ = target_shards;
        Err(WalrusError::BadParams(
            "this store layout cannot rebalance (no shard manifest)".to_string(),
        ))
    }

    /// Current layout epoch and migration progress.
    fn rebalance_status(&self) -> RebalanceStatus {
        RebalanceStatus::default()
    }

    /// An opaque fingerprint of the store's queryable content, for result
    /// caching: two calls return the same value **only if** every query
    /// answers identically in between. It must change on every committed
    /// ingest/remove (LSN advance), on shard quarantine or recovery, and on
    /// every rebalance epoch/migration-state change. It must **not** change
    /// on a checkpoint — folding the WAL into a snapshot rewrites bytes,
    /// not answers, so caches survive checkpoints.
    fn content_stamp(&self) -> u64;
}

/// FNV-1a 64 step used to fold fields into a [`Store::content_stamp`].
pub(crate) fn stamp_fold(hash: u64, value: u64) -> u64 {
    let mut hash = hash;
    for byte in value.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// FNV-1a 64 offset basis; stamps start here so an empty store is nonzero.
pub(crate) const STAMP_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

impl Store for SharedDurableDatabase {
    fn params(&self) -> WalrusParams {
        SharedDurableDatabase::params(self)
    }

    fn shard_count(&self) -> usize {
        1
    }

    fn len(&self) -> usize {
        SharedDurableDatabase::len(self)
    }

    fn num_regions(&self) -> usize {
        SharedDurableDatabase::num_regions(self)
    }

    fn wal_len(&self) -> u64 {
        SharedDurableDatabase::wal_len(self)
    }

    fn records_since_checkpoint(&self) -> usize {
        SharedDurableDatabase::records_since_checkpoint(self)
    }

    fn image_meta(&self, id: usize) -> Result<Option<ImageMeta>> {
        Ok(SharedDurableDatabase::image_meta(self, id))
    }

    fn insert_image(&self, name: &str, image: &Image) -> Result<usize> {
        SharedDurableDatabase::insert_image(self, name, image)
    }

    fn insert_images_batch_guarded(
        &self,
        items: &[(&str, &Image)],
        guard: &Guard,
    ) -> Result<Vec<usize>> {
        SharedDurableDatabase::insert_images_batch_guarded(self, items, guard)
    }

    fn remove_image(&self, id: usize) -> Result<()> {
        SharedDurableDatabase::remove_image(self, id)
    }

    fn query_with_options_guarded(
        &self,
        query: &Image,
        opts: &QueryOptions,
        guard: &Guard,
    ) -> Result<QueryOutcome> {
        SharedDurableDatabase::query_with_options_guarded(self, query, opts, guard)
    }

    fn checkpoint(&self) -> Result<Vec<ShardCheckpoint>> {
        let started = Instant::now();
        SharedDurableDatabase::checkpoint(self)?;
        Ok(vec![ShardCheckpoint {
            shard: 0,
            last_lsn: self.last_lsn(),
            duration: started.elapsed(),
        }])
    }

    fn shard_health(&self) -> Vec<ShardHealth> {
        vec![ShardHealth {
            shard: 0,
            healthy: true,
            error: None,
            images: SharedDurableDatabase::len(self),
            wal_bytes: SharedDurableDatabase::wal_len(self),
        }]
    }

    fn content_stamp(&self) -> u64 {
        // The WAL LSN advances on every committed mutation and is untouched
        // by checkpoints, which is exactly the invalidation contract.
        stamp_fold(STAMP_BASIS, self.last_lsn())
    }
}
