//! **Figure 6(a)** — wavelet signature computation time, naive vs dynamic
//! programming, as the sliding-window size grows.
//!
//! Paper setup: 256×256 image, 2×2 signatures, stride 1, window size swept
//! from 2×2 to 128×128. Claimed shape: the naive algorithm's time grows
//! with ω² (≈25 s at ω=128 on a 1997 Sun Ultra-2), the DP algorithm's with
//! log ω; at ω=128 the naive algorithm is ≈17× slower.
//!
//! Run: `cargo run --release -p walrus-bench --bin fig6a`
//! (`WALRUS_BENCH_SCALE=full` sweeps to ω=128 as in the paper; the default
//! quick mode stops at ω=64.)

use walrus_bench::report::{f3, Table};
use walrus_bench::workloads::timing_planes;
use walrus_bench::{scale, time, Scale};
use walrus_imagery::ColorSpace;
use walrus_wavelet::sliding::{compute_signatures, compute_signatures_naive};
use walrus_wavelet::SlidingParams;

fn main() {
    let side = 256;
    let max_omega = match scale() {
        Scale::Quick => 64,
        Scale::Full => 128,
    };
    let (planes, side) = timing_planes(side, ColorSpace::Ycc);
    let plane_refs: Vec<&[f32]> = planes.iter().map(|p| p.as_slice()).collect();

    println!(
        "Figure 6(a): naive vs DP sliding-window signatures\n\
         image {side}x{side}, 3 channels (YCC), signature 2x2, stride 1\n"
    );
    let mut table = Table::new(
        "Fig6a Window Size Sweep",
        &["window", "naive_s", "dp_s", "speedup"],
    );

    let mut omega = 2usize;
    while omega <= max_omega {
        let params = SlidingParams { s: 2, omega_min: omega, omega_max: omega, stride: 1 };
        let (naive, naive_s) = time(|| {
            compute_signatures_naive(&plane_refs, side, side, &params).expect("valid params")
        });
        let (dp, dp_s) =
            time(|| compute_signatures(&plane_refs, side, side, &params).expect("valid params"));
        assert_eq!(naive.len(), dp.len(), "algorithms disagree on window count");
        table.row(&[
            omega.to_string(),
            f3(naive_s),
            f3(dp_s),
            f3(naive_s / dp_s.max(1e-9)),
        ]);
        omega *= 2;
    }
    table.print();
    println!(
        "Paper shape check: naive time should grow ~4x per window doubling;\n\
         DP time should stay near-flat; speedup should exceed 10x at the\n\
         largest window (paper: ~17x at 128)."
    );
}
