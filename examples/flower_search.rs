//! Flower search: the paper's Figure 7 / Figure 8 scenario end to end.
//!
//! Builds the labeled synthetic collection (the stand-in for the paper's
//! `misc` dataset), indexes it in WALRUS *and* in the WBIIS baseline, then
//! runs the red-flower query against both and prints the two top-14 lists
//! side by side with ground-truth classes — a terminal rendition of the
//! paper's two figure pages.
//!
//! Run: `cargo run --release -p walrus-examples --bin flower_search`

use walrus_baselines::{Retriever, WbiisRetriever};
use walrus_core::{ImageDatabase, WalrusParams};
use walrus_imagery::synth::dataset::{
    flower_query_scenario, DatasetSpec, ImageClass, SyntheticDataset,
};
use walrus_wavelet::SlidingParams;

const K: usize = 14;

fn main() {
    // The synthetic stand-in for `misc`: 6 classes × 16 images at the
    // paper's image scale.
    let dataset = SyntheticDataset::generate(DatasetSpec {
        images_per_class: 16,
        width: 128,
        height: 96,
        seed: 0x5EED_CAFE,
        classes: ImageClass::ALL.to_vec(),
    })
    .expect("dataset generation is deterministic");
    println!("dataset: {} images across {} classes", dataset.len(), ImageClass::ALL.len());

    // WALRUS with the paper's §6.4 configuration (windows adapted to the
    // image size).
    let params = WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 32, stride: 4 },
        ..WalrusParams::paper_defaults()
    };
    let mut walrus = ImageDatabase::new(params).expect("params validate");
    let mut wbiis = WbiisRetriever::new();
    for img in &dataset.images {
        walrus.insert_image(&img.name, &img.image).expect("insertion succeeds");
        wbiis.insert(&img.name, &img.image).expect("insertion succeeds");
    }

    // The query: a red flower over green foliage, not itself in the
    // database (like the paper's image 866 query).
    let (query, _) =
        flower_query_scenario(0xF10_3E5, 128, 96, 0).expect("scenario generation succeeds");

    let walrus_top = walrus.top_k(&query, K).expect("query succeeds");
    let wbiis_top = wbiis.top_k(&query, K).expect("query succeeds");

    let class_of = |name: &str| -> &str {
        dataset
            .images
            .iter()
            .find(|i| i.name == name)
            .map(|i| i.class.name())
            .unwrap_or("?")
    };

    println!("\n{:>4}  {:<28} {:<28}", "rank", "WALRUS (Figure 8)", "WBIIS (Figure 7)");
    println!("{}", "-".repeat(64));
    for rank in 0..K {
        let w = walrus_top
            .get(rank)
            .map(|r| format!("{} [{}]", r.name, class_of(&r.name)))
            .unwrap_or_default();
        let b = wbiis_top
            .get(rank)
            .map(|r| format!("{} [{}]", r.name, class_of(&r.name)))
            .unwrap_or_default();
        println!("{:>4}  {:<28} {:<28}", rank + 1, w, b);
    }

    let precision = |top: &[(String,)]| -> f64 { top.len() as f64 };
    let _ = precision;
    let count_flowers = |names: &[String]| {
        names.iter().filter(|n| class_of(n) == "flowers").count()
    };
    let w_names: Vec<String> = walrus_top.iter().map(|r| r.name.clone()).collect();
    let b_names: Vec<String> = wbiis_top.iter().map(|r| r.name.clone()).collect();
    println!(
        "\nflowers in top {K}: WALRUS {}/{K}, WBIIS {}/{K}",
        count_flowers(&w_names),
        count_flowers(&b_names)
    );
    println!(
        "(the paper observed roughly 14/14 for WALRUS against 7/14 for WBIIS\n\
         on its 10,000-photo collection)"
    );
}
