//! Parallel == serial consistency for the threaded engine paths.
//!
//! Deterministic seeded sweeps (in place of randomized property tests, so
//! the suite stays dependency-free) asserting that every parallel code
//! path — window-grid extraction, batch ingest, query probing/scoring —
//! produces results **bit-identical** to its serial counterpart for
//! `threads ∈ {1, 2, 8}`, plus a concurrency smoke test hammering a
//! shared database with batch inserts and queries from many threads.

use std::sync::atomic::{AtomicBool, Ordering};

use walrus_core::database::SharedDatabase;
use walrus_core::recovery::DurableDatabase;
use walrus_core::storage::FaultIo;
use walrus_core::{
    extract_regions_with_threads, ImageDatabase, QueryOutcome, Region, WalrusParams,
};
use walrus_imagery::synth::dataset::{
    flower_query_scenario, DatasetSpec, ImageClass, SyntheticDataset,
};
use walrus_imagery::Image;
use walrus_wavelet::SlidingParams;

/// Parallel thread counts compared against the serial (`threads = 1`) run.
const PARALLEL_THREADS: [usize; 2] = [2, 8];

fn engine_params() -> WalrusParams {
    WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 32, stride: 4 },
        ..WalrusParams::paper_defaults()
    }
}

fn scene_dataset(seed: u64, images_per_class: usize) -> SyntheticDataset {
    SyntheticDataset::generate(DatasetSpec {
        images_per_class,
        width: 128,
        height: 96,
        seed,
        classes: ImageClass::ALL.to_vec(),
    })
    .unwrap()
}

fn f32_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_regions_identical(serial: &[Region], parallel: &[Region], ctx: &str) {
    assert_eq!(serial.len(), parallel.len(), "{ctx}: region count diverged");
    for (i, (a, b)) in serial.iter().zip(parallel).enumerate() {
        assert_eq!(f32_bits(&a.centroid), f32_bits(&b.centroid), "{ctx}: region {i} centroid");
        assert_eq!(f32_bits(&a.bbox_min), f32_bits(&b.bbox_min), "{ctx}: region {i} bbox_min");
        assert_eq!(f32_bits(&a.bbox_max), f32_bits(&b.bbox_max), "{ctx}: region {i} bbox_max");
        assert_eq!(a.bitmap, b.bitmap, "{ctx}: region {i} bitmap");
        assert_eq!(a.window_count, b.window_count, "{ctx}: region {i} window count");
    }
}

fn assert_outcomes_identical(serial: &QueryOutcome, parallel: &QueryOutcome, ctx: &str) {
    assert_eq!(serial.stats, parallel.stats, "{ctx}: query stats diverged");
    assert_eq!(serial.matches.len(), parallel.matches.len(), "{ctx}: match count diverged");
    for (a, b) in serial.matches.iter().zip(&parallel.matches) {
        assert_eq!(a.image_id, b.image_id, "{ctx}: ranking diverged");
        assert_eq!(a.name, b.name, "{ctx}: name diverged");
        assert_eq!(
            a.similarity.to_bits(),
            b.similarity.to_bits(),
            "{ctx}: similarity of {} diverged",
            a.name
        );
        assert_eq!(a.matched_pairs, b.matched_pairs, "{ctx}: matched pairs of {}", a.name);
    }
}

#[test]
fn extraction_is_bit_identical_across_thread_counts() {
    // Sweep several synthetic scenes of every class; the threaded wavelet
    // sweep and clustering must reproduce the serial output bit for bit.
    let params = engine_params();
    for seed in [0x00A1, 0x0B52, 0xC0DE] {
        let dataset = scene_dataset(seed, 1);
        for img in &dataset.images {
            let serial = extract_regions_with_threads(&img.image, &params, 1).unwrap();
            assert!(!serial.is_empty(), "scene {seed:#x}/{} extracted no regions", img.name);
            for threads in PARALLEL_THREADS {
                let parallel = extract_regions_with_threads(&img.image, &params, threads).unwrap();
                assert_regions_identical(
                    &serial,
                    &parallel,
                    &format!("seed {seed:#x}, image {}, threads {threads}", img.name),
                );
            }
        }
    }
}

#[test]
fn batch_ingest_is_bit_identical_to_serial_insert_loop() {
    let dataset = scene_dataset(0xBA7C, 2);
    let items: Vec<(&str, &Image)> =
        dataset.images.iter().map(|i| (i.name.as_str(), &i.image)).collect();
    let (query, _) = flower_query_scenario(0x51, 128, 96, 0).unwrap();

    let mut serial = ImageDatabase::new(engine_params()).unwrap();
    for (name, image) in &items {
        serial.insert_image(name, image).unwrap();
    }
    let reference = serial.query(&query).unwrap();

    for threads in [1, 2, 8] {
        let params = WalrusParams { threads, ..engine_params() };
        let mut batched = ImageDatabase::new(params).unwrap();
        let ids = batched.insert_images_batch(&items).unwrap();
        assert_eq!(ids, (0..items.len()).collect::<Vec<_>>(), "batch ids must be sequential");
        assert_eq!(batched.len(), serial.len());
        assert_eq!(batched.num_regions(), serial.num_regions(), "threads {threads}");
        let outcome = batched.query(&query).unwrap();
        assert_outcomes_identical(&reference, &outcome, &format!("batch threads {threads}"));
    }
}

#[test]
fn query_engine_is_bit_identical_across_thread_counts() {
    let dataset = scene_dataset(0x9E11, 2);
    let mut db = ImageDatabase::new(engine_params()).unwrap();
    for img in &dataset.images {
        db.insert_image(&img.name, &img.image).unwrap();
    }
    let (query, variants) = flower_query_scenario(0x52, 128, 96, 3).unwrap();
    let queries: Vec<&Image> = std::iter::once(&query).chain(variants.iter()).collect();

    for (qi, q) in queries.iter().enumerate() {
        let serial = db.query(q).unwrap();
        assert!(!serial.matches.is_empty(), "query {qi} matched nothing");
        for threads in PARALLEL_THREADS {
            let mut parallel_db = db.clone();
            parallel_db.set_threads(threads);
            let outcome = parallel_db.query(q).unwrap();
            assert_outcomes_identical(
                &serial,
                &outcome,
                &format!("query {qi}, threads {threads}"),
            );
        }
    }
}

#[test]
fn durable_batch_ingest_matches_in_memory_batch() {
    // The WAL-backed batch path (parallel extraction, per-image logging)
    // must land the same state as the in-memory database.
    let dataset = scene_dataset(0xD0B1, 1);
    let items: Vec<(&str, &Image)> =
        dataset.images.iter().map(|i| (i.name.as_str(), &i.image)).collect();
    let params = WalrusParams { threads: 2, ..engine_params() };

    let mut reference = ImageDatabase::new(params).unwrap();
    let reference_ids = reference.insert_images_batch(&items).unwrap();

    let io = std::sync::Arc::new(FaultIo::new());
    let (mut durable, report) = DurableDatabase::open_with(io, "/walrus", params).unwrap();
    assert_eq!(report.records_replayed, 0);
    let durable_ids = durable.insert_images_batch(&items).unwrap();
    assert_eq!(durable_ids, reference_ids);
    assert_eq!(durable.db().len(), reference.len());
    assert_eq!(durable.db().num_regions(), reference.num_regions());

    let (query, _) = flower_query_scenario(0x53, 128, 96, 0).unwrap();
    let expected = reference.query(&query).unwrap();
    let got = durable.db().query(&query).unwrap();
    assert_outcomes_identical(&expected, &got, "durable batch");
}

#[test]
fn shared_database_survives_concurrent_batch_ingest_and_queries() {
    // Smoke test: several writers batch-ingesting disjoint chunks while
    // readers hammer queries and stats concurrently. Whatever the
    // interleaving, the final state must hold every image with the same
    // per-image scores a serial build produces.
    let dataset = scene_dataset(0x5A5A, 4); // 24 images
    let params = WalrusParams { threads: 2, ..engine_params() };
    let (query, _) = flower_query_scenario(0x54, 128, 96, 0).unwrap();

    let mut serial = ImageDatabase::new(params).unwrap();
    for img in &dataset.images {
        serial.insert_image(&img.name, &img.image).unwrap();
    }
    let reference = serial.query(&query).unwrap();

    let shared = SharedDatabase::new(ImageDatabase::new(params).unwrap());
    let chunks: Vec<Vec<(&str, &Image)>> = dataset
        .images
        .chunks(6)
        .map(|c| c.iter().map(|i| (i.name.as_str(), &i.image)).collect())
        .collect();
    let writers_done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut writers = Vec::new();
        for chunk in &chunks {
            let shared = shared.clone();
            writers.push(s.spawn(move || {
                let ids = shared.insert_images_batch(chunk).unwrap();
                assert_eq!(ids.len(), chunk.len());
            }));
        }
        for _ in 0..3 {
            let shared = shared.clone();
            let writers_done = &writers_done;
            let query = &query;
            s.spawn(move || loop {
                let done = writers_done.load(Ordering::Acquire);
                let outcome = shared.query(query).unwrap();
                assert!(outcome.matches.len() <= shared.len());
                assert!(outcome.stats.distinct_images <= shared.len());
                if done {
                    break; // one final query observed the complete database
                }
            });
        }
        for w in writers {
            w.join().unwrap();
        }
        writers_done.store(true, Ordering::Release);
    });

    assert_eq!(shared.len(), dataset.images.len());
    assert_eq!(shared.num_regions(), serial.num_regions());
    // Insert interleaving permutes ids, but every image's score is a
    // function of its own regions — compare (name, similarity, pairs).
    let final_outcome = shared.query(&query).unwrap();
    assert_eq!(final_outcome.stats, reference.stats);
    let mut expected: Vec<(&str, u64, usize)> =
        reference.matches.iter().map(|m| (m.name.as_str(), m.similarity.to_bits(), m.matched_pairs)).collect();
    let mut got: Vec<(&str, u64, usize)> =
        final_outcome.matches.iter().map(|m| (m.name.as_str(), m.similarity.to_bits(), m.matched_pairs)).collect();
    expected.sort_unstable();
    got.sort_unstable();
    assert_eq!(expected, got, "concurrent ingest changed query results");
}
