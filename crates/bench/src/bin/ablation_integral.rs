//! **Ablation A5** — summed-area-table signatures vs the paper's DP vs
//! naive (an optimization beyond the paper; see
//! `walrus_wavelet::sliding::integral`).
//!
//! The SAT algorithm exploits the same identity as the DP (signature =
//! transform of the s×s box-average) but computes each block average in
//! O(1) from a prefix-sum table, so its cost is independent of the window
//! size *and* nearly independent of the signature size — exactly the two
//! axes the Figure 6 experiments sweep.
//!
//! Run: `cargo run --release -p walrus-bench --bin ablation_integral`

use walrus_bench::report::{f3, Table};
use walrus_bench::workloads::timing_planes;
use walrus_bench::{scale, time, Scale};
use walrus_imagery::ColorSpace;
use walrus_wavelet::sliding::{
    compute_signatures, compute_signatures_integral, compute_signatures_naive,
};
use walrus_wavelet::SlidingParams;

fn main() {
    let (planes, side) = timing_planes(256, ColorSpace::Ycc);
    let refs: Vec<&[f32]> = planes.iter().map(|p| p.as_slice()).collect();
    let max_omega = match scale() {
        Scale::Quick => 64,
        Scale::Full => 128,
    };

    println!(
        "Ablation A5: integral-image signatures vs DP vs naive\n\
         image {side}x{side}, 3 channels, signature 2x2, stride 1\n"
    );
    let mut by_window = Table::new(
        "Integral Window Sweep",
        &["window", "naive_s", "dp_s", "integral_s", "integral_vs_dp"],
    );
    let mut omega = 8usize;
    while omega <= max_omega {
        let params = SlidingParams { s: 2, omega_min: omega, omega_max: omega, stride: 1 };
        let (naive, naive_s) =
            time(|| compute_signatures_naive(&refs, side, side, &params).expect("valid"));
        let (dp, dp_s) = time(|| compute_signatures(&refs, side, side, &params).expect("valid"));
        let (integral, int_s) =
            time(|| compute_signatures_integral(&refs, side, side, &params).expect("valid"));
        assert_eq!(naive.len(), dp.len());
        assert_eq!(naive.len(), integral.len());
        by_window.row(&[
            omega.to_string(),
            f3(naive_s),
            f3(dp_s),
            f3(int_s),
            f3(dp_s / int_s.max(1e-9)),
        ]);
        omega *= 2;
    }
    by_window.print();

    let mut by_sig = Table::new(
        "Integral Signature Sweep",
        &["signature", "naive_s", "dp_s", "integral_s", "integral_vs_dp"],
    );
    let omega = max_omega;
    let mut s = 2usize;
    while s <= 32 && s <= omega {
        let params = SlidingParams { s, omega_min: omega, omega_max: omega, stride: 1 };
        let (_, naive_s) =
            time(|| compute_signatures_naive(&refs, side, side, &params).expect("valid"));
        let (_, dp_s) = time(|| compute_signatures(&refs, side, side, &params).expect("valid"));
        let (_, int_s) =
            time(|| compute_signatures_integral(&refs, side, side, &params).expect("valid"));
        by_sig.row(&[s.to_string(), f3(naive_s), f3(dp_s), f3(int_s), f3(dp_s / int_s.max(1e-9))]);
        s *= 2;
    }
    by_sig.print();
    println!(
        "Expectation: the integral algorithm is flat in both sweeps and\n\
         dominates the DP exactly where the DP struggles (large s) — the\n\
         modern answer to the paper's Figure 6(b) divergence noted in\n\
         EXPERIMENTS.md."
    );
}
