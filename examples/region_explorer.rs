//! Region explorer: visualize what WALRUS "sees" in an image.
//!
//! Extracts the regions of a synthetic scene at several cluster epsilons
//! and writes, for each run, a PPM visualization in which every region's
//! coarse bitmap is painted in a distinct color (regions can overlap; later
//! regions paint over earlier ones). Also prints a per-region table:
//! window count, covered area, and the centroid signature.
//!
//! Output files land in `target/region_explorer/`.
//!
//! Run: `cargo run --release -p walrus-examples --bin region_explorer`

use walrus_core::viz::{region_overlay, OverlayOptions};
use walrus_core::{extract_regions, WalrusParams};
use walrus_imagery::synth::scene::{Scene, SceneObject};
use walrus_imagery::synth::shapes::Shape;
use walrus_imagery::synth::texture::{Rgb, Texture};
use walrus_imagery::{ppm, Image};
use walrus_wavelet::SlidingParams;

fn demo_scene() -> Image {
    Scene::new(Texture::Noise {
        a: Rgb(0.08, 0.42, 0.12),
        b: Rgb(0.15, 0.58, 0.2),
        scale: 7,
        seed: 11,
    })
    .with(SceneObject::new(
        Shape::Flower { petals: 6, core_radius: 0.5, petal_len: 0.95, petal_width: 0.25 },
        Texture::Solid(Rgb(0.85, 0.12, 0.18)),
        (0.3, 0.4),
        0.5,
    ))
    .with(SceneObject::new(
        Shape::Rect { hx: 0.9, hy: 0.6 },
        Texture::Bricks { brick: Rgb(0.7, 0.25, 0.15), mortar: Rgb(0.4, 0.3, 0.25), w: 12, h: 6 },
        (0.75, 0.75),
        0.4,
    ))
    .render(128, 96)
    .expect("rendering a valid scene cannot fail")
}

fn main() {
    let image = demo_scene();
    let out_dir = std::path::Path::new("target/region_explorer");
    std::fs::create_dir_all(out_dir).expect("can create output directory");
    ppm::save_ppm(&image, out_dir.join("input.ppm")).expect("can write input image");
    println!("wrote {}", out_dir.join("input.ppm").display());

    for cluster_eps in [0.025f64, 0.05, 0.1] {
        let params = WalrusParams {
            sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 32, stride: 4 },
            cluster_epsilon: cluster_eps,
            ..WalrusParams::paper_defaults()
        };
        let regions = extract_regions(&image, &params).expect("extraction succeeds");
        println!("\ncluster epsilon {cluster_eps}: {} regions", regions.len());
        println!(
            "{:>3} {:>8} {:>10} {:>9}  signature centroid (Y/Cb/Cr means)",
            "id", "windows", "area_px", "coverage"
        );
        for (i, r) in regions.iter().enumerate() {
            println!(
                "{:>3} {:>8} {:>10} {:>8.1}%  [{:.3} {:.3} {:.3}]",
                i,
                r.window_count,
                r.area(),
                100.0 * r.bitmap.coverage(),
                r.centroid[0],
                r.centroid[4],
                r.centroid[8],
            );
        }

        // Paint each region's bitmap cells over a dimmed copy of the image.
        let vis = region_overlay(&image, &regions, OverlayOptions::default())
            .expect("overlay rendering succeeds");
        let path = out_dir.join(format!("regions_eps{:.3}.ppm", cluster_eps));
        ppm::save_ppm(&vis, &path).expect("can write visualization");
        println!("wrote {}", path.display());
    }
    println!(
        "\nOpen the PPM files with any image viewer: tighter epsilons split\n\
         the scene into more, smaller regions; looser ones merge it."
    );
}
