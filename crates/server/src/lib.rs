//! # walrus-server
//!
//! A dependency-free network service layer for the WALRUS engine: concurrent
//! ingest and region-similarity queries over HTTP/1.1 on `std::net`.
//!
//! The container (and the paper-era spirit of this reproduction) rules out
//! async runtimes and HTTP frameworks, so everything here is hand-rolled on
//! blocking sockets:
//!
//! * [`http`] — a strict HTTP/1.1 request parser with hard size limits,
//!   keep-alive, `Content-Length`-only framing, and slowloris defense;
//! * [`router`] — maps endpoints onto the engine, translating per-request
//!   `timeout_ms`/budget knobs into the same [`Guard`]/[`QueryOptions`]
//!   machinery in-process callers use, so HTTP answers are bit-identical to
//!   library answers (deadline-partial `206`s included);
//! * [`metrics`] — lock-light counters and latency percentile rings behind
//!   `GET /metrics`;
//! * [`cache`] — an LSN-invalidated query-result cache: repeat queries are
//!   answered byte-identically from memory until the store's
//!   [`content_stamp`](walrus_core::Store::content_stamp) moves;
//! * [`server`] — the accept loop feeding a bounded
//!   [`WorkerPool`](walrus_parallel::WorkerPool), explicit `503`
//!   load-shedding, and graceful drain-then-cancel shutdown ending in a
//!   final checkpoint;
//! * [`reactor`] — the opt-in (`--reactor` / `WALRUS_REACTOR=1`)
//!   epoll-driven connection backend: one event-loop thread multiplexes
//!   every socket through nonblocking state machines, so 10k idle
//!   keep-alive connections cost file descriptors instead of threads,
//!   while CPU-bound requests still dispatch to the same pool;
//! * [`client`] — a tiny blocking client used by the e2e tests and
//!   `walrus bench-http`.
//!
//! [`Guard`]: walrus_core::Guard
//! [`QueryOptions`]: walrus_core::QueryOptions
//!
//! ## Quick start
//!
//! ```no_run
//! use walrus_core::{DurableDatabase, SharedDurableDatabase, WalrusParams};
//! use walrus_server::{Server, ServerConfig};
//!
//! let (store, _report) = DurableDatabase::open("./store", WalrusParams::paper_defaults())?;
//! let handle = Server::start(ServerConfig::default(), SharedDurableDatabase::new(store))?;
//! println!("listening on {}", handle.addr());
//! // ... serve until told otherwise ...
//! handle.shutdown()?;
//! # Ok::<(), walrus_core::WalrusError>(())
//! ```

pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;
pub mod reactor;
pub mod router;
pub mod server;

pub use cache::QueryCache;
pub use client::{Client, ClientResponse};
pub use http::{HttpLimits, Request, Response};
pub use metrics::{InFlight, Metrics, StageMetrics, TraceStore, STAGE_NAMES};
pub use router::AppState;
pub use server::{signals, Server, ServerConfig, ServerHandle};
