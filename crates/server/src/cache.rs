//! The LSN-invalidated query-result cache.
//!
//! Repeat queries are the dominant production pattern, and a WALRUS query
//! is pure: the answer depends only on (query image bytes, request
//! parameters, store content). The first two are folded into a 64-bit
//! FNV-1a key; the third is the [`Store::content_stamp`] — an opaque
//! fingerprint that moves on every committed ingest, quarantine
//! transition, and rebalance epoch, and stays put across checkpoints.
//!
//! Correctness rules (proven by `tests/cache_props.rs`):
//!
//! * an entry is served **only** when the stamp it was recorded under
//!   equals the store's stamp *right now* — a stale entry is removed on
//!   sight and counted as an invalidation;
//! * an entry is inserted only if the stamp captured *before* the query
//!   ran still matches the store afterwards — a mutation racing the query
//!   window can never publish a result under the new stamp;
//! * only `Complete` (HTTP 200) rankings are cached; partial and degraded
//!   answers depend on deadline timing and shard health, not content
//!   alone.
//!
//! The cached value is the response body **without** the trailing
//! `request_id` field — every response (hit or miss) carries a fresh id,
//! spliced in by the router, so a cached body is byte-identical to what
//! the engine would have produced for that request id.
//!
//! [`Store::content_stamp`]: walrus_core::Store::content_stamp

use std::collections::HashMap;
use std::sync::Mutex;

/// Seed/offset basis for FNV-1a 64.
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Incremental FNV-1a 64 hasher for building cache keys out of the query
/// body and the request-parameter fingerprint.
#[derive(Debug, Clone, Copy)]
pub struct KeyHasher(u64);

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher(FNV_BASIS)
    }
}

impl KeyHasher {
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    pub fn write_u64(&mut self, value: u64) -> &mut Self {
        self.write_bytes(&value.to_le_bytes())
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Why a lookup did not return a body.
#[derive(Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Entry found under the current content stamp.
    Hit(String),
    /// Entry found, but recorded under an older stamp; it has been
    /// removed.
    Stale,
    /// No entry under this key.
    Absent,
}

#[derive(Debug)]
struct Entry {
    stamp: u64,
    body: String,
    /// Logical access time for LRU eviction.
    used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
}

/// Bounded LRU cache of rendered query-response bodies keyed by
/// (query hash, params fingerprint) with stamp-checked entries. Capacity 0
/// disables caching entirely (every lookup is [`Lookup::Absent`], inserts
/// are dropped).
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl QueryCache {
    /// Default entry budget; bodies are small (top-k rankings), so this is
    /// a few MB at worst.
    pub const DEFAULT_CAPACITY: usize = 256;

    pub fn new(capacity: usize) -> Self {
        QueryCache { capacity, inner: Mutex::new(Inner::default()) }
    }

    /// Maximum entries (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key` under the store's current `stamp`. A stamp mismatch
    /// removes the entry (the content it described no longer exists).
    pub fn lookup(&self, key: u64, stamp: u64) -> Lookup {
        if self.capacity == 0 {
            return Lookup::Absent;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) if entry.stamp == stamp => {
                entry.used = tick;
                Lookup::Hit(entry.body.clone())
            }
            Some(_) => {
                inner.map.remove(&key);
                Lookup::Stale
            }
            None => Lookup::Absent,
        }
    }

    /// Inserts a body recorded under `stamp`, evicting the least-recently
    /// used entry when full. Returns true when an eviction happened.
    pub fn insert(&self, key: u64, stamp: u64, body: String) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let mut evicted = false;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some((&lru, _)) = inner.map.iter().min_by_key(|(_, e)| e.used) {
                inner.map.remove(&lru);
                evicted = true;
            }
        }
        inner.map.insert(key, Entry { stamp, body, used: tick });
        evicted
    }

    /// Drops every entry (used when the store is mutated through admin
    /// surfaces where a stamp check alone should not be trusted to race).
    pub fn clear(&self) {
        self.inner.lock().expect("cache lock").map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_hasher_is_stable_and_order_sensitive() {
        let mut a = KeyHasher::default();
        a.write_bytes(b"body").write_u64(5);
        let mut b = KeyHasher::default();
        b.write_bytes(b"body").write_u64(5);
        assert_eq!(a.finish(), b.finish());
        let mut c = KeyHasher::default();
        c.write_u64(5).write_bytes(b"body");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn hit_requires_matching_stamp() {
        let cache = QueryCache::new(4);
        cache.insert(1, 10, "body".into());
        assert_eq!(cache.lookup(1, 10), Lookup::Hit("body".into()));
        // Stamp moved on: entry is invalidated and removed.
        assert_eq!(cache.lookup(1, 11), Lookup::Stale);
        assert_eq!(cache.lookup(1, 11), Lookup::Absent);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = QueryCache::new(2);
        assert!(!cache.insert(1, 0, "a".into()));
        assert!(!cache.insert(2, 0, "b".into()));
        // Touch 1 so 2 is the LRU.
        assert_eq!(cache.lookup(1, 0), Lookup::Hit("a".into()));
        assert!(cache.insert(3, 0, "c".into()));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(2, 0), Lookup::Absent);
        assert_eq!(cache.lookup(1, 0), Lookup::Hit("a".into()));
        assert_eq!(cache.lookup(3, 0), Lookup::Hit("c".into()));
    }

    #[test]
    fn reinsert_under_same_key_does_not_evict() {
        let cache = QueryCache::new(1);
        cache.insert(1, 0, "a".into());
        assert!(!cache.insert(1, 1, "b".into()), "overwrite is not an eviction");
        assert_eq!(cache.lookup(1, 1), Lookup::Hit("b".into()));
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = QueryCache::new(0);
        assert!(!cache.insert(1, 0, "a".into()));
        assert_eq!(cache.lookup(1, 0), Lookup::Absent);
        assert_eq!(cache.len(), 0);
    }
}
