//! Failure-injection and edge-case tests across the workspace: degenerate
//! inputs, hostile parameters, and boundary geometry must produce clean
//! errors or sensible no-ops — never panics or corrupt state.

use walrus_core::{ImageDatabase, WalrusError, WalrusParams};
use walrus_imagery::synth::scene::Scene;
use walrus_imagery::synth::texture::{Rgb, Texture};
use walrus_imagery::{ColorSpace, Image};
use walrus_wavelet::SlidingParams;

fn tiny_params() -> WalrusParams {
    WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 16, stride: 4 },
        ..WalrusParams::paper_defaults()
    }
}

fn flat_image(w: usize, h: usize) -> Image {
    Scene::new(Texture::Solid(Rgb(0.5, 0.5, 0.5))).render(w, h).unwrap()
}

#[test]
fn image_smaller_than_window_is_a_clean_error() {
    let mut db = ImageDatabase::new(tiny_params()).unwrap();
    let tiny = flat_image(4, 4);
    match db.insert_image("tiny", &tiny) {
        Err(WalrusError::Wavelet(walrus_wavelet::WaveletError::ImageTooSmall { .. })) => {}
        other => panic!("expected ImageTooSmall, got {other:?}"),
    }
    // The failed insertion must not leave partial state behind.
    assert_eq!(db.len(), 0);
    assert_eq!(db.num_regions(), 0);
}

#[test]
fn image_exactly_window_sized_works() {
    let mut db = ImageDatabase::new(tiny_params()).unwrap();
    let exact = flat_image(16, 16);
    db.insert_image("exact", &exact).unwrap();
    let top = db.top_k(&exact, 1).unwrap();
    assert_eq!(top[0].name, "exact");
    assert!(top[0].similarity > 0.99);
}

#[test]
fn flat_images_cluster_to_one_region_and_match_each_other() {
    let mut db = ImageDatabase::new(tiny_params()).unwrap();
    db.insert_image("flat1", &flat_image(64, 64)).unwrap();
    let img = db.image(0).unwrap();
    assert_eq!(img.regions.len(), 1, "a constant image is one region");
    let out = db.query(&flat_image(64, 64)).unwrap();
    assert_eq!(out.matches.len(), 1);
    assert!(out.matches[0].similarity > 0.99);
}

#[test]
fn enormous_epsilon_matches_everything_but_stays_bounded() {
    let mut db = ImageDatabase::new(tiny_params()).unwrap();
    db.insert_image("a", &flat_image(64, 64)).unwrap();
    let red = Scene::new(Texture::Solid(Rgb(0.9, 0.1, 0.1))).render(64, 64).unwrap();
    db.insert_image("b", &red).unwrap();
    let out = db.query_with_epsilon(&flat_image(64, 64), 1e6).unwrap();
    assert_eq!(out.stats.distinct_images, 2);
    for m in &out.matches {
        assert!((0.0..=1.0).contains(&m.similarity));
    }
}

#[test]
fn zero_epsilon_still_matches_identical_images() {
    let mut db = ImageDatabase::new(tiny_params()).unwrap();
    let img = flat_image(64, 64);
    db.insert_image("same", &img).unwrap();
    let out = db.query_with_epsilon(&img, 0.0).unwrap();
    assert_eq!(out.stats.distinct_images, 1);
}

#[test]
fn invalid_query_epsilon_rejected() {
    let mut db = ImageDatabase::new(tiny_params()).unwrap();
    db.insert_image("a", &flat_image(64, 64)).unwrap();
    assert!(db.query_with_epsilon(&flat_image(64, 64), f32::NAN).is_err());
    assert!(db.query_with_epsilon(&flat_image(64, 64), -0.1).is_err());
}

#[test]
fn invalid_params_rejected_at_construction() {
    let mut p = tiny_params();
    p.tau = 2.0;
    assert!(ImageDatabase::new(p).is_err());
    let mut p = tiny_params();
    p.sliding.stride = 3; // not a power of two
    assert!(ImageDatabase::new(p).is_err());
    let mut p = tiny_params();
    p.cluster_epsilon = f64::INFINITY;
    assert!(ImageDatabase::new(p).is_err());
}

#[test]
fn non_square_and_odd_sized_images_are_fine() {
    // The paper's images are 85×128 etc. — odd sizes must work (windows
    // just don't reach the last pixels).
    let mut db = ImageDatabase::new(tiny_params()).unwrap();
    for (w, h) in [(85usize, 128usize), (128, 85), (97, 33)] {
        let img = flat_image(w, h);
        db.insert_image(&format!("{w}x{h}"), &img).unwrap();
    }
    assert_eq!(db.len(), 3);
    let out = db.query(&flat_image(85, 128)).unwrap();
    assert!(!out.matches.is_empty());
}

#[test]
fn mixed_size_images_compare_via_min_image_similarity() {
    use walrus_core::SimilarityKind;
    let mut p = tiny_params();
    p.similarity = SimilarityKind::MinImage;
    let mut db = ImageDatabase::new(p).unwrap();
    db.insert_image("big", &flat_image(128, 128)).unwrap();
    let out = db.query(&flat_image(32, 32)).unwrap();
    assert_eq!(out.matches.len(), 1);
    // The small query is fully covered; MinImage normalizes by the smaller
    // image so the score is high despite the size mismatch.
    assert!(out.matches[0].similarity > 0.9, "got {}", out.matches[0].similarity);
}

#[test]
fn ppm_codec_survives_hostile_inputs() {
    use walrus_imagery::ppm::parse_netpbm;
    for bytes in [
        &b"P6"[..],
        &b"P6\n-1 5\n255\n"[..],
        &b"P6\n99999999999999999999 1\n255\n"[..],
        &b"P3\n1 1\n0\n0 0 0"[..],
        &b"P5\n2 2\n255\nab"[..], // truncated
        &[0xFF, 0xFE, 0x00][..],
    ] {
        assert!(parse_netpbm(bytes).is_err(), "should reject {bytes:?}");
    }
}

#[test]
fn gray_database_rejects_nothing_but_reduces_dims() {
    let mut p = tiny_params();
    p.color_space = ColorSpace::Gray;
    let mut db = ImageDatabase::new(p).unwrap();
    db.insert_image("g", &flat_image(32, 32)).unwrap();
    assert_eq!(db.params().signature_dims(), 4);
    let out = db.query(&flat_image(32, 32)).unwrap();
    assert_eq!(out.matches.len(), 1);
}

#[test]
fn unknown_image_operations_error_cleanly() {
    let mut db = ImageDatabase::new(tiny_params()).unwrap();
    assert!(matches!(db.remove_image(0), Err(WalrusError::UnknownImage(0))));
    assert!(db.image(42).is_none());
}

#[test]
fn many_identical_images_do_not_break_ranking() {
    let mut db = ImageDatabase::new(tiny_params()).unwrap();
    let img = flat_image(64, 64);
    for i in 0..20 {
        db.insert_image(&format!("dup{i}"), &img).unwrap();
    }
    let top = db.top_k(&img, 20).unwrap();
    assert_eq!(top.len(), 20);
    // All tie at full similarity; ordering must be deterministic (by id).
    for (i, r) in top.iter().enumerate() {
        assert!(r.similarity > 0.99);
        assert_eq!(r.image_id, i);
    }
}
