//! The pre-clustering driver used by WALRUS (paper §5.3).
//!
//! `precluster(points, ε_c, …)` runs one CF-tree pass over all points and
//! harvests the leaf entries as clusters. Because WALRUS also needs the
//! *membership* of each cluster (to build the region's pixel bitmap), a
//! second linear pass assigns every input point to its nearest cluster
//! centroid — the same refinement BIRCH performs in its optional phase 4.

use crate::cf::ClusteringFeature;
use crate::tree::{BirchParams, CfTree};
use crate::Result;
use walrus_guard::Guard;

/// How many points the guarded pre-clustering loops process between guard
/// polls: frequent enough to stop within a fraction of a millisecond of
/// cancellation, rare enough to be free for plain requests.
const GUARD_POLL_STRIDE: usize = 256;

/// One harvested cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The cluster's CF (exact centroid/radius of the points the tree
    /// absorbed into it).
    pub cf: ClusteringFeature,
    /// Indices (into the input slice) of points assigned to this cluster by
    /// the nearest-centroid pass.
    pub members: Vec<usize>,
    /// Per-dimension minimum over assigned members (the signature bounding
    /// box the paper offers as an alternative to centroids).
    pub bbox_min: Vec<f32>,
    /// Per-dimension maximum over assigned members.
    pub bbox_max: Vec<f32>,
}

impl Cluster {
    /// Cluster centroid as `f32`.
    pub fn centroid(&self) -> Vec<f32> {
        self.cf.centroid_f32()
    }

    /// Cluster radius.
    pub fn radius(&self) -> f64 {
        self.cf.radius()
    }
}

/// The result of a pre-clustering run.
#[derive(Debug, Clone)]
pub struct Preclustering {
    /// Clusters with non-empty assigned membership.
    pub clusters: Vec<Cluster>,
    /// `assignments[i]` is the cluster index of input point `i`.
    pub assignments: Vec<usize>,
    /// Final CF-tree threshold (≥ the requested `ε_c` if rebuilds fired).
    pub final_threshold: f64,
    /// CF-tree node splits (leaf + internal) during the insertion pass.
    pub splits: usize,
    /// Threshold-escalation rebuilds during the insertion pass.
    pub rebuilds: usize,
}

/// Clusters `points` with a radius threshold of `epsilon` (WALRUS's `ε_c`).
/// `budget` optionally caps the number of clusters the CF-tree may hold
/// before escalating its threshold.
///
/// ```
/// let mut points: Vec<Vec<f32>> = Vec::new();
/// for i in 0..10 {
///     points.push(vec![0.0 + i as f32 * 0.01, 0.0]); // blob A
///     points.push(vec![5.0 - i as f32 * 0.01, 5.0]); // blob B
/// }
/// let result = walrus_birch::precluster(&points, 0.5, None)?;
/// assert_eq!(result.clusters.len(), 2);
/// // Every point is assigned, and radii respect the threshold.
/// assert_eq!(result.assignments.len(), 20);
/// assert!(result.clusters.iter().all(|c| c.radius() <= 0.5));
/// # Ok::<(), walrus_birch::BirchError>(())
/// ```
pub fn precluster(points: &[Vec<f32>], epsilon: f64, budget: Option<usize>) -> Result<Preclustering> {
    precluster_guarded(points, epsilon, budget, &Guard::none())
}

/// [`precluster`] cooperating with a request [`Guard`]: both linear passes
/// (CF-tree insertion and nearest-centroid assignment) poll the guard every
/// [`GUARD_POLL_STRIDE`] points, returning
/// [`BirchError::Interrupted`](crate::BirchError::Interrupted) when it
/// trips. With an unarmed guard the result is identical to [`precluster`].
pub fn precluster_guarded(
    points: &[Vec<f32>],
    epsilon: f64,
    budget: Option<usize>,
    guard: &Guard,
) -> Result<Preclustering> {
    if points.is_empty() {
        return Ok(Preclustering {
            clusters: Vec::new(),
            assignments: Vec::new(),
            final_threshold: epsilon,
            splits: 0,
            rebuilds: 0,
        });
    }
    let dims = points[0].len();
    let params = BirchParams {
        threshold: epsilon,
        max_leaf_entries: budget,
        ..BirchParams::default()
    };
    let mut tree = CfTree::new(dims, params)?;
    for (i, p) in points.iter().enumerate() {
        if i % GUARD_POLL_STRIDE == 0 {
            guard.poll()?;
        }
        tree.insert(p)?;
    }
    let entries = tree.leaf_entry_clones();
    let centroids: Vec<Vec<f32>> = entries.iter().map(|e| e.centroid_f32()).collect();

    // Nearest-centroid assignment pass.
    let mut assignments = Vec::with_capacity(points.len());
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); entries.len()];
    for (i, p) in points.iter().enumerate() {
        if i % GUARD_POLL_STRIDE == 0 {
            guard.poll()?;
        }
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            let d: f64 = centroid
                .iter()
                .zip(p)
                .map(|(&a, &b)| (a as f64 - b as f64) * (a as f64 - b as f64))
                .sum();
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        assignments.push(best);
        members[best].push(i);
    }

    // Harvest clusters with membership and signature bounding boxes,
    // dropping entries that attracted no members (possible when the
    // assignment pass disagrees with the insertion path) and remapping
    // assignment indices accordingly. Each cluster's CF is *recomputed*
    // from its assigned members (the BIRCH phase-4 refinement), so the
    // centroid is guaranteed consistent with the membership — in
    // particular it always lies inside the members' bounding box.
    let mut remap = vec![usize::MAX; entries.len()];
    let mut clusters = Vec::new();
    for (c, member) in members.into_iter().enumerate() {
        if member.is_empty() {
            continue;
        }
        let mut cf = ClusteringFeature::empty(dims);
        let mut bbox_min = points[member[0]].clone();
        let mut bbox_max = points[member[0]].clone();
        for &i in &member {
            cf.add_point(&points[i]);
            for (d, &v) in points[i].iter().enumerate() {
                if v < bbox_min[d] {
                    bbox_min[d] = v;
                }
                if v > bbox_max[d] {
                    bbox_max[d] = v;
                }
            }
        }
        remap[c] = clusters.len();
        clusters.push(Cluster { cf, members: member, bbox_min, bbox_max });
    }
    for a in &mut assignments {
        *a = remap[*a];
        debug_assert_ne!(*a, usize::MAX);
    }
    Ok(Preclustering {
        clusters,
        assignments,
        final_threshold: tree.threshold(),
        splits: tree.split_count(),
        rebuilds: tree.rebuild_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f32, cy: f32, n: usize, spread: f32) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                let dx = ((i * 37 % 17) as f32 / 17.0 - 0.5) * spread;
                let dy = ((i * 61 % 19) as f32 / 19.0 - 0.5) * spread;
                vec![cx + dx, cy + dy]
            })
            .collect()
    }

    #[test]
    fn empty_input() {
        let r = precluster(&[], 0.1, None).unwrap();
        assert!(r.clusters.is_empty());
        assert!(r.assignments.is_empty());
    }

    #[test]
    fn separated_blobs_recovered() {
        let mut pts = blob(0.0, 0.0, 30, 0.1);
        pts.extend(blob(5.0, 5.0, 30, 0.1));
        pts.extend(blob(-5.0, 5.0, 30, 0.1));
        let r = precluster(&pts, 0.3, None).unwrap();
        assert_eq!(r.clusters.len(), 3, "expected 3 clusters, got {}", r.clusters.len());
        // Membership covers every point exactly once.
        let total: usize = r.clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, 90);
        // Points from the same blob share an assignment.
        assert_eq!(r.assignments[0], r.assignments[29]);
        assert_ne!(r.assignments[0], r.assignments[30]);
    }

    #[test]
    fn assignments_and_members_are_consistent() {
        let mut pts = blob(0.0, 0.0, 20, 0.2);
        pts.extend(blob(3.0, 0.0, 20, 0.2));
        let r = precluster(&pts, 0.3, None).unwrap();
        for (c, cluster) in r.clusters.iter().enumerate() {
            for &m in &cluster.members {
                assert_eq!(r.assignments[m], c);
            }
        }
    }

    #[test]
    fn bbox_contains_all_members() {
        let pts = blob(1.0, 2.0, 40, 0.5);
        let r = precluster(&pts, 1.0, None).unwrap();
        for cluster in &r.clusters {
            for &m in &cluster.members {
                for (d, &v) in pts[m].iter().enumerate() {
                    assert!(v >= cluster.bbox_min[d] - 1e-6);
                    assert!(v <= cluster.bbox_max[d] + 1e-6);
                }
            }
        }
    }

    #[test]
    fn smaller_epsilon_gives_more_clusters() {
        // The §6.6 monotonicity: cluster count decreases as ε_c increases.
        let mut pts = Vec::new();
        for i in 0..200u32 {
            let x = ((i.wrapping_mul(2654435761)) % 1000) as f32 / 1000.0;
            let y = ((i.wrapping_mul(40503)) % 1000) as f32 / 1000.0;
            pts.push(vec![x, y]);
        }
        let tight = precluster(&pts, 0.05, None).unwrap().clusters.len();
        let loose = precluster(&pts, 0.4, None).unwrap().clusters.len();
        assert!(tight > loose, "tight {tight} should exceed loose {loose}");
    }

    #[test]
    fn budget_limits_cluster_count() {
        let pts: Vec<Vec<f32>> = (0..300).map(|i| vec![i as f32, 0.0]).collect();
        let r = precluster(&pts, 0.0, Some(10)).unwrap();
        assert!(r.clusters.len() <= 10);
        assert!(r.final_threshold > 0.0);
        let total: usize = r.clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn single_point() {
        let r = precluster(&[vec![1.0, 2.0, 3.0]], 0.1, None).unwrap();
        assert_eq!(r.clusters.len(), 1);
        assert_eq!(r.clusters[0].members, vec![0]);
        assert_eq!(r.clusters[0].centroid(), vec![1.0, 2.0, 3.0]);
        assert_eq!(r.clusters[0].bbox_min, r.clusters[0].bbox_max);
    }

    #[test]
    fn guarded_precluster_matches_and_interrupts() {
        use crate::BirchError;
        use walrus_guard::{Guard, Interrupt};
        let mut pts = blob(0.0, 0.0, 30, 0.1);
        pts.extend(blob(5.0, 5.0, 30, 0.1));
        let plain = precluster(&pts, 0.3, None).unwrap();
        let guarded = precluster_guarded(&pts, 0.3, None, &Guard::none()).unwrap();
        assert_eq!(plain.assignments, guarded.assignments);
        assert_eq!(plain.clusters.len(), guarded.clusters.len());

        let guard = Guard::none().trip_after(0, Interrupt::Cancelled);
        let err = precluster_guarded(&pts, 0.3, None, &guard).unwrap_err();
        assert_eq!(err, BirchError::Interrupted(Interrupt::Cancelled));
    }

    #[test]
    fn duplicate_points_collapse() {
        let pts = vec![vec![0.5f32, 0.5]; 50];
        let r = precluster(&pts, 0.0, None).unwrap();
        assert_eq!(r.clusters.len(), 1);
        assert_eq!(r.clusters[0].members.len(), 50);
        assert_eq!(r.clusters[0].radius(), 0.0);
    }
}
