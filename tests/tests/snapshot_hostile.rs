//! Hostile-input property tests for the snapshot loader: `persist::load`
//! must return `Err` — never panic, never attempt a huge allocation — for
//! truncated, bit-flipped, or random-garbage images, in both the legacy v1
//! and the checksummed v2 format.
//!
//! Deterministic xorshift randomness keeps the suite reproducible and free
//! of external dependencies; each case prints its seed context on failure.

use walrus_core::{persist, ImageDatabase, WalrusError, WalrusParams};
use walrus_imagery::synth::dataset::{DatasetSpec, ImageClass, SyntheticDataset};
use walrus_wavelet::SlidingParams;

/// xorshift64* — tiny deterministic PRNG for fuzz-style sweeps.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn populated() -> ImageDatabase {
    let params = WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 16, stride: 4 },
        ..WalrusParams::paper_defaults()
    };
    let data = SyntheticDataset::generate(DatasetSpec {
        images_per_class: 2,
        width: 48,
        height: 32,
        seed: 0xBEEF,
        classes: vec![ImageClass::Flowers, ImageClass::Sunset],
    })
    .unwrap();
    let mut db = ImageDatabase::new(params).unwrap();
    for img in &data.images {
        db.insert_image(&img.name, &img.image).unwrap();
    }
    db
}

#[test]
fn v2_rejects_every_random_bit_flip() {
    let good = persist::save(&populated());
    let mut rng = XorShift::new(0x5EED_0001);
    for case in 0..400 {
        let pos = rng.below(good.len());
        let mask = (rng.next() as u8) | 1; // always flips at least one bit
        let mut bad = good.clone();
        bad[pos] ^= mask;
        match persist::load(&bad) {
            Err(WalrusError::Corrupt(_)) => {}
            Err(other) => panic!("case {case}: flip at {pos} gave non-corrupt error {other}"),
            Ok(_) => panic!("case {case}: flip at {pos} mask {mask:#04x} went undetected"),
        }
    }
}

#[test]
fn v2_rejects_every_truncation() {
    let good = persist::save(&populated());
    let mut rng = XorShift::new(0x5EED_0002);
    for case in 0..200 {
        let cut = rng.below(good.len()); // always strictly shorter
        assert!(
            persist::load(&good[..cut]).is_err(),
            "case {case}: truncation to {cut} bytes loaded"
        );
    }
}

#[test]
fn v1_corruption_errors_but_never_panics() {
    // v1 has no checksums, so a flip in float data may load — the contract
    // is only "no panic, no unbounded allocation".
    let good = persist::save_v1(&populated());
    let mut rng = XorShift::new(0x5EED_0003);
    for _ in 0..400 {
        let pos = rng.below(good.len());
        let mut bad = good.clone();
        bad[pos] ^= (rng.next() as u8) | 1;
        let _ = persist::load(&bad);
    }
    for _ in 0..200 {
        let cut = rng.below(good.len());
        let _ = persist::load(&good[..cut]);
    }
}

#[test]
fn random_garbage_is_rejected() {
    let mut rng = XorShift::new(0x5EED_0004);
    for case in 0..200 {
        let len = rng.below(4096);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        assert!(persist::load(&bytes).is_err(), "case {case}: garbage of {len} bytes loaded");
    }
    // Garbage behind a valid magic + version header is the nastier case:
    // parsers that trust the header over-allocate from hostile counts.
    for case in 0..200 {
        let len = rng.below(4096);
        let mut bytes = b"WALRUSDB".to_vec();
        let version = if case % 2 == 0 { 1u32 } else { 2u32 };
        bytes.extend_from_slice(&version.to_le_bytes());
        bytes.extend((0..len).map(|_| rng.next() as u8));
        assert!(
            persist::load(&bytes).is_err(),
            "case {case}: header + {len} garbage bytes loaded as v{version}"
        );
    }
}

#[test]
fn hostile_length_fields_do_not_allocate() {
    // Craft headers whose length/count fields claim gigabytes. The loader
    // must bound `with_capacity` by the bytes actually present and fail
    // cleanly. (If it trusted the counts, this test would OOM, not fail.)
    let mut rng = XorShift::new(0x5EED_0005);
    for version in [1u32, 2u32] {
        for _ in 0..100 {
            let mut bytes = b"WALRUSDB".to_vec();
            bytes.extend_from_slice(&version.to_le_bytes());
            // A handful of huge little-endian fields, then thin padding.
            for _ in 0..4 {
                bytes.extend_from_slice(&(u64::MAX - rng.next() % 1024).to_le_bytes());
            }
            let pad = rng.below(64);
            bytes.extend((0..pad).map(|_| rng.next() as u8));
            assert!(persist::load(&bytes).is_err());
        }
    }
}
