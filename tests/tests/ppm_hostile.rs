//! Hostile-input defense for the netpbm decoder: every file in the
//! committed `tests/hostile_corpus/` directory is a malformed or malicious
//! PPM/PGM byte stream (overflowing dimensions, allocation bombs, truncated
//! rasters, garbage). Decoding any of them must return a clean error —
//! never panic, never allocate anywhere near the declared raster size.

use std::path::{Path, PathBuf};
use walrus_imagery::ppm::{load_netpbm_limited, parse_netpbm, parse_netpbm_limited};
use walrus_imagery::ImageError;

/// Pixel budget used by the limited-decode tests: small enough that an
/// allocation anywhere near a hostile header's claim would be caught.
const BUDGET: usize = 1 << 22;

fn corpus_dir() -> PathBuf {
    if let Some(dir) = option_env!("CARGO_MANIFEST_DIR") {
        return Path::new(dir).join("hostile_corpus");
    }
    // Raw-rustc harness: no cargo env, probe relative to the working dir.
    for cand in ["hostile_corpus", "tests/hostile_corpus", "../hostile_corpus"] {
        let p = PathBuf::from(cand);
        if p.is_dir() {
            return p;
        }
    }
    panic!("hostile_corpus directory not found; run from the repo root or tests/");
}

#[test]
fn every_corpus_file_is_rejected_without_panicking() {
    let dir = corpus_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    assert!(files.len() >= 10, "corpus unexpectedly small: {} files", files.len());

    for path in &files {
        // Budgeted decode — the CLI ingest path.
        let limited = load_netpbm_limited(path, BUDGET);
        assert!(limited.is_err(), "{} decoded under a budget", path.display());
        // Unlimited decode must fail just as cleanly: the raster-vs-input
        // length check fires before any allocation even without a budget.
        let bytes = std::fs::read(path).unwrap();
        assert!(parse_netpbm(&bytes).is_err(), "{} decoded unlimited", path.display());
    }
}

#[test]
fn oversized_headers_rejected_by_the_budget_before_allocation() {
    for name in ["huge_dims.ppm", "overflow_dims.ppm"] {
        let bytes = std::fs::read(corpus_dir().join(name)).unwrap();
        match parse_netpbm_limited(&bytes, BUDGET) {
            Err(ImageError::TooLarge { max_pixels, .. }) => assert_eq!(max_pixels, BUDGET),
            other => panic!("{name}: expected TooLarge, got {other:?}"),
        }
    }
}

#[test]
fn truncated_raster_is_detected_before_allocation() {
    let bytes = std::fs::read(corpus_dir().join("truncated_raster.ppm")).unwrap();
    match parse_netpbm_limited(&bytes, BUDGET) {
        Err(ImageError::Codec(msg)) => assert!(msg.contains("truncated"), "got {msg:?}"),
        other => panic!("expected truncated-raster Codec error, got {other:?}"),
    }
}

#[test]
fn budget_boundary_is_exact() {
    // A well-formed 4x4 P6: exactly at the budget it parses, one below it
    // does not.
    let mut bytes = b"P6\n4 4\n255\n".to_vec();
    bytes.extend(std::iter::repeat(0x40u8).take(4 * 4 * 3));
    let img = parse_netpbm_limited(&bytes, 16).expect("exactly-at-budget image must parse");
    assert_eq!((img.width(), img.height()), (4, 4));
    match parse_netpbm_limited(&bytes, 15) {
        Err(ImageError::TooLarge { width: 4, height: 4, max_pixels: 15 }) => {}
        other => panic!("expected TooLarge, got {other:?}"),
    }
}
