//! WBIIS: wavelet-based image indexing and searching
//! (Wang, Wiederhold, Firschein, Wei; IJODL 1998).
//!
//! The system the WALRUS paper compares against in §6.4. Per the original:
//!
//! * every image is rescaled to a fixed 128×128 raster and converted to an
//!   opponent-style color space (we use YCC, the space WALRUS also reports);
//! * a **4-level** and a **5-level** Daubechies-D4 2-D transform are
//!   computed per channel; the stored feature vectors are the 16×16 (level
//!   4) and 8×8 (level 5) upper-left corners — lowest-frequency bands plus
//!   their immediate detail surroundings;
//! * search proceeds in **three steps**: (1) a crude variance pre-filter
//!   keeps candidates whose per-channel standard deviation is within a
//!   multiplicative band of the query's; (2) candidates are ranked by
//!   weighted L2 distance over the 5-level (coarser) features; (3) the
//!   surviving short-list is re-ranked with the 4-level (finer) features.
//!
//! Channel weights default to emphasizing luma, the original's
//! recommendation. Because WBIIS computes a *single* signature per image it
//! inherits the translation/scaling fragility the WALRUS paper demonstrates.

use crate::{BaselineError, Ranked, Result, Retriever};
use walrus_imagery::{ColorSpace, Image};
use walrus_wavelet::daubechies;

/// WBIIS tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WbiisParams {
    /// Side of the internal raster (must be a power of two; original: 128).
    pub raster: usize,
    /// Color space of the feature channels.
    pub color_space: ColorSpace,
    /// Variance pre-filter acceptance band: candidate passes when
    /// `σ_t ∈ [σ_q / (1+β), σ_q · (1+β)]` on the first channel. The
    /// original uses a comparable percentage window.
    pub beta: f32,
    /// Fraction of the database short-listed by the coarse ranking step.
    pub shortlist_fraction: f32,
    /// Per-channel weights in the feature distance (luma-heavy).
    pub channel_weights: [f32; 3],
}

impl Default for WbiisParams {
    fn default() -> Self {
        Self {
            raster: 128,
            color_space: ColorSpace::Ycc,
            beta: 0.5,
            shortlist_fraction: 0.25,
            channel_weights: [2.0, 1.0, 1.0],
        }
    }
}

#[derive(Debug, Clone)]
struct Signature {
    name: String,
    /// Per-channel standard deviation of the raster (pre-filter key).
    sigma: Vec<f32>,
    /// 16×16 corner of the 4-level transform, per channel, concatenated.
    feat4: Vec<f32>,
    /// 8×8 corner of the 5-level transform, per channel, concatenated.
    feat5: Vec<f32>,
}

/// The WBIIS retriever.
#[derive(Debug, Clone)]
pub struct WbiisRetriever {
    params: WbiisParams,
    images: Vec<Signature>,
}

impl WbiisRetriever {
    /// Creates an empty index with the original system's defaults.
    pub fn new() -> Self {
        Self::with_params(WbiisParams::default())
    }

    /// Creates an empty index with explicit parameters.
    pub fn with_params(params: WbiisParams) -> Self {
        Self { params, images: Vec::new() }
    }

    fn signature(&self, name: &str, image: &Image) -> Result<Signature> {
        let raster = self.params.raster;
        if !walrus_wavelet::is_pow2(raster) || raster < 32 {
            return Err(BaselineError::BadParams(format!("raster {raster} must be a power of two >= 32")));
        }
        let scaled = image.resize_bilinear(raster, raster)?.to_space(self.params.color_space)?;
        let mut sigma = Vec::with_capacity(3);
        let mut feat4 = Vec::new();
        let mut feat5 = Vec::new();
        for c in 0..scaled.channel_count() {
            let plane = scaled.channel(c);
            sigma.push(plane.variance().sqrt());
            let t4 = daubechies::forward_2d(plane.as_slice(), raster, 4)?;
            let t5 = daubechies::forward_2d(plane.as_slice(), raster, 5)?;
            feat4.extend(corner(&t4, raster, (raster >> 4).max(4) * 2)); // 16×16 at raster 128
            feat5.extend(corner(&t5, raster, (raster >> 5).max(2) * 2)); // 8×8 at raster 128
        }
        Ok(Signature { name: name.to_string(), sigma, feat4, feat5 })
    }

    fn weighted_dist(&self, a: &[f32], b: &[f32], per_channel: usize) -> f32 {
        let mut sum = 0.0f64;
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let w = self.params.channel_weights[(i / per_channel).min(2)] as f64;
            let d = (*x - *y) as f64;
            sum += w * d * d;
        }
        sum.sqrt() as f32
    }
}

impl Default for WbiisRetriever {
    fn default() -> Self {
        Self::new()
    }
}

fn corner(coeffs: &[f32], side: usize, m: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(m * m);
    for j in 0..m {
        out.extend_from_slice(&coeffs[j * side..j * side + m]);
    }
    out
}

impl Retriever for WbiisRetriever {
    fn system_name(&self) -> &'static str {
        "WBIIS"
    }

    fn insert(&mut self, name: &str, image: &Image) -> Result<usize> {
        let sig = self.signature(name, image)?;
        self.images.push(sig);
        Ok(self.images.len() - 1)
    }

    fn len(&self) -> usize {
        self.images.len()
    }

    fn top_k(&self, query: &Image, k: usize) -> Result<Vec<Ranked>> {
        if self.images.is_empty() || k == 0 {
            return Ok(Vec::new());
        }
        let q = self.signature("query", query)?;

        // Step 1: variance pre-filter on the first (luma) channel.
        let lo = q.sigma[0] / (1.0 + self.params.beta);
        let hi = q.sigma[0] * (1.0 + self.params.beta);
        let mut candidates: Vec<usize> = (0..self.images.len())
            .filter(|&i| {
                let s = self.images[i].sigma[0];
                s >= lo && s <= hi
            })
            .collect();
        // The original falls back to the full set when the filter is too
        // aggressive to return enough answers.
        if candidates.len() < k {
            candidates = (0..self.images.len()).collect();
        }

        // Step 2: coarse ranking with 5-level features.
        let per5 = q.feat5.len() / q.sigma.len();
        let mut coarse: Vec<(usize, f32)> = candidates
            .into_iter()
            .map(|i| (i, self.weighted_dist(&q.feat5, &self.images[i].feat5, per5)))
            .collect();
        coarse.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let keep = ((self.images.len() as f32 * self.params.shortlist_fraction).ceil() as usize)
            .max(k)
            .min(coarse.len());
        coarse.truncate(keep);

        // Step 3: fine re-ranking with 4-level features.
        let per4 = q.feat4.len() / q.sigma.len();
        let mut fine: Vec<(usize, f32)> = coarse
            .into_iter()
            .map(|(i, _)| (i, self.weighted_dist(&q.feat4, &self.images[i].feat4, per4)))
            .collect();
        fine.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        fine.truncate(k);
        Ok(fine
            .into_iter()
            .map(|(i, d)| Ranked { id: i, name: self.images[i].name.clone(), distance: d })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walrus_imagery::synth::scene::{Scene, SceneObject};
    use walrus_imagery::synth::shapes::Shape;
    use walrus_imagery::synth::texture::{Rgb, Texture};

    fn flower_at(cx: f32, cy: f32) -> Image {
        Scene::new(Texture::Solid(Rgb(0.1, 0.5, 0.15)))
            .with(SceneObject::new(
                Shape::Flower { petals: 6, core_radius: 0.3, petal_len: 0.95, petal_width: 0.22 },
                Texture::Solid(Rgb(0.85, 0.12, 0.18)),
                (cx, cy),
                0.5,
            ))
            .render(96, 72)
            .unwrap()
    }

    fn plain(color: Rgb) -> Image {
        Scene::new(Texture::Solid(color)).render(96, 72).unwrap()
    }

    #[test]
    fn identical_image_has_zero_distance() {
        let mut r = WbiisRetriever::new();
        let img = flower_at(0.5, 0.5);
        r.insert("self", &img).unwrap();
        r.insert("blue", &plain(Rgb(0.1, 0.1, 0.9))).unwrap();
        let top = r.top_k(&img, 2).unwrap();
        assert_eq!(top[0].name, "self");
        assert!(top[0].distance < 1e-4, "self-distance {}", top[0].distance);
        assert!(top[1].distance > top[0].distance);
    }

    #[test]
    fn distance_orders_by_visual_similarity() {
        let mut r = WbiisRetriever::new();
        r.insert("green", &plain(Rgb(0.1, 0.5, 0.15))).unwrap();
        r.insert("blue", &plain(Rgb(0.1, 0.1, 0.9))).unwrap();
        let q = plain(Rgb(0.12, 0.48, 0.17)); // near-green
        let top = r.top_k(&q, 2).unwrap();
        assert_eq!(top[0].name, "green");
    }

    #[test]
    fn translation_increases_distance_markedly() {
        // The single-signature failure mode WALRUS fixes: the same flower
        // far from its original position scores much worse than in place.
        let mut r = WbiisRetriever::new();
        r.insert("inplace", &flower_at(0.5, 0.5)).unwrap();
        let q = flower_at(0.5, 0.5);
        let near = r.top_k(&q, 1).unwrap()[0].distance;
        let moved_q = flower_at(0.2, 0.25);
        let moved = r.top_k(&moved_q, 1).unwrap()[0].distance;
        assert!(
            moved > near + 0.01,
            "translation should hurt WBIIS: in-place {near}, moved {moved}"
        );
    }

    #[test]
    fn empty_index_and_zero_k() {
        let r = WbiisRetriever::new();
        assert!(r.is_empty());
        assert!(r.top_k(&plain(Rgb(0.5, 0.5, 0.5)), 3).unwrap().is_empty());
        let mut r = WbiisRetriever::new();
        r.insert("a", &plain(Rgb(0.5, 0.5, 0.5))).unwrap();
        assert!(r.top_k(&plain(Rgb(0.5, 0.5, 0.5)), 0).unwrap().is_empty());
    }

    #[test]
    fn results_sorted_ascending() {
        let mut r = WbiisRetriever::new();
        for i in 0..8 {
            r.insert(&format!("img{i}"), &plain(Rgb(0.1 * i as f32, 0.5, 0.5))).unwrap();
        }
        let top = r.top_k(&plain(Rgb(0.35, 0.5, 0.5)), 8).unwrap();
        for w in top.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn variance_prefilter_falls_back_when_starved() {
        // A flat query has σ ≈ 0; every textured image fails the band, but
        // the system must still return k answers.
        let mut r = WbiisRetriever::new();
        r.insert("flower", &flower_at(0.5, 0.5)).unwrap();
        r.insert("flat", &plain(Rgb(0.4, 0.4, 0.4))).unwrap();
        let top = r.top_k(&plain(Rgb(0.9, 0.1, 0.1)), 2).unwrap();
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn bad_raster_rejected() {
        let mut r = WbiisRetriever::with_params(WbiisParams { raster: 100, ..Default::default() });
        assert!(r.insert("x", &plain(Rgb(0.5, 0.5, 0.5))).is_err());
    }

    #[test]
    fn arbitrary_input_sizes_accepted() {
        // The paper's misc images are 85×128 / 96×128 / 128×85.
        let mut r = WbiisRetriever::new();
        for (w, h) in [(85, 128), (96, 128), (128, 85)] {
            let img = Scene::new(Texture::Solid(Rgb(0.3, 0.6, 0.2))).render(w, h).unwrap();
            r.insert(&format!("{w}x{h}"), &img).unwrap();
        }
        assert_eq!(r.len(), 3);
    }
}
