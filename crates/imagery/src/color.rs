//! Color spaces and conversions.
//!
//! The WALRUS paper stores images in YCC (YCbCr) for its headline results and
//! reports RGB numbers in §6.6; related systems use YIQ (Jacobs et al.) and
//! HSV. All conversions here operate on `f32` pixels with RGB in `[0, 1]`.
//!
//! The conversion graph is a star centred on RGB: every space converts to and
//! from RGB, and arbitrary pairs are routed through RGB by [`convert`].

use crate::image::{Channel, Image};
use crate::{ImageError, Result};

/// The color spaces understood by the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColorSpace {
    /// Red, green, blue in `[0, 1]`.
    Rgb,
    /// Luma plus blue/red chroma (YCbCr a.k.a. "YCC" in the paper), all
    /// shifted into `[0, 1]` (chroma stored as `value + 0.5`).
    Ycc,
    /// NTSC luma/in-phase/quadrature; I and Q are signed.
    Yiq,
    /// Hue (`[0, 1)` wrapping), saturation, value.
    Hsv,
    /// Single luma channel.
    Gray,
}

impl ColorSpace {
    /// Number of channels an image in this space carries.
    pub fn channel_count(self) -> usize {
        match self {
            ColorSpace::Gray => 1,
            _ => 3,
        }
    }

    /// Short lowercase name, e.g. for CSV output.
    pub fn name(self) -> &'static str {
        match self {
            ColorSpace::Rgb => "rgb",
            ColorSpace::Ycc => "ycc",
            ColorSpace::Yiq => "yiq",
            ColorSpace::Hsv => "hsv",
            ColorSpace::Gray => "gray",
        }
    }
}

/// Converts one RGB pixel to YCbCr with chroma recentred to `[0,1]`
/// (ITU-R BT.601 full-range coefficients).
#[inline]
pub fn rgb_to_ycc(r: f32, g: f32, b: f32) -> (f32, f32, f32) {
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = (b - y) * 0.564 + 0.5;
    let cr = (r - y) * 0.713 + 0.5;
    (y, cb, cr)
}

/// Inverse of [`rgb_to_ycc`].
#[inline]
pub fn ycc_to_rgb(y: f32, cb: f32, cr: f32) -> (f32, f32, f32) {
    let cb = cb - 0.5;
    let cr = cr - 0.5;
    let r = y + cr / 0.713;
    let b = y + cb / 0.564;
    let g = (y - 0.299 * r - 0.114 * b) / 0.587;
    (r, g, b)
}

/// Converts one RGB pixel to YIQ (NTSC matrix); I ∈ [-0.5957, 0.5957],
/// Q ∈ [-0.5226, 0.5226].
#[inline]
pub fn rgb_to_yiq(r: f32, g: f32, b: f32) -> (f32, f32, f32) {
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let i = 0.595716 * r - 0.274453 * g - 0.321263 * b;
    let q = 0.211456 * r - 0.522591 * g + 0.311135 * b;
    (y, i, q)
}

/// Inverse of [`rgb_to_yiq`].
#[inline]
pub fn yiq_to_rgb(y: f32, i: f32, q: f32) -> (f32, f32, f32) {
    let r = y + 0.956296 * i + 0.621024 * q;
    let g = y - 0.272122 * i - 0.647381 * q;
    let b = y - 1.106989 * i + 1.704615 * q;
    (r, g, b)
}

/// Converts one RGB pixel to HSV, all components scaled to `[0, 1]`.
#[inline]
pub fn rgb_to_hsv(r: f32, g: f32, b: f32) -> (f32, f32, f32) {
    let max = r.max(g).max(b);
    let min = r.min(g).min(b);
    let delta = max - min;
    let v = max;
    let s = if max > 0.0 { delta / max } else { 0.0 };
    let h = if delta <= f32::EPSILON {
        0.0
    } else if (max - r).abs() <= f32::EPSILON {
        (((g - b) / delta).rem_euclid(6.0)) / 6.0
    } else if (max - g).abs() <= f32::EPSILON {
        ((b - r) / delta + 2.0) / 6.0
    } else {
        ((r - g) / delta + 4.0) / 6.0
    };
    (h, s, v)
}

/// Inverse of [`rgb_to_hsv`].
#[inline]
pub fn hsv_to_rgb(h: f32, s: f32, v: f32) -> (f32, f32, f32) {
    let h6 = (h.rem_euclid(1.0)) * 6.0;
    let c = v * s;
    let x = c * (1.0 - (h6.rem_euclid(2.0) - 1.0).abs());
    let m = v - c;
    let (r, g, b) = match h6 as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    (r + m, g + m, b + m)
}

/// BT.601 luma of an RGB pixel.
#[inline]
pub fn rgb_to_gray(r: f32, g: f32, b: f32) -> f32 {
    0.299 * r + 0.587 * g + 0.114 * b
}

fn map_pixels(img: &Image, space: ColorSpace, f: impl Fn(f32, f32, f32) -> (f32, f32, f32)) -> Result<Image> {
    let (w, h) = (img.width(), img.height());
    let mut c0 = Channel::zeros(w, h)?;
    let mut c1 = Channel::zeros(w, h)?;
    let mut c2 = Channel::zeros(w, h)?;
    let (s0, s1, s2) = (img.channel(0), img.channel(1), img.channel(2));
    for y in 0..h {
        for x in 0..w {
            let (a, b, c) = f(s0.get(x, y), s1.get(x, y), s2.get(x, y));
            c0.set(x, y, a);
            c1.set(x, y, b);
            c2.set(x, y, c);
        }
    }
    Image::from_channels(vec![c0, c1, c2], space)
}

fn to_rgb(img: &Image) -> Result<Image> {
    match img.space() {
        ColorSpace::Rgb => Ok(img.clone()),
        ColorSpace::Ycc => map_pixels(img, ColorSpace::Rgb, ycc_to_rgb),
        ColorSpace::Yiq => map_pixels(img, ColorSpace::Rgb, yiq_to_rgb),
        ColorSpace::Hsv => map_pixels(img, ColorSpace::Rgb, hsv_to_rgb),
        ColorSpace::Gray => {
            let g = img.channel(0).clone();
            Image::from_channels(vec![g.clone(), g.clone(), g], ColorSpace::Rgb)
        }
    }
}

fn from_rgb(img: &Image, target: ColorSpace) -> Result<Image> {
    debug_assert_eq!(img.space(), ColorSpace::Rgb);
    match target {
        ColorSpace::Rgb => Ok(img.clone()),
        ColorSpace::Ycc => map_pixels(img, ColorSpace::Ycc, rgb_to_ycc),
        ColorSpace::Yiq => map_pixels(img, ColorSpace::Yiq, rgb_to_yiq),
        ColorSpace::Hsv => map_pixels(img, ColorSpace::Hsv, rgb_to_hsv),
        ColorSpace::Gray => {
            let (w, h) = (img.width(), img.height());
            let g = Channel::from_fn(w, h, |x, y| {
                rgb_to_gray(img.channel(0).get(x, y), img.channel(1).get(x, y), img.channel(2).get(x, y))
            })?;
            Image::from_channels(vec![g], ColorSpace::Gray)
        }
    }
}

/// Converts `img` to `target`, routing through RGB when necessary.
///
/// Grayscale is a lossy sink: converting Gray → anything replicates luma, so
/// round trips through Gray do not restore chroma. That matches how the paper
/// treats luma-only experiments.
pub fn convert(img: &Image, target: ColorSpace) -> Result<Image> {
    if img.space() == target {
        return Ok(img.clone());
    }
    if img.space() == ColorSpace::Rgb {
        return from_rgb(img, target);
    }
    let rgb = to_rgb(img)?;
    if target == ColorSpace::Rgb {
        return Ok(rgb);
    }
    from_rgb(&rgb, target).map_err(|e| match e {
        ImageError::UnsupportedConversion { .. } => ImageError::UnsupportedConversion {
            from: img.space(),
            to: target,
        },
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32, eps: f32) -> bool {
        (a - b).abs() <= eps
    }

    fn assert_rt(f: impl Fn(f32, f32, f32) -> (f32, f32, f32), g: impl Fn(f32, f32, f32) -> (f32, f32, f32)) {
        for &(r, gg, b) in &[
            (0.0, 0.0, 0.0),
            (1.0, 1.0, 1.0),
            (1.0, 0.0, 0.0),
            (0.0, 1.0, 0.0),
            (0.0, 0.0, 1.0),
            (0.25, 0.5, 0.75),
            (0.9, 0.1, 0.4),
        ] {
            let (a, bb, c) = f(r, gg, b);
            let (r2, g2, b2) = g(a, bb, c);
            assert!(
                close(r, r2, 1e-4) && close(gg, g2, 1e-4) && close(b, b2, 1e-4),
                "round trip failed for ({r},{gg},{b}) -> ({r2},{g2},{b2})"
            );
        }
    }

    #[test]
    fn ycc_round_trip() {
        assert_rt(rgb_to_ycc, ycc_to_rgb);
    }

    #[test]
    fn yiq_round_trip() {
        assert_rt(rgb_to_yiq, yiq_to_rgb);
    }

    #[test]
    fn hsv_round_trip() {
        assert_rt(rgb_to_hsv, hsv_to_rgb);
    }

    #[test]
    fn gray_of_white_is_one() {
        assert!(close(rgb_to_gray(1.0, 1.0, 1.0), 1.0, 1e-6));
        assert!(close(rgb_to_gray(0.0, 0.0, 0.0), 0.0, 1e-6));
    }

    #[test]
    fn luma_matches_between_ycc_and_yiq() {
        let (y1, _, _) = rgb_to_ycc(0.3, 0.6, 0.1);
        let (y2, _, _) = rgb_to_yiq(0.3, 0.6, 0.1);
        assert!(close(y1, y2, 1e-6));
    }

    #[test]
    fn neutral_gray_has_centered_chroma() {
        let (_, cb, cr) = rgb_to_ycc(0.5, 0.5, 0.5);
        assert!(close(cb, 0.5, 1e-6) && close(cr, 1e-6 + 0.5, 1e-5));
        let (_, i, q) = rgb_to_yiq(0.5, 0.5, 0.5);
        assert!(close(i, 0.0, 1e-5) && close(q, 0.0, 1e-5));
    }

    #[test]
    fn hsv_of_primaries() {
        let (h, s, v) = rgb_to_hsv(1.0, 0.0, 0.0);
        assert!(close(h, 0.0, 1e-6) && close(s, 1.0, 1e-6) && close(v, 1.0, 1e-6));
        let (h, _, _) = rgb_to_hsv(0.0, 1.0, 0.0);
        assert!(close(h, 1.0 / 3.0, 1e-6));
        let (h, _, _) = rgb_to_hsv(0.0, 0.0, 1.0);
        assert!(close(h, 2.0 / 3.0, 1e-6));
    }

    #[test]
    fn image_conversion_round_trip() {
        let img = Image::from_fn(8, 8, ColorSpace::Rgb, |x, y, c| {
            ((x * 7 + y * 3 + c * 5) % 11) as f32 / 11.0
        })
        .unwrap();
        for target in [ColorSpace::Ycc, ColorSpace::Yiq, ColorSpace::Hsv] {
            let conv = convert(&img, target).unwrap();
            assert_eq!(conv.space(), target);
            let back = convert(&conv, ColorSpace::Rgb).unwrap();
            for c in 0..3 {
                for (a, b) in back.channel(c).as_slice().iter().zip(img.channel(c).as_slice()) {
                    assert!(close(*a, *b, 1e-3), "{target:?} channel {c}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn same_space_conversion_is_identity() {
        let img = Image::zeros(3, 3, ColorSpace::Ycc).unwrap();
        assert_eq!(convert(&img, ColorSpace::Ycc).unwrap(), img);
    }

    #[test]
    fn cross_space_routes_through_rgb() {
        let img = Image::from_fn(4, 4, ColorSpace::Ycc, |x, y, c| {
            0.2 + 0.05 * ((x + y + c) % 5) as f32
        })
        .unwrap();
        let hsv = convert(&img, ColorSpace::Hsv).unwrap();
        assert_eq!(hsv.space(), ColorSpace::Hsv);
        let back = convert(&hsv, ColorSpace::Ycc).unwrap();
        for c in 0..3 {
            for (a, b) in back.channel(c).as_slice().iter().zip(img.channel(c).as_slice()) {
                assert!(close(*a, *b, 1e-3));
            }
        }
    }

    #[test]
    fn gray_conversion_drops_chroma() {
        let img = Image::from_fn(2, 2, ColorSpace::Rgb, |_, _, c| if c == 0 { 1.0 } else { 0.0 }).unwrap();
        let gray = convert(&img, ColorSpace::Gray).unwrap();
        assert_eq!(gray.channel_count(), 1);
        assert!(close(gray.channel(0).get(0, 0), 0.299, 1e-5));
        let rgb = convert(&gray, ColorSpace::Rgb).unwrap();
        // All channels equal the luma after expansion.
        assert!(close(rgb.channel(0).get(0, 0), rgb.channel(2).get(0, 0), 1e-6));
    }

    #[test]
    fn channel_count_per_space() {
        assert_eq!(ColorSpace::Gray.channel_count(), 1);
        for s in [ColorSpace::Rgb, ColorSpace::Ycc, ColorSpace::Yiq, ColorSpace::Hsv] {
            assert_eq!(s.channel_count(), 3);
        }
    }
}
