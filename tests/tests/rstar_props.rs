//! Property-based tests for the R\*-tree: every query compared against a
//! linear scan, and structural invariants under random insert/remove
//! interleavings.

use proptest::prelude::*;
use walrus_rstar::{RStarTree, Rect};

fn point_vec(dims: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f32..1.0, dims), n)
}

fn boxes(dims: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<(Vec<f32>, Vec<f32>)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0.0f32..1.0, dims),
            proptest::collection::vec(0.0f32..0.3, dims),
        ),
        n,
    )
    .prop_map(|items| {
        items
            .into_iter()
            .map(|(lo, ext)| {
                let hi: Vec<f32> = lo.iter().zip(&ext).map(|(a, e)| a + e).collect();
                (lo, hi)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn within_query_equals_linear_scan(pts in point_vec(4, 1..200), q in proptest::collection::vec(0.0f32..1.0, 4), eps in 0.0f32..0.5) {
        let mut tree = RStarTree::with_dims(4).unwrap();
        for (i, p) in pts.iter().enumerate() {
            tree.insert(Rect::point(p).unwrap(), i).unwrap();
        }
        tree.check_invariants();
        let mut got: Vec<usize> =
            tree.search_within(&q, eps).unwrap().into_iter().map(|(_, &v)| v).collect();
        got.sort_unstable();
        let eps_sq = (eps as f64) * (eps as f64);
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p.iter()
                    .zip(&q)
                    .map(|(&a, &b)| (a as f64 - b as f64) * (a as f64 - b as f64))
                    .sum::<f64>()
                    <= eps_sq
            })
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn intersect_query_equals_linear_scan(items in boxes(3, 1..150), probe in boxes(3, 1..2)) {
        let mut tree = RStarTree::with_dims(3).unwrap();
        let rects: Vec<Rect> = items
            .iter()
            .map(|(lo, hi)| Rect::new(lo.clone(), hi.clone()).unwrap())
            .collect();
        for (i, r) in rects.iter().enumerate() {
            tree.insert(r.clone(), i).unwrap();
        }
        let (plo, phi) = &probe[0];
        let probe_rect = Rect::new(plo.clone(), phi.clone()).unwrap();
        let mut got: Vec<usize> = tree
            .search_intersecting(&probe_rect)
            .unwrap()
            .into_iter()
            .map(|(_, &v)| v)
            .collect();
        got.sort_unstable();
        let mut want: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&probe_rect))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn nearest_k_is_sorted_and_matches_scan(pts in point_vec(3, 1..150), q in proptest::collection::vec(0.0f32..1.0, 3), k in 1usize..20) {
        let mut tree = RStarTree::with_dims(3).unwrap();
        for (i, p) in pts.iter().enumerate() {
            tree.insert(Rect::point(p).unwrap(), i).unwrap();
        }
        let got = tree.nearest_k(&q, k).unwrap();
        prop_assert_eq!(got.len(), k.min(pts.len()));
        for w in got.windows(2) {
            prop_assert!(w[0].2 <= w[1].2 + 1e-9);
        }
        let mut dists: Vec<f64> = pts
            .iter()
            .map(|p| {
                p.iter()
                    .zip(&q)
                    .map(|(&a, &b)| (a as f64 - b as f64) * (a as f64 - b as f64))
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, want) in got.iter().zip(&dists) {
            prop_assert!((g.2 - want).abs() < 1e-6, "{} vs {}", g.2, want);
        }
    }

    #[test]
    fn invariants_survive_insert_remove_interleaving(
        pts in point_vec(2, 10..120),
        removals in proptest::collection::vec(any::<prop::sample::Index>(), 1..40),
    ) {
        let mut tree = RStarTree::with_dims(2).unwrap();
        let rects: Vec<Rect> = pts.iter().map(|p| Rect::point(p).unwrap()).collect();
        for (i, r) in rects.iter().enumerate() {
            tree.insert(r.clone(), i).unwrap();
        }
        let mut alive: Vec<bool> = vec![true; pts.len()];
        for idx in &removals {
            let i = idx.index(pts.len());
            let removed = tree.remove(&rects[i], &i).unwrap();
            prop_assert_eq!(removed, alive[i], "removal result must reflect liveness");
            alive[i] = false;
        }
        tree.check_invariants();
        let expected_len = alive.iter().filter(|&&a| a).count();
        prop_assert_eq!(tree.len(), expected_len);
        // Every surviving point is still findable.
        for (i, r) in rects.iter().enumerate() {
            if alive[i] {
                let hits = tree.search_within(r.min(), 0.0).unwrap();
                prop_assert!(hits.iter().any(|(_, &v)| v == i), "lost live point {}", i);
            }
        }
    }
}
