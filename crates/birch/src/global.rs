//! BIRCH phase 3: global clustering of the CF-tree's leaf entries.
//!
//! The pre-clustering phase (all WALRUS itself needs) can fragment a
//! natural cluster across several leaf entries — insertion order and node
//! splits are greedy. BIRCH's phase 3 repairs this by running a standard
//! clustering algorithm over the *leaf entries themselves*, treating each
//! CF as a weighted point. Because the leaf-entry count is small
//! (thousands at most), an `O(k² log k)`-ish hierarchical agglomerative
//! pass is affordable.
//!
//! This module implements agglomerative merging of CFs under the standard
//! BIRCH distance metrics with two stopping rules:
//!
//! * [`agglomerate_to_k`] — merge until exactly `k` clusters remain (the
//!   classic "I want k clusters" interface);
//! * [`agglomerate_by_distance`] — merge while the closest pair is within
//!   a distance threshold (a global analog of the pre-cluster radius).
//!
//! Merging is exact on CFs (the CF algebra is closed under union), so the
//! result is identical to having clustered the raw points with the same
//! linkage — no re-scan of the data is needed.

use crate::cf::ClusteringFeature;

/// Linkage metric used when comparing candidate merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// D0: Euclidean distance between centroids.
    Centroid,
    /// D2: average inter-cluster distance.
    AverageInter,
    /// Merged-diameter linkage: the diameter the union would have — a
    /// variance-minimizing criterion in the spirit of Ward's method.
    MergedDiameter,
}

fn pair_distance(a: &ClusteringFeature, b: &ClusteringFeature, linkage: Linkage) -> f64 {
    match linkage {
        Linkage::Centroid => a.centroid_distance(b),
        Linkage::AverageInter => a.average_inter_distance(b),
        Linkage::MergedDiameter => a.merged(b).diameter(),
    }
}

/// The result of a global clustering pass: final clusters plus, for each
/// input entry, the index of the cluster that absorbed it.
#[derive(Debug, Clone)]
pub struct GlobalClustering {
    /// Final merged clusters.
    pub clusters: Vec<ClusteringFeature>,
    /// `assignment[i]` is the final cluster index of input entry `i`.
    pub assignment: Vec<usize>,
}

/// Agglomeratively merges `entries` until `k` clusters remain (or fewer
/// inputs than `k` exist, in which case the inputs are returned as-is).
pub fn agglomerate_to_k(
    entries: &[ClusteringFeature],
    k: usize,
    linkage: Linkage,
) -> GlobalClustering {
    run(entries, linkage, |clusters, _| clusters > k.max(1))
}

/// Agglomeratively merges while the closest pair under `linkage` is within
/// `threshold`.
pub fn agglomerate_by_distance(
    entries: &[ClusteringFeature],
    threshold: f64,
    linkage: Linkage,
) -> GlobalClustering {
    run(entries, linkage, move |clusters, best| clusters > 1 && best <= threshold)
}

/// Naive-but-robust agglomeration: recompute the closest pair each round.
/// `continue_merging(cluster_count, best_distance)` decides whether to
/// perform the pending merge. O(rounds · n²); leaf-entry counts are small.
fn run(
    entries: &[ClusteringFeature],
    linkage: Linkage,
    continue_merging: impl Fn(usize, f64) -> bool,
) -> GlobalClustering {
    let mut clusters: Vec<Option<ClusteringFeature>> = entries.iter().cloned().map(Some).collect();
    // Union-find-ish assignment tracking: each input maps to a slot; merged
    // slots redirect.
    let mut owner: Vec<usize> = (0..entries.len()).collect();
    let mut live = entries.len();

    while live > 1 {
        // Find the closest live pair.
        let mut best: Option<(usize, usize, f64)> = None;
        #[allow(clippy::needless_range_loop)] // i and j index the same Vec for a later take()
        for i in 0..clusters.len() {
            let Some(a) = &clusters[i] else { continue };
            for j in i + 1..clusters.len() {
                let Some(b) = &clusters[j] else { continue };
                let d = pair_distance(a, b, linkage);
                if best.map_or(true, |(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let Some((i, j, d)) = best else { break };
        if !continue_merging(live, d) {
            break;
        }
        let b = clusters[j].take().expect("pair search only returns live slots");
        clusters[i].as_mut().expect("live slot").merge(&b);
        for o in &mut owner {
            if *o == j {
                *o = i;
            }
        }
        live -= 1;
    }

    // Compact to a dense cluster list.
    let mut remap = vec![usize::MAX; clusters.len()];
    let mut out = Vec::with_capacity(live);
    for (slot, cf) in clusters.into_iter().enumerate() {
        if let Some(cf) = cf {
            remap[slot] = out.len();
            out.push(cf);
        }
    }
    let assignment = owner.into_iter().map(|o| remap[o]).collect();
    GlobalClustering { clusters: out, assignment }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cf_of(points: &[[f32; 2]]) -> ClusteringFeature {
        let mut cf = ClusteringFeature::empty(2);
        for p in points {
            cf.add_point(p);
        }
        cf
    }

    /// Three fragments of one blob plus one distant fragment.
    fn fragments() -> Vec<ClusteringFeature> {
        vec![
            cf_of(&[[0.0, 0.0], [0.1, 0.1]]),
            cf_of(&[[0.2, 0.0], [0.15, 0.1]]),
            cf_of(&[[0.05, 0.2]]),
            cf_of(&[[5.0, 5.0], [5.1, 4.9]]),
        ]
    }

    #[test]
    fn to_k_merges_the_fragments() {
        for linkage in [Linkage::Centroid, Linkage::AverageInter, Linkage::MergedDiameter] {
            let g = agglomerate_to_k(&fragments(), 2, linkage);
            assert_eq!(g.clusters.len(), 2, "{linkage:?}");
            // The three nearby fragments share a cluster; the far one is alone.
            assert_eq!(g.assignment[0], g.assignment[1]);
            assert_eq!(g.assignment[0], g.assignment[2]);
            assert_ne!(g.assignment[0], g.assignment[3]);
            // Point counts conserved.
            let total: u64 = g.clusters.iter().map(|c| c.count()).sum();
            assert_eq!(total, 7);
        }
    }

    #[test]
    fn k_larger_than_input_is_identity() {
        let g = agglomerate_to_k(&fragments(), 10, Linkage::Centroid);
        assert_eq!(g.clusters.len(), 4);
        assert_eq!(g.assignment, vec![0, 1, 2, 3]);
    }

    #[test]
    fn k_one_merges_everything() {
        let g = agglomerate_to_k(&fragments(), 1, Linkage::Centroid);
        assert_eq!(g.clusters.len(), 1);
        assert_eq!(g.clusters[0].count(), 7);
        assert!(g.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn distance_threshold_stops_at_the_gap() {
        // Fragments are within ~0.25 of each other; the far blob is ~7 away.
        let g = agglomerate_by_distance(&fragments(), 1.0, Linkage::Centroid);
        assert_eq!(g.clusters.len(), 2);
        let g = agglomerate_by_distance(&fragments(), 0.01, Linkage::Centroid);
        assert_eq!(g.clusters.len(), 4, "tiny threshold merges nothing");
        let g = agglomerate_by_distance(&fragments(), 100.0, Linkage::Centroid);
        assert_eq!(g.clusters.len(), 1, "huge threshold merges everything");
    }

    #[test]
    fn merged_centroid_is_weighted_mean() {
        let a = cf_of(&[[0.0, 0.0]]);
        let b = cf_of(&[[1.0, 0.0], [1.0, 0.0], [1.0, 0.0]]);
        let g = agglomerate_to_k(&[a, b], 1, Linkage::Centroid);
        let c = g.clusters[0].centroid();
        assert!((c[0] - 0.75).abs() < 1e-9, "weighted by counts: {c:?}");
    }

    #[test]
    fn empty_and_single_inputs() {
        let g = agglomerate_to_k(&[], 3, Linkage::Centroid);
        assert!(g.clusters.is_empty());
        assert!(g.assignment.is_empty());
        let one = vec![cf_of(&[[1.0, 2.0]])];
        let g = agglomerate_to_k(&one, 1, Linkage::AverageInter);
        assert_eq!(g.clusters.len(), 1);
        assert_eq!(g.assignment, vec![0]);
    }

    #[test]
    fn pipeline_precluster_then_global() {
        // The real BIRCH flow: phase-1 preclustering with a tight radius
        // fragments the blobs; phase-3 recovers them.
        let mut pts = Vec::new();
        for i in 0..60 {
            let j = (i % 30) as f32;
            // Two blobs at (0,0) and (3,3) with internal spread ~0.6.
            let (bx, by) = if i < 30 { (0.0, 0.0) } else { (3.0, 3.0) };
            pts.push(vec![bx + (j % 6.0) * 0.1, by + (j / 6.0).floor() * 0.1]);
        }
        let pre = crate::precluster(&pts, 0.1, None).unwrap();
        assert!(pre.clusters.len() > 2, "tight radius should fragment the blobs");
        let entries: Vec<ClusteringFeature> = pre.clusters.iter().map(|c| c.cf.clone()).collect();
        let g = agglomerate_to_k(&entries, 2, Linkage::MergedDiameter);
        assert_eq!(g.clusters.len(), 2);
        let mut counts: Vec<u64> = g.clusters.iter().map(|c| c.count()).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![30, 30], "each blob recovered whole");
    }
}
