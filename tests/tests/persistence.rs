//! Cross-crate persistence tests: a populated database must round-trip
//! through the binary format at dataset scale and keep answering queries
//! identically, including after mutation cycles. A golden-header test pins
//! the format so accidental changes fail loudly.

use walrus_core::{persist, ImageDatabase, WalrusParams};
use walrus_imagery::synth::dataset::{DatasetSpec, ImageClass, SyntheticDataset};
use walrus_wavelet::SlidingParams;

fn params() -> WalrusParams {
    WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 32, stride: 4 },
        ..WalrusParams::paper_defaults()
    }
}

fn dataset() -> SyntheticDataset {
    SyntheticDataset::generate(DatasetSpec {
        images_per_class: 4,
        width: 96,
        height: 64,
        seed: 0xD15C,
        classes: ImageClass::ALL.to_vec(),
    })
    .unwrap()
}

fn populated() -> (ImageDatabase, SyntheticDataset) {
    let data = dataset();
    let mut db = ImageDatabase::new(params()).unwrap();
    for img in &data.images {
        db.insert_image(&img.name, &img.image).unwrap();
    }
    (db, data)
}

#[test]
fn dataset_scale_round_trip_preserves_rankings() {
    let (db, data) = populated();
    let restored = persist::load(&persist::save(&db)).unwrap();
    assert_eq!(restored.len(), db.len());
    assert_eq!(restored.num_regions(), db.num_regions());
    // Every image as a query gives the identical ranking.
    for probe in data.images.iter().step_by(5) {
        let a = db.top_k(&probe.image, 5).unwrap();
        let b = restored.top_k(&probe.image, 5).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.image_id, y.image_id, "query {}", probe.name);
            assert!((x.similarity - y.similarity).abs() < 1e-12);
        }
    }
}

#[test]
fn save_is_deterministic() {
    let (db, _) = populated();
    assert_eq!(persist::save(&db), persist::save(&db));
    // And stable across a round trip.
    let restored = persist::load(&persist::save(&db)).unwrap();
    assert_eq!(persist::save(&restored), persist::save(&db));
}

#[test]
fn mutate_save_load_cycles() {
    let (mut db, data) = populated();
    for round in 0..3 {
        // Remove two images, round-trip, re-insert one.
        let live: Vec<usize> =
            db.image_slots().iter().flatten().map(|i| i.id).take(2).collect();
        for id in live {
            db.remove_image(id).unwrap();
        }
        db = persist::load(&persist::save(&db)).unwrap();
        let img = &data.images[round];
        db.insert_image(&format!("reinserted_{round}"), &img.image).unwrap();
        db = persist::load(&persist::save(&db)).unwrap();
    }
    assert_eq!(db.len(), 24 - 6 + 3);
    // The database still answers queries.
    let out = db.query(&data.images[10].image).unwrap();
    assert!(out.stats.query_regions > 0);
}

#[test]
fn format_header_is_pinned() {
    // The first 12 bytes are magic + version; changing either must be a
    // deliberate act (bump VERSION and extend `load`), so pin them here.
    let (db, _) = populated();
    let bytes = persist::save(&db);
    assert_eq!(&bytes[..8], b"WALRUSDB");
    assert_eq!(&bytes[8..12], &3u32.to_le_bytes());
    // The legacy writers keep producing old-format images for compat tests.
    let v2 = persist::save_v2(&db);
    assert_eq!(&v2[..8], b"WALRUSDB");
    assert_eq!(&v2[8..12], &2u32.to_le_bytes());
    let v1 = persist::save_v1(&db);
    assert_eq!(&v1[..8], b"WALRUSDB");
    assert_eq!(&v1[8..12], &1u32.to_le_bytes());
}

#[test]
fn v1_images_still_load_identically() {
    let (db, data) = populated();
    let restored = persist::load(&persist::save_v1(&db)).unwrap();
    assert_eq!(restored.len(), db.len());
    assert_eq!(restored.num_regions(), db.num_regions());
    let probe = &data.images[3];
    let a = db.top_k(&probe.image, 5).unwrap();
    let b = restored.top_k(&probe.image, 5).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.image_id, y.image_id);
    }
}

#[test]
fn fuzzy_corruption_never_panics() {
    let (db, _) = populated();
    let good = persist::save(&db);
    // Flip one byte at a spread of positions: the v2 checksums must reject
    // every flip — and in particular must never panic.
    let mut positions: Vec<usize> = (0..good.len()).step_by(97).collect();
    positions.push(good.len() - 1);
    for pos in positions {
        let mut bad = good.clone();
        bad[pos] ^= 0xA5;
        assert!(persist::load(&bad).is_err(), "flip at {pos} was not detected");
    }
}
