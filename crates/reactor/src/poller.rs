//! The readiness poller: a safe wrapper over one epoll instance.
//!
//! Level-triggered by design — a connection with unread bytes or unwritten
//! response keeps reporting ready, so the event loop never has to remember
//! "there might still be data" itself. Tokens are opaque `u64`s chosen by
//! the caller; the poller never interprets them.

use std::io;
use std::os::unix::io::RawFd;

use crate::sys::{
    sys_close, sys_epoll_create, sys_epoll_ctl, sys_epoll_wait, EpollEvent, EPOLLERR, EPOLLHUP,
    EPOLLIN, EPOLLOUT, EPOLLRDHUP, EPOLL_CTL_ADD, EPOLL_CTL_DEL, EPOLL_CTL_MOD,
};

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest { readable: true, writable: false };
    pub const WRITE: Interest = Interest { readable: false, writable: true };

    fn bits(self) -> u32 {
        let mut bits = EPOLLRDHUP;
        if self.readable {
            bits |= EPOLLIN;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// One readiness event, decoded from the kernel's bitmask.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token supplied at registration.
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// `EPOLLERR` / `EPOLLHUP` / `EPOLLRDHUP`: the peer is gone or the
    /// socket is in an error state. Data may still be buffered — callers
    /// should attempt a read before discarding the connection.
    pub closed: bool,
}

/// A safe epoll instance. Dropping it closes the epoll fd (registered fds
/// are *not* closed — their owners do that).
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { epfd: sys_epoll_create()? })
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys_epoll_ctl(
            self.epfd,
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent { events: interest.bits(), data: token }),
        )
    }

    /// Changes the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys_epoll_ctl(
            self.epfd,
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent { events: interest.bits(), data: token }),
        )
    }

    /// Removes `fd` from the interest set.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        sys_epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, None)
    }

    /// Waits up to `timeout_ms` (`-1` = forever) and appends decoded events
    /// to `out`. Returns the number of events delivered this call.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
        let n = sys_epoll_wait(self.epfd, &mut raw, timeout_ms)?;
        for ev in raw.iter().take(n) {
            // Copy out of the (possibly packed) struct before using.
            let events = ev.events;
            let data = ev.data;
            out.push(Event {
                token: data,
                readable: events & EPOLLIN != 0,
                writable: events & EPOLLOUT != 0,
                closed: events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys_close(self.epfd);
    }
}
