//! Quickstart: index a handful of images and run a similarity query.
//!
//! This is the five-minute tour of the WALRUS public API:
//!
//! 1. build an [`walrus_core::ImageDatabase`] with the paper's parameters,
//! 2. insert images (here: synthetic scenes; PPM files work the same way
//!    via `walrus_imagery::ppm::load_netpbm`),
//! 3. query with an image that shares an *object* with some of them — at a
//!    different position — and watch region-based matching find it.
//!
//! Run: `cargo run --release -p walrus-examples --bin quickstart`

use walrus_core::{ImageDatabase, WalrusParams};
use walrus_imagery::synth::scene::{Scene, SceneObject};
use walrus_imagery::synth::shapes::Shape;
use walrus_imagery::synth::texture::{Rgb, Texture};
use walrus_imagery::Image;
use walrus_wavelet::SlidingParams;

/// A green scene with a red flower at `(cx, cy)` scaled by `scale`.
fn flower_image(cx: f32, cy: f32, scale: f32) -> Image {
    Scene::new(Texture::Noise {
        a: Rgb(0.08, 0.42, 0.12),
        b: Rgb(0.14, 0.56, 0.18),
        scale: 6,
        seed: 7,
    })
    .with(SceneObject::new(
        Shape::Flower { petals: 6, core_radius: 0.5, petal_len: 0.95, petal_width: 0.25 },
        Texture::Solid(Rgb(0.85, 0.12, 0.18)),
        (cx, cy),
        scale,
    ))
    .render(128, 96)
    .expect("rendering a valid scene cannot fail")
}

/// A blue ocean scene — a negative.
fn ocean_image() -> Image {
    Scene::new(Texture::VerticalGradient {
        top: Rgb(0.35, 0.55, 0.85),
        bottom: Rgb(0.1, 0.25, 0.55),
    })
    .render(128, 96)
    .expect("rendering a valid scene cannot fail")
}

fn main() {
    // 1. Configure the engine. `paper_defaults()` is the configuration of
    //    the paper's §6.4 experiment; we shrink the windows for 128×96
    //    images (multi-size windows, 8–32 px, stride 4).
    let params = WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 32, stride: 4 },
        ..WalrusParams::paper_defaults()
    };
    let mut db = ImageDatabase::new(params).expect("paper defaults always validate");

    // 2. Index a few images. The flower appears at different positions and
    //    scales — the exact situation that defeats whole-image signatures.
    db.insert_image("flower_top_left", &flower_image(0.25, 0.3, 0.45)).unwrap();
    db.insert_image("flower_bottom_right", &flower_image(0.75, 0.7, 0.6)).unwrap();
    db.insert_image("flower_small", &flower_image(0.5, 0.5, 0.35)).unwrap();
    db.insert_image("ocean", &ocean_image()).unwrap();
    println!("indexed {} images, {} regions total\n", db.len(), db.num_regions());

    // 3. Query with the flower at yet another position.
    let query = flower_image(0.55, 0.45, 0.5);
    let results = db.top_k(&query, 4).expect("query against a live database succeeds");

    println!("query: flower at (0.55, 0.45), scale 0.5");
    println!("{:<22} {:>10} {:>14}", "image", "similarity", "matched pairs");
    for r in &results {
        println!("{:<22} {:>10.3} {:>14}", r.name, r.similarity, r.matched_pairs);
    }

    // Every flower image should beat the ocean.
    let flowers_lead = results
        .iter()
        .take_while(|r| r.name.starts_with("flower"))
        .count();
    println!(
        "\n{} flower image(s) ranked ahead of the first non-flower — region\n\
         matching is robust to the translation and scaling of the object.",
        flowers_lead
    );
}
