//! Fast multiresolution image querying (Jacobs, Finkelstein, Salesin;
//! SIGGRAPH 1995) — the `[JFS95]` baseline of the WALRUS paper's related
//! work.
//!
//! Per the original: each image is rescaled to a fixed power-of-two raster,
//! transformed with a standard 2-D Haar decomposition per channel, and the
//! signature keeps (a) the overall average color and (b) only the **signs**
//! of the `m` largest-magnitude detail coefficients (typically 40–60). The
//! image metric is the weighted "Lq" estimate
//!
//! ```text
//! score(Q, T) = Σ_c  w₀ |dc_Q − dc_T|  −  Σ_{i kept in both, same sign} w(bin(i))
//! ```
//!
//! where `bin(i)` groups coefficients by resolution level and the weights
//! come from a small lookup table the original fit to user data. Lower
//! scores are better. Like every single-signature scheme it tolerates only
//! small translations — the original authors report exactly that.

use crate::{BaselineError, Ranked, Result, Retriever};
use walrus_imagery::{ColorSpace, Image};
use walrus_wavelet::haar2d;
use walrus_wavelet::quantize::{quantize, QuantizedSignature};

/// FMIQ tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmiqParams {
    /// Side of the internal raster (power of two; original: 128).
    pub raster: usize,
    /// Number of largest-magnitude coefficients retained per channel
    /// (original: 40–60).
    pub retained: usize,
    /// Color space of the channels (original prefers YIQ).
    pub color_space: ColorSpace,
    /// Weight of the DC (average color) term.
    pub dc_weight: f32,
    /// Per-level weights for matched detail coefficients, coarse → fine.
    /// Levels past the end reuse the last entry (the original's tables
    /// flatten out at fine scales).
    pub level_weights: [f32; 6],
}

impl Default for FmiqParams {
    fn default() -> Self {
        Self {
            raster: 128,
            retained: 60,
            color_space: ColorSpace::Yiq,
            dc_weight: 5.0,
            // In the spirit of the original's fitted tables: coarse
            // coefficients matter more.
            level_weights: [2.6, 2.3, 1.9, 1.3, 1.0, 0.8],
        }
    }
}

#[derive(Debug, Clone)]
struct Signature {
    name: String,
    /// Overall average per channel.
    dc: Vec<f32>,
    /// Sign-quantized top coefficients per channel.
    quantized: Vec<QuantizedSignature>,
}

/// The FMIQ retriever.
#[derive(Debug, Clone)]
pub struct FmiqRetriever {
    params: FmiqParams,
    images: Vec<Signature>,
}

impl FmiqRetriever {
    /// Creates an empty index with the original paper's defaults.
    pub fn new() -> Self {
        Self::with_params(FmiqParams::default())
    }

    /// Creates an empty index with explicit parameters.
    pub fn with_params(params: FmiqParams) -> Self {
        Self { params, images: Vec::new() }
    }

    fn signature(&self, name: &str, image: &Image) -> Result<Signature> {
        let raster = self.params.raster;
        if !walrus_wavelet::is_pow2(raster) || raster < 8 {
            return Err(BaselineError::BadParams(format!(
                "raster {raster} must be a power of two >= 8"
            )));
        }
        let scaled = image.resize_bilinear(raster, raster)?.to_space(self.params.color_space)?;
        let mut dc = Vec::new();
        let mut quantized = Vec::new();
        for c in 0..scaled.channel_count() {
            let coeffs = haar2d::standard_forward(scaled.channel(c).as_slice(), raster)?;
            dc.push(coeffs[0]);
            quantized.push(quantize(&coeffs, self.params.retained));
        }
        Ok(Signature { name: name.to_string(), dc, quantized })
    }

    /// The resolution-level weight of the flat coefficient index `i` in a
    /// `raster × raster` standard transform: level 0 is the coarsest.
    fn weight_of_index(&self, i: u32) -> f32 {
        let raster = self.params.raster as u32;
        let (x, y) = (i % raster, i / raster);
        // In the standard transform layout, a coefficient at (x, y) belongs
        // to level max(ceil(log2(x+1)), ceil(log2(y+1))).
        let level_of = |v: u32| -> u32 {
            if v == 0 {
                0
            } else {
                32 - v.leading_zeros()
            }
        };
        let level = level_of(x).max(level_of(y)) as usize;
        let table = &self.params.level_weights;
        table[level.min(table.len() - 1)]
    }

    fn score(&self, q: &Signature, t: &Signature) -> f32 {
        let mut score = 0.0f32;
        for c in 0..q.dc.len() {
            score += self.params.dc_weight * (q.dc[c] - t.dc[c]).abs();
            // Subtract a weighted credit per same-signed shared coefficient.
            for list in [
                matched_indices(&q.quantized[c].positive, &t.quantized[c].positive),
                matched_indices(&q.quantized[c].negative, &t.quantized[c].negative),
            ] {
                for idx in list {
                    score -= self.weight_of_index(idx);
                }
            }
        }
        score
    }
}

impl Default for FmiqRetriever {
    fn default() -> Self {
        Self::new()
    }
}

fn matched_indices(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (mut i, mut j) = (0usize, 0usize);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

impl Retriever for FmiqRetriever {
    fn system_name(&self) -> &'static str {
        "FMIQ"
    }

    fn insert(&mut self, name: &str, image: &Image) -> Result<usize> {
        let sig = self.signature(name, image)?;
        self.images.push(sig);
        Ok(self.images.len() - 1)
    }

    fn len(&self) -> usize {
        self.images.len()
    }

    fn top_k(&self, query: &Image, k: usize) -> Result<Vec<Ranked>> {
        if self.images.is_empty() || k == 0 {
            return Ok(Vec::new());
        }
        let q = self.signature("query", query)?;
        let mut scored: Vec<(usize, f32)> =
            (0..self.images.len()).map(|i| (i, self.score(&q, &self.images[i]))).collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        Ok(scored
            .into_iter()
            .map(|(i, d)| Ranked { id: i, name: self.images[i].name.clone(), distance: d })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walrus_imagery::synth::scene::{Scene, SceneObject};
    use walrus_imagery::synth::shapes::Shape;
    use walrus_imagery::synth::texture::{Rgb, Texture};

    fn scene_img(obj_center: (f32, f32)) -> Image {
        Scene::new(Texture::Solid(Rgb(0.15, 0.45, 0.2)))
            .with(SceneObject::new(
                Shape::Ellipse { rx: 0.7, ry: 0.5 },
                Texture::Checker { a: Rgb(0.9, 0.1, 0.1), b: Rgb(0.95, 0.8, 0.2), cell: 6 },
                obj_center,
                0.5,
            ))
            .render(80, 80)
            .unwrap()
    }

    fn plain(color: Rgb) -> Image {
        Scene::new(Texture::Solid(color)).render(80, 80).unwrap()
    }

    #[test]
    fn self_query_wins() {
        let mut r = FmiqRetriever::new();
        let img = scene_img((0.5, 0.5));
        r.insert("self", &img).unwrap();
        r.insert("plain", &plain(Rgb(0.2, 0.2, 0.8))).unwrap();
        let top = r.top_k(&img, 2).unwrap();
        assert_eq!(top[0].name, "self");
        assert!(top[0].distance < top[1].distance);
    }

    #[test]
    fn self_score_is_most_negative_possible() {
        // Against itself, every retained coefficient matches: the score is
        // −Σ weights, the minimum for that signature.
        let r = FmiqRetriever::new();
        let img = scene_img((0.5, 0.5));
        let sig = r.signature("x", &img).unwrap();
        let self_score = r.score(&sig, &sig);
        assert!(self_score < 0.0);
        let other = r.signature("y", &plain(Rgb(0.9, 0.9, 0.9))).unwrap();
        assert!(r.score(&sig, &other) > self_score);
    }

    #[test]
    fn dc_term_separates_flat_colors() {
        let mut r = FmiqRetriever::new();
        r.insert("red", &plain(Rgb(0.9, 0.1, 0.1))).unwrap();
        r.insert("green", &plain(Rgb(0.1, 0.9, 0.1))).unwrap();
        let top = r.top_k(&plain(Rgb(0.85, 0.15, 0.12)), 2).unwrap();
        assert_eq!(top[0].name, "red");
    }

    #[test]
    fn translation_degrades_match() {
        let mut r = FmiqRetriever::new();
        r.insert("inplace", &scene_img((0.5, 0.5))).unwrap();
        let near = r.top_k(&scene_img((0.5, 0.5)), 1).unwrap()[0].distance;
        let moved = r.top_k(&scene_img((0.2, 0.2)), 1).unwrap()[0].distance;
        assert!(moved > near, "in-place {near} vs moved {moved}");
    }

    #[test]
    fn weights_prefer_coarse_levels() {
        let r = FmiqRetriever::new();
        // Coefficient (1, 0) is coarse; (100, 90) is fine.
        let coarse = r.weight_of_index(1);
        let fine = r.weight_of_index(90 * 128 + 100);
        assert!(coarse > fine);
    }

    #[test]
    fn empty_and_zero_k() {
        let r = FmiqRetriever::new();
        assert!(r.top_k(&plain(Rgb(0.5, 0.5, 0.5)), 5).unwrap().is_empty());
        let mut r = FmiqRetriever::new();
        r.insert("a", &plain(Rgb(0.5, 0.5, 0.5))).unwrap();
        assert!(r.top_k(&plain(Rgb(0.5, 0.5, 0.5)), 0).unwrap().is_empty());
    }

    #[test]
    fn bad_raster_rejected() {
        let mut r = FmiqRetriever::with_params(FmiqParams { raster: 96, ..Default::default() });
        assert!(r.insert("x", &plain(Rgb(0.5, 0.5, 0.5))).is_err());
    }
}
