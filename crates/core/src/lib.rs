//! # walrus-core
//!
//! The WALRUS similarity retrieval engine (Natsev, Rastogi, Shim; SIGMOD
//! 1999): region-based content-based image retrieval that is robust to
//! translation and scaling of objects *within* images.
//!
//! ## Pipeline (paper §5.1)
//!
//! 1. **Signatures for sliding windows** — `walrus-wavelet`'s
//!    dynamic-programming sweep produces an `s×s` Haar lowest-band signature
//!    per channel for every dyadic window (paper §5.2).
//! 2. **Clustering** — `walrus-birch` pre-clusters the window signatures
//!    with radius threshold `ε_c`; each cluster is a *region* whose
//!    signature is the cluster centroid (or the bounding box of member
//!    signatures) and whose spatial extent is a coarse pixel bitmap
//!    ([`bitmap::RegionBitmap`], paper §5.3).
//! 3. **Region matching** — all database regions are indexed in a
//!    `walrus-rstar` R\*-tree; a query probes it for regions within `ε`
//!    (paper §5.4).
//! 4. **Image matching** — matched region pairs are combined into a similar
//!    region pair set and scored by Definition 4.3 ([`matching`], paper
//!    §5.5): the fast quick-union metric, the `O(n²)` greedy one-to-one
//!    heuristic, or the exact (exponential; the problem is NP-hard,
//!    Theorem 5.1) optimum for small pair counts.
//!
//! ## Entry points
//!
//! * [`extract::extract_regions`] — image → regions.
//! * [`database::ImageDatabase`] — index images, run queries, get the
//!   selectivity statistics of the paper's Table 1.
//! * [`params::WalrusParams`] — every knob the paper exposes, with the
//!   paper's §6.4 values as [`params::WalrusParams::paper_defaults`].
//!
//! ## Example
//!
//! ```
//! use walrus_core::{ImageDatabase, WalrusParams};
//! use walrus_imagery::{ColorSpace, Image};
//! use walrus_wavelet::SlidingParams;
//!
//! // Small windows for a small example image.
//! let params = WalrusParams {
//!     sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 16, stride: 4 },
//!     ..WalrusParams::paper_defaults()
//! };
//! let mut db = ImageDatabase::new(params)?;
//!
//! // A red-left/green-right image and an all-blue one.
//! let two_tone = Image::from_fn(64, 64, ColorSpace::Rgb, |x, _, c| {
//!     match (x < 32, c) {
//!         (true, 0) | (false, 1) => 0.9,
//!         _ => 0.1,
//!     }
//! })?;
//! let blue = Image::from_fn(64, 64, ColorSpace::Rgb, |_, _, c| if c == 2 { 0.9 } else { 0.1 })?;
//! db.insert_image("two_tone", &two_tone)?;
//! db.insert_image("blue", &blue)?;
//!
//! // Querying with the two-tone image ranks it first with similarity ~1.
//! let top = db.top_k(&two_tone, 1)?;
//! assert_eq!(top[0].name, "two_tone");
//! assert!(top[0].similarity > 0.99);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod bitmap;
pub mod crc32;
pub mod database;
pub mod extract;
pub mod matching;
pub mod params;
pub mod persist;
pub mod recovery;
pub mod refine;
pub mod region;
pub mod scene_query;
pub mod sharded;
pub mod storage;
pub mod store;
pub mod viz;
pub mod wal;

pub use database::{
    ImageDatabase, ImageMeta, QueryOptions, QueryOutcome, QueryStats, RankedImage, ResultStatus,
};
pub use extract::{extract_regions, extract_regions_guarded, extract_regions_with_threads};
pub use params::{MatchingKind, SignatureKind, SimilarityKind, WalrusParams};
pub use recovery::{scrub_dir, DirScrub, DurableDatabase, RecoveryReport, SharedDurableDatabase};
pub use region::Region;
pub use sharded::{
    scrub_store, Manifest, Migration, MigrationState, RebalanceReport, ShardRecovery, ShardRepair,
    ShardScrub, ShardedStore,
};
pub use storage::{DiskIo, StorageIo};
pub use store::{RebalanceStatus, ShardCheckpoint, ShardHealth, Store};
pub use walrus_guard::{
    monotonic, Budgets, CancelToken, Clock, Deadline, Guard, Interrupt, MonotonicClock,
    RetryPolicy, SharedClock, Span, TestClock, TraceContext, TraceReport,
};
pub use walrus_wavelet::SlidingParams;

/// Errors produced by this crate.
///
/// `#[non_exhaustive]`: downstream matches must carry a wildcard arm so the
/// engine can grow new failure classes (as this revision does with the
/// lifecycle variants) without breaking callers.
#[derive(Debug)]
#[non_exhaustive]
pub enum WalrusError {
    /// Underlying image error.
    Image(walrus_imagery::ImageError),
    /// Underlying wavelet error.
    Wavelet(walrus_wavelet::WaveletError),
    /// Underlying clustering error.
    Birch(walrus_birch::BirchError),
    /// Underlying index error.
    Index(walrus_rstar::RStarError),
    /// Invalid engine parameters.
    BadParams(String),
    /// The referenced image id is not in the database.
    UnknownImage(usize),
    /// An underlying storage operation failed (the durable state on disk is
    /// unchanged or recoverable; retrying or re-opening is safe). `context`
    /// names the file/operation that failed when known.
    Io {
        /// What was being done to which path, e.g. `"append to …/walrus.wal"`;
        /// empty when the error was converted without context.
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// Stored bytes (snapshot or write-ahead log) failed validation: bad
    /// magic, checksum mismatch, torn structure, or an impossible value.
    Corrupt(String),
    /// The request's deadline passed before the operation completed. Query
    /// entry points downgrade this to a [`ResultStatus::Partial`] outcome
    /// where the paper's semantics allow a best-so-far answer.
    DeadlineExceeded,
    /// The request was cancelled through its [`CancelToken`].
    Cancelled,
    /// A per-request [`Budgets`] ceiling was exceeded.
    BudgetExceeded {
        /// Which budget tripped (e.g. `"decoded pixels"`).
        what: &'static str,
        /// The amount the request needed.
        used: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// The operation needed a shard that is quarantined (its storage
    /// failed or its log is damaged). Queries degrade around a quarantined
    /// shard; mutations are refused with this error until the shard is
    /// repaired (`walrus recover <db> --shard <i>`) and the store reopened.
    ShardUnavailable {
        /// Index of the quarantined shard.
        shard: usize,
    },
    /// The store is migrating to a new shard layout (`walrus rebalance`).
    /// Queries keep answering from the source layout; mutations and
    /// checkpoints are shed with this error until the migration commits.
    Rebalancing,
}

impl std::fmt::Display for WalrusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalrusError::Image(e) => write!(f, "image error: {e}"),
            WalrusError::Wavelet(e) => write!(f, "wavelet error: {e}"),
            WalrusError::Birch(e) => write!(f, "clustering error: {e}"),
            WalrusError::Index(e) => write!(f, "index error: {e}"),
            WalrusError::BadParams(msg) => write!(f, "bad parameters: {msg}"),
            WalrusError::UnknownImage(id) => write!(f, "unknown image id {id}"),
            WalrusError::Io { context, source } if context.is_empty() => {
                write!(f, "io error: {source}")
            }
            WalrusError::Io { context, source } => write!(f, "io error ({context}): {source}"),
            WalrusError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            WalrusError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            WalrusError::Cancelled => write!(f, "request cancelled"),
            WalrusError::BudgetExceeded { what, used, limit } => {
                write!(f, "resource budget exceeded: {what} {used} > limit {limit}")
            }
            WalrusError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} is quarantined; repair and reopen to restore writes")
            }
            WalrusError::Rebalancing => {
                write!(f, "store is rebalancing to a new shard layout; retry once it commits")
            }
        }
    }
}

impl std::error::Error for WalrusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalrusError::Image(e) => Some(e),
            WalrusError::Wavelet(e) => Some(e),
            WalrusError::Birch(e) => Some(e),
            WalrusError::Index(e) => Some(e),
            WalrusError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<walrus_imagery::ImageError> for WalrusError {
    fn from(e: walrus_imagery::ImageError) -> Self {
        WalrusError::Image(e)
    }
}

impl From<walrus_wavelet::WaveletError> for WalrusError {
    fn from(e: walrus_wavelet::WaveletError) -> Self {
        // Interrupts keep their identity across the crate boundary so every
        // `?` site in the pipeline surfaces Cancelled/DeadlineExceeded
        // directly instead of a wrapped wavelet error.
        match e {
            walrus_wavelet::WaveletError::Interrupted(int) => WalrusError::from(int),
            other => WalrusError::Wavelet(other),
        }
    }
}

impl From<walrus_birch::BirchError> for WalrusError {
    fn from(e: walrus_birch::BirchError) -> Self {
        match e {
            walrus_birch::BirchError::Interrupted(int) => WalrusError::from(int),
            other => WalrusError::Birch(other),
        }
    }
}

impl From<walrus_rstar::RStarError> for WalrusError {
    fn from(e: walrus_rstar::RStarError) -> Self {
        WalrusError::Index(e)
    }
}

impl From<std::io::Error> for WalrusError {
    fn from(e: std::io::Error) -> Self {
        WalrusError::Io { context: String::new(), source: e }
    }
}

impl From<Interrupt> for WalrusError {
    fn from(int: Interrupt) -> Self {
        match int {
            Interrupt::Cancelled => WalrusError::Cancelled,
            Interrupt::DeadlineExceeded => WalrusError::DeadlineExceeded,
        }
    }
}

impl WalrusError {
    /// Wraps an IO error with "what was being done to which path" context;
    /// use as `.map_err(WalrusError::io_context("read snapshot", &path))`.
    pub fn io_context(
        action: &str,
        path: &std::path::Path,
    ) -> impl FnOnce(std::io::Error) -> WalrusError {
        let context = format!("{action} {}", path.display());
        move |source| WalrusError::Io { context, source }
    }

    /// True for the two interrupt variants.
    pub fn is_interrupt(&self) -> bool {
        matches!(self, WalrusError::DeadlineExceeded | WalrusError::Cancelled)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WalrusError>;
