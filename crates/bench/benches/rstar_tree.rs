//! Criterion micro-benchmarks for the R\*-tree substrate: bulk insertion,
//! the ε-ball query WALRUS issues per query region, and kNN — on the exact
//! data shape WALRUS produces (12-dimensional signature points in [0,1]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use walrus_rstar::{RStarTree, Rect};

fn points(n: usize, dims: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dims).map(|_| rng.gen::<f32>()).collect()).collect()
}

fn build(pts: &[Vec<f32>]) -> RStarTree<usize> {
    let mut t = RStarTree::with_dims(pts[0].len()).unwrap();
    for (i, p) in pts.iter().enumerate() {
        t.insert(Rect::point(p).unwrap(), i).unwrap();
    }
    t
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("rstar_insert");
    for n in [1_000usize, 5_000] {
        let pts = points(n, 12, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| build(pts))
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let pts = points(5_000, 12, 7);
    let tree = build(&pts);
    let queries = points(100, 12, 13);
    let mut group = c.benchmark_group("rstar_query");
    group.bench_function("within_eps_0.085", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += tree.search_within(q, 0.085).unwrap().len();
            }
            total
        })
    });
    group.bench_function("nearest_10", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += tree.nearest_k(q, 10).unwrap().len();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_insert, bench_queries);
criterion_main!(benches);
