//! WALRUS engine parameters.
//!
//! Every knob the paper exposes, collected in one validated struct. The
//! defaults reproduce the configuration of the paper's retrieval-quality
//! experiment (§6.4): 64×64 sliding windows, 2×2 signatures per channel in
//! YCC space, cluster epsilon `ε_c = 0.05`, query epsilon `ε = 0.085`,
//! centroid region signatures, 16×16 region bitmaps, and the quick-union
//! image-matching metric.

use crate::{Result, WalrusError};
use walrus_guard::Budgets;
use walrus_imagery::ColorSpace;
use walrus_wavelet::SlidingParams;

/// How a region's signature summarizes its cluster (paper Definition 4.1
/// and §5.3 offer both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureKind {
    /// The cluster centroid: a point in signature space; two regions match
    /// when their centroids are within `ε` (L2).
    Centroid,
    /// The bounding box of all member signatures; two regions match when
    /// one box extended by `ε` overlaps the other.
    BoundingBox,
}

/// Which image-matching algorithm combines matched region pairs (§5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchingKind {
    /// Union the bitmaps of all matched regions — linear time, relaxes the
    /// one-to-one constraint of Definition 4.2. The paper's §6.4 choice.
    Quick,
    /// Greedy `O(n²)` heuristic for the one-to-one constrained similar
    /// region pair set.
    Greedy,
    /// Exact maximum (exponential; Theorem 5.1 shows the problem NP-hard).
    /// Falls back to greedy above `exact_pair_limit` pairs.
    Exact,
}

/// The denominator variant of the similarity measure (§4 discusses all
/// three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarityKind {
    /// Definition 4.3: `(area(∪Qᵢ) + area(∪Tᵢ)) / (area(Q) + area(T))`.
    Symmetric,
    /// Fraction of the *query* image covered by matching regions.
    QueryFraction,
    /// For differently sized images: denominator `2 · area(smaller image)`.
    MinImage,
}

/// Full engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalrusParams {
    /// Sliding-window sweep configuration (`s`, `ω_min`, `ω_max`, `t`).
    pub sliding: SlidingParams,
    /// Color space images are converted to before signature extraction.
    pub color_space: ColorSpace,
    /// BIRCH radius threshold `ε_c` for clustering window signatures.
    pub cluster_epsilon: f64,
    /// Region-matching distance `ε` (the querying epsilon of Table 1).
    pub query_epsilon: f32,
    /// Image-similarity acceptance threshold `τ` (Definition 4.3).
    pub tau: f64,
    /// Region signature representation.
    pub signature_kind: SignatureKind,
    /// Image-matching algorithm.
    pub matching: MatchingKind,
    /// Similarity denominator variant.
    pub similarity: SimilarityKind,
    /// Region bitmap grid (`grid × grid` bits per region; §6.4 uses 16).
    pub bitmap_grid: usize,
    /// Optional cap on clusters per image (CF-tree rebuild budget).
    pub max_regions_per_image: Option<usize>,
    /// Pair-count ceiling beyond which [`MatchingKind::Exact`] degrades to
    /// greedy (the exact algorithm is exponential).
    pub exact_pair_limit: usize,
    /// Worker threads for parallel extraction, batch ingest and query
    /// processing. `0` = auto (the `WALRUS_THREADS` environment variable,
    /// then available hardware parallelism); `1` forces fully serial
    /// execution. Results are byte-identical for every value. This is a
    /// runtime knob: snapshots do not persist it, and loaded databases
    /// come back with `0` (auto).
    pub threads: usize,
    /// Per-request resource ceilings (max decoded pixels, regions per
    /// image, index candidates, WAL record bytes), enforced at decode,
    /// extraction, probe, and append time. Like `threads` this is a runtime
    /// knob: snapshots do not persist it, and loaded databases come back
    /// with the defaults.
    pub budgets: Budgets,
    /// Binary-signature prefilter during index probes: `None` = auto (the
    /// `WALRUS_PREFILTER` environment variable, default on), `Some(x)` =
    /// forced. The prefilter is admissible — rankings are bit-identical
    /// either way — so this only trades popcount tests against exact
    /// geometry tests. Runtime knob: not persisted by snapshots.
    pub prefilter: Option<bool>,
}

impl WalrusParams {
    /// The configuration of the paper's §6.4 experiment.
    pub fn paper_defaults() -> Self {
        Self {
            sliding: SlidingParams { s: 2, omega_min: 64, omega_max: 64, stride: 8 },
            color_space: ColorSpace::Ycc,
            cluster_epsilon: 0.05,
            query_epsilon: 0.085,
            tau: 0.0,
            signature_kind: SignatureKind::Centroid,
            matching: MatchingKind::Quick,
            similarity: SimilarityKind::Symmetric,
            bitmap_grid: 16,
            max_regions_per_image: None,
            exact_pair_limit: 16,
            threads: 0,
            budgets: Budgets::default(),
            prefilter: None,
        }
    }

    /// A configuration suited to small synthetic images (≤128 px): 8–32 px
    /// windows with stride 4, otherwise paper-like.
    pub fn small_image_defaults() -> Self {
        Self {
            sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 32, stride: 4 },
            ..Self::paper_defaults()
        }
    }

    /// Validates the parameter combination.
    pub fn validate(&self) -> Result<()> {
        self.sliding.validate()?;
        if !self.cluster_epsilon.is_finite() || self.cluster_epsilon < 0.0 {
            return Err(WalrusError::BadParams(format!(
                "cluster_epsilon {} must be finite and >= 0",
                self.cluster_epsilon
            )));
        }
        if !self.query_epsilon.is_finite() || self.query_epsilon < 0.0 {
            return Err(WalrusError::BadParams(format!(
                "query_epsilon {} must be finite and >= 0",
                self.query_epsilon
            )));
        }
        if !self.tau.is_finite() || !(0.0..=1.0).contains(&self.tau) {
            return Err(WalrusError::BadParams(format!("tau {} must be in [0, 1]", self.tau)));
        }
        if self.bitmap_grid == 0 {
            return Err(WalrusError::BadParams("bitmap_grid must be >= 1".into()));
        }
        if let Some(m) = self.max_regions_per_image {
            if m < 2 {
                return Err(WalrusError::BadParams("max_regions_per_image must be >= 2".into()));
            }
        }
        if self.exact_pair_limit == 0 {
            return Err(WalrusError::BadParams("exact_pair_limit must be >= 1".into()));
        }
        let b = &self.budgets;
        if b.max_decoded_pixels == 0
            || b.max_regions_per_image == 0
            || b.max_index_candidates == 0
            || b.max_wal_record_bytes == 0
        {
            return Err(WalrusError::BadParams("budgets must all be >= 1".into()));
        }
        Ok(())
    }

    /// Signature dimensionality under this configuration (`s² × channels`;
    /// the paper's §6.4 example: 2×2 × 3 channels = 12-dimensional points).
    pub fn signature_dims(&self) -> usize {
        self.sliding.signature_dims(self.color_space.channel_count())
    }

    /// The effective prefilter setting: an explicit [`Self::prefilter`]
    /// wins; otherwise the `WALRUS_PREFILTER` environment variable (read
    /// once per process; `0`/`off`/`false`/`no` disable), defaulting to
    /// enabled.
    pub fn prefilter_enabled(&self) -> bool {
        self.prefilter.unwrap_or_else(env_prefilter_default)
    }
}

fn env_prefilter_default() -> bool {
    use std::sync::OnceLock;
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("WALRUS_PREFILTER") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !matches!(v.as_str(), "0" | "off" | "false" | "no")
        }
        Err(_) => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate_and_are_twelve_dimensional() {
        let p = WalrusParams::paper_defaults();
        p.validate().unwrap();
        assert_eq!(p.signature_dims(), 12);
        assert_eq!(p.color_space, ColorSpace::Ycc);
        assert_eq!(p.cluster_epsilon, 0.05);
        assert_eq!(p.query_epsilon, 0.085);
    }

    #[test]
    fn small_image_defaults_validate() {
        WalrusParams::small_image_defaults().validate().unwrap();
    }

    #[test]
    fn rejects_bad_epsilons() {
        let mut p = WalrusParams::paper_defaults();
        p.cluster_epsilon = -0.1;
        assert!(p.validate().is_err());
        p = WalrusParams::paper_defaults();
        p.query_epsilon = f32::NAN;
        assert!(p.validate().is_err());
        p = WalrusParams::paper_defaults();
        p.tau = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_degenerate_structure_params() {
        let mut p = WalrusParams::paper_defaults();
        p.bitmap_grid = 0;
        assert!(p.validate().is_err());
        p = WalrusParams::paper_defaults();
        p.max_regions_per_image = Some(1);
        assert!(p.validate().is_err());
        p = WalrusParams::paper_defaults();
        p.exact_pair_limit = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_zero_budgets() {
        let mut p = WalrusParams::paper_defaults();
        p.budgets.max_decoded_pixels = 0;
        assert!(p.validate().is_err());
        p = WalrusParams::paper_defaults();
        p.budgets.max_wal_record_bytes = 0;
        assert!(p.validate().is_err());
        p = WalrusParams::paper_defaults();
        p.budgets = Budgets::unlimited();
        p.validate().unwrap();
    }

    #[test]
    fn sliding_validation_propagates() {
        let mut p = WalrusParams::paper_defaults();
        p.sliding.s = 128; // > omega_min
        assert!(p.validate().is_err());
    }

    #[test]
    fn explicit_prefilter_overrides_environment() {
        let mut p = WalrusParams::paper_defaults();
        p.prefilter = Some(false);
        assert!(!p.prefilter_enabled());
        p.prefilter = Some(true);
        assert!(p.prefilter_enabled());
        p.prefilter = None;
        p.validate().unwrap();
    }

    #[test]
    fn gray_space_reduces_dims() {
        let mut p = WalrusParams::paper_defaults();
        p.color_space = ColorSpace::Gray;
        assert_eq!(p.signature_dims(), 4);
    }
}
