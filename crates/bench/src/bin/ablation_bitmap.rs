//! **Ablation A3** — region bitmap granularity (paper §5.3).
//!
//! The paper keeps one bit per k×k pixel block "thus decreasing the storage
//! overhead by a factor of k²" and accepts the resulting area
//! overestimation. This harness quantifies that trade: for several grid
//! resolutions it reports per-region storage and the relative error of the
//! coarse area estimate against a per-pixel-resolution reference bitmap.
//!
//! Run: `cargo run --release -p walrus-bench --bin ablation_bitmap`

use walrus_bench::report::{f3, Table};
use walrus_bench::scale;
use walrus_bench::workloads::{flower_query, retrieval_dataset, retrieval_params};
use walrus_core::extract_regions;

fn main() {
    let dataset = retrieval_dataset(scale());
    let query = flower_query();
    let mut images: Vec<&walrus_imagery::Image> = vec![&query];
    for img in dataset.images.iter().step_by(dataset.len() / 4) {
        images.push(&img.image);
    }
    println!(
        "Ablation A3: bitmap granularity vs area-estimate error\n\
         ({} images; reference = per-pixel-resolution bitmap)\n",
        images.len()
    );

    // Reference: bitmap at full pixel resolution (grid = image dimension).
    let reference_areas: Vec<Vec<usize>> = images
        .iter()
        .map(|img| {
            let mut p = retrieval_params();
            p.bitmap_grid = img.width().max(img.height());
            extract_regions(img, &p)
                .expect("extraction succeeds")
                .iter()
                .map(|r| r.area())
                .collect()
        })
        .collect();

    let mut table = Table::new(
        "Bitmap Granularity",
        &["grid", "bytes_per_region", "mean_rel_area_error", "max_rel_area_error"],
    );
    for grid in [4usize, 8, 16, 32] {
        let mut errors = Vec::new();
        let mut bytes = 0usize;
        for (img, reference) in images.iter().zip(&reference_areas) {
            let mut p = retrieval_params();
            p.bitmap_grid = grid;
            let regions = extract_regions(img, &p).expect("extraction succeeds");
            assert_eq!(
                regions.len(),
                reference.len(),
                "bitmap grid must not change clustering"
            );
            bytes = regions[0].bitmap.storage_bytes();
            for (r, &ref_area) in regions.iter().zip(reference) {
                let err = (r.area() as f64 - ref_area as f64).abs() / ref_area.max(1) as f64;
                errors.push(err);
            }
        }
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        let max = errors.iter().cloned().fold(0.0f64, f64::max);
        table.row(&[grid.to_string(), bytes.to_string(), f3(mean), f3(max)]);
    }
    table.print();
    println!(
        "Expectation: error falls monotonically as the grid refines, while\n\
         storage grows with grid² — the paper's 16x16 (32-byte) choice sits\n\
         where the error is already small."
    );
}
