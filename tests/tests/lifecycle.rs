//! Request lifecycle integration tests: deadlines, cooperative
//! cancellation, resource budgets, and transient-IO retry — the contract
//! that a WALRUS request can always be bounded in time and resources
//! without ever corrupting the store.
//!
//! The two headline properties (ISSUE acceptance):
//!
//! 1. a query with a millisecond deadline against a 1000-image database
//!    returns a `Partial` best-so-far outcome — it never hangs and never
//!    panics;
//! 2. a cancelled batch ingest leaves the durable store (snapshot + WAL)
//!    byte-for-byte identical, including under injected transient write
//!    faults that exercise the append retry/backoff path.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use walrus_core::storage::{Fault, FaultIo, FaultKind, RetryIo};
use walrus_core::{
    CancelToken, Deadline, DurableDatabase, Guard, ImageDatabase, Interrupt, ResultStatus,
    RetryPolicy, TestClock, WalrusError, WalrusParams,
};
use walrus_imagery::{ColorSpace, Image};
use walrus_wavelet::SlidingParams;

fn params() -> WalrusParams {
    WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 16, stride: 4 },
        ..WalrusParams::paper_defaults()
    }
}

/// A small image whose content varies with `seed` (so regions differ).
fn tile(seed: usize) -> Image {
    let hue = (seed % 17) as f32 / 17.0;
    let split = 8 + (seed % 16);
    Image::from_fn(32, 32, ColorSpace::Rgb, move |x, y, c| match c {
        0 => {
            if x < split {
                0.85
            } else {
                hue
            }
        }
        1 => {
            if y < split {
                hue
            } else {
                0.2
            }
        }
        _ => 0.1 + hue / 2.0,
    })
    .unwrap()
}

fn zero_delay_retry(max_attempts: u32) -> RetryPolicy {
    RetryPolicy { max_attempts, base_delay: Duration::ZERO, max_delay: Duration::ZERO }
}

/// The one real-clock smoke in this suite: everything else that involves
/// time runs on an injected [`TestClock`], but this acceptance headline
/// keeps exercising the actual monotonic clock end to end.
#[test]
fn millisecond_deadline_query_on_1k_image_db_returns_partial() {
    let mut db = ImageDatabase::new(params()).unwrap();
    let images: Vec<(String, Image)> =
        (0..1000).map(|i| (format!("img{i}"), tile(i))).collect();
    let items: Vec<(&str, &Image)> = images.iter().map(|(n, i)| (n.as_str(), i)).collect();
    db.insert_images_batch(&items).unwrap();
    assert_eq!(db.len(), 1000);

    // A large query image makes extraction alone exceed 1 ms, so the
    // deadline always fires somewhere in the pipeline.
    let query = Image::from_fn(128, 128, ColorSpace::Rgb, |x, y, c| {
        ((x / 9 + y / 7 + c) % 5) as f32 / 5.0
    })
    .unwrap();
    let started = Instant::now();
    let out = db
        .query_guarded(&query, &Guard::with_timeout(Duration::from_millis(1)))
        .expect("deadline must degrade, not error");
    let elapsed = started.elapsed();
    assert_eq!(out.status, ResultStatus::Partial);
    // "Within one chunk" of the deadline, with a generous CI margin — the
    // point is that it cannot run anywhere near full-query time or hang.
    assert!(elapsed < Duration::from_secs(10), "query ran {elapsed:?} past a 1 ms deadline");

    // The same query unguarded completes and reports Complete.
    let full = db.query_guarded(&query, &Guard::none()).unwrap();
    assert_eq!(full.status, ResultStatus::Complete);
}

#[test]
fn deadline_on_a_test_clock_expires_exactly_at_the_boundary() {
    let clock = TestClock::new();
    let deadline = Deadline::after_on(clock.clone(), Duration::from_millis(50));
    assert!(!deadline.expired());
    assert_eq!(deadline.remaining(), Duration::from_millis(50));
    clock.advance(Duration::from_millis(49));
    assert!(!deadline.expired());
    assert_eq!(deadline.remaining(), Duration::from_millis(1));
    clock.advance(Duration::from_millis(1));
    assert!(deadline.expired());
    assert_eq!(deadline.remaining(), Duration::ZERO);
}

#[test]
fn expired_test_clock_deadline_degrades_to_partial_without_sleeping() {
    // The deterministic twin of the 1k-image smoke above: the deadline is
    // expired by advancing an injected clock, so no database is large
    // enough, no margin is generous enough, and no wall time is spent.
    let mut db = ImageDatabase::new(params()).unwrap();
    let images: Vec<(String, Image)> = (0..40).map(|i| (format!("img{i}"), tile(i))).collect();
    let items: Vec<(&str, &Image)> = images.iter().map(|(n, i)| (n.as_str(), i)).collect();
    db.insert_images_batch(&items).unwrap();

    let clock = TestClock::new();
    let guard = Guard::with_timeout_on(clock.clone(), Duration::from_millis(5));
    clock.advance(Duration::from_millis(5));
    let out = db.query_guarded(&tile(3), &guard).unwrap();
    assert_eq!(out.status, ResultStatus::Partial);
    assert!(out.matches.is_empty(), "deadline expired before extraction: nothing was scored");

    // An unexpired deadline on the same (now frozen) clock completes in
    // full — the degradation above came from the deadline, not the plumbing.
    let guard = Guard::with_timeout_on(clock.clone(), Duration::from_millis(5));
    let full = db.query_guarded(&tile(3), &guard).unwrap();
    assert_eq!(full.status, ResultStatus::Complete);
    assert!(!full.matches.is_empty());
}

#[test]
fn retry_backoff_follows_the_exact_schedule_on_a_test_clock() {
    // With the sleeps taken on a TestClock the *exact* exponential backoff
    // schedule is observable — something the zero-delay policies used by
    // the fault tests deliberately erase.
    let clock = TestClock::new();
    let policy = RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(25),
    };
    let mut calls = 0;
    let out: Result<(), &str> = policy.run_on(
        clock.as_ref(),
        || {
            calls += 1;
            Err("transient")
        },
        |_| true,
    );
    assert_eq!(out, Err("transient"));
    assert_eq!(calls, 4);
    // Backoffs between the 4 attempts: 10 ms, 20 ms, 25 ms (clamped).
    assert_eq!(clock.elapsed(), Duration::from_millis(55));
}

#[test]
fn deadline_partial_is_a_correctly_ranked_prefix() {
    // Deterministic variant of the acceptance property, using the guard's
    // poll-count trip instead of wall clock: with threads = 1 the partial
    // result is exactly the first candidates in ascending-id order, ranked
    // exactly as the full result ranks them.
    let mut db = ImageDatabase::new(WalrusParams { threads: 1, ..params() }).unwrap();
    let images: Vec<(String, Image)> = (0..40).map(|i| (format!("img{i}"), tile(i))).collect();
    let items: Vec<(&str, &Image)> = images.iter().map(|(n, i)| (n.as_str(), i)).collect();
    db.insert_images_batch(&items).unwrap();

    let query = tile(3);
    let q_regions = walrus_core::extract_regions(&query, db.params()).unwrap();
    let full = db.query_regions(&q_regions, query.area(), 0.0).unwrap();
    let mut ids: Vec<usize> = full.matches.iter().map(|m| m.image_id).collect();
    ids.sort_unstable();
    ids.dedup();
    // At min_similarity 0 every candidate appears in the ranking, so the
    // match ids are exactly the candidate ids scored in ascending order.
    assert_eq!(ids.len(), full.stats.distinct_images);
    assert!(ids.len() >= 4, "need several candidates for a meaningful prefix");

    let scored_prefix = ids.len() / 2;
    let prefix_ids = &ids[..scored_prefix];
    // Serial guarded maps poll before each item: the probe stage consumes
    // one poll per query region, then one per scored candidate.
    let polls = q_regions.len() + scored_prefix;
    let guard = Guard::none().trip_after(polls, Interrupt::DeadlineExceeded);
    let part = db.query_regions_guarded(&q_regions, query.area(), 0.0, &guard).unwrap();
    assert_eq!(part.status, ResultStatus::Partial);
    assert_eq!(part.stats.total_matching_regions, full.stats.total_matching_regions);

    // The partial ranking is the full ranking restricted to the prefix ids
    // (filtering preserves rank order; both rank identically).
    let expected: Vec<_> =
        full.matches.iter().filter(|m| prefix_ids.contains(&m.image_id)).collect();
    assert_eq!(part.matches.len(), expected.len());
    for (got, want) in part.matches.iter().zip(&expected) {
        assert_eq!(got.image_id, want.image_id);
        assert_eq!(got.similarity.to_bits(), want.similarity.to_bits());
        assert_eq!(got.matched_pairs, want.matched_pairs);
    }
}

#[test]
fn cancelled_batch_ingest_leaves_snapshot_and_wal_bit_identical() {
    let io = Arc::new(FaultIo::new());
    let (mut store, _) = DurableDatabase::open_with(io.clone(), "db", params()).unwrap();
    store.insert_image("pre", &tile(0)).unwrap();
    store.checkpoint().unwrap();
    store.insert_image("pre2", &tile(1)).unwrap();
    let snapshot_before = io.file_bytes(Path::new("db/snapshot.walrus")).unwrap();
    let wal_before = io.file_bytes(Path::new("db/wal.log")).unwrap();
    let ops_before = io.op_count();

    let token = CancelToken::new();
    token.cancel();
    let a = tile(5);
    let b = tile(6);
    match store.insert_images_batch_guarded(&[("a", &a), ("b", &b)], &Guard::with_token(token)) {
        Err(WalrusError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }

    assert_eq!(
        io.file_bytes(Path::new("db/snapshot.walrus")).unwrap(),
        snapshot_before,
        "cancelled batch must not touch the snapshot"
    );
    assert_eq!(
        io.file_bytes(Path::new("db/wal.log")).unwrap(),
        wal_before,
        "cancelled batch must not append to the WAL"
    );
    assert_eq!(io.op_count(), ops_before, "cancelled batch must not perform any IO at all");
    assert_eq!(store.len(), 2);

    // The store is still fully usable afterwards.
    store.insert_image("post", &tile(7)).unwrap();
    assert_eq!(store.len(), 3);
}

#[test]
fn transient_append_fault_is_retried_with_tail_repair() {
    let io = Arc::new(FaultIo::new());
    let (mut store, _) = DurableDatabase::open_with(io.clone(), "db", params()).unwrap();
    store.set_retry_policy(zero_delay_retry(3));

    // Fail the very next IO op — the WAL append of the insert below. The
    // retry loop truncates the (unchanged) tail and re-appends.
    io.arm_fault(Fault { at_op: io.op_count(), kind: FaultKind::Transient });
    store.insert_image("a", &tile(2)).unwrap();
    assert!(!store.is_poisoned());
    assert_eq!(store.len(), 1);

    // And the committed record replays on reopen: retry composes with
    // recovery.
    drop(store);
    let (store, report) = DurableDatabase::open_with(io, "db", params()).unwrap();
    assert_eq!(report.records_replayed, 1);
    assert_eq!(store.len(), 1);
    assert_eq!(store.db().image(0).unwrap().name, "a");
}

#[test]
fn transient_append_faults_exhaust_cleanly_without_poisoning() {
    let io = Arc::new(FaultIo::new());
    let (mut store, _) = DurableDatabase::open_with(io.clone(), "db", params()).unwrap();
    store.set_retry_policy(zero_delay_retry(2));
    store.insert_image("a", &tile(2)).unwrap();
    let wal_before = io.file_bytes(Path::new("db/wal.log")).unwrap();

    // Per attempt the append path runs: append (fails), truncate, fsync —
    // so with 2 attempts the appends land at offsets +0 and +3.
    let base = io.op_count();
    io.arm_fault(Fault { at_op: base, kind: FaultKind::Transient });
    io.arm_fault(Fault { at_op: base + 3, kind: FaultKind::Transient });
    match store.insert_image("b", &tile(3)) {
        Err(WalrusError::Io { context, source }) => {
            assert!(context.contains("wal.log"), "context should name the file: {context}");
            assert!(walrus_core::storage::is_transient(&source));
        }
        other => panic!("expected Io error, got {other:?}"),
    }
    // The tail was repaired on every attempt: not poisoned, WAL unchanged,
    // and the store keeps accepting writes.
    assert!(!store.is_poisoned());
    assert_eq!(io.file_bytes(Path::new("db/wal.log")).unwrap(), wal_before);
    assert_eq!(store.len(), 1);
    store.insert_image("b", &tile(3)).unwrap();
    assert_eq!(store.len(), 2);
}

#[test]
fn retry_io_absorbs_transient_faults_during_recovery() {
    let io = Arc::new(FaultIo::new());
    let (mut store, _) = DurableDatabase::open_with(io.clone(), "db", params()).unwrap();
    store.insert_image("a", &tile(4)).unwrap();
    drop(store);

    // Reopen through RetryIo with a transient fault armed on the first op
    // (the directory create): recovery retries and succeeds.
    let retry = Arc::new(RetryIo::new(io.clone(), zero_delay_retry(3)));
    io.arm_fault(Fault { at_op: io.op_count(), kind: FaultKind::Transient });
    let (store, report) = DurableDatabase::open_with(retry, "db", params()).unwrap();
    assert_eq!(report.records_replayed, 1);
    assert_eq!(store.len(), 1);
}

#[test]
fn wal_record_budget_blocks_oversized_appends() {
    let io = Arc::new(FaultIo::new());
    let mut tiny = params();
    tiny.budgets.max_wal_record_bytes = 64; // far below any insert record
    let (mut store, _) = DurableDatabase::open_with(io.clone(), "db", tiny).unwrap();
    let wal_before = io.file_bytes(Path::new("db/wal.log"));
    match store.insert_image("a", &tile(2)) {
        Err(WalrusError::BudgetExceeded { what, used, limit }) => {
            assert_eq!(what, "wal record bytes");
            assert!(used > limit);
            assert_eq!(limit, 64);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    assert_eq!(io.file_bytes(Path::new("db/wal.log")), wal_before, "nothing may reach the log");
    assert!(store.is_empty());
}

#[test]
fn cancelled_shared_batch_ingest_is_all_or_nothing() {
    let mut base = ImageDatabase::new(params()).unwrap();
    base.insert_image("pre", &tile(0)).unwrap();
    let shared = walrus_core::database::SharedDatabase::new(base);
    let token = CancelToken::new();
    token.cancel();
    let a = tile(5);
    let b = tile(6);
    match shared.insert_images_batch_guarded(&[("a", &a), ("b", &b)], &Guard::with_token(token)) {
        Err(WalrusError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert_eq!(shared.len(), 1);
    // Concurrent queries still work after the aborted batch.
    let out = shared.query_guarded(&tile(0), &Guard::none()).unwrap();
    assert_eq!(out.status, ResultStatus::Complete);
}

#[test]
fn budget_breaches_surface_before_work_is_done() {
    let mut p = params();
    p.budgets.max_decoded_pixels = 16;
    let db = ImageDatabase::new(p).unwrap();
    match db.query_guarded(&tile(1), &Guard::none()) {
        Err(WalrusError::BudgetExceeded { what: "decoded pixels", used, limit: 16 }) => {
            assert_eq!(used, 32 * 32);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}
