//! Rasterizable shape primitives.
//!
//! Shapes are defined in a unit-local coordinate system: the shape occupies
//! (roughly) the square `[-1, 1]²` and is placed into an image by the scene
//! compositor, which supplies a centre and a scale in pixels. Coverage is
//! evaluated per pixel with a smooth edge (≈1px feather) so that downstream
//! wavelet signatures do not see artificial single-pixel staircases.

/// A shape primitive in local coordinates `[-1, 1]²`.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// Axis-aligned ellipse with the given x/y radii (≤ 1).
    Ellipse {
        /// Horizontal radius in local units.
        rx: f32,
        /// Vertical radius in local units.
        ry: f32,
    },
    /// Axis-aligned rectangle with the given half-extents (≤ 1).
    Rect {
        /// Horizontal half-extent.
        hx: f32,
        /// Vertical half-extent.
        hy: f32,
    },
    /// A stylized flower: `petals` elliptical lobes around a circular core.
    /// This is the workhorse of the retrieval-quality experiments, standing
    /// in for the red flowers of the paper's Figure 7/8 query.
    Flower {
        /// Number of petals (≥ 3 for a recognizable flower).
        petals: u32,
        /// Radius of the central disc, local units.
        core_radius: f32,
        /// Length of each petal measured from the centre.
        petal_len: f32,
        /// Half-width of each petal.
        petal_width: f32,
    },
    /// Isoceles triangle pointing up, useful for sailboats / rooftops.
    Triangle {
        /// Half-width of the base.
        half_base: f32,
        /// Height from base to apex.
        height: f32,
    },
}

impl Shape {
    /// Signed distance-ish coverage function: returns how far *inside* the
    /// shape the local point `(x, y)` is, in local units. Positive inside,
    /// negative outside; magnitude need only be meaningful near the boundary
    /// (it is fed through a smoothstep with a sub-pixel feather).
    pub fn inside_depth(&self, x: f32, y: f32) -> f32 {
        match *self {
            Shape::Ellipse { rx, ry } => {
                // Normalized radial coordinate: 1 on the boundary.
                let r = ((x / rx) * (x / rx) + (y / ry) * (y / ry)).sqrt();
                (1.0 - r) * rx.min(ry)
            }
            Shape::Rect { hx, hy } => {
                let dx = hx - x.abs();
                let dy = hy - y.abs();
                dx.min(dy)
            }
            Shape::Triangle { half_base, height } => {
                // Base on y = +height/2, apex at y = -height/2 (image y grows
                // downward, so the apex points "up" on screen).
                let top = -height / 2.0;
                let bottom = height / 2.0;
                if y > bottom {
                    return bottom - y;
                }
                // Width shrinks linearly from base to apex.
                let t = ((y - top) / height).clamp(0.0, 1.0);
                let w = half_base * t;
                (w - x.abs()).min(y - top)
            }
            Shape::Flower { petals, core_radius, petal_len, petal_width } => {
                let r = (x * x + y * y).sqrt();
                let core = core_radius - r;
                if petals == 0 {
                    return core;
                }
                let theta = y.atan2(x);
                // Angular distance to the nearest petal axis.
                let sector = std::f32::consts::TAU / petals as f32;
                let nearest = (theta / sector).round() * sector;
                let dtheta = theta - nearest;
                // Petal is an ellipse along its axis: radial extent
                // [core_radius * 0.5, petal_len], angular half-width scaled so
                // petals narrow towards the tip.
                let mid = (core_radius * 0.5 + petal_len) / 2.0;
                let half_span = (petal_len - core_radius * 0.5) / 2.0;
                let along = (r - mid) / half_span;
                let across = (r * dtheta) / petal_width;
                let petal = (1.0 - (along * along + across * across).sqrt()) * petal_width;
                core.max(petal)
            }
        }
    }

    /// Fractional pixel coverage at local point `(x, y)` given the feather
    /// width `feather` (in local units; the compositor passes ~1px).
    pub fn coverage(&self, x: f32, y: f32, feather: f32) -> f32 {
        let d = self.inside_depth(x, y);
        if feather <= 0.0 {
            return if d >= 0.0 { 1.0 } else { 0.0 };
        }
        smoothstep((d / feather + 1.0) / 2.0)
    }

    /// Loose local-space bounding half-extent (for rasterization culling).
    pub fn bounding_half_extent(&self) -> f32 {
        match *self {
            Shape::Ellipse { rx, ry } => rx.max(ry),
            Shape::Rect { hx, hy } => hx.max(hy),
            Shape::Triangle { half_base, height } => half_base.max(height / 2.0),
            Shape::Flower { core_radius, petal_len, .. } => petal_len.max(core_radius),
        }
    }
}

#[inline]
fn smoothstep(t: f32) -> f32 {
    let t = t.clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ellipse_centre_inside_far_outside() {
        let e = Shape::Ellipse { rx: 0.5, ry: 0.8 };
        assert!(e.inside_depth(0.0, 0.0) > 0.0);
        assert!(e.inside_depth(0.9, 0.0) < 0.0);
        assert!(e.inside_depth(0.0, 0.95) < 0.0);
        // Boundary is approximately zero.
        assert!(e.inside_depth(0.5, 0.0).abs() < 1e-5);
    }

    #[test]
    fn rect_depth_is_chebyshev_like() {
        let r = Shape::Rect { hx: 0.5, hy: 0.25 };
        assert!(r.inside_depth(0.0, 0.0) > 0.0);
        assert!((r.inside_depth(0.5, 0.0)).abs() < 1e-6);
        assert!(r.inside_depth(0.6, 0.0) < 0.0);
        assert!(r.inside_depth(0.0, 0.3) < 0.0);
    }

    #[test]
    fn triangle_apex_and_base() {
        let t = Shape::Triangle { half_base: 0.6, height: 1.0 };
        // Centre of mass region is inside.
        assert!(t.inside_depth(0.0, 0.2) > 0.0);
        // Above the apex is outside.
        assert!(t.inside_depth(0.0, -0.6) < 0.0);
        // Past the base is outside.
        assert!(t.inside_depth(0.0, 0.6) < 0.0);
        // Wide at the base, narrow at the apex.
        assert!(t.inside_depth(0.5, 0.45) > 0.0);
        assert!(t.inside_depth(0.5, -0.4) < 0.0);
    }

    #[test]
    fn flower_has_core_and_petals() {
        let f = Shape::Flower { petals: 6, core_radius: 0.25, petal_len: 0.9, petal_width: 0.18 };
        // Core.
        assert!(f.inside_depth(0.0, 0.0) > 0.0);
        // On a petal axis (theta = 0), midway out: inside a petal.
        assert!(f.inside_depth(0.5, 0.0) > 0.0);
        // Between petals at the same radius: outside.
        let half_sector = std::f32::consts::TAU / 12.0;
        let (x, y) = (0.5 * half_sector.cos(), 0.5 * half_sector.sin());
        assert!(f.inside_depth(x, y) < 0.0, "between petals should be background");
        // Beyond petal tips: outside.
        assert!(f.inside_depth(0.99, 0.0) < 0.0);
    }

    #[test]
    fn coverage_is_monotone_across_edge() {
        let e = Shape::Ellipse { rx: 0.5, ry: 0.5 };
        let feather = 0.05;
        let inside = e.coverage(0.0, 0.0, feather);
        let edge = e.coverage(0.5, 0.0, feather);
        let outside = e.coverage(0.7, 0.0, feather);
        assert_eq!(inside, 1.0);
        assert!(edge > 0.4 && edge < 0.6, "edge coverage ≈ 0.5, got {edge}");
        assert_eq!(outside, 0.0);
    }

    #[test]
    fn zero_feather_is_hard_edge() {
        let e = Shape::Rect { hx: 0.5, hy: 0.5 };
        assert_eq!(e.coverage(0.0, 0.0, 0.0), 1.0);
        assert_eq!(e.coverage(0.9, 0.0, 0.0), 0.0);
    }

    #[test]
    fn bounding_extent_contains_shape() {
        for shape in [
            Shape::Ellipse { rx: 0.4, ry: 0.9 },
            Shape::Rect { hx: 0.7, hy: 0.2 },
            Shape::Triangle { half_base: 0.8, height: 0.9 },
            Shape::Flower { petals: 5, core_radius: 0.2, petal_len: 0.85, petal_width: 0.15 },
        ] {
            let ext = shape.bounding_half_extent();
            // Sample a ring just outside the bounding extent: must be outside.
            for k in 0..16 {
                let a = k as f32 / 16.0 * std::f32::consts::TAU;
                let (x, y) = ((ext * 1.05) * a.cos(), (ext * 1.05) * a.sin());
                assert!(shape.inside_depth(x, y) <= 0.0, "{shape:?} leaked past bound at {k}");
            }
        }
    }
}
