//! Property-based tests for the wavelet substrate: the DP/naive
//! equivalence that the whole Figure 6 experiment rests on, plus transform
//! algebra over arbitrary inputs.

use proptest::prelude::*;
use walrus_wavelet::sliding::{compute_signatures, compute_signatures_naive};
use walrus_wavelet::{daubechies, haar1d, haar2d, SlidingParams};

/// A power-of-two in `[lo, hi]` (both powers of two).
fn pow2_in(lo: usize, hi: usize) -> impl Strategy<Value = usize> {
    let lo_log = lo.trailing_zeros();
    let hi_log = hi.trailing_zeros();
    (lo_log..=hi_log).prop_map(|e| 1usize << e)
}

fn plane(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(0.0f32..1.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn haar1d_round_trips(data in plane(64)) {
        let coeffs = haar1d::forward(&data).unwrap();
        let back = haar1d::inverse(&coeffs).unwrap();
        for (a, b) in data.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn haar1d_normalization_invertible(data in plane(32)) {
        let raw = haar1d::forward(&data).unwrap();
        let mut n = raw.clone();
        haar1d::normalize(&mut n);
        haar1d::denormalize(&mut n);
        for (a, b) in raw.iter().zip(&n) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn haar2d_nonstandard_round_trips(data in plane(16 * 16)) {
        let w = haar2d::nonstandard_forward(&data, 16).unwrap();
        let back = haar2d::nonstandard_inverse(&w, 16).unwrap();
        for (a, b) in data.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn haar2d_corner_is_average_pyramid_transform(data in plane(32 * 32), m in pow2_in(1, 16)) {
        // The identity the DP algorithm rests on, over random inputs.
        let full = haar2d::nonstandard_forward(&data, 32).unwrap();
        let corner = haar2d::corner(&full, 32, m);
        let avg = haar2d::average_down(&data, 32, m);
        let direct = haar2d::nonstandard_forward(&avg, m).unwrap();
        for (a, b) in corner.iter().zip(&direct) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn haar2d_dc_is_mean(data in plane(8 * 8)) {
        let w = haar2d::nonstandard_forward(&data, 8).unwrap();
        let mean: f32 = data.iter().sum::<f32>() / 64.0;
        prop_assert!((w[0] - mean).abs() < 1e-4);
    }

    #[test]
    fn daubechies_round_trips_and_preserves_energy(data in plane(64), levels in 1u32..5) {
        let t = daubechies::forward(&data, levels).unwrap();
        let back = daubechies::inverse(&t, levels).unwrap();
        for (a, b) in data.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-3);
        }
        let e1: f64 = data.iter().map(|&x| (x as f64).powi(2)).sum();
        let e2: f64 = t.iter().map(|&x| (x as f64).powi(2)).sum();
        if e1 > 1e-6 {
            prop_assert!((e1 - e2).abs() / e1 < 1e-3);
        }
    }

    #[test]
    fn dp_equals_naive_on_random_images(
        seed_plane in plane(24 * 24),
        s in pow2_in(1, 4),
        stride in pow2_in(1, 8),
    ) {
        let params = SlidingParams { s, omega_min: s.max(2) * 2, omega_max: 16, stride };
        prop_assume!(params.validate().is_ok());
        let dp = compute_signatures(&[&seed_plane], 24, 24, &params).unwrap();
        let naive = compute_signatures_naive(&[&seed_plane], 24, 24, &params).unwrap();
        prop_assert_eq!(dp.len(), naive.len());
        for (a, b) in dp.iter().zip(&naive) {
            prop_assert_eq!((a.x, a.y, a.omega), (b.x, b.y, b.omega));
            for (c, d) in a.coeffs.iter().zip(&b.coeffs) {
                prop_assert!((c - d).abs() < 1e-4, "coeff {} vs {}", c, d);
            }
        }
    }

    #[test]
    fn dp_equals_naive_multichannel_rect(
        p1 in plane(32 * 16),
        p2 in plane(32 * 16),
    ) {
        let params = SlidingParams { s: 2, omega_min: 4, omega_max: 16, stride: 4 };
        let dp = compute_signatures(&[&p1, &p2], 32, 16, &params).unwrap();
        let naive = compute_signatures_naive(&[&p1, &p2], 32, 16, &params).unwrap();
        prop_assert_eq!(dp.len(), naive.len());
        for (a, b) in dp.iter().zip(&naive) {
            for (c, d) in a.coeffs.iter().zip(&b.coeffs) {
                prop_assert!((c - d).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn signature_first_coeff_is_window_mean(data in plane(16 * 16)) {
        let params = SlidingParams { s: 2, omega_min: 8, omega_max: 8, stride: 8 };
        let sigs = compute_signatures(&[&data], 16, 16, &params).unwrap();
        for sig in &sigs {
            let mut mean = 0.0f32;
            for dy in 0..8 {
                for dx in 0..8 {
                    mean += data[(sig.y + dy) * 16 + sig.x + dx];
                }
            }
            mean /= 64.0;
            prop_assert!((sig.coeffs[0] - mean).abs() < 1e-4);
        }
    }

    #[test]
    fn quantize_keeps_k_largest(coeffs in proptest::collection::vec(-1.0f32..1.0, 2..64), k in 1usize..20) {
        let q = walrus_wavelet::quantize::quantize(&coeffs, k);
        prop_assert!(q.len() <= k.min(coeffs.len() - 1));
        // Every retained coefficient's magnitude is >= every dropped one's.
        let retained: Vec<u32> = q.positive.iter().chain(&q.negative).copied().collect();
        if !retained.is_empty() {
            let min_kept = retained
                .iter()
                .map(|&i| coeffs[i as usize].abs())
                .fold(f32::INFINITY, f32::min);
            for (i, c) in coeffs.iter().enumerate().skip(1) {
                if !retained.contains(&(i as u32)) {
                    prop_assert!(c.abs() <= min_kept + 1e-6);
                }
            }
        }
    }
}
