//! Whole-image operations: orientation changes, photometric perturbations,
//! dithering and blurring.
//!
//! Paper §1.1 lists the perturbations a retrieval system should tolerate:
//! "resolution changes, dithering effects, color shifts, orientation, size,
//! and location". This module implements those perturbations so the test
//! suite can *apply* them and measure whether retrieval survives —
//! `resize_*` (resolution/size) already lives on [`Image`]; here are the
//! rest.

use crate::color::ColorSpace;
use crate::image::{Channel, Image};
use crate::Result;

/// Mirrors the image left–right.
pub fn flip_horizontal(img: &Image) -> Image {
    map_geometry(img, img.width(), img.height(), |x, y, w, _| (w - 1 - x, y))
}

/// Mirrors the image top–bottom.
pub fn flip_vertical(img: &Image) -> Image {
    map_geometry(img, img.width(), img.height(), |x, y, _, h| (x, h - 1 - y))
}

/// Rotates 90° clockwise (width and height swap).
pub fn rotate90(img: &Image) -> Image {
    // Output pixel (x, y) comes from input (y, H_out−1−x) where the output
    // is h×w.
    map_geometry(img, img.height(), img.width(), |x, y, _, _| (y, img.height() - 1 - x))
}

/// Rotates 180°.
pub fn rotate180(img: &Image) -> Image {
    map_geometry(img, img.width(), img.height(), |x, y, w, h| (w - 1 - x, h - 1 - y))
}

/// Rotates 270° clockwise (= 90° counter-clockwise).
pub fn rotate270(img: &Image) -> Image {
    map_geometry(img, img.height(), img.width(), |x, y, _, _| (img.width() - 1 - y, x))
}

fn map_geometry(
    img: &Image,
    out_w: usize,
    out_h: usize,
    src: impl Fn(usize, usize, usize, usize) -> (usize, usize),
) -> Image {
    Image::from_fn(out_w, out_h, img.space(), |x, y, c| {
        let (sx, sy) = src(x, y, out_w, out_h);
        img.channel(c).get(sx, sy)
    })
    .expect("geometry transforms preserve valid dimensions")
}

/// Adds `(dr, dg, db)` to every pixel (converting through RGB when
/// necessary), clamped to `[0, 1]` — the global color-shift perturbation.
pub fn color_shift(img: &Image, dr: f32, dg: f32, db: f32) -> Result<Image> {
    let original_space = img.space();
    let mut rgb = img.to_space(ColorSpace::Rgb)?;
    for (c, delta) in [(0usize, dr), (1, dg), (2, db)] {
        rgb.channel_mut(c).map_in_place(|v| (v + delta).clamp(0.0, 1.0));
    }
    rgb.to_space(original_space)
}

/// Scales brightness by `gain` about zero and adjusts contrast by `contrast`
/// about mid-gray, per channel, clamped to `[0, 1]`.
pub fn brightness_contrast(img: &Image, gain: f32, contrast: f32) -> Result<Image> {
    let original_space = img.space();
    let mut rgb = img.to_space(ColorSpace::Rgb)?;
    for c in 0..rgb.channel_count() {
        rgb.channel_mut(c)
            .map_in_place(|v| (((v * gain) - 0.5) * contrast + 0.5).clamp(0.0, 1.0));
    }
    rgb.to_space(original_space)
}

/// Floyd–Steinberg error-diffusion dithering to `levels` values per RGB
/// channel (≥ 2) — the "dithering effects" perturbation. The output looks
/// grainy up close but preserves local averages, which is exactly why
/// wavelet lowest-band signatures shrug it off.
pub fn dither(img: &Image, levels: u32) -> Result<Image> {
    assert!(levels >= 2, "dithering needs at least 2 levels");
    let rgb = img.to_space(ColorSpace::Rgb)?;
    let (w, h) = (rgb.width(), rgb.height());
    let q = (levels - 1) as f32;
    let mut channels = Vec::with_capacity(3);
    for c in 0..3 {
        let mut data: Vec<f32> = rgb.channel(c).as_slice().to_vec();
        for y in 0..h {
            for x in 0..w {
                let old = data[y * w + x];
                let new = (old.clamp(0.0, 1.0) * q).round() / q;
                data[y * w + x] = new;
                let err = old - new;
                // Diffuse the error to unvisited neighbours (FS weights).
                let mut push = |dx: isize, dy: isize, weight: f32| {
                    let nx = x as isize + dx;
                    let ny = y as isize + dy;
                    if nx >= 0 && (nx as usize) < w && (ny as usize) < h {
                        data[ny as usize * w + nx as usize] += err * weight;
                    }
                };
                push(1, 0, 7.0 / 16.0);
                push(-1, 1, 3.0 / 16.0);
                push(0, 1, 5.0 / 16.0);
                push(1, 1, 1.0 / 16.0);
            }
        }
        channels.push(Channel::from_vec(w, h, data)?);
    }
    Image::from_channels(channels, ColorSpace::Rgb)?.to_space(img.space())
}

/// Box blur with the given radius (`radius = 0` is a copy). Separable two-
/// pass implementation, `O(pixels)` per pass via running sums.
pub fn box_blur(img: &Image, radius: usize) -> Image {
    if radius == 0 {
        return img.clone();
    }
    let (w, h) = (img.width(), img.height());
    let channels = img
        .channels()
        .iter()
        .map(|ch| {
            let horiz = blur_axis(ch.as_slice(), w, h, radius, true);
            let both = blur_axis(&horiz, w, h, radius, false);
            Channel::from_vec(w, h, both).expect("blur preserves dimensions")
        })
        .collect();
    Image::from_channels(channels, img.space()).expect("blur preserves channel count")
}

fn blur_axis(data: &[f32], w: usize, h: usize, radius: usize, horizontal: bool) -> Vec<f32> {
    let (outer, inner) = if horizontal { (h, w) } else { (w, h) };
    let idx = |o: usize, i: usize| if horizontal { o * w + i } else { i * w + o };
    let mut out = vec![0.0f32; w * h];
    for o in 0..outer {
        // Running-sum sliding window along the inner axis.
        let mut sum = 0.0f32;
        let mut count = 0usize;
        let upto = radius.min(inner - 1);
        for i in 0..=upto {
            sum += data[idx(o, i)];
            count += 1;
        }
        for i in 0..inner {
            out[idx(o, i)] = sum / count as f32;
            // Slide: add i + radius + 1, drop i − radius.
            let add = i + radius + 1;
            if add < inner {
                sum += data[idx(o, add)];
                count += 1;
            }
            if i >= radius {
                sum -= data[idx(o, i - radius)];
                count -= 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Image {
        Image::from_fn(6, 4, ColorSpace::Rgb, |x, y, c| {
            ((x * 5 + y * 7 + c * 3) % 11) as f32 / 11.0
        })
        .unwrap()
    }

    #[test]
    fn flips_are_involutions() {
        let img = demo();
        assert_eq!(flip_horizontal(&flip_horizontal(&img)), img);
        assert_eq!(flip_vertical(&flip_vertical(&img)), img);
    }

    #[test]
    fn flip_moves_the_right_pixel() {
        let img = demo();
        let fh = flip_horizontal(&img);
        assert_eq!(fh.pixel(0, 0), img.pixel(5, 0));
        let fv = flip_vertical(&img);
        assert_eq!(fv.pixel(0, 0), img.pixel(0, 3));
    }

    #[test]
    fn four_quarter_rotations_are_identity() {
        let img = demo();
        let once = rotate90(&img);
        assert_eq!(once.width(), img.height());
        assert_eq!(once.height(), img.width());
        let back = rotate90(&rotate90(&rotate90(&once)));
        assert_eq!(back, img);
    }

    #[test]
    fn rotate180_equals_double_flip() {
        let img = demo();
        assert_eq!(rotate180(&img), flip_horizontal(&flip_vertical(&img)));
    }

    #[test]
    fn rotate90_then_270_is_identity() {
        let img = demo();
        assert_eq!(rotate270(&rotate90(&img)), img);
    }

    #[test]
    fn rotate90_maps_a_known_pixel() {
        let img = demo();
        // (x, y) in the 90°-cw output comes from (y, H−1−x).
        let r = rotate90(&img);
        assert_eq!(r.pixel(0, 0), img.pixel(0, 3));
        assert_eq!(r.pixel(3, 0), img.pixel(0, 0));
    }

    #[test]
    fn color_shift_moves_means_and_clamps() {
        let img = demo();
        let shifted = color_shift(&img, 0.2, 0.0, -0.2).unwrap();
        assert!(shifted.channel(0).mean() > img.channel(0).mean());
        assert!(shifted.channel(2).mean() < img.channel(2).mean());
        let maxed = color_shift(&img, 5.0, 5.0, 5.0).unwrap();
        assert!(maxed.channels().iter().all(|c| c.as_slice().iter().all(|&v| v <= 1.0 + 1e-6)));
    }

    #[test]
    fn color_shift_round_trips_through_nonrgb_spaces() {
        let ycc = demo().to_space(ColorSpace::Ycc).unwrap();
        let shifted = color_shift(&ycc, 0.1, 0.0, 0.0).unwrap();
        assert_eq!(shifted.space(), ColorSpace::Ycc);
    }

    #[test]
    fn brightness_contrast_identity() {
        let img = demo();
        let same = brightness_contrast(&img, 1.0, 1.0).unwrap();
        for c in 0..3 {
            for (a, b) in same.channel(c).as_slice().iter().zip(img.channel(c).as_slice()) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn dither_quantizes_but_preserves_local_mean() {
        let img = Image::from_fn(32, 32, ColorSpace::Rgb, |_, _, _| 0.37).unwrap();
        let d = dither(&img, 2).unwrap();
        // Every output value is 0 or 1…
        for &v in d.channel(0).as_slice() {
            assert!(v.abs() < 1e-6 || (v - 1.0).abs() < 1e-6, "non-binary value {v}");
        }
        // …but the global mean stays close to 0.37.
        assert!((d.channel(0).mean() - 0.37).abs() < 0.03, "mean {}", d.channel(0).mean());
    }

    #[test]
    fn dither_with_many_levels_is_nearly_lossless() {
        let img = demo();
        let d = dither(&img, 256).unwrap();
        for c in 0..3 {
            for (a, b) in d.channel(c).as_slice().iter().zip(img.channel(c).as_slice()) {
                assert!((a - b).abs() < 0.01);
            }
        }
    }

    #[test]
    fn blur_preserves_constant_images_and_mean() {
        let flat = Image::from_fn(8, 8, ColorSpace::Rgb, |_, _, _| 0.6).unwrap();
        let b = box_blur(&flat, 2);
        for &v in b.channel(0).as_slice() {
            assert!((v - 0.6).abs() < 1e-5);
        }
        let img = demo();
        let b = box_blur(&img, 1);
        assert!((b.channel(0).mean() - img.channel(0).mean()).abs() < 0.03);
    }

    #[test]
    fn blur_reduces_variance() {
        let img = Image::from_fn(16, 16, ColorSpace::Rgb, |x, y, _| ((x + y) % 2) as f32).unwrap();
        let b = box_blur(&img, 2);
        assert!(b.channel(0).variance() < img.channel(0).variance() * 0.5);
    }

    #[test]
    fn blur_radius_zero_is_copy() {
        let img = demo();
        assert_eq!(box_blur(&img, 0), img);
    }
}
