//! Coefficient truncation and quantization.
//!
//! Jacobs, Finkelstein and Salesin's "fast multiresolution image querying"
//! (\[JFS95\], reimplemented in `walrus-baselines`) keeps only the 40–60
//! largest-magnitude wavelet coefficients per channel and "harshly
//! quantizes" them to their sign (+1 / −1), discarding magnitude. This
//! module provides those operations plus the sparse signature type the
//! baseline stores.

/// A truncated, sign-quantized wavelet signature: the flat indices of the
/// retained coefficients, split by sign. Indices within each list are sorted
/// ascending, enabling linear-time overlap counting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedSignature {
    /// Indices of retained positive coefficients.
    pub positive: Vec<u32>,
    /// Indices of retained negative coefficients.
    pub negative: Vec<u32>,
}

impl QuantizedSignature {
    /// Number of retained coefficients.
    pub fn len(&self) -> usize {
        self.positive.len() + self.negative.len()
    }

    /// True when no coefficients were retained.
    pub fn is_empty(&self) -> bool {
        self.positive.is_empty() && self.negative.is_empty()
    }

    /// Number of indices present *with the same sign* in both signatures —
    /// the matching term of the Jacobs bitmap metric.
    pub fn matches(&self, other: &QuantizedSignature) -> usize {
        sorted_overlap(&self.positive, &other.positive) + sorted_overlap(&self.negative, &other.negative)
    }
}

/// Indices of the `k` largest-magnitude entries of `coeffs`, excluding index
/// 0 (the DC/average term, which Jacobs et al. handle separately). Ties are
/// broken by lower index for determinism.
pub fn top_k_indices(coeffs: &[f32], k: usize) -> Vec<u32> {
    let mut idx: Vec<u32> = (1..coeffs.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        coeffs[b as usize]
            .abs()
            .partial_cmp(&coeffs[a as usize].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// Builds a sign-quantized signature from dense coefficients, retaining the
/// `k` largest-magnitude non-DC entries.
pub fn quantize(coeffs: &[f32], k: usize) -> QuantizedSignature {
    let kept = top_k_indices(coeffs, k);
    let mut positive = Vec::new();
    let mut negative = Vec::new();
    for i in kept {
        if coeffs[i as usize] >= 0.0 {
            positive.push(i);
        } else {
            negative.push(i);
        }
    }
    QuantizedSignature { positive, negative }
}

/// Zeroes all but the `k` largest-magnitude non-DC coefficients in place and
/// returns how many were kept — dense truncation for reconstruction-error
/// experiments.
pub fn truncate_in_place(coeffs: &mut [f32], k: usize) -> usize {
    let keep = top_k_indices(coeffs, k);
    let keep_set: std::collections::HashSet<u32> = keep.iter().copied().collect();
    for (i, c) in coeffs.iter_mut().enumerate().skip(1) {
        if !keep_set.contains(&(i as u32)) {
            *c = 0.0;
        }
    }
    keep.len()
}

fn sorted_overlap(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_selects_largest_magnitudes() {
        let coeffs = [9.0, 0.1, -5.0, 0.2, 3.0, -0.05];
        let top = top_k_indices(&coeffs, 2);
        assert_eq!(top, vec![2, 4]); // |−5| and |3|; DC at 0 excluded
    }

    #[test]
    fn top_k_excludes_dc_even_when_largest() {
        let coeffs = [100.0, 1.0, 2.0];
        assert_eq!(top_k_indices(&coeffs, 5), vec![1, 2]);
    }

    #[test]
    fn top_k_with_zero_k() {
        assert!(top_k_indices(&[1.0, 2.0, 3.0], 0).is_empty());
    }

    #[test]
    fn quantize_splits_by_sign() {
        let coeffs = [0.0, 4.0, -3.0, 2.0, -1.0];
        let q = quantize(&coeffs, 3);
        assert_eq!(q.positive, vec![1, 3]);
        assert_eq!(q.negative, vec![2]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn matches_counts_same_signed_overlap() {
        let a = QuantizedSignature { positive: vec![1, 3, 5], negative: vec![2, 8] };
        let b = QuantizedSignature { positive: vec![3, 5, 9], negative: vec![2, 4] };
        assert_eq!(a.matches(&b), 3); // {3, 5} positive + {2} negative
        // A coefficient retained with opposite signs does not match.
        let c = QuantizedSignature { positive: vec![2], negative: vec![3] };
        assert_eq!(a.matches(&c), 0);
    }

    #[test]
    fn matches_is_symmetric() {
        let a = quantize(&[0.0, 1.0, -2.0, 3.0, -4.0, 5.0], 3);
        let b = quantize(&[0.0, -1.0, -2.0, 3.0, 4.0, 0.1], 3);
        assert_eq!(a.matches(&b), b.matches(&a));
    }

    #[test]
    fn self_match_equals_len() {
        let q = quantize(&[0.0, 1.0, -2.0, 0.5, -0.1, 3.0], 4);
        assert_eq!(q.matches(&q), q.len());
    }

    #[test]
    fn truncate_zeroes_the_rest() {
        let mut coeffs = vec![7.0, 0.1, -5.0, 0.2, 3.0];
        let kept = truncate_in_place(&mut coeffs, 2);
        assert_eq!(kept, 2);
        assert_eq!(coeffs, vec![7.0, 0.0, -5.0, 0.0, 3.0]);
    }

    #[test]
    fn truncate_keeps_everything_when_k_large() {
        let mut coeffs = vec![1.0, 2.0, 3.0];
        let kept = truncate_in_place(&mut coeffs, 10);
        assert_eq!(kept, 2);
        assert_eq!(coeffs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_signature() {
        let q = quantize(&[5.0], 10);
        assert!(q.is_empty());
        assert_eq!(q.matches(&q), 0);
    }
}
