//! Bulk loading via Sort-Tile-Recursive (STR) packing.
//!
//! Building a WALRUS database means inserting every region of every image —
//! tens of thousands of one-at-a-time insertions with forced reinsertions
//! and splits. When the full entry set is known up front (initial index
//! construction, or reconstruction after a persistence load), STR packing
//! (Leutenegger, López, Edgington; ICDE 1997) builds a near-full tree in
//! `O(n log n)`:
//!
//! 1. sort entries by the centre of the first dimension and cut into slabs
//!    sized for `ceil(#leaves^(1/d))` tiles along that axis;
//! 2. within each slab, recurse on the next dimension, finally packing
//!    runs of `M` entries into leaves;
//! 3. pack the leaf rectangles the same way one level up, until a single
//!    root remains.
//!
//! The packed tree satisfies the same invariants as the incremental path
//! (including the `[m, M]` occupancy bounds — trailing short groups are
//! rebalanced) and answers identical queries, just with better packing.

use crate::rect::Rect;
use crate::tree::{RStarParams, RStarTree};
use crate::{RStarError, Result};

/// Builds a packed tree from `(rect, value)` entries. Equivalent to
/// inserting every entry into an empty [`RStarTree`], but `O(n log n)` with
/// full nodes.
pub fn bulk_load<V>(
    dims: usize,
    params: RStarParams,
    entries: Vec<(Rect, V)>,
) -> Result<RStarTree<V>> {
    params.validate()?;
    if dims == 0 {
        return Err(RStarError::BadParams("dimensionality must be >= 1".into()));
    }
    for (rect, _) in &entries {
        if rect.dims() != dims {
            return Err(RStarError::DimensionMismatch { expected: dims, got: rect.dims() });
        }
    }
    // Up to one full leaf: the incremental path is already optimal.
    if entries.len() <= params.max_entries {
        let mut tree = RStarTree::new(dims, params)?;
        for (rect, value) in entries {
            tree.insert(rect, value)?;
        }
        return Ok(tree);
    }
    let groups = str_partition(entries, dims, &params, 0);
    Ok(RStarTree::from_packed_leaves(dims, params, groups))
}

/// Recursively tiles `items` into groups of `[m, M]` entries, sorting by
/// successive dimensions (STR). Groups come back in tile order, which keeps
/// sibling leaves spatially adjacent.
fn str_partition<T>(
    mut items: Vec<(Rect, T)>,
    dims: usize,
    params: &RStarParams,
    dim: usize,
) -> Vec<Vec<(Rect, T)>> {
    let n = items.len();
    let leaves_needed = n.div_ceil(params.max_entries);
    sort_by_center(&mut items, dim.min(dims - 1));
    if leaves_needed <= 1 || dim + 1 >= dims {
        return chop(items, params);
    }
    // Tiles along this axis: the (d−dim)-th root of the leaf count.
    let remaining = (dims - dim) as f64;
    let slabs = (leaves_needed as f64).powf(1.0 / remaining).ceil() as usize;
    let slab_size = n.div_ceil(slabs).max(params.max_entries);
    let mut out = Vec::new();
    while !items.is_empty() {
        let take = slab_size.min(items.len());
        // If the remainder after this slab would be smaller than one legal
        // group, absorb it into this slab.
        let take = if items.len() - take < params.min_entries { items.len() } else { take };
        let rest = items.split_off(take);
        out.extend(str_partition(items, dims, params, dim + 1));
        items = rest;
    }
    out
}

fn sort_by_center<T>(items: &mut [(Rect, T)], dim: usize) {
    items.sort_by(|a, b| {
        let ca = (a.0.min()[dim] + a.0.max()[dim]) / 2.0;
        let cb = (b.0.min()[dim] + b.0.max()[dim]) / 2.0;
        ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
    });
}

/// Chops an ordered run into groups of at most `M`, rebalancing the tail so
/// every group has at least `m` entries (possible whenever `n ≥ m`, which
/// the caller guarantees).
fn chop<T>(mut items: Vec<(Rect, T)>, params: &RStarParams) -> Vec<Vec<(Rect, T)>> {
    let (m, cap) = (params.min_entries, params.max_entries);
    let mut out = Vec::with_capacity(items.len().div_ceil(cap));
    while !items.is_empty() {
        let mut take = cap.min(items.len());
        let rest_after = items.len() - take;
        if rest_after > 0 && rest_after < m {
            // Shrink this group so the remainder is legal.
            take = items.len() - m;
        }
        let rest = items.split_off(take);
        out.push(items);
        items = rest;
    }
    debug_assert!(out.iter().all(|g| g.len() >= m.min(out[0].len()) && g.len() <= cap));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize, dims: usize) -> Vec<(Rect, usize)> {
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f32 / 1000.0
        };
        (0..n)
            .map(|i| {
                let p: Vec<f32> = (0..dims).map(|_| next()).collect();
                (Rect::point(&p).unwrap(), i)
            })
            .collect()
    }

    #[test]
    fn small_input_falls_back_to_incremental() {
        let tree = bulk_load(2, RStarParams::default(), pts(10, 2)).unwrap();
        assert_eq!(tree.len(), 10);
        tree.check_invariants();
    }

    #[test]
    fn packed_tree_satisfies_invariants() {
        for n in [17usize, 64, 250, 1000, 4097] {
            let tree = bulk_load(2, RStarParams::default(), pts(n, 2)).unwrap();
            assert_eq!(tree.len(), n, "n = {n}");
            tree.check_invariants();
        }
    }

    #[test]
    fn packed_tree_answers_like_incremental() {
        let entries = pts(500, 3);
        let packed = bulk_load(3, RStarParams::default(), entries.clone()).unwrap();
        let mut incremental = RStarTree::with_dims(3).unwrap();
        for (r, v) in entries {
            incremental.insert(r, v).unwrap();
        }
        for probe in pts(20, 3) {
            let q = probe.0.min().to_vec();
            let mut a: Vec<usize> =
                packed.search_within(&q, 0.15).unwrap().into_iter().map(|(_, &v)| v).collect();
            let mut b: Vec<usize> =
                incremental.search_within(&q, 0.15).unwrap().into_iter().map(|(_, &v)| v).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn high_dimensional_bulk_load() {
        // WALRUS's 12-d signature points.
        let tree = bulk_load(12, RStarParams::default(), pts(2000, 12)).unwrap();
        assert_eq!(tree.len(), 2000);
        tree.check_invariants();
        let q = vec![0.5f32; 12];
        let nearest = tree.nearest_k(&q, 5).unwrap();
        assert_eq!(nearest.len(), 5);
    }

    #[test]
    fn packed_tree_is_shallower_or_equal() {
        let entries = pts(1000, 2);
        let packed = bulk_load(2, RStarParams::default(), entries.clone()).unwrap();
        let mut incremental = RStarTree::with_dims(2).unwrap();
        for (r, v) in entries {
            incremental.insert(r, v).unwrap();
        }
        assert!(packed.height() <= incremental.height());
    }

    #[test]
    fn mutations_after_bulk_load_work() {
        let mut tree = bulk_load(2, RStarParams::default(), pts(300, 2)).unwrap();
        let extra = Rect::point(&[0.123, 0.456]).unwrap();
        tree.insert(extra.clone(), 9999).unwrap();
        assert_eq!(tree.len(), 301);
        assert!(tree.remove(&extra, &9999).unwrap());
        assert_eq!(tree.len(), 300);
        tree.check_invariants();
    }

    #[test]
    fn box_entries_bulk_load() {
        let boxes: Vec<(Rect, usize)> = (0..200)
            .map(|i| {
                let base = (i % 20) as f32 / 20.0;
                (
                    Rect::new(vec![base, base * 0.5], vec![base + 0.1, base * 0.5 + 0.2]).unwrap(),
                    i,
                )
            })
            .collect();
        let tree = bulk_load(2, RStarParams::default(), boxes).unwrap();
        assert_eq!(tree.len(), 200);
        tree.check_invariants();
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let bad = vec![(Rect::point(&[0.0, 0.0]).unwrap(), 0usize)];
        assert!(bulk_load(3, RStarParams::default(), bad).is_err());
    }
}
