//! **Table 1** — query response time and selectivity as the querying
//! epsilon `ε` grows.
//!
//! Paper setup: the `misc` database indexed with `ε_c = 0.05`, YCC, 64×64
//! windows, 2×2 signatures, centroid region signatures, quick matching; the
//! flower query of Figure 8(a); `ε` swept 0.05 → 0.09. Claimed shape: all
//! three reported quantities grow monotonically with `ε` — response time
//! 5.2 s → 19.9 s, average regions retrieved per query region 15 → 891,
//! distinct images 65 → 1287.
//!
//! Here the database is the synthetic stand-in collection (see DESIGN.md);
//! absolute counts scale with database size but the monotone shape is the
//! reproduction target. Response time includes the full §6.5 pipeline:
//! color conversion, signature computation, clustering, index probes and
//! image matching.
//!
//! Run: `cargo run --release -p walrus-bench --bin table1`
//! (`WALRUS_BENCH_SCALE=full` indexes 300 images instead of 48.)

use walrus_bench::report::{f3, Table};
use walrus_bench::workloads::{build_walrus_db, flower_query, retrieval_dataset, retrieval_params};
use walrus_bench::{scale, time};

fn main() {
    let dataset = retrieval_dataset(scale());
    let params = retrieval_params();
    println!(
        "Table 1: query response time and selectivity vs querying epsilon\n\
         database: {} synthetic images ({} classes), cluster epsilon {}, {}\n",
        dataset.len(),
        6,
        params.cluster_epsilon,
        params.color_space.name(),
    );
    let (db, build_s) = time(|| build_walrus_db(&dataset, params));
    println!("index build: {:.2}s, {} regions indexed\n", build_s, db.num_regions());

    let query = flower_query();
    let mut table = Table::new(
        "Table1 Epsilon Sweep",
        &["epsilon", "response_s", "avg_regions_retrieved", "distinct_images"],
    );
    for eps in [0.05f32, 0.06, 0.07, 0.08, 0.09] {
        let (outcome, secs) =
            time(|| db.query_with_epsilon(&query, eps).expect("query parameters are valid"));
        table.row(&[
            format!("{eps:.2}"),
            f3(secs),
            f3(outcome.stats.avg_regions_per_query_region),
            outcome.stats.distinct_images.to_string(),
        ]);
    }
    table.print();
    println!(
        "Paper shape check: all three columns must grow monotonically with\n\
         epsilon (paper: 5.2->19.9 s, 15->891 regions, 65->1287 images on\n\
         a 10,000-image database)."
    );
}
