//! Property test for the query-result cache: over **any** interleaving of
//! ingest, checkpoint, rebalance, and query operations, the cached serving
//! path must never return a stale ranking — every `/query` answer must be
//! byte-identical to a fresh, uncached engine run against the store as it
//! is *right now*.
//!
//! The store under test is sharded (`WALRUS_SHARDS`, default 4; the CI
//! matrix also runs 1) and the engine honors `WALRUS_THREADS`, so the same
//! oracle holds across the serial/parallel × 1-shard/4-shard sweep.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use walrus_core::{
    CancelToken, Guard, QueryOptions, ShardedStore, SlidingParams, WalrusParams,
};
use walrus_imagery::ppm::write_ppm;
use walrus_imagery::{ColorSpace, Image};
use walrus_server::router::{handle, outcome_json};
use walrus_server::{AppState, Metrics, QueryCache, Request, TraceStore};

fn shard_count() -> usize {
    std::env::var("WALRUS_SHARDS").ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(4)
}

fn test_params() -> WalrusParams {
    WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 8, stride: 4 },
        ..WalrusParams::paper_defaults()
    }
}

fn ppm_bytes(seed: usize) -> Vec<u8> {
    let img = Image::from_fn(16, 16, ColorSpace::Rgb, |x, y, c| {
        ((x / 4 + 2 * (y / 4) + c + seed) % 5) as f32 / 4.0
    })
    .unwrap();
    let mut buf = Vec::new();
    write_ppm(&img, &mut buf).unwrap();
    buf
}

fn tmp_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("walrus_cache_props_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn state_over(dir: &std::path::Path) -> AppState {
    let (store, _) = ShardedStore::open(dir, test_params(), shard_count()).unwrap();
    AppState {
        store: Arc::new(store),
        metrics: Metrics::default(),
        clock: walrus_core::monotonic(),
        traces: TraceStore::default(),
        request_ids: AtomicU64::new(0),
        default_timeout: None,
        cancel: CancelToken::new(),
        stopping: Arc::new(AtomicBool::new(false)),
        pool_threads: 2,
        pool_queue_depth: 8,
        cache: QueryCache::new(QueryCache::DEFAULT_CAPACITY),
    }
}

fn request(method: &str, target: &str, body: Vec<u8>) -> Request {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (
            p.to_string(),
            q.split('&')
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (pair.to_string(), String::new()),
                })
                .collect(),
        ),
        None => (target.to_string(), Vec::new()),
    };
    Request {
        method: method.to_string(),
        path,
        query,
        headers: Vec::new(),
        body,
        keep_alive: true,
    }
}

#[derive(Debug, Clone)]
enum Op {
    Ingest(usize),
    Checkpoint,
    Rebalance(usize),
    Query { seed: usize, k: usize },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    // Queries get double weight so most interleavings actually probe the
    // cache between mutations.
    let op = (0usize..5, 0usize..6, 1usize..4).prop_map(|(which, seed, k)| match which {
        0 => Op::Ingest(seed),
        1 => Op::Checkpoint,
        2 => Op::Rebalance([1, 2, 4][seed % 3]),
        _ => Op::Query { seed, k },
    });
    proptest::collection::vec(op, 3..12)
}

/// Response body with its `request_id` suffix removed — the only
/// per-request part of a query answer.
fn strip_id(body: &[u8]) -> String {
    let text = String::from_utf8(body.to_vec()).unwrap();
    match text.rfind(",\"request_id\":") {
        Some(at) => format!("{}{}", &text[..at], "}"),
        None => text,
    }
}

proptest! {
    // Each case opens (and migrates) real durable stores, so keep the case
    // count modest; the op-sequence space is still covered across runs.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_interleaving_never_serves_a_stale_ranking(ops in ops()) {
        let dir = tmp_dir();
        let state = state_over(&dir);
        let mut queries = 0u64;
        for op in &ops {
            match op {
                Op::Ingest(seed) => {
                    let resp = handle(&state, &request("POST", "/ingest", ppm_bytes(*seed)));
                    prop_assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                }
                Op::Checkpoint => {
                    let resp =
                        handle(&state, &request("POST", "/admin/checkpoint", Vec::new()));
                    prop_assert_eq!(resp.status, 200);
                }
                Op::Rebalance(target) => {
                    let resp = handle(
                        &state,
                        &request("POST", &format!("/admin/rebalance?shards={target}"), Vec::new()),
                    );
                    // Migrating to the current shard count is refused; any
                    // other target must commit.
                    prop_assert!(
                        resp.status == 200 || resp.status == 400,
                        "rebalance to {} answered {}: {}",
                        target,
                        resp.status,
                        String::from_utf8_lossy(&resp.body)
                    );
                }
                Op::Query { seed, k } => {
                    queries += 1;
                    let body = ppm_bytes(*seed);
                    let resp =
                        handle(&state, &request("POST", &format!("/query?k={k}"), body.clone()));
                    prop_assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                    // Fresh uncached oracle: run the engine directly against
                    // the store as it is *now*. If the cache ever served a
                    // ranking recorded before an ingest or rebalance, this
                    // comparison catches it.
                    let query = walrus_imagery::ppm::parse_netpbm(&body).unwrap();
                    let opts = QueryOptions { k: Some(*k), ..QueryOptions::default() };
                    let fresh = state
                        .store
                        .query_with_options_guarded(&query, &opts, &Guard::none())
                        .unwrap();
                    prop_assert_eq!(
                        strip_id(&resp.body),
                        outcome_json(&fresh),
                        "cached answer diverged from a fresh engine run"
                    );
                }
            }
        }
        // Accounting: every query either hit or missed, nothing double
        // counted, and hits never exceed total queries.
        let hits = state.metrics.cache_hits_total.load(Ordering::Relaxed);
        let misses = state.metrics.cache_misses_total.load(Ordering::Relaxed);
        prop_assert_eq!(hits + misses, queries);
        std::fs::remove_dir_all(&dir).ok();
    }
}
