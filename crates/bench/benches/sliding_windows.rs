//! Criterion micro-benchmarks for the sliding-window signature algorithms —
//! the statistical counterpart of the Figure 6 harnesses (`fig6a`/`fig6b`
//! print the paper-shaped sweeps; these give rigorous per-configuration
//! numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use walrus_bench::workloads::timing_planes;
use walrus_imagery::ColorSpace;
use walrus_wavelet::sliding::{
    compute_signatures, compute_signatures_integral, compute_signatures_naive,
};
use walrus_wavelet::SlidingParams;

fn bench_window_sizes(c: &mut Criterion) {
    let (planes, side) = timing_planes(128, ColorSpace::Ycc);
    let refs: Vec<&[f32]> = planes.iter().map(|p| p.as_slice()).collect();
    let mut group = c.benchmark_group("sliding_signatures");
    for omega in [8usize, 32] {
        let params = SlidingParams { s: 2, omega_min: omega, omega_max: omega, stride: 1 };
        group.bench_with_input(BenchmarkId::new("dp", omega), &params, |b, p| {
            b.iter(|| compute_signatures(&refs, side, side, p).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("naive", omega), &params, |b, p| {
            b.iter(|| compute_signatures_naive(&refs, side, side, p).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("integral", omega), &params, |b, p| {
            b.iter(|| compute_signatures_integral(&refs, side, side, p).unwrap())
        });
    }
    group.finish();
}

fn bench_signature_sizes(c: &mut Criterion) {
    let (planes, side) = timing_planes(128, ColorSpace::Ycc);
    let refs: Vec<&[f32]> = planes.iter().map(|p| p.as_slice()).collect();
    let mut group = c.benchmark_group("signature_size");
    for s in [2usize, 8] {
        let params = SlidingParams { s, omega_min: 32, omega_max: 32, stride: 1 };
        group.bench_with_input(BenchmarkId::new("dp", s), &params, |b, p| {
            b.iter(|| compute_signatures(&refs, side, side, p).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_window_sizes, bench_signature_sizes);
criterion_main!(benches);
