//! Minimal vendored stand-in for `rand`, covering the API surface this
//! workspace uses: seedable generators (`StdRng`, `SmallRng`), `Rng::gen`,
//! `Rng::gen_range` over integer and float ranges, and `Rng::gen_bool`.
//!
//! The generator is splitmix64 — statistically solid for test-data
//! synthesis, deterministic for a given seed, and dependency-free. The
//! sequences differ from the real `rand` crate; nothing in this workspace
//! asserts on exact sequences, only on seeded determinism.
//!
//! Vendored so the workspace builds hermetically with no registry access.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;

    /// Seeds from the system clock — good enough where the real crate
    /// would pull OS entropy; tests always seed explicitly.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nanos)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

macro_rules! define_rng {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            state: u64,
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                splitmix64(&mut self.state)
            }
        }

        impl SeedableRng for $name {
            fn seed_from_u64(state: u64) -> Self {
                // Pre-mix once so seed 0 and seed 1 diverge immediately.
                let mut s = state ^ 0xA076_1D64_78BD_642F;
                splitmix64(&mut s);
                Self { state: s }
            }
        }
    };
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    define_rng!(
        /// The workspace's standard seeded generator.
        StdRng
    );
    define_rng!(
        /// Small-state generator; identical engine to [`StdRng`] here.
        SmallRng
    );
}

/// Types producible by [`Rng::gen`] (the real crate's `Standard`
/// distribution).
pub trait Random: Sized {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
///
/// `SampleRange` is implemented *blanketly* over this trait — one impl per
/// range shape, not per element type — so type inference can unify an
/// unsuffixed literal range with its use site, exactly as the real crate's
/// blanket impl does.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range: empty range");
                lo + <$t as Random>::random(rng) * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Random>::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_sequences_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i: i32 = rng.gen_range(-10..=10);
            assert!((-10..=10).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = f32::MAX;
        let mut hi = f32::MIN;
        for _ in 0..10_000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}
