//! End-to-end integration tests: the full WALRUS pipeline over synthetic
//! datasets, including the paper's headline claims as assertions.

use walrus_baselines::{Retriever, WbiisRetriever};
use walrus_core::{ImageDatabase, WalrusParams};
use walrus_imagery::synth::dataset::{
    flower_query_scenario, DatasetSpec, ImageClass, SyntheticDataset,
};
use walrus_wavelet::SlidingParams;

fn engine_params() -> WalrusParams {
    WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 32, stride: 4 },
        ..WalrusParams::paper_defaults()
    }
}

fn small_dataset() -> SyntheticDataset {
    SyntheticDataset::generate(DatasetSpec {
        images_per_class: 6,
        width: 128,
        height: 96,
        seed: 0x1234,
        classes: ImageClass::ALL.to_vec(),
    })
    .unwrap()
}

fn build_db(dataset: &SyntheticDataset) -> ImageDatabase {
    let mut db = ImageDatabase::new(engine_params()).unwrap();
    for img in &dataset.images {
        db.insert_image(&img.name, &img.image).unwrap();
    }
    db
}

#[test]
fn full_pipeline_indexes_and_queries() {
    let dataset = small_dataset();
    let db = build_db(&dataset);
    assert_eq!(db.len(), 36);
    assert!(db.num_regions() > 36, "every image should contribute multiple regions");

    let (query, _) = flower_query_scenario(0x77, 128, 96, 0).unwrap();
    let outcome = db.query(&query).unwrap();
    assert!(outcome.stats.query_regions > 0);
    assert!(!outcome.matches.is_empty(), "the flower query must match something");
    // Results are within similarity bounds and sorted.
    for m in &outcome.matches {
        assert!((0.0..=1.0).contains(&m.similarity));
    }
    for w in outcome.matches.windows(2) {
        assert!(w[0].similarity >= w[1].similarity);
    }
}

#[test]
fn translated_and_scaled_flower_variants_retrieved() {
    // The paper's core robustness claim, as a test: variants containing the
    // query's flower translated/scaled/color-shifted must rank above
    // distractor classes.
    let dataset = small_dataset();
    let (query, variants) = flower_query_scenario(0x99, 128, 96, 4).unwrap();
    let mut db = build_db(&dataset);
    let mut variant_ids = Vec::new();
    for (i, v) in variants.iter().enumerate() {
        variant_ids.push(db.insert_image(&format!("variant_{i}"), v).unwrap());
    }
    // Quick-union similarity saturates at 1.0 for strongly matching images
    // (a granularity limit the paper itself notes in §5.5), so we assert
    // membership and scores rather than exact rank order: every variant
    // must be retrieved with near-perfect similarity, ahead of every
    // non-flower distractor.
    let outcome = db.query(&query).unwrap();
    for (i, expected_id) in variant_ids.iter().enumerate() {
        let hit = outcome
            .matches
            .iter()
            .find(|m| m.image_id == *expected_id)
            .unwrap_or_else(|| panic!("variant_{i} was not retrieved at all"));
        assert!(hit.similarity > 0.9, "variant_{i} similarity {}", hit.similarity);
    }
    let worst_variant = variant_ids
        .iter()
        .map(|id| {
            outcome
                .matches
                .iter()
                .find(|m| m.image_id == *id)
                .map(|m| m.similarity)
                .unwrap_or(0.0)
        })
        .fold(f64::INFINITY, f64::min);
    let class_of = |name: &str| {
        dataset.images.iter().find(|i| i.name == name).map(|i| i.class)
    };
    for m in &outcome.matches {
        if let Some(class) = class_of(&m.name) {
            if class != ImageClass::Flowers {
                assert!(
                    m.similarity <= worst_variant + 1e-9,
                    "distractor {} ({:?}, sim {:.3}) outranked a variant (worst {:.3})",
                    m.name,
                    class,
                    m.similarity,
                    worst_variant
                );
            }
        }
    }
}

#[test]
fn walrus_beats_wbiis_on_region_queries() {
    // The Figure 7 vs Figure 8 comparison as an assertion.
    let dataset = SyntheticDataset::generate(DatasetSpec {
        images_per_class: 16,
        width: 128,
        height: 96,
        seed: 0x5EED_CAFE,
        classes: ImageClass::ALL.to_vec(),
    })
    .unwrap();
    let db = build_db(&dataset);
    let mut wbiis = WbiisRetriever::new();
    for img in &dataset.images {
        wbiis.insert(&img.name, &img.image).unwrap();
    }
    let (query, _) = flower_query_scenario(0xF10_3E5, 128, 96, 0).unwrap();
    let k = 14;

    let class_of = |name: &str| dataset.images.iter().find(|i| i.name == name).unwrap().class;
    let walrus_hits = db
        .top_k(&query, k)
        .unwrap()
        .iter()
        .filter(|r| class_of(&r.name) == ImageClass::Flowers)
        .count();
    let wbiis_hits = wbiis
        .top_k(&query, k)
        .unwrap()
        .iter()
        .filter(|r| class_of(&r.name) == ImageClass::Flowers)
        .count();
    assert!(
        walrus_hits > wbiis_hits,
        "WALRUS ({walrus_hits}/{k}) must beat WBIIS ({wbiis_hits}/{k})"
    );
    assert!(walrus_hits >= k - 2, "WALRUS should get nearly all flowers, got {walrus_hits}/{k}");
}

#[test]
fn removal_then_requery_is_consistent() {
    let dataset = small_dataset();
    let mut db = build_db(&dataset);
    let (query, _) = flower_query_scenario(0x55, 128, 96, 0).unwrap();
    let before = db.query(&query).unwrap();

    // Remove every flower image.
    let flower_ids: Vec<usize> = dataset
        .images
        .iter()
        .filter(|i| i.class == ImageClass::Flowers)
        .map(|i| i.id)
        .collect();
    for id in &flower_ids {
        db.remove_image(*id).unwrap();
    }
    let after = db.query(&query).unwrap();
    assert!(after.stats.total_matching_regions <= before.stats.total_matching_regions);
    for m in &after.matches {
        assert!(!flower_ids.contains(&m.image_id), "removed image resurfaced");
    }
}

#[test]
fn query_epsilon_monotonicity_end_to_end() {
    // Table 1's shape as a test: selectivity grows with epsilon.
    let dataset = small_dataset();
    let db = build_db(&dataset);
    let (query, _) = flower_query_scenario(0x42, 128, 96, 0).unwrap();
    let mut prev_regions = 0.0;
    let mut prev_images = 0usize;
    for eps in [0.05f32, 0.07, 0.09, 0.15] {
        let out = db.query_with_epsilon(&query, eps).unwrap();
        assert!(
            out.stats.avg_regions_per_query_region >= prev_regions,
            "regions retrieved must not shrink as epsilon grows"
        );
        assert!(out.stats.distinct_images >= prev_images);
        prev_regions = out.stats.avg_regions_per_query_region;
        prev_images = out.stats.distinct_images;
    }
}

#[test]
fn all_similarity_variants_rank_self_first() {
    use walrus_core::SimilarityKind;
    let dataset = small_dataset();
    let target = &dataset.images[3]; // a flower image
    for kind in [SimilarityKind::Symmetric, SimilarityKind::QueryFraction, SimilarityKind::MinImage] {
        let mut params = engine_params();
        params.similarity = kind;
        let mut db = ImageDatabase::new(params).unwrap();
        for img in &dataset.images {
            db.insert_image(&img.name, &img.image).unwrap();
        }
        // Quick matching can tie several strong matches at 1.0; the target
        // must be among the top-scoring group with near-perfect similarity.
        let top = db.top_k(&target.image, 10).unwrap();
        let self_hit = top
            .iter()
            .find(|r| r.name == target.name)
            .unwrap_or_else(|| panic!("{kind:?} failed to retrieve the target at all"));
        assert!(self_hit.similarity > 0.99, "{kind:?} self-similarity {}", self_hit.similarity);
        assert!(
            top[0].similarity - self_hit.similarity < 1e-9,
            "{kind:?}: something strictly outranked the identical image"
        );
    }
}

#[test]
fn gray_scale_pipeline_works() {
    use walrus_imagery::ColorSpace;
    let dataset = small_dataset();
    let mut params = engine_params();
    params.color_space = ColorSpace::Gray;
    assert_eq!(params.signature_dims(), 4);
    let mut db = ImageDatabase::new(params).unwrap();
    for img in dataset.images.iter().take(12) {
        db.insert_image(&img.name, &img.image).unwrap();
    }
    let (query, _) = flower_query_scenario(0x31, 128, 96, 0).unwrap();
    let out = db.query(&query).unwrap();
    assert!(out.stats.query_regions > 0);
}
