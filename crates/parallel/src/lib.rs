//! # walrus-parallel
//!
//! Dependency-free data-parallel primitives for the WALRUS engine, built on
//! [`std::thread::scope`]. The environment is offline (no rayon), so this
//! crate provides the minimal substrate the hot paths need:
//!
//! * [`parallel_map`] — map a function over a slice, chunked and dynamically
//!   scheduled, returning results **in input order** (deterministic
//!   regardless of thread count or scheduling).
//! * [`try_parallel_map`] — same, for fallible functions; the error
//!   reported is the one at the **lowest input index**, exactly what a
//!   serial loop would have returned first.
//! * [`parallel_for`] — scatter a vector of owned tasks (typically
//!   `(index, &mut [T])` slices carved out of an output buffer with
//!   `chunks_mut`) across workers; order of execution is unspecified, but
//!   each task owns disjoint data so results are deterministic.
//! * [`resolve_threads`] — the engine-wide thread-count policy: explicit
//!   request > `WALRUS_THREADS` env var > [`std::thread::available_parallelism`].
//! * [`WorkerPool`] (in [`pool`]) — the serving counterpart to the scoped
//!   primitives: a long-lived fixed-size pool with a bounded queue,
//!   load-shedding submission, panic isolation, and a drain-then-shutdown
//!   lifecycle for graceful server stop.
//!
//! ## Guarantees
//!
//! * **Serial fallback:** every primitive runs inline on the calling thread
//!   when `threads <= 1` or the input is trivially small — no threads are
//!   spawned, so single-threaded callers pay only a branch.
//! * **Determinism:** outputs are ordered by input index; floating-point
//!   work is partitioned, never re-associated, so parallel results are
//!   byte-identical to serial ones.
//! * **Panic propagation:** a panicking worker aborts the scope and the
//!   panic resurfaces on the calling thread (the `scope` join contract);
//!   no result is silently dropped.
//!
//! Scoped threads borrow from the caller's stack, so there is no `'static`
//! bound anywhere — the hot paths pass borrowed images, parameter structs
//! and index references straight through.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod pool;

pub use pool::WorkerPool;
pub use walrus_guard::{Budgets, CancelToken, Deadline, Guard, Interrupt};

/// Upper bound on worker threads; guards against absurd `WALRUS_THREADS`
/// values spawning thousands of OS threads.
pub const MAX_THREADS: usize = 256;

/// Resolves the effective worker count for a requested value, applying the
/// engine-wide policy:
///
/// 1. `requested > 0` wins (the `WalrusParams::threads` knob);
/// 2. otherwise the `WALRUS_THREADS` environment variable, if set to a
///    positive integer (read once per process);
/// 3. otherwise [`std::thread::available_parallelism`] (1 if unknown).
///
/// The result is clamped to `[1, MAX_THREADS]`.
pub fn resolve_threads(requested: usize) -> usize {
    static ENV: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    let resolved = if requested > 0 {
        requested
    } else if let Some(n) = *ENV.get_or_init(|| {
        std::env::var("WALRUS_THREADS").ok().and_then(|v| v.trim().parse().ok()).filter(|&n| n > 0)
    }) {
        n
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    };
    resolved.clamp(1, MAX_THREADS)
}

/// Chunk size that gives each worker several chunks to steal (dynamic load
/// balancing for irregular per-item cost) without paying scheduling
/// overhead per item.
fn chunk_size(len: usize, threads: usize) -> usize {
    // ~4 chunks per worker, at least 1 item per chunk.
    len.div_ceil(threads.saturating_mul(4).max(1)).max(1)
}

/// Maps `f` over `items` using up to `threads` workers, returning outputs
/// in input order. `f` receives `(index, &item)`. Runs inline when
/// `threads <= 1` or there is at most one item.
pub fn parallel_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = threads.clamp(1, MAX_THREADS).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = chunk_size(items.len(), threads);
    let n_chunks = items.len().div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::with_capacity(n_chunks));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let start = c * chunk;
                let end = (start + chunk).min(items.len());
                let out: Vec<U> =
                    items[start..end].iter().enumerate().map(|(i, t)| f(start + i, t)).collect();
                lock_ignore_poison(&done).push((start, out));
            });
        }
    });
    let mut parts = done.into_inner().unwrap_or_else(|e| e.into_inner());
    parts.sort_unstable_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(items.len());
    for (_, part) in parts {
        out.extend(part);
    }
    out
}

/// Fallible [`parallel_map`]: maps `f` over `items` and collects the `Ok`
/// values in input order, or returns the error with the **lowest input
/// index** — the same error a serial left-to-right loop would hit first
/// (later items may still have been evaluated; their results are dropped).
pub fn try_parallel_map<T, U, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    let results = parallel_map(threads, items, f);
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

/// Runs `f` once per task, distributing owned tasks across up to `threads`
/// workers. Tasks typically carry disjoint `&mut` slices carved from an
/// output buffer, which is what makes mutation from many workers safe.
/// Execution order is unspecified. Runs inline when `threads <= 1` or there
/// is at most one task.
pub fn parallel_for<T, F>(threads: usize, tasks: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let threads = threads.clamp(1, MAX_THREADS).min(tasks.len().max(1));
    if threads <= 1 || tasks.len() <= 1 {
        for t in tasks {
            f(t);
        }
        return;
    }
    let queue = Mutex::new(tasks);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                // Pop from the back: O(1) and contention-free enough for
                // the coarse task granularity the engine uses.
                let task = lock_ignore_poison(&queue).pop();
                match task {
                    Some(t) => f(t),
                    None => break,
                }
            });
        }
    });
}

/// A poisoned mutex here only means another worker panicked; that panic is
/// about to propagate through the scope join, so the data is never observed.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Result of a guarded partial map: everything that finished before the
/// guard tripped.
///
/// Invariant: `interrupted.is_some()` implies at least one item was **not**
/// computed, and `interrupted.is_none()` implies `completed` covers every
/// input item. `completed` is sorted by input index. Which items complete
/// under interruption depends on scheduling (workers stop within one chunk
/// of the trip), except in the serial path where `completed` is always the
/// exact prefix of items processed before the trip.
#[derive(Debug)]
pub struct PartialOutput<U> {
    /// `(input index, result)` pairs, sorted by index.
    pub completed: Vec<(usize, U)>,
    /// The interrupt that stopped the map early, if any.
    pub interrupted: Option<Interrupt>,
}

/// [`parallel_map`] that cooperates with a [`Guard`]: workers poll the guard
/// before starting each chunk (each item, in the serial path), so in-flight
/// work stops within one chunk of cancellation or deadline expiry. Results
/// computed before the trip are returned rather than discarded — that is
/// what lets the query path serve best-so-far partial answers.
pub fn parallel_map_partial<T, U, F>(
    threads: usize,
    guard: &Guard,
    items: &[T],
    f: F,
) -> PartialOutput<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    if !guard.is_armed() {
        let out = parallel_map(threads, items, f);
        return PartialOutput { completed: out.into_iter().enumerate().collect(), interrupted: None };
    }
    let threads = threads.clamp(1, MAX_THREADS).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        let mut completed = Vec::with_capacity(items.len());
        let mut interrupted = None;
        for (i, t) in items.iter().enumerate() {
            if let Err(int) = guard.poll() {
                interrupted = Some(int);
                break;
            }
            completed.push((i, f(i, t)));
        }
        return PartialOutput { completed, interrupted };
    }
    let chunk = chunk_size(items.len(), threads);
    let n_chunks = items.len().div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let stopped: Mutex<Option<Interrupt>> = Mutex::new(None);
    let done: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::with_capacity(n_chunks));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                // Claim first, then poll: an interrupt observed here leaves
                // the claimed chunk uncomputed, preserving the invariant
                // that `interrupted` implies missing work.
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                if let Err(int) = guard.poll() {
                    let mut slot = lock_ignore_poison(&stopped);
                    if slot.is_none() {
                        *slot = Some(int);
                    }
                    break;
                }
                let start = c * chunk;
                let end = (start + chunk).min(items.len());
                let out: Vec<U> =
                    items[start..end].iter().enumerate().map(|(i, t)| f(start + i, t)).collect();
                lock_ignore_poison(&done).push((start, out));
            });
        }
    });
    let interrupted = stopped.into_inner().unwrap_or_else(|e| e.into_inner());
    let mut parts = done.into_inner().unwrap_or_else(|e| e.into_inner());
    parts.sort_unstable_by_key(|(start, _)| *start);
    let mut completed = Vec::with_capacity(items.len());
    for (start, part) in parts {
        completed.extend(part.into_iter().enumerate().map(|(i, u)| (start + i, u)));
    }
    PartialOutput { completed, interrupted }
}

/// Guarded [`try_parallel_map`]: stops within one chunk of an interrupt and
/// surfaces it as `E` (via `From<Interrupt>`); otherwise identical semantics
/// to [`try_parallel_map`], including lowest-index error selection.
///
/// An interrupt takes precedence over item errors: under interruption the
/// set of evaluated items is scheduling-dependent, so reporting an item
/// error from it would be nondeterministic, while the interrupt itself is
/// the caller's own signal.
pub fn try_parallel_map_guarded<T, U, E, F>(
    threads: usize,
    guard: &Guard,
    items: &[T],
    f: F,
) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send + From<Interrupt>,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    let partial = parallel_map_partial(threads, guard, items, f);
    if let Some(int) = partial.interrupted {
        return Err(E::from(int));
    }
    let mut out = Vec::with_capacity(partial.completed.len());
    for (_, r) in partial.completed {
        out.push(r?);
    }
    Ok(out)
}

/// Guarded [`parallel_for`]: workers poll the guard before each task and
/// abandon the queue on an interrupt. On `Err`, an unspecified subset of
/// tasks has run — callers must treat the shared output as garbage (the
/// engine only uses this inside computations that are discarded wholesale
/// when interrupted).
pub fn parallel_for_guarded<T, F>(
    threads: usize,
    guard: &Guard,
    tasks: Vec<T>,
    f: F,
) -> Result<(), Interrupt>
where
    T: Send,
    F: Fn(T) + Sync,
{
    if !guard.is_armed() {
        parallel_for(threads, tasks, f);
        return Ok(());
    }
    let threads = threads.clamp(1, MAX_THREADS).min(tasks.len().max(1));
    if threads <= 1 || tasks.len() <= 1 {
        for t in tasks {
            guard.poll()?;
            f(t);
        }
        return Ok(());
    }
    let stopped: Mutex<Option<Interrupt>> = Mutex::new(None);
    let queue = Mutex::new(tasks);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let task = lock_ignore_poison(&queue).pop();
                let Some(t) = task else { break };
                if let Err(int) = guard.poll() {
                    let mut slot = lock_ignore_poison(&stopped);
                    if slot.is_none() {
                        *slot = Some(int);
                    }
                    break;
                }
                f(t);
            });
        }
    });
    match stopped.into_inner().unwrap_or_else(|e| e.into_inner()) {
        Some(int) => Err(int),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_explicit_request_wins() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(100_000), MAX_THREADS);
    }

    #[test]
    fn resolve_auto_is_at_least_one() {
        let n = resolve_threads(0);
        assert!((1..=MAX_THREADS).contains(&n));
    }

    #[test]
    fn map_preserves_order_any_thread_count() {
        let items: Vec<usize> = (0..1000).collect();
        let serial = parallel_map(1, &items, |i, &x| x * 2 + i);
        for threads in [2, 3, 8, 64] {
            let par = parallel_map(threads, &items, |i, &x| x * 2 + i);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_edge_sizes() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[7u32], |i, &x| (i, x)), vec![(0, 7)]);
        // More threads than items.
        let items = [1u32, 2, 3];
        assert_eq!(parallel_map(16, &items, |_, &x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let items: Vec<usize> = (0..500).collect();
        for threads in [1, 4] {
            let err = try_parallel_map(threads, &items, |_, &x| {
                if x == 3 || x == 400 {
                    Err(x)
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
            assert_eq!(err, 3, "threads = {threads}");
        }
    }

    #[test]
    fn try_map_ok_collects_in_order() {
        let items: Vec<usize> = (0..100).collect();
        let out: Result<Vec<usize>, ()> = try_parallel_map(8, &items, |_, &x| Ok(x * x));
        assert_eq!(out.unwrap(), items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn for_scatters_disjoint_slices() {
        let mut buf = vec![0u64; 1024];
        for threads in [1, 2, 8] {
            buf.fill(0);
            let tasks: Vec<(usize, &mut [u64])> = buf.chunks_mut(32).enumerate().collect();
            parallel_for(threads, tasks, |(chunk, slice)| {
                for (i, v) in slice.iter_mut().enumerate() {
                    *v = (chunk * 32 + i) as u64;
                }
            });
            for (i, &v) in buf.iter().enumerate() {
                assert_eq!(v, i as u64, "threads = {threads}");
            }
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(4, &items, |_, &x| {
                if x == 17 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(caught.is_err(), "panic must not be swallowed");
    }

    #[test]
    fn partial_map_unarmed_guard_is_complete() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map_partial(4, &Guard::none(), &items, |_, &x| x * 2);
        assert_eq!(out.interrupted, None);
        assert_eq!(out.completed.len(), 100);
        for (i, (idx, v)) in out.completed.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn partial_map_serial_trip_yields_exact_prefix() {
        let items: Vec<usize> = (0..50).collect();
        let guard = Guard::none().trip_after(7, Interrupt::DeadlineExceeded);
        let out = parallel_map_partial(1, &guard, &items, |_, &x| x);
        assert_eq!(out.interrupted, Some(Interrupt::DeadlineExceeded));
        assert_eq!(out.completed.len(), 7);
        for (i, (idx, v)) in out.completed.iter().enumerate() {
            assert_eq!((*idx, *v), (i, i));
        }
    }

    #[test]
    fn partial_map_parallel_cancel_stops_early() {
        let items: Vec<usize> = (0..10_000).collect();
        let token = CancelToken::new();
        token.cancel();
        let out = parallel_map_partial(4, &Guard::with_token(token), &items, |_, &x| x);
        assert_eq!(out.interrupted, Some(Interrupt::Cancelled));
        assert!(out.completed.is_empty(), "pre-cancelled guard must do no work");
    }

    #[test]
    fn partial_map_interrupted_implies_missing_work() {
        let items: Vec<usize> = (0..4096).collect();
        for threads in [1, 2, 8] {
            let guard = Guard::none().trip_after(3, Interrupt::Cancelled);
            let out = parallel_map_partial(threads, &guard, &items, |_, &x| x);
            assert_eq!(out.interrupted, Some(Interrupt::Cancelled), "threads = {threads}");
            assert!(out.completed.len() < items.len(), "threads = {threads}");
            let mut last = None;
            for (idx, v) in &out.completed {
                assert_eq!(idx, v);
                assert!(last < Some(*idx), "completed must be index-sorted");
                last = Some(*idx);
            }
        }
    }

    #[test]
    fn guarded_try_map_maps_interrupt_into_error() {
        #[derive(Debug, PartialEq)]
        enum E {
            Int(Interrupt),
            Item(usize),
        }
        impl From<Interrupt> for E {
            fn from(i: Interrupt) -> Self {
                E::Int(i)
            }
        }
        let items: Vec<usize> = (0..200).collect();
        // No interrupt: behaves like try_parallel_map (lowest-index error).
        let err = try_parallel_map_guarded(4, &Guard::none(), &items, |_, &x| {
            if x == 5 || x == 150 {
                Err(E::Item(x))
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert_eq!(err, E::Item(5));
        // Interrupt wins over item errors.
        let guard = Guard::none().trip_after(0, Interrupt::Cancelled);
        let err: E = try_parallel_map_guarded(4, &guard, &items, |_, &x| Ok::<usize, E>(x))
            .unwrap_err();
        assert_eq!(err, E::Int(Interrupt::Cancelled));
    }

    #[test]
    fn guarded_for_runs_all_without_interrupt() {
        let mut buf = vec![0u64; 256];
        let tasks: Vec<(usize, &mut [u64])> = buf.chunks_mut(16).enumerate().collect();
        let res = parallel_for_guarded(4, &Guard::none(), tasks, |(chunk, slice)| {
            for (i, v) in slice.iter_mut().enumerate() {
                *v = (chunk * 16 + i) as u64 + 1;
            }
        });
        assert!(res.is_ok());
        assert!(buf.iter().all(|&v| v > 0));
    }

    #[test]
    fn guarded_for_aborts_on_trip() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<usize> = (0..1000).collect();
        let guard = Guard::none().trip_after(5, Interrupt::DeadlineExceeded);
        let res = parallel_for_guarded(1, &guard, tasks, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(res, Err(Interrupt::DeadlineExceeded));
        assert_eq!(counter.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn map_runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..777).collect();
        let out = parallel_map(8, &items, |_, &x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 777);
        assert_eq!(counter.load(Ordering::Relaxed), 777);
    }
}
