//! Periodic Daubechies-D4 wavelet transforms.
//!
//! The WBIIS baseline (\[WWFW98\], reimplemented in `walrus-baselines`) uses
//! Daubechies wavelets instead of Haar: 4- and 5-level transforms of a
//! 128×128 rescaled image per color channel. This module provides the D4
//! analysis/synthesis filters with periodic boundary handling, in 1-D and a
//! separable multi-level 2-D (Mallat pyramid) form.
//!
//! D4 is orthonormal, so the transform preserves energy (Parseval), which
//! the tests verify — a useful contrast to the paper's non-orthonormal Haar
//! convention.

use crate::{is_pow2, Result, WaveletError};

/// D4 scaling (low-pass) filter coefficients.
pub const H: [f32; 4] = [
    0.482_962_9, // (1+√3)/(4√2)
    0.836_516_3, // (3+√3)/(4√2)
    0.224_143_87, // (3−√3)/(4√2)
    -0.129_409_52, // (1−√3)/(4√2)
];

/// D4 wavelet (high-pass) filter: quadrature mirror of [`H`].
pub const G: [f32; 4] = [H[3], -H[2], H[1], -H[0]];

/// One analysis level: `data[..n]` → `[approx (n/2) | detail (n/2)]`,
/// periodic wrap-around. Requires `n` even and ≥ 4… `n = 2` falls back to
/// the (identical for periodic signals of period 2) Haar step.
pub fn forward_level(data: &[f32]) -> Result<Vec<f32>> {
    let n = data.len();
    if n < 2 || n % 2 != 0 {
        return Err(WaveletError::NotPowerOfTwo { len: n });
    }
    let half = n / 2;
    let mut out = vec![0.0f32; n];
    for i in 0..half {
        let mut s = 0.0;
        let mut d = 0.0;
        for k in 0..4 {
            let x = data[(2 * i + k) % n];
            s += H[k] * x;
            d += G[k] * x;
        }
        out[i] = s;
        out[half + i] = d;
    }
    Ok(out)
}

/// One synthesis level, inverse of [`forward_level`].
pub fn inverse_level(coeffs: &[f32]) -> Result<Vec<f32>> {
    let n = coeffs.len();
    if n < 2 || n % 2 != 0 {
        return Err(WaveletError::NotPowerOfTwo { len: n });
    }
    let half = n / 2;
    let mut out = vec![0.0f32; n];
    for i in 0..half {
        let s = coeffs[i];
        let d = coeffs[half + i];
        for k in 0..4 {
            out[(2 * i + k) % n] += H[k] * s + G[k] * d;
        }
    }
    Ok(out)
}

/// Full multi-level 1-D transform: repeats [`forward_level`] on the
/// approximation part up to `levels` times, stopping early once the
/// approximation is shorter than one filter length.
pub fn forward(data: &[f32], levels: u32) -> Result<Vec<f32>> {
    let n = data.len();
    if !is_pow2(n) {
        return Err(WaveletError::NotPowerOfTwo { len: n });
    }
    let mut out = data.to_vec();
    let mut len = n;
    for _ in 0..levels {
        if len < 4 {
            break;
        }
        let t = forward_level(&out[..len])?;
        out[..len].copy_from_slice(&t);
        len /= 2;
    }
    Ok(out)
}

/// Inverse of [`forward`] with the same `levels`.
pub fn inverse(coeffs: &[f32], levels: u32) -> Result<Vec<f32>> {
    let n = coeffs.len();
    if !is_pow2(n) {
        return Err(WaveletError::NotPowerOfTwo { len: n });
    }
    // Determine the lengths the forward pass actually visited.
    let mut lens = Vec::new();
    let mut len = n;
    for _ in 0..levels {
        if len < 4 {
            break;
        }
        lens.push(len);
        len /= 2;
    }
    let mut out = coeffs.to_vec();
    for &l in lens.iter().rev() {
        let t = inverse_level(&out[..l])?;
        out[..l].copy_from_slice(&t);
    }
    Ok(out)
}

/// Separable multi-level 2-D transform of a square row-major matrix: at each
/// level, one analysis pass over every row then every column of the current
/// approximation block (Mallat pyramid). Coefficient layout matches the
/// non-standard Haar quadrant convention.
pub fn forward_2d(input: &[f32], side: usize, levels: u32) -> Result<Vec<f32>> {
    if !is_pow2(side) {
        return Err(WaveletError::NotPowerOfTwo { len: side });
    }
    if input.len() != side * side {
        return Err(WaveletError::NotSquare { width: side, height: input.len() / side.max(1) });
    }
    let mut out = input.to_vec();
    let mut cur = side;
    let mut col = vec![0.0f32; side];
    for _ in 0..levels {
        if cur < 4 {
            break;
        }
        for j in 0..cur {
            let row = forward_level(&out[j * side..j * side + cur])?;
            out[j * side..j * side + cur].copy_from_slice(&row);
        }
        for i in 0..cur {
            for j in 0..cur {
                col[j] = out[j * side + i];
            }
            let t = forward_level(&col[..cur])?;
            for j in 0..cur {
                out[j * side + i] = t[j];
            }
        }
        cur /= 2;
    }
    Ok(out)
}

/// Inverse of [`forward_2d`] with the same `levels`.
pub fn inverse_2d(coeffs: &[f32], side: usize, levels: u32) -> Result<Vec<f32>> {
    if !is_pow2(side) {
        return Err(WaveletError::NotPowerOfTwo { len: side });
    }
    if coeffs.len() != side * side {
        return Err(WaveletError::NotSquare { width: side, height: coeffs.len() / side.max(1) });
    }
    let mut sizes = Vec::new();
    let mut cur = side;
    for _ in 0..levels {
        if cur < 4 {
            break;
        }
        sizes.push(cur);
        cur /= 2;
    }
    let mut out = coeffs.to_vec();
    let mut col = vec![0.0f32; side];
    for &sz in sizes.iter().rev() {
        for i in 0..sz {
            for j in 0..sz {
                col[j] = out[j * side + i];
            }
            let t = inverse_level(&col[..sz])?;
            for j in 0..sz {
                out[j * side + i] = t[j];
            }
        }
        for j in 0..sz {
            let row = inverse_level(&out[j * side..j * side + sz])?;
            out[j * side..j * side + sz].copy_from_slice(&row);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 29 + 5) % 17) as f32 / 17.0 - 0.3).collect()
    }

    fn energy(v: &[f32]) -> f64 {
        v.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }

    #[test]
    fn filters_are_orthonormal() {
        let hh: f32 = H.iter().map(|h| h * h).sum();
        assert!((hh - 1.0).abs() < 1e-5, "‖h‖² = {hh}");
        let hg: f32 = H.iter().zip(&G).map(|(h, g)| h * g).sum();
        assert!(hg.abs() < 1e-5, "⟨h,g⟩ = {hg}");
        let h_sum: f32 = H.iter().sum();
        assert!((h_sum - 2.0f32.sqrt()).abs() < 1e-5, "Σh = √2 required");
        let g_sum: f32 = G.iter().sum();
        assert!(g_sum.abs() < 1e-5, "Σg = 0 required");
    }

    #[test]
    fn single_level_round_trip() {
        let data = demo(16);
        let t = forward_level(&data).unwrap();
        let back = inverse_level(&t).unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn multi_level_round_trip() {
        let data = demo(64);
        for levels in [1, 2, 3, 4, 10] {
            let t = forward(&data, levels).unwrap();
            let back = inverse(&t, levels).unwrap();
            for (a, b) in data.iter().zip(&back) {
                assert!((a - b).abs() < 1e-4, "levels {levels}");
            }
        }
    }

    #[test]
    fn transform_preserves_energy() {
        let data = demo(128);
        let t = forward(&data, 5).unwrap();
        let (e1, e2) = (energy(&data), energy(&t));
        assert!((e1 - e2).abs() / e1 < 1e-4, "{e1} vs {e2}");
    }

    #[test]
    fn constant_signal_concentrates_in_approximation() {
        let data = vec![1.0f32; 16];
        let t = forward_level(&data).unwrap();
        // Approximation = √2, details = 0.
        for i in 0..8 {
            assert!((t[i] - 2.0f32.sqrt()).abs() < 1e-5);
            assert!(t[8 + i].abs() < 1e-5);
        }
    }

    #[test]
    fn linear_ramp_has_small_details() {
        // D4 has two vanishing moments: linear signals annihilate in the
        // detail band (up to the periodic wrap at the boundary).
        let data: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let t = forward_level(&data).unwrap();
        for i in 1..15 {
            assert!(t[16 + i].abs() < 1e-3, "interior detail {i} = {}", t[16 + i]);
        }
    }

    #[test]
    fn two_d_round_trip() {
        let side = 16;
        let img: Vec<f32> = (0..side * side).map(|i| ((i * 13) % 31) as f32 / 31.0).collect();
        for levels in [1u32, 2, 3] {
            let t = forward_2d(&img, side, levels).unwrap();
            let back = inverse_2d(&t, side, levels).unwrap();
            for (a, b) in img.iter().zip(&back) {
                assert!((a - b).abs() < 1e-4, "levels {levels}");
            }
        }
    }

    #[test]
    fn two_d_energy_preserved() {
        let side = 32;
        let img: Vec<f32> = (0..side * side).map(|i| ((i * 7 + 3) % 13) as f32 / 13.0).collect();
        let t = forward_2d(&img, side, 4).unwrap();
        let (e1, e2) = (energy(&img), energy(&t));
        assert!((e1 - e2).abs() / e1 < 1e-4);
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(forward_level(&demo(5)).is_err());
        assert!(forward(&demo(6), 1).is_err());
        assert!(forward_2d(&demo(12), 3, 1).is_err());
    }

    #[test]
    fn levels_beyond_capacity_saturate() {
        // Requesting more levels than possible stops at length 4 rather than
        // erroring; the inverse uses the same rule so they stay in sync.
        let data = demo(8);
        let t = forward(&data, 99).unwrap();
        let back = inverse(&t, 99).unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
