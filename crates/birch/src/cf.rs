//! Clustering features: the constant-size cluster summaries of BIRCH.
//!
//! A clustering feature is the triple `CF = (N, LS, SS)` — point count,
//! per-dimension linear sum, and the scalar sum of squared norms. CFs are
//! additive (`CF(A ∪ B) = CF(A) + CF(B)`), which makes incremental
//! clustering O(1) per absorption, and they suffice to compute a cluster's
//! centroid, radius and diameter exactly.
//!
//! Accumulation is in `f64` even though input points are `f32`: SS grows as
//! the square of coordinate magnitudes times N, and the radius formula
//! subtracts two nearly-equal quantities, so `f32` accumulation loses the
//! radius entirely for large tight clusters.

/// A BIRCH clustering feature.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringFeature {
    n: u64,
    ls: Vec<f64>,
    ss: f64,
}

impl ClusteringFeature {
    /// An empty CF of the given dimensionality.
    pub fn empty(dims: usize) -> Self {
        Self { n: 0, ls: vec![0.0; dims], ss: 0.0 }
    }

    /// The CF of a single point.
    pub fn from_point(point: &[f32]) -> Self {
        let mut cf = Self::empty(point.len());
        cf.add_point(point);
        cf
    }

    /// Dimensionality of the summarized points.
    pub fn dims(&self) -> usize {
        self.ls.len()
    }

    /// Number of points summarized.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Adds one point.
    pub fn add_point(&mut self, point: &[f32]) {
        debug_assert_eq!(point.len(), self.ls.len());
        self.n += 1;
        for (s, &p) in self.ls.iter_mut().zip(point) {
            *s += p as f64;
        }
        self.ss += point.iter().map(|&p| (p as f64) * (p as f64)).sum::<f64>();
    }

    /// Merges another CF into this one (`CF(A ∪ B)`).
    pub fn merge(&mut self, other: &ClusteringFeature) {
        debug_assert_eq!(self.dims(), other.dims());
        self.n += other.n;
        for (s, o) in self.ls.iter_mut().zip(&other.ls) {
            *s += o;
        }
        self.ss += other.ss;
    }

    /// The merged CF of `self` and `other`, leaving both untouched.
    pub fn merged(&self, other: &ClusteringFeature) -> ClusteringFeature {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Cluster centroid `LS / N`; all-zero for an empty CF.
    pub fn centroid(&self) -> Vec<f64> {
        if self.n == 0 {
            return vec![0.0; self.dims()];
        }
        self.ls.iter().map(|s| s / self.n as f64).collect()
    }

    /// Cluster radius: RMS distance of member points from the centroid,
    /// `R = sqrt(SS/N − ‖LS/N‖²)` (BIRCH eq. for R). Zero for N ≤ 1.
    pub fn radius(&self) -> f64 {
        if self.n <= 1 {
            return 0.0;
        }
        let n = self.n as f64;
        let centroid_sq: f64 = self.ls.iter().map(|s| (s / n) * (s / n)).sum();
        (self.ss / n - centroid_sq).max(0.0).sqrt()
    }

    /// Cluster diameter: RMS pairwise distance between member points,
    /// `D = sqrt(2N·SS − 2‖LS‖²) / sqrt(N(N−1))`. Zero for N ≤ 1.
    pub fn diameter(&self) -> f64 {
        if self.n <= 1 {
            return 0.0;
        }
        let n = self.n as f64;
        let ls_sq: f64 = self.ls.iter().map(|s| s * s).sum();
        ((2.0 * n * self.ss - 2.0 * ls_sq) / (n * (n - 1.0))).max(0.0).sqrt()
    }

    /// D0 metric: Euclidean distance between centroids.
    pub fn centroid_distance(&self, other: &ClusteringFeature) -> f64 {
        let (a, b) = (self.centroid(), other.centroid());
        a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
    }

    /// D2 metric: average inter-cluster distance,
    /// `sqrt( Σ_{a∈A,b∈B} ‖a−b‖² / (N_A·N_B) )`.
    pub fn average_inter_distance(&self, other: &ClusteringFeature) -> f64 {
        if self.n == 0 || other.n == 0 {
            return 0.0;
        }
        let (n1, n2) = (self.n as f64, other.n as f64);
        let cross: f64 = self.ls.iter().zip(&other.ls).map(|(a, b)| a * b).sum();
        let num = n2 * self.ss + n1 * other.ss - 2.0 * cross;
        (num / (n1 * n2)).max(0.0).sqrt()
    }

    /// Distance from the centroid to a raw point.
    pub fn distance_to_point(&self, point: &[f32]) -> f64 {
        let c = self.centroid();
        c.iter().zip(point).map(|(x, &y)| (x - y as f64) * (x - y as f64)).sum::<f64>().sqrt()
    }

    /// Radius the cluster would have after absorbing `point`, without
    /// mutating — the CF-tree's threshold test.
    pub fn radius_with_point(&self, point: &[f32]) -> f64 {
        let mut t = self.clone();
        t.add_point(point);
        t.radius()
    }

    /// Centroid as `f32` (signatures downstream are `f32`).
    pub fn centroid_f32(&self) -> Vec<f32> {
        self.centroid().into_iter().map(|v| v as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_radius(points: &[Vec<f32>]) -> f64 {
        let n = points.len() as f64;
        let dims = points[0].len();
        let mut centroid = vec![0.0f64; dims];
        for p in points {
            for (c, &v) in centroid.iter_mut().zip(p) {
                *c += v as f64 / n;
            }
        }
        let ms: f64 = points
            .iter()
            .map(|p| {
                p.iter()
                    .zip(&centroid)
                    .map(|(&v, c)| (v as f64 - c) * (v as f64 - c))
                    .sum::<f64>()
            })
            .sum::<f64>()
            / n;
        ms.sqrt()
    }

    fn brute_diameter(points: &[Vec<f32>]) -> f64 {
        let n = points.len();
        if n <= 1 {
            return 0.0;
        }
        let mut sum = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    sum += points[i]
                        .iter()
                        .zip(&points[j])
                        .map(|(&a, &b)| (a as f64 - b as f64) * (a as f64 - b as f64))
                        .sum::<f64>();
                }
            }
        }
        (sum / (n * (n - 1)) as f64).sqrt()
    }

    fn sample_points() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 2.0, 0.0],
            vec![1.5, 1.0, -1.0],
            vec![0.5, 2.5, 0.5],
            vec![2.0, 2.0, 0.0],
            vec![1.0, 1.5, 0.25],
        ]
    }

    fn cf_of(points: &[Vec<f32>]) -> ClusteringFeature {
        let mut cf = ClusteringFeature::empty(points[0].len());
        for p in points {
            cf.add_point(p);
        }
        cf
    }

    #[test]
    fn centroid_matches_brute_force() {
        let pts = sample_points();
        let cf = cf_of(&pts);
        assert_eq!(cf.count(), 5);
        let c = cf.centroid();
        assert!((c[0] - 1.2).abs() < 1e-9);
        assert!((c[1] - 1.8).abs() < 1e-9);
    }

    #[test]
    fn radius_matches_brute_force() {
        let pts = sample_points();
        let cf = cf_of(&pts);
        assert!((cf.radius() - brute_radius(&pts)).abs() < 1e-9);
    }

    #[test]
    fn diameter_matches_brute_force() {
        let pts = sample_points();
        let cf = cf_of(&pts);
        assert!((cf.diameter() - brute_diameter(&pts)).abs() < 1e-9);
    }

    #[test]
    fn singleton_has_zero_radius_and_diameter() {
        let cf = ClusteringFeature::from_point(&[3.0, -1.0]);
        assert_eq!(cf.radius(), 0.0);
        assert_eq!(cf.diameter(), 0.0);
        assert_eq!(cf.centroid(), vec![3.0, -1.0]);
    }

    #[test]
    fn merge_equals_batch_insertion() {
        let pts = sample_points();
        let a = cf_of(&pts[..2]);
        let b = cf_of(&pts[2..]);
        let merged = a.merged(&b);
        let whole = cf_of(&pts);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.radius() - whole.radius()).abs() < 1e-12);
        for (x, y) in merged.centroid().iter().zip(whole.centroid()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_is_commutative() {
        let pts = sample_points();
        let a = cf_of(&pts[..2]);
        let b = cf_of(&pts[2..]);
        assert_eq!(a.merged(&b), b.merged(&a));
    }

    #[test]
    fn centroid_distance_of_identical_clusters_is_zero() {
        let cf = cf_of(&sample_points());
        assert!(cf.centroid_distance(&cf) < 1e-12);
    }

    #[test]
    fn centroid_distance_of_translated_clusters() {
        let pts = sample_points();
        let shifted: Vec<Vec<f32>> =
            pts.iter().map(|p| p.iter().map(|v| v + 10.0).collect()).collect();
        let d = cf_of(&pts).centroid_distance(&cf_of(&shifted));
        assert!((d - 10.0 * 3.0f64.sqrt()).abs() < 1e-4);
    }

    #[test]
    fn average_inter_distance_brute_force() {
        let a_pts = vec![vec![0.0f32, 0.0], vec![1.0, 0.0]];
        let b_pts = vec![vec![0.0f32, 3.0], vec![1.0, 3.0], vec![0.5, 4.0]];
        let mut sum = 0.0f64;
        for p in &a_pts {
            for q in &b_pts {
                sum += p
                    .iter()
                    .zip(q)
                    .map(|(&x, &y)| (x as f64 - y as f64) * (x as f64 - y as f64))
                    .sum::<f64>();
            }
        }
        let want = (sum / 6.0).sqrt();
        let got = cf_of(&a_pts).average_inter_distance(&cf_of(&b_pts));
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn radius_with_point_is_non_mutating_preview() {
        let mut cf = ClusteringFeature::from_point(&[0.0, 0.0]);
        let preview = cf.radius_with_point(&[2.0, 0.0]);
        assert_eq!(cf.count(), 1);
        cf.add_point(&[2.0, 0.0]);
        assert!((cf.radius() - preview).abs() < 1e-12);
        assert!((preview - 1.0).abs() < 1e-9); // both points 1 from centroid
    }

    #[test]
    fn numerical_stability_tight_cluster_far_from_origin() {
        // 1000 points in a ball of radius ~1e-3 centred at 1000: f32
        // accumulation would produce radius garbage here.
        let mut cf = ClusteringFeature::empty(2);
        for i in 0..1000 {
            let eps = (i % 7) as f32 * 1e-4;
            cf.add_point(&[1000.0 + eps, 1000.0 - eps]);
        }
        let r = cf.radius();
        assert!(r < 1e-2, "radius should stay tiny, got {r}");
        assert!(cf.centroid()[0] > 999.9 && cf.centroid()[0] < 1000.1);
    }

    #[test]
    fn distance_to_point() {
        let cf = ClusteringFeature::from_point(&[1.0, 1.0]);
        assert!((cf.distance_to_point(&[4.0, 5.0]) - 5.0).abs() < 1e-9);
    }
}
