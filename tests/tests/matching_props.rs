//! Property-based tests for the image-matching algorithms: dominance
//! relations (quick ≥ exact ≥ greedy in covered area), validity of selected
//! pair sets, similarity bounds, and symmetry.

use proptest::prelude::*;
use walrus_core::bitmap::RegionBitmap;
use walrus_core::matching::{score_exact, score_greedy, score_quick, MatchPair};
use walrus_core::{Region, SimilarityKind};

const W: usize = 64;
const H: usize = 48;
const AREA: usize = W * H;

#[derive(Debug, Clone)]
struct Inst {
    q: Vec<Region>,
    t: Vec<Region>,
    pairs: Vec<MatchPair>,
}

fn region_strategy() -> impl Strategy<Value = Region> {
    proptest::collection::vec((0usize..W - 8, 0usize..H - 8, 4usize..24, 4usize..20), 1..4)
        .prop_map(|windows| {
            let mut bitmap = RegionBitmap::new(W, H, 16);
            for (x, y, w, h) in &windows {
                bitmap.mark_window(*x, *y, *w, *h);
            }
            Region::new(vec![0.0; 4], vec![0.0; 4], vec![0.0; 4], bitmap, windows.len())
        })
}

fn instance() -> impl Strategy<Value = Inst> {
    (
        proptest::collection::vec(region_strategy(), 1..5),
        proptest::collection::vec(region_strategy(), 1..5),
        proptest::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 0..9),
    )
        .prop_map(|(q, t, raw_pairs)| {
            let pairs = raw_pairs
                .into_iter()
                .map(|(a, b)| MatchPair { q: a.index(q.len()), t: b.index(t.len()) })
                .collect();
            Inst { q, t, pairs }
        })
}

fn one_to_one(pairs: &[MatchPair]) -> bool {
    let mut qs: Vec<usize> = pairs.iter().map(|p| p.q).collect();
    let mut ts: Vec<usize> = pairs.iter().map(|p| p.t).collect();
    qs.sort_unstable();
    ts.sort_unstable();
    let ql = qs.len();
    let tl = ts.len();
    qs.dedup();
    ts.dedup();
    qs.len() == ql && ts.len() == tl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dominance_chain_holds(inst in instance()) {
        let quick = score_quick(&inst.q, &inst.t, &inst.pairs, AREA, AREA, SimilarityKind::Symmetric);
        let greedy = score_greedy(&inst.q, &inst.t, &inst.pairs, AREA, AREA, SimilarityKind::Symmetric);
        let exact = score_exact(&inst.q, &inst.t, &inst.pairs, AREA, AREA, SimilarityKind::Symmetric);
        let cov = |s: &walrus_core::matching::MatchScore| s.covered_query_area + s.covered_target_area;
        // Quick relaxes the one-to-one constraint: it covers at least what
        // the exact one-to-one optimum covers; exact dominates greedy.
        prop_assert!(cov(&quick) >= cov(&exact), "quick {} < exact {}", cov(&quick), cov(&exact));
        prop_assert!(cov(&exact) >= cov(&greedy), "exact {} < greedy {}", cov(&exact), cov(&greedy));
    }

    #[test]
    fn selected_sets_are_valid_matchings(inst in instance()) {
        let greedy = score_greedy(&inst.q, &inst.t, &inst.pairs, AREA, AREA, SimilarityKind::Symmetric);
        let exact = score_exact(&inst.q, &inst.t, &inst.pairs, AREA, AREA, SimilarityKind::Symmetric);
        prop_assert!(one_to_one(&greedy.pairs_used));
        prop_assert!(one_to_one(&exact.pairs_used));
        // Every selected pair came from the input.
        for p in greedy.pairs_used.iter().chain(&exact.pairs_used) {
            prop_assert!(inst.pairs.contains(p));
        }
    }

    #[test]
    fn similarity_bounded_for_all_variants(inst in instance()) {
        for kind in [SimilarityKind::Symmetric, SimilarityKind::QueryFraction, SimilarityKind::MinImage] {
            for f in [score_quick, score_greedy, score_exact] {
                let s = f(&inst.q, &inst.t, &inst.pairs, AREA, AREA, kind);
                prop_assert!((0.0..=1.0).contains(&s.similarity), "{kind:?}: {}", s.similarity);
                prop_assert!(s.covered_query_area <= AREA);
                prop_assert!(s.covered_target_area <= AREA);
            }
        }
    }

    #[test]
    fn symmetric_under_role_swap(inst in instance()) {
        let swapped: Vec<MatchPair> =
            inst.pairs.iter().map(|p| MatchPair { q: p.t, t: p.q }).collect();
        for f in [score_quick, score_exact] {
            let ab = f(&inst.q, &inst.t, &inst.pairs, AREA, AREA, SimilarityKind::Symmetric);
            let ba = f(&inst.t, &inst.q, &swapped, AREA, AREA, SimilarityKind::Symmetric);
            prop_assert!((ab.similarity - ba.similarity).abs() < 1e-12);
        }
    }

    #[test]
    fn more_pairs_never_hurt_quick(inst in instance()) {
        // Quick union is monotone in the pair set.
        if inst.pairs.len() >= 2 {
            let half = &inst.pairs[..inst.pairs.len() / 2];
            let part = score_quick(&inst.q, &inst.t, half, AREA, AREA, SimilarityKind::Symmetric);
            let full = score_quick(&inst.q, &inst.t, &inst.pairs, AREA, AREA, SimilarityKind::Symmetric);
            prop_assert!(full.similarity >= part.similarity - 1e-12);
        }
    }

    #[test]
    fn empty_pairs_score_zero(q in proptest::collection::vec(region_strategy(), 1..4), t in proptest::collection::vec(region_strategy(), 1..4)) {
        for f in [score_quick, score_greedy, score_exact] {
            let s = f(&q, &t, &[], AREA, AREA, SimilarityKind::Symmetric);
            prop_assert_eq!(s.similarity, 0.0);
            prop_assert!(s.pairs_used.is_empty());
        }
    }
}
