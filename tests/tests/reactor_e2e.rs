//! End-to-end parity proof for the epoll reactor backend: a `walrus-server`
//! started with `reactor: true` must be **byte-identical** on the wire to
//! the threaded thread-per-connection backend — same response bodies for the
//! same request sequence (request ids included), same hostile-input
//! behaviour, same graceful drain — while holding more simultaneous
//! keep-alive connections than the worker pool has threads.
//!
//! Also exercises the query-result cache over real HTTP: a repeated query
//! must hit (visible on `/metrics`) and answer byte-identically, and an
//! ingest must invalidate.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use walrus_core::{DurableDatabase, SharedDurableDatabase, SlidingParams, WalrusParams};
use walrus_imagery::ppm::write_ppm;
use walrus_imagery::{ColorSpace, Image};
use walrus_server::{Client, Server, ServerConfig, ServerHandle};

fn test_params() -> WalrusParams {
    WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 8, stride: 4 },
        ..WalrusParams::paper_defaults()
    }
}

fn ppm_bytes(seed: usize) -> Vec<u8> {
    let img = Image::from_fn(16, 16, ColorSpace::Rgb, |x, y, c| {
        ((x / 4 + 2 * (y / 4) + c + seed) % 5) as f32 / 4.0
    })
    .unwrap();
    let mut buf = Vec::new();
    write_ppm(&img, &mut buf).unwrap();
    buf
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("walrus_reactor_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(tag: &str, reactor: bool) -> (ServerHandle, SocketAddr, PathBuf) {
    let dir = tmp_dir(tag);
    let (store, _) = DurableDatabase::open(&dir, test_params()).unwrap();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        queue_depth: 16,
        read_timeout: Duration::from_millis(600),
        idle_timeout: Duration::from_secs(3),
        drain_timeout: Duration::from_secs(5),
        reactor,
        ..ServerConfig::default()
    };
    let handle = Server::start(config, SharedDurableDatabase::new(store)).unwrap();
    let addr = handle.addr();
    (handle, addr, dir)
}

/// Runs one fixed request sequence against a server and returns every
/// response as `(status, body)` — including bodies with request ids, which
/// both backends must mint identically for identical sequences.
fn transcript(addr: SocketAddr) -> Vec<(u16, String)> {
    let mut client = Client::connect(addr).unwrap();
    let mut out = Vec::new();
    let mut push = |resp: walrus_server::ClientResponse| {
        out.push((resp.status, resp.text().to_string()));
    };
    push(client.request("GET", "/healthz", &[]).unwrap());
    for i in 0..3 {
        push(client.request("POST", &format!("/ingest?name=img-{i}"), &ppm_bytes(i)).unwrap());
    }
    push(client.request("POST", "/query?k=3", &ppm_bytes(0)).unwrap());
    push(client.request("POST", "/query?k=3", &ppm_bytes(0)).unwrap()); // cache hit
    push(client.request("POST", "/query?k=1&min_sim=0.1", &ppm_bytes(1)).unwrap());
    push(client.request("POST", "/query?timeout_ms=0", &ppm_bytes(2)).unwrap()); // 206
    push(client.request("POST", "/query", &[]).unwrap()); // 400 empty body
    push(client.request("POST", "/query?k=frog", &ppm_bytes(0)).unwrap()); // 400 param
    push(client.request("GET", "/image/0", &[]).unwrap());
    push(client.request("GET", "/image/99", &[]).unwrap()); // 404
    push(client.request("GET", "/nope", &[]).unwrap()); // 404
    push(client.request("DELETE", "/ingest", &[]).unwrap()); // 405
    out
}

#[test]
fn reactor_transcript_is_byte_identical_to_threaded() {
    let (threaded, threaded_addr, dir_a) = start("threaded", false);
    let (reactor, reactor_addr, dir_b) = start("reactor", true);

    let want = transcript(threaded_addr);
    let got = transcript(reactor_addr);
    assert_eq!(want.len(), got.len());
    for (i, (want, got)) in want.iter().zip(got.iter()).enumerate() {
        assert_eq!(want, got, "request #{i} diverged between backends");
    }
    // The repeated query really was a cache hit on both backends (so the
    // identity above covers the cached path, not two engine runs).
    for handle in [&threaded, &reactor] {
        assert_eq!(
            handle
                .state()
                .metrics
                .cache_hits_total
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    threaded.shutdown().unwrap();
    reactor.shutdown().unwrap();
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn reactor_holds_more_connections_than_pool_threads() {
    // 32 simultaneous keep-alive connections over a 2-thread pool: the
    // threaded backend would park a worker per connection; the reactor
    // holds them all as fds and serves each in turn.
    let (handle, addr, dir) = start("many_conns", true);
    let mut clients: Vec<Client> = (0..32).map(|_| Client::connect(addr).unwrap()).collect();
    // Every connection is open at once; now each serves a request while
    // the other 31 stay open (idle fds, not blocked threads).
    for (i, client) in clients.iter_mut().enumerate() {
        let resp = client.request("GET", "/healthz", &[]).unwrap();
        assert_eq!(resp.status, 200, "connection {i}");
    }
    // And a second round proves keep-alive survived the interleaving.
    for client in clients.iter_mut() {
        assert_eq!(client.request("GET", "/metrics", &[]).unwrap().status, 200);
    }
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Fires raw bytes and returns the response status (None = clean close).
fn raw_status(addr: SocketAddr, payload: &[u8]) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let _ = stream.write_all(payload);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    parse_status(&out)
}

fn parse_status(response: &[u8]) -> Option<u16> {
    let text = String::from_utf8_lossy(response);
    let line = text.lines().next()?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[test]
fn reactor_survives_hostile_inputs() {
    let (handle, addr, dir) = start("hostile", true);
    // The same corpus the threaded backend faces in http_hostile.rs; the
    // shared parser must answer with the same statuses.
    let cases: &[(&[u8], &[u16])] = &[
        (b"\x00\x01\x02\x03\xff\xfe\r\n\r\n", &[400]),
        (b"GET / HTTP/2.0\r\n\r\n", &[505]),
        (b"POST /ingest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n", &[411]),
        (b"POST /ingest HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n", &[400]),
        (b"POST /ingest HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n", &[413]),
        (b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\nabcde", &[400]),
        (b"GET / HTTP/1.1 trailing-junk\r\n\r\n", &[400]),
        (b"get /healthz HTTP/1.1\r\n\r\n", &[400]),
        (b"GET /healthz HTTP/1.1\r\nbroken header line\r\n\r\n", &[400]),
        (b"POST /ingest HTTP/1.1\r\nContent-Length: 100\r\n\r\nP6 oops", &[400]),
    ];
    for (payload, expected) in cases {
        let status = raw_status(addr, payload);
        let ok = match status {
            Some(code) => expected.contains(&code),
            None => true,
        };
        assert!(
            ok,
            "payload {:?}: expected one of {expected:?} or close, got {status:?}",
            String::from_utf8_lossy(&payload[..payload.len().min(40)])
        );
    }
    // Oversized request line dies at a cap, never buffers the megabyte.
    let mut payload = b"GET /".to_vec();
    payload.extend_from_slice(&vec![b'a'; 1 << 20]);
    payload.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    assert!(matches!(raw_status(addr, &payload), Some(431) | Some(414) | None));
    // Connect-then-quit probe is a non-event.
    drop(TcpStream::connect(addr).unwrap());
    // The server survived all of it with nothing leaked.
    let mut client = Client::connect(addr).unwrap();
    let resp = client.request("GET", "/healthz", &[]).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("\"images\":0"), "{}", resp.text());
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let in_flight =
            handle.state().metrics.in_flight.load(std::sync::atomic::Ordering::Relaxed);
        if in_flight == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "leaked in-flight slot: {in_flight}");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reactor_slowloris_dribble_times_out() {
    let (handle, addr, dir) = start("slowloris", true);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let started = Instant::now();
    for b in b"GET /healthz HTTP/1.1\r\nHost: walrus\r\n\r\n" {
        if stream.write_all(&[*b]).is_err() {
            break;
        }
        std::thread::sleep(Duration::from_millis(150));
        if started.elapsed() > Duration::from_secs(8) {
            panic!("reactor tolerated the dribble for too long");
        }
    }
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    let status = parse_status(&out);
    assert!(matches!(status, Some(408) | None), "expected 408/close, got {status:?}");
    assert!(started.elapsed() < Duration::from_secs(8));
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reactor_drains_idle_connections_and_checkpoints_on_shutdown() {
    let (handle, addr, dir) = start("drain", true);
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.request("POST", "/ingest", &ppm_bytes(0)).unwrap().status, 200);
    // An idle keep-alive connection is open during shutdown; the drain
    // must close it promptly instead of waiting out the idle timeout.
    let _idle = TcpStream::connect(addr).unwrap();
    let started = Instant::now();
    handle.shutdown().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "drain took {:?} with only an idle connection open",
        started.elapsed()
    );
    // The final checkpoint happened: recovery has nothing to replay.
    let (recovered, report) = DurableDatabase::open(&dir, test_params()).unwrap();
    assert_eq!(recovered.len(), 1);
    assert_eq!(report.records_replayed, 0, "shutdown checkpoint missing");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reactor_cache_hit_is_visible_on_metrics_and_invalidated_by_ingest() {
    let (handle, addr, dir) = start("cache", true);
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.request("POST", "/ingest", &ppm_bytes(0)).unwrap().status, 200);

    let first = client.request("POST", "/query?k=2", &ppm_bytes(0)).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    let first_body = first.text().to_string();
    let second = client.request("POST", "/query?k=2", &ppm_bytes(0)).unwrap();
    assert_eq!(second.status, 200);
    let second_body = second.text().to_string();
    // Identical modulo the (monotonically fresh) request id.
    let strip = |s: &str| s[..s.rfind(",\"request_id\":").unwrap()].to_string();
    assert_eq!(strip(&first_body), strip(&second_body));

    let metrics = client.request("GET", "/metrics", &[]).unwrap();
    let text = metrics.text().to_string();
    assert!(text.contains("walrus_cache_hits_total 1\n"), "{text}");
    assert!(text.contains("walrus_cache_misses_total 1\n"), "{text}");
    assert!(text.contains("walrus_cache_entries 1\n"), "{text}");
    // The cache-hit fast path records into its own trace/histogram stage.
    assert!(text.contains("walrus_stage_cache_count 1\n"), "{text}");

    // Ingest moves the LSN: the cached ranking is stale and must never be
    // served again.
    assert_eq!(client.request("POST", "/ingest", &ppm_bytes(3)).unwrap().status, 200);
    let third = client.request("POST", "/query?k=2", &ppm_bytes(0)).unwrap();
    assert_eq!(third.status, 200);
    assert_ne!(strip(&first_body), strip(&third.text().to_string()));
    let metrics = client.request("GET", "/metrics", &[]).unwrap();
    let text = metrics.text().to_string();
    assert!(text.contains("walrus_cache_hits_total 1\n"), "{text}");
    assert!(text.contains("walrus_cache_invalidations_total 1\n"), "{text}");

    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
