//! Long-lived bounded worker pool for serving workloads.
//!
//! The scoped primitives in the crate root ([`parallel_map`] and friends)
//! spawn workers per call, which is right for batch compute but wrong for a
//! network server that handles many small requests: per-request thread spawn
//! costs microseconds-to-milliseconds and gives the OS no admission control.
//! [`WorkerPool`] is the serving counterpart:
//!
//! * a fixed set of named OS threads that live as long as the pool;
//! * a **bounded** FIFO job queue — when it is full, [`WorkerPool::try_execute`]
//!   hands the job back instead of queueing unbounded work, which is the
//!   hook servers use for load-shedding (e.g. HTTP 503);
//! * panic isolation — a panicking job is caught and counted, the worker
//!   thread survives, so one poisonous request cannot shrink the pool;
//! * cooperative shutdown — [`WorkerPool::wait_idle`] lets a caller drain
//!   in-flight work with a deadline, then [`WorkerPool::shutdown`] wakes the
//!   workers, drops whatever is still queued, and joins the threads.
//!
//! Jobs are `FnOnce() + Send + 'static` boxes: unlike the scoped primitives
//! there is no borrowing from the caller's stack, because the pool outlives
//! any one call site.
//!
//! [`parallel_map`]: crate::parallel_map

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::MAX_THREADS;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    /// Jobs currently executing on a worker.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for jobs (or shutdown).
    job_ready: Condvar,
    /// Drain callers wait here for `queue empty && active == 0`.
    idle: Condvar,
    /// Jobs that panicked (caught; the worker survived).
    panics: AtomicUsize,
}

/// Fixed-size worker pool with a bounded job queue. See the module docs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    capacity: usize,
}

impl WorkerPool {
    /// Creates a pool with `threads` workers (clamped to `[1, MAX_THREADS]`)
    /// and room for `queue_depth` queued jobs (at least 1) beyond the ones
    /// already executing.
    pub fn new(threads: usize, queue_depth: usize) -> Self {
        let threads = threads.clamp(1, MAX_THREADS);
        let capacity = queue_depth.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                active: 0,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            idle: Condvar::new(),
            panics: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("walrus-pool-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers, threads, capacity }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Queue capacity (jobs that can wait beyond the executing ones).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs waiting in the queue right now.
    pub fn pending(&self) -> usize {
        self.shared.state.lock().expect("pool lock").queue.len()
    }

    /// Jobs executing on a worker right now.
    pub fn active(&self) -> usize {
        self.shared.state.lock().expect("pool lock").active
    }

    /// Jobs that panicked since the pool was created. The workers survive a
    /// panicking job, so this is an observability counter, not a health bit.
    pub fn panics(&self) -> usize {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Submits a job, or hands it back when the queue is full or the pool is
    /// shutting down. Never blocks — this is the admission-control point, and
    /// the returned closure lets the caller run its own rejection path (close
    /// a socket, answer 503, run inline, ...).
    pub fn try_execute<F>(&self, job: F) -> Result<(), F>
    where
        F: FnOnce() + Send + 'static,
    {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            if state.shutdown || state.queue.len() >= self.capacity {
                drop(state);
                return Err(job);
            }
            state.queue.push_back(Box::new(job));
        }
        self.shared.job_ready.notify_one();
        Ok(())
    }

    /// Blocks until the pool is idle (no queued and no executing jobs) or
    /// `timeout` elapses. Returns `true` when idle was reached. This is the
    /// drain step of graceful shutdown: stop submitting, `wait_idle`, then
    /// [`WorkerPool::shutdown`].
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("pool lock");
        while !(state.queue.is_empty() && state.active == 0) {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return false;
            }
            let (next, wait) = self
                .shared
                .idle
                .wait_timeout(state, remaining.min(Duration::from_millis(50)))
                .expect("pool lock");
            state = next;
            let _ = wait;
        }
        true
    }

    /// Stops the pool: no new jobs are accepted, **queued jobs are dropped**,
    /// jobs already executing run to completion, and all workers are joined.
    /// Returns the number of queued jobs that were discarded. Idempotent.
    ///
    /// Callers that want queued work to finish should [`WorkerPool::wait_idle`]
    /// first; `shutdown` itself is the hard stop.
    pub fn shutdown(&mut self) -> usize {
        let dropped = {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
            let dropped: Vec<Job> = state.queue.drain(..).collect();
            dropped.len()
            // Drop the jobs outside the lock? They are plain closures; dropping
            // under the lock is fine and keeps the accounting atomic.
        };
        self.shared.job_ready.notify_all();
        for worker in self.workers.drain(..) {
            // A worker only fails to join if a panic escaped `catch_unwind`
            // (e.g. a panic in a Drop impl); surface that loudly.
            worker.join().expect("pool worker panicked outside job isolation");
        }
        self.shared.idle.notify_all();
        dropped
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.active += 1;
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.job_ready.wait(state).expect("pool lock");
            }
        };
        let Some(job) = job else { return };
        // Isolate panics: the job owns its data (FnOnce + 'static), so
        // unwind safety concerns don't cross the boundary into pool state.
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
        let mut state = shared.state.lock().expect("pool lock");
        state.active -= 1;
        if state.active == 0 && state.queue.is_empty() {
            drop(state);
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::mpsc;

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new(4, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let mut job = {
                let counter = Arc::clone(&counter);
                move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }
            };
            // On a single-core box the submitter can outrun the workers and
            // briefly fill the queue; spin until a slot frees up.
            loop {
                match pool.try_execute(job) {
                    Ok(()) => break,
                    Err(rejected) => {
                        job = rejected;
                        std::thread::yield_now();
                    }
                }
            }
        }
        assert!(pool.wait_idle(Duration::from_secs(10)));
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(pool.pending(), 0);
        assert_eq!(pool.active(), 0);
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let mut pool = WorkerPool::new(1, 2);
        // Occupy the single worker so queued jobs cannot drain.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_execute(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })
        .ok()
        .expect("first job admitted");
        started_rx.recv().unwrap();

        // Fill the queue to capacity...
        assert!(pool.try_execute(|| {}).is_ok());
        assert!(pool.try_execute(|| {}).is_ok());
        // ...and the next job bounces back to the caller.
        let mut bounced = false;
        if let Err(job) = pool.try_execute(|| {}) {
            bounced = true;
            // The caller gets the closure back and may run it inline.
            job();
        }
        assert!(bounced, "queue at capacity must reject");
        assert!(!pool.wait_idle(Duration::from_millis(20)), "worker is blocked");

        release_tx.send(()).unwrap();
        assert!(pool.wait_idle(Duration::from_secs(10)));
        assert_eq!(pool.shutdown(), 0);
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = WorkerPool::new(1, 8);
        let survived = Arc::new(AtomicBool::new(false));
        pool.try_execute(|| panic!("poison request")).ok().expect("admitted");
        let flag = Arc::clone(&survived);
        pool.try_execute(move || flag.store(true, Ordering::SeqCst))
            .ok()
            .expect("admitted");
        assert!(pool.wait_idle(Duration::from_secs(10)));
        assert!(survived.load(Ordering::SeqCst), "worker must survive a panic");
        assert_eq!(pool.panics(), 1);
    }

    #[test]
    fn shutdown_drops_queued_jobs_and_rejects_new_ones() {
        let mut pool = WorkerPool::new(1, 8);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_execute(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })
        .ok()
        .expect("admitted");
        started_rx.recv().unwrap();
        let ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        pool.try_execute(move || flag.store(true, Ordering::SeqCst))
            .ok()
            .expect("admitted");

        release_tx.send(()).unwrap();
        // The queued job may or may not start before shutdown wins the lock;
        // both outcomes are legal. What must hold: shutdown joins cleanly and
        // afterwards nothing is accepted.
        let dropped = pool.shutdown();
        assert!(dropped <= 1);
        assert_eq!(dropped == 1, !ran.load(Ordering::SeqCst));
        assert!(pool.try_execute(|| {}).is_err(), "pool is closed");
    }
}
