//! Coefficient truncation and quantization.
//!
//! Jacobs, Finkelstein and Salesin's "fast multiresolution image querying"
//! (\[JFS95\], reimplemented in `walrus-baselines`) keeps only the 40–60
//! largest-magnitude wavelet coefficients per channel and "harshly
//! quantizes" them to their sign (+1 / −1), discarding magnitude. This
//! module provides those operations plus the sparse signature type the
//! baseline stores.

/// A truncated, sign-quantized wavelet signature: the flat indices of the
/// retained coefficients, split by sign. Indices within each list are sorted
/// ascending, enabling linear-time overlap counting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedSignature {
    /// Indices of retained positive coefficients.
    pub positive: Vec<u32>,
    /// Indices of retained negative coefficients.
    pub negative: Vec<u32>,
}

impl QuantizedSignature {
    /// Number of retained coefficients.
    pub fn len(&self) -> usize {
        self.positive.len() + self.negative.len()
    }

    /// True when no coefficients were retained.
    pub fn is_empty(&self) -> bool {
        self.positive.is_empty() && self.negative.is_empty()
    }

    /// Number of indices present *with the same sign* in both signatures —
    /// the matching term of the Jacobs bitmap metric.
    pub fn matches(&self, other: &QuantizedSignature) -> usize {
        sorted_overlap(&self.positive, &other.positive) + sorted_overlap(&self.negative, &other.negative)
    }
}

/// Indices of the `k` largest-magnitude entries of `coeffs`, excluding index
/// 0 (the DC/average term, which Jacobs et al. handle separately). Ties are
/// broken by lower index for determinism.
pub fn top_k_indices(coeffs: &[f32], k: usize) -> Vec<u32> {
    let mut idx: Vec<u32> = (1..coeffs.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        coeffs[b as usize]
            .abs()
            .partial_cmp(&coeffs[a as usize].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// Builds a sign-quantized signature from dense coefficients, retaining the
/// `k` largest-magnitude non-DC entries.
pub fn quantize(coeffs: &[f32], k: usize) -> QuantizedSignature {
    let kept = top_k_indices(coeffs, k);
    let mut positive = Vec::new();
    let mut negative = Vec::new();
    for i in kept {
        if coeffs[i as usize] >= 0.0 {
            positive.push(i);
        } else {
            negative.push(i);
        }
    }
    QuantizedSignature { positive, negative }
}

/// Zeroes all but the `k` largest-magnitude non-DC coefficients in place and
/// returns how many were kept — dense truncation for reconstruction-error
/// experiments.
pub fn truncate_in_place(coeffs: &mut [f32], k: usize) -> usize {
    let keep = top_k_indices(coeffs, k);
    let keep_set: std::collections::HashSet<u32> = keep.iter().copied().collect();
    for (i, c) in coeffs.iter_mut().enumerate().skip(1) {
        if !keep_set.contains(&(i as u32)) {
            *c = 0.0;
        }
    }
    keep.len()
}

/// Lower edge of the value range the generic thermometer thresholds span.
/// Region signature coefficients are window averages in `[0, 1]` (index 0 of
/// each channel block) and level-normalized details centered on 0, so
/// `[-0.5, 1]` covers the pipeline's output; values outside it saturate,
/// which costs pruning power but never admissibility (the encoding stays
/// monotone).
pub const SIG_RANGE_LO: f32 = -0.5;
/// Upper edge of the generic thermometer threshold range.
pub const SIG_RANGE_HI: f32 = 1.0;

/// Dimensionality of the engine's canonical sliding-window signature:
/// `s² = 4` coefficients per channel (the paper's `s = 2`), channel-major,
/// over 3 color channels. Only this layout gets the role-aware threshold
/// tables below; every other dimensionality falls back to the generic
/// uniform ladder.
const CANONICAL_DIMS: usize = 12;
/// Canonical per-channel block length (`s²`). Index 0 of each block is the
/// window average; the rest are level-normalized detail coefficients.
const CANONICAL_BLOCK: usize = 4;
/// Thresholds for the three window-average dimensions of the canonical
/// layout. Averages concentrate in roughly `[0.15, 0.9]` with most of the
/// discriminating spread above `0.3`, so the 11 thresholds tile
/// `[0.30, 0.75]` at `0.045` spacing — fine enough that a real gap between
/// a probe interval and a region's bounds usually straddles one.
const AVG_LADDER: [f32; 11] = [
    0.300, 0.345, 0.390, 0.435, 0.480, 0.525, 0.570, 0.615, 0.660, 0.705, 0.750,
];
/// Thresholds for the last channel block's detail dimensions. Detail
/// coefficients are level-normalized and concentrate tightly around 0; ten
/// thresholds tile `[-0.09, 0.09]` at `0.02` spacing. The first two blocks'
/// details get no thresholds at all: measured on the benchmark corpus they
/// certify well under 2% of rejections each, so their bits buy more pruning
/// when spent on the dimensions above. Allocation only affects pruning
/// power, never admissibility — any fixed monotone table is admissible.
const DETAIL_LADDER: [f32; 10] =
    [-0.09, -0.07, -0.05, -0.03, -0.01, 0.01, 0.03, 0.05, 0.07, 0.09];

/// The threshold ladder for dimension `d` of a canonical 12-dim signature,
/// and the lane bit offset where its bits start. Layout (63 bits used):
/// dims 0/4/8 (the per-channel averages) get the 11 [`AVG_LADDER`] bits,
/// dims 9–11 (the last block's details) the 10 [`DETAIL_LADDER`] bits, and
/// the remaining detail dims contribute no bits.
fn canonical_ladder(d: usize) -> &'static [f32] {
    if d % CANONICAL_BLOCK == 0 {
        &AVG_LADDER
    } else if d >= CANONICAL_DIMS - (CANONICAL_BLOCK - 1) {
        &DETAIL_LADDER
    } else {
        &[]
    }
}

/// Thermometer-encodes a canonical 12-dim signature vector with the
/// role-aware per-dimension ladders.
fn canonical_thermometer_code(values: &[f32]) -> u64 {
    let mut code = 0u64;
    let mut offset = 0usize;
    for (d, &v) in values.iter().enumerate() {
        let ladder = canonical_ladder(d);
        for (k, &t) in ladder.iter().enumerate() {
            if v > t {
                code |= 1u64 << (offset + k);
            }
        }
        offset += ladder.len();
    }
    code
}

/// A 128-bit binary region signature: two 64-bit thermometer-code lanes,
/// `lanes[0]` encoding the region's per-dimension signature minimum
/// (`bbox_min`) and `lanes[1]` its maximum (`bbox_max`).
///
/// Each dimension owns a fixed run of threshold bits in the lane; bit `k`
/// of a dimension is set iff the value strictly exceeds that dimension's
/// threshold `t_k` (see [`thermometer_code`]). The engine's canonical
/// 12-dim layout uses role-aware per-dimension ladders ([`AVG_LADDER`] /
/// [`DETAIL_LADDER`]); any other dimensionality packs `b = 64 / min(D, 64)`
/// uniformly spaced thresholds per dimension. Because every encoding is
/// monotone — a bit set in `code(x)` and clear in `code(y)` proves
/// `x > t_k >= y`, hence `x > y` strictly — comparing lanes yields
/// *certain* interval-disjointness verdicts, never false rejections. That
/// is what makes the popcount-Hamming prefilter admissible: the exact
/// L2/bbox match is only skipped when it provably cannot accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BinarySignature {
    /// `[code(bbox_min), code(bbox_max)]`.
    pub lanes: [u64; 2],
}

impl BinarySignature {
    /// Derives the signature from a region's per-dimension signature bounds.
    /// Deterministic: a pure function of the two vectors, so rebuilding from
    /// a persisted region always reproduces the stored lanes bit-for-bit.
    pub fn from_bbox(bbox_min: &[f32], bbox_max: &[f32]) -> Self {
        BinarySignature { lanes: [thermometer_code(bbox_min), thermometer_code(bbox_max)] }
    }
}

/// Thermometer-encodes a signature vector into one 64-bit lane.
///
/// Canonical 12-dim vectors use the role-aware per-dimension ladders (see
/// [`canonical_ladder`]): the three window-average dimensions and the last
/// channel block's details carry essentially all of the measured pruning
/// power, so they get dense thresholds and the remaining detail dimensions
/// get none. Every other dimensionality uses the generic uniform ladder:
/// the first `min(D, 64)` dimensions each receive `b = 64 / min(D, 64)`
/// bits at positions `[d*b, (d+1)*b)`; bit `k` is set iff `value > t_k`
/// where `t_k = SIG_RANGE_LO + (k+1) * delta` and
/// `delta = (SIG_RANGE_HI - SIG_RANGE_LO) / (b + 1)`. Dimensions beyond 64
/// are not encoded. Either way the code is a pure, monotone function of the
/// vector, so unencoded or saturated values cost pruning power, never a
/// false rejection.
pub fn thermometer_code(values: &[f32]) -> u64 {
    if values.len() == CANONICAL_DIMS {
        return canonical_thermometer_code(values);
    }
    let dims = values.len().min(64);
    if dims == 0 {
        return 0;
    }
    let bits = 64 / dims;
    let delta = (SIG_RANGE_HI - SIG_RANGE_LO) / (bits as f32 + 1.0);
    let mut code = 0u64;
    for (d, &v) in values.iter().take(dims).enumerate() {
        for k in 0..bits {
            let threshold = SIG_RANGE_LO + (k as f32 + 1.0) * delta;
            if v > threshold {
                code |= 1u64 << (d * bits + k);
            }
        }
    }
    code
}

/// The query side of the binary prefilter: thermometer codes of the probe
/// interval's lower and upper corner, compared against stored
/// [`BinarySignature`]s with two bitwise ops and a popcount.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryCode {
    lo: u64,
    hi: u64,
}

impl QueryCode {
    /// Codes for an explicit per-dimension probe interval `[lo, hi]`.
    /// Callers must widen the interval by enough slack to absorb f32
    /// rounding in the exact test they are guarding (the engine uses
    /// `eps + 1e-4`).
    pub fn from_interval(lo: &[f32], hi: &[f32]) -> Self {
        QueryCode { lo: thermometer_code(lo), hi: thermometer_code(hi) }
    }

    /// Codes for the ball `[center - radius, center + radius]` per
    /// dimension — the shape of a centroid-signature probe.
    pub fn around(center: &[f32], radius: f32) -> Self {
        let lo: Vec<f32> = center.iter().map(|c| c - radius).collect();
        let hi: Vec<f32> = center.iter().map(|c| c + radius).collect();
        QueryCode::from_interval(&lo, &hi)
    }

    /// Number of `(dimension, threshold)` bit positions that *prove* the
    /// stored region's `[bbox_min, bbox_max]` interval disjoint from the
    /// probe interval — a lower bound on how separated the two are in
    /// signature space, computed with two AND-NOTs, an OR, and a popcount.
    ///
    /// A bit counts iff either `code(bbox_min)` has it and `code(probe_hi)`
    /// does not (region entirely above the probe in that dimension) or
    /// `code(probe_lo)` has it and `code(bbox_max)` does not (entirely
    /// below). Monotonicity of [`thermometer_code`] makes both directions
    /// strict, so a nonzero count is a *certificate* of disjointness.
    pub fn separation_popcount(&self, sig: &BinarySignature) -> u32 {
        ((sig.lanes[0] & !self.hi) | (self.lo & !sig.lanes[1])).count_ones()
    }

    /// True when the popcount certificate proves the stored region cannot
    /// intersect the probe interval: the exact match may be skipped.
    pub fn certainly_disjoint(&self, sig: &BinarySignature) -> bool {
        self.separation_popcount(sig) != 0
    }
}

fn sorted_overlap(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_selects_largest_magnitudes() {
        let coeffs = [9.0, 0.1, -5.0, 0.2, 3.0, -0.05];
        let top = top_k_indices(&coeffs, 2);
        assert_eq!(top, vec![2, 4]); // |−5| and |3|; DC at 0 excluded
    }

    #[test]
    fn top_k_excludes_dc_even_when_largest() {
        let coeffs = [100.0, 1.0, 2.0];
        assert_eq!(top_k_indices(&coeffs, 5), vec![1, 2]);
    }

    #[test]
    fn top_k_with_zero_k() {
        assert!(top_k_indices(&[1.0, 2.0, 3.0], 0).is_empty());
    }

    #[test]
    fn quantize_splits_by_sign() {
        let coeffs = [0.0, 4.0, -3.0, 2.0, -1.0];
        let q = quantize(&coeffs, 3);
        assert_eq!(q.positive, vec![1, 3]);
        assert_eq!(q.negative, vec![2]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn matches_counts_same_signed_overlap() {
        let a = QuantizedSignature { positive: vec![1, 3, 5], negative: vec![2, 8] };
        let b = QuantizedSignature { positive: vec![3, 5, 9], negative: vec![2, 4] };
        assert_eq!(a.matches(&b), 3); // {3, 5} positive + {2} negative
        // A coefficient retained with opposite signs does not match.
        let c = QuantizedSignature { positive: vec![2], negative: vec![3] };
        assert_eq!(a.matches(&c), 0);
    }

    #[test]
    fn matches_is_symmetric() {
        let a = quantize(&[0.0, 1.0, -2.0, 3.0, -4.0, 5.0], 3);
        let b = quantize(&[0.0, -1.0, -2.0, 3.0, 4.0, 0.1], 3);
        assert_eq!(a.matches(&b), b.matches(&a));
    }

    #[test]
    fn self_match_equals_len() {
        let q = quantize(&[0.0, 1.0, -2.0, 0.5, -0.1, 3.0], 4);
        assert_eq!(q.matches(&q), q.len());
    }

    #[test]
    fn truncate_zeroes_the_rest() {
        let mut coeffs = vec![7.0, 0.1, -5.0, 0.2, 3.0];
        let kept = truncate_in_place(&mut coeffs, 2);
        assert_eq!(kept, 2);
        assert_eq!(coeffs, vec![7.0, 0.0, -5.0, 0.0, 3.0]);
    }

    #[test]
    fn truncate_keeps_everything_when_k_large() {
        let mut coeffs = vec![1.0, 2.0, 3.0];
        let kept = truncate_in_place(&mut coeffs, 10);
        assert_eq!(kept, 2);
        assert_eq!(coeffs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_signature() {
        let q = quantize(&[5.0], 10);
        assert!(q.is_empty());
        assert_eq!(q.matches(&q), 0);
    }

    /// Deterministic pseudo-random f32 in `[-0.6, 1.1]` (slightly wider than
    /// the nominal signature range, to exercise saturation).
    fn lcg_f32(state: &mut u64) -> f32 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*state >> 33) as f32 / (1u64 << 31) as f32) * 1.7 - 0.6
    }

    fn lcg_vec(state: &mut u64, dims: usize) -> Vec<f32> {
        (0..dims).map(|_| lcg_f32(state)).collect()
    }

    #[test]
    fn thermometer_code_is_monotone_per_dimension() {
        // For vectors x <= y elementwise, code(x)'s set bits are a subset of
        // code(y)'s — the property every disjointness proof rests on.
        let mut state = 7u64;
        for dims in [1, 4, 12, 48, 64, 80] {
            for _ in 0..50 {
                let x = lcg_vec(&mut state, dims);
                let y: Vec<f32> = x.iter().map(|v| v + lcg_f32(&mut state).abs()).collect();
                let cx = thermometer_code(&x);
                let cy = thermometer_code(&y);
                assert_eq!(cx & !cy, 0, "code({x:?}) not a subset of code({y:?})");
            }
        }
    }

    #[test]
    fn binary_signature_is_deterministic_and_bbox_shaped() {
        let lo = vec![0.1, -0.2, 0.5, 0.9];
        let hi = vec![0.3, 0.0, 0.6, 1.0];
        let sig = BinarySignature::from_bbox(&lo, &hi);
        assert_eq!(sig, BinarySignature::from_bbox(&lo, &hi));
        assert_eq!(sig.lanes[0], thermometer_code(&lo));
        assert_eq!(sig.lanes[1], thermometer_code(&hi));
        // min <= max elementwise means lane 0 is a subset of lane 1.
        assert_eq!(sig.lanes[0] & !sig.lanes[1], 0);
    }

    #[test]
    fn query_code_never_rejects_itself() {
        let mut state = 99u64;
        for dims in [1, 12, 48] {
            for _ in 0..100 {
                let v = lcg_vec(&mut state, dims);
                let sig = BinarySignature::from_bbox(&v, &v);
                let q = QueryCode::around(&v, 0.0);
                assert!(!q.certainly_disjoint(&sig), "self-query rejected: {v:?}");
                assert_eq!(q.separation_popcount(&sig), 0);
            }
        }
    }

    #[test]
    fn disjoint_verdicts_are_certificates() {
        // Whenever the bit test rejects, the real intervals are disjoint in
        // at least one dimension — i.e. the exact match would reject too.
        let mut state = 0xC0FFEE;
        let mut rejected = 0;
        for _ in 0..2000 {
            let dims = 12;
            let center = lcg_vec(&mut state, dims);
            let radius = lcg_f32(&mut state).abs() * 0.2;
            let a = lcg_vec(&mut state, dims);
            let b: Vec<f32> = a.iter().map(|v| v + lcg_f32(&mut state).abs() * 0.1).collect();
            let sig = BinarySignature::from_bbox(&a, &b);
            let q = QueryCode::around(&center, radius);
            if q.certainly_disjoint(&sig) {
                rejected += 1;
                let truly_disjoint = (0..dims).any(|d| {
                    a[d] > center[d] + radius || b[d] < center[d] - radius
                });
                assert!(
                    truly_disjoint,
                    "bit test rejected an intersecting region: \
                     center={center:?} radius={radius} a={a:?} b={b:?}"
                );
            }
        }
        assert!(rejected > 0, "the sweep never rejected anything; the test is vacuous");
    }

    #[test]
    fn dims_beyond_sixty_four_never_prune() {
        // An 80-dim pair differing only past dimension 63 cannot be told
        // apart — no pruning, but also no false rejection.
        let a = vec![0.0f32; 80];
        let mut b = vec![0.0f32; 80];
        b[79] = 0.9;
        let sig = BinarySignature::from_bbox(&b, &b);
        let q = QueryCode::around(&a, 0.01);
        assert!(!q.certainly_disjoint(&sig));
    }

    #[test]
    fn empty_vector_codes_to_zero() {
        assert_eq!(thermometer_code(&[]), 0);
        let sig = BinarySignature::from_bbox(&[], &[]);
        assert_eq!(sig, BinarySignature::default());
        assert!(!QueryCode::from_interval(&[], &[]).certainly_disjoint(&sig));
    }

    #[test]
    fn clear_separation_is_rejected() {
        // A region far above the probe interval in every dimension must be
        // pruned — the prefilter has to have real teeth at D = 12.
        let probe = vec![0.0f32; 12];
        let far = vec![0.9f32; 12];
        let sig = BinarySignature::from_bbox(&far, &far);
        let q = QueryCode::around(&probe, 0.085);
        assert!(q.certainly_disjoint(&sig));
        assert!(q.separation_popcount(&sig) >= 12, "one proof bit per dimension at least");
    }
}
