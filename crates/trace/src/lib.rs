//! # walrus-trace
//!
//! Dependency-free observability primitives for the WALRUS engine:
//!
//! * [`Clock`] — an injectable monotonic time source with a real
//!   implementation ([`MonotonicClock`], shared via [`monotonic()`]) and a
//!   deterministic [`TestClock`] whose `sleep` advances time instead of
//!   blocking, so deadline/latency/percentile tests run in zero wall time.
//! * [`TraceContext`] / [`Span`] — per-request span trees with counters,
//!   opened only by the orchestrating thread so the recorded tree is
//!   bit-identical across `WALRUS_THREADS` settings.
//! * [`Histogram`] — a lock-free fixed-bucket (powers-of-two microseconds)
//!   latency histogram with commutative/associative merge and nearest-rank
//!   quantiles, for per-stage aggregation in the server's `/metrics`.
//!
//! This crate sits below `walrus-guard` in the dependency graph and
//! deliberately has no dependencies of its own.

mod clock;
mod histogram;
mod span;

pub use clock::{monotonic, Clock, MonotonicClock, SharedClock, TestClock};
pub use histogram::{bucket_bound_micros, Histogram, HISTOGRAM_BUCKETS};
pub use span::{Span, SpanRecord, TraceContext, TraceReport};
