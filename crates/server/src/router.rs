//! Request routing: maps parsed HTTP requests onto the WALRUS engine.
//!
//! Endpoints (see the README "Serving" section for curl examples):
//!
//! | Method | Path                | Purpose                                   |
//! |--------|---------------------|-------------------------------------------|
//! | POST   | `/ingest`           | Durable ingest of 1..n concatenated PPMs  |
//! | POST   | `/query`            | Region-similarity query (PPM body)        |
//! | GET    | `/image/{id}`       | Metadata of one indexed image             |
//! | GET    | `/healthz`          | Liveness + store size                     |
//! | GET    | `/metrics`          | Plain-text counters                       |
//! | POST   | `/admin/checkpoint` | Force a snapshot + WAL truncation         |
//! | POST   | `/admin/rebalance`  | Online shard-count migration (`?shards=M`)|
//!
//! Per-request knobs arrive as query parameters (`k`, `timeout_ms`, `eps`,
//! `min_sim`, `max_pixels`, `max_candidates`) and are mapped onto a
//! [`Guard`] + [`QueryOptions`] pair, so the HTTP path executes exactly the
//! same engine code as in-process callers — including the degradation
//! policy: a deadline-truncated query answers `206 Partial Content` with the
//! best-so-far ranking ([`ResultStatus::Partial`] on the wire as
//! `"status":"partial"`), cancellation (shutdown) answers `503`, and budget
//! breaches answer `413`.
//!
//! Responses carry `similarity` twice: as a JSON number for humans and as
//! `similarity_bits` (`f64::to_bits`) for clients that need the exact value
//! — floating-point JSON round-trips are not trusted for bit-identity.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use walrus_core::{
    Budgets, CancelToken, Guard, QueryOptions, QueryOutcome, ResultStatus, SharedClock, Store,
    TraceContext, WalrusError,
};
use walrus_imagery::ppm::{parse_netpbm_limited, parse_netpbm_limited_prefix};
use walrus_imagery::{Image, ImageError};

use crate::cache::{KeyHasher, Lookup, QueryCache};
use crate::http::{json_string, Request, Response};
use crate::metrics::{Metrics, TraceStore};

/// Everything a worker needs to answer requests. One instance per server,
/// shared via `Arc`.
pub struct AppState {
    /// The WAL-durable store all mutations and queries go through — the
    /// monolithic [`SharedDurableDatabase`](walrus_core::SharedDurableDatabase)
    /// or an N-shard [`ShardedStore`](walrus_core::ShardedStore).
    pub store: Arc<dyn Store>,
    pub metrics: Metrics,
    /// Time source for request deadlines, latency samples, and trace spans.
    pub clock: SharedClock,
    /// Recent request traces, served at `GET /trace/{request_id}`.
    pub traces: TraceStore,
    /// Monotone request-id source; ids are echoed in `/query` and `/ingest`
    /// responses so clients can fetch the matching trace.
    pub request_ids: AtomicU64,
    /// Applied when a request carries no `timeout_ms` of its own.
    pub default_timeout: Option<Duration>,
    /// Cloned into every request guard; cancelled when graceful shutdown
    /// runs out of drain budget, so stragglers abort as `503`.
    pub cancel: CancelToken,
    /// Set the moment shutdown begins: connections stop keep-alive and idle
    /// reads return immediately.
    pub stopping: Arc<AtomicBool>,
    /// Pool shape, exposed as gauges in `/metrics`.
    pub pool_threads: usize,
    pub pool_queue_depth: usize,
    /// Query-result cache, keyed by query-body hash + params fingerprint
    /// and invalidated by [`Store::content_stamp`]. Capacity 0 disables.
    pub cache: QueryCache,
}

impl AppState {
    /// True once graceful shutdown has begun.
    pub fn is_stopping(&self) -> bool {
        self.stopping.load(Ordering::Acquire)
    }

    /// Allocates the next request id (ids start at 1).
    fn next_request_id(&self) -> u64 {
        self.request_ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Finalizes one traced request: folds its stage durations into the
    /// `/metrics` histograms and retains the rendered span tree for
    /// `GET /trace/{id}`.
    fn finish_trace(&self, request_id: u64, trace: &TraceContext) {
        let report = trace.report();
        self.metrics.stages.record_report(&report);
        // Prefilter effectiveness counters, summed over every probe span in
        // the tree (a sharded store records one per shard).
        let sum = |counter: &str| -> u64 {
            report
                .spans
                .iter()
                .flat_map(|s| s.counters.iter())
                .filter(|(name, _)| *name == counter)
                .map(|(_, v)| *v)
                .sum()
        };
        self.metrics
            .signatures_rejected_total
            .fetch_add(sum("signatures_rejected"), Ordering::Relaxed);
        self.metrics.candidates_exact_total.fetch_add(sum("candidates_exact"), Ordering::Relaxed);
        self.traces.insert(request_id, report.render());
    }
}

/// Routes one request and updates the response-class counters.
pub fn handle(state: &AppState, req: &Request) -> Response {
    let resp = route(state, req);
    state.metrics.count_response(resp.status);
    resp
}

fn route(state: &AppState, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/metrics") => metrics_text(state),
        ("POST", "/ingest") => ingest(state, req),
        ("POST", "/query") => query(state, req),
        ("POST", "/admin/checkpoint") => checkpoint(state),
        ("POST", "/admin/rebalance") => rebalance(state, req),
        ("GET", path) if path.starts_with("/image/") => image_meta(state, path),
        ("GET", path) if path.starts_with("/trace/") => trace_text(state, path),
        // Known paths with the wrong method get 405, everything else 404.
        (
            _,
            "/healthz" | "/metrics" | "/ingest" | "/query" | "/admin/checkpoint"
            | "/admin/rebalance",
        ) => {
            Response::error(405, "method not allowed")
        }
        (_, path) if path.starts_with("/image/") || path.starts_with("/trace/") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such endpoint"),
    }
}

fn healthz(state: &AppState) -> Response {
    let health = state.store.shard_health();
    let rebalance = state.store.rebalance_status();
    let degraded = health.iter().any(|h| !h.healthy);
    let shards: Vec<String> = health
        .iter()
        .map(|h| match &h.error {
            None => format!(
                "{{\"shard\":{},\"healthy\":true,\"images\":{},\"wal_bytes\":{}}}",
                h.shard, h.images, h.wal_bytes
            ),
            // Quarantined counts are the last observed before the failure
            // (0 when the shard never opened), flagged so dashboards can
            // tell "last known" from "live".
            Some(error) => format!(
                "{{\"shard\":{},\"healthy\":false,\"images\":{},\"wal_bytes\":{},\"counts_stale\":true,\"error\":{}}}",
                h.shard,
                h.images,
                h.wal_bytes,
                json_string(error)
            ),
        })
        .collect();
    Response::json(
        200,
        format!(
            "{{\"status\":{},\"images\":{},\"stopping\":{},\"epoch\":{},\"rebalancing\":{},\"shards\":[{}]}}",
            if degraded { "\"degraded\"" } else { "\"ok\"" },
            state.store.len(),
            state.is_stopping(),
            rebalance.epoch,
            rebalance.rebalancing,
            shards.join(",")
        ),
    )
}

fn metrics_text(state: &AppState) -> Response {
    let health = state.store.shard_health();
    let rebalance = state.store.rebalance_status();
    let mut named: Vec<(String, u64)> = vec![
        ("walrus_images".to_string(), state.store.len() as u64),
        ("walrus_regions".to_string(), state.store.num_regions() as u64),
        ("walrus_wal_bytes".to_string(), state.store.wal_len()),
        (
            "walrus_wal_records_since_checkpoint".to_string(),
            state.store.records_since_checkpoint() as u64,
        ),
        ("walrus_pool_threads".to_string(), state.pool_threads as u64),
        ("walrus_pool_queue_capacity".to_string(), state.pool_queue_depth as u64),
        ("walrus_shards".to_string(), health.len() as u64),
        (
            "walrus_shards_quarantined".to_string(),
            health.iter().filter(|h| !h.healthy).count() as u64,
        ),
        ("walrus_rebalance_epoch".to_string(), rebalance.epoch),
        ("walrus_rebalancing".to_string(), rebalance.rebalancing as u64),
        ("walrus_shards_migrated".to_string(), rebalance.shards_migrated as u64),
        ("walrus_cache_entries".to_string(), state.cache.len() as u64),
        ("walrus_cache_capacity".to_string(), state.cache.capacity() as u64),
    ];
    for h in &health {
        named.push((format!("walrus_shard_healthy{{shard=\"{}\"}}", h.shard), h.healthy as u64));
        named.push((format!("walrus_shard_images{{shard=\"{}\"}}", h.shard), h.images as u64));
        named
            .push((format!("walrus_shard_wal_bytes{{shard=\"{}\"}}", h.shard), h.wal_bytes));
    }
    let gauges: Vec<(&str, u64)> = named.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    Response::text(200, state.metrics.render_for_scrape(&gauges))
}

fn image_meta(state: &AppState, path: &str) -> Response {
    let id_str = path.trim_start_matches("/image/");
    let Ok(id) = id_str.parse::<usize>() else {
        return Response::error(400, "image id must be a non-negative integer");
    };
    match state.store.image_meta(id) {
        Ok(Some(meta)) => Response::json(
            200,
            format!(
                "{{\"id\":{},\"name\":{},\"width\":{},\"height\":{},\"regions\":{}}}",
                meta.id,
                json_string(&meta.name),
                meta.width,
                meta.height,
                meta.regions
            ),
        ),
        Ok(None) => Response::error(404, "unknown image id"),
        Err(e) => engine_error(&e),
    }
}

/// `GET /trace/{request_id}`: the rendered span tree of a recent request.
/// Traces are kept in a bounded ring, so old ids answer `404` once evicted.
fn trace_text(state: &AppState, path: &str) -> Response {
    let id_str = path.trim_start_matches("/trace/");
    let Ok(id) = id_str.parse::<u64>() else {
        return Response::error(400, "request id must be a non-negative integer");
    };
    match state.traces.get(id) {
        Some(rendered) => Response::text(200, rendered),
        None => Response::error(404, "no trace retained for this request id"),
    }
}

/// `POST /admin/checkpoint`: a rolling per-shard checkpoint. The response
/// reports, per shard, the LSN its snapshot now covers and how long the fold
/// took; quarantined shards are absent (they were skipped, not stopped on).
fn checkpoint(state: &AppState) -> Response {
    match state.store.checkpoint() {
        Ok(reports) => {
            state.metrics.checkpoints_total.fetch_add(1, Ordering::Relaxed);
            let shards: Vec<String> = reports
                .iter()
                .map(|r| {
                    format!(
                        "{{\"shard\":{},\"last_lsn\":{},\"duration_us\":{}}}",
                        r.shard,
                        r.last_lsn,
                        r.duration.as_micros()
                    )
                })
                .collect();
            Response::json(
                200,
                format!(
                    "{{\"checkpointed\":true,\"shards\":[{}],\"wal_records_since_checkpoint\":{}}}",
                    shards.join(","),
                    state.store.records_since_checkpoint()
                ),
            )
        }
        Err(e) => engine_error(&e),
    }
}

/// `POST /admin/rebalance?shards=M`: crash-safe online migration to `M`
/// shards. Queries keep answering (bit-identically) from the source layout
/// while it runs; mutations are shed with `503 {"rebalancing":true}` until
/// the new layout commits. A monolithic store answers `400` — only stores
/// with a shard manifest can change shape.
fn rebalance(state: &AppState, req: &Request) -> Response {
    let target = match parse_param::<usize>(req, "shards") {
        Ok(Some(v)) => v,
        Ok(None) => {
            return Response::error(400, "missing query parameter \"shards\" (the target count)")
        }
        Err(resp) => return resp,
    };
    match state.store.rebalance(target) {
        Ok(report) => {
            state.metrics.rebalances_total.fetch_add(1, Ordering::Relaxed);
            Response::json(
                200,
                format!(
                    "{{\"rebalanced\":true,\"from_shards\":{},\"to_shards\":{},\"epoch\":{},\"images\":{}}}",
                    report.from_shards, report.to_shards, report.epoch, report.images
                ),
            )
        }
        Err(e) => engine_error(&e),
    }
}

fn ingest(state: &AppState, req: &Request) -> Response {
    let started = state.clock.now_nanos();
    state.metrics.ingest_requests_total.fetch_add(1, Ordering::Relaxed);
    let request_id = state.next_request_id();
    let trace = TraceContext::new(state.clock.clone());
    let guard = match request_guard(state, req) {
        Ok(g) => g.tracing(trace.clone()),
        Err(resp) => return resp,
    };
    let budgets = match request_budgets(state, req) {
        Ok(b) => b.unwrap_or_else(|| state.store.params().budgets),
        Err(resp) => return resp,
    };
    if req.body.is_empty() {
        return Response::error(400, "empty body; expected one or more PPM images");
    }

    // Peel concatenated netpbm images off the body; the wire format is
    // simply PPMs back to back (netpbm rasters are self-delimiting).
    let mut images: Vec<Image> = Vec::new();
    let mut rest: &[u8] = &req.body;
    loop {
        while let Some((first, tail)) = rest.split_first() {
            if first.is_ascii_whitespace() {
                rest = tail;
            } else {
                break;
            }
        }
        if rest.is_empty() {
            break;
        }
        match parse_netpbm_limited_prefix(rest, budgets.max_decoded_pixels) {
            Ok((image, used)) => {
                images.push(image);
                rest = &rest[used..];
            }
            Err(e @ ImageError::TooLarge { .. }) => {
                return Response::error(413, &format!("image {}: {e}", images.len()));
            }
            Err(e) => {
                return Response::error(400, &format!("image {}: {e}", images.len()));
            }
        }
    }
    if images.is_empty() {
        return Response::error(400, "no images in body");
    }

    let base = req.query_param("name").unwrap_or("img");
    let names: Vec<String> = if images.len() == 1 {
        vec![base.to_string()]
    } else {
        (0..images.len()).map(|i| format!("{base}-{i}")).collect()
    };
    let items: Vec<(&str, &Image)> =
        names.iter().map(String::as_str).zip(images.iter()).collect();
    let result = state.store.insert_images_batch_guarded(&items, &guard);
    state.finish_trace(request_id, &trace);
    match result {
        Ok(ids) => {
            state
                .metrics
                .ingest_images_total
                .fetch_add(ids.len() as u64, Ordering::Relaxed);
            state
                .metrics
                .ingest_latency
                .record(Duration::from_nanos(state.clock.now_nanos().saturating_sub(started)));
            let ids_json: Vec<String> = ids.iter().map(|id| id.to_string()).collect();
            Response::json(
                200,
                format!(
                    "{{\"ids\":[{}],\"count\":{},\"request_id\":{request_id}}}",
                    ids_json.join(","),
                    ids.len()
                ),
            )
        }
        Err(e) => engine_error(&e),
    }
}

fn query(state: &AppState, req: &Request) -> Response {
    let started = state.clock.now_nanos();
    state.metrics.query_requests_total.fetch_add(1, Ordering::Relaxed);
    let request_id = state.next_request_id();
    let trace = TraceContext::new(state.clock.clone());
    let guard = match request_guard(state, req) {
        Ok(g) => g.tracing(trace.clone()),
        Err(resp) => return resp,
    };
    let budgets = match request_budgets(state, req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let opts = QueryOptions {
        k: match parse_param::<usize>(req, "k") {
            Ok(v) => v,
            Err(resp) => return resp,
        },
        epsilon: match parse_param::<f32>(req, "eps") {
            Ok(v) => v,
            Err(resp) => return resp,
        },
        min_similarity: match parse_param::<f64>(req, "min_sim") {
            Ok(v) => v,
            Err(resp) => return resp,
        },
        budgets,
    };
    let decode_pixels =
        budgets.unwrap_or_else(|| state.store.params().budgets).max_decoded_pixels;
    if req.body.is_empty() {
        return Response::error(400, "empty body; expected one PPM query image");
    }

    // Result-cache probe. The key covers everything request-side that can
    // change the answer (raw body bytes + raw parameter strings + shard
    // count); the stamp covers everything store-side (per-shard LSNs,
    // quarantine, rebalance epoch). A hit skips decode and the whole
    // engine — an entry can only exist if these exact bytes were once a
    // valid query whose `Complete` answer was produced under this stamp,
    // so replaying the cached body is byte-identical by construction.
    let key = query_cache_key(req);
    let stamp = state.store.content_stamp();
    match state.cache.lookup(key, stamp) {
        Lookup::Hit(cached) => {
            state.metrics.cache_hits_total.fetch_add(1, Ordering::Relaxed);
            let cache_span = trace.span("cache");
            let body = append_request_id(&cached, request_id);
            drop(cache_span);
            state.finish_trace(request_id, &trace);
            state
                .metrics
                .query_latency
                .record(Duration::from_nanos(state.clock.now_nanos().saturating_sub(started)));
            return Response::json(200, body);
        }
        Lookup::Stale => {
            state.metrics.cache_invalidations_total.fetch_add(1, Ordering::Relaxed);
            state.metrics.cache_misses_total.fetch_add(1, Ordering::Relaxed);
        }
        Lookup::Absent => {
            state.metrics.cache_misses_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    let image = match parse_netpbm_limited(&req.body, decode_pixels) {
        Ok(image) => image,
        Err(e @ ImageError::TooLarge { .. }) => {
            return Response::error(413, &format!("query image: {e}"));
        }
        Err(e) => return Response::error(400, &format!("query image: {e}")),
    };
    let result = state.store.query_with_options_guarded(&image, &opts, &guard);
    state.finish_trace(request_id, &trace);
    match result {
        Ok(outcome) => {
            state
                .metrics
                .query_latency
                .record(Duration::from_nanos(state.clock.now_nanos().saturating_sub(started)));
            // Both degradation flavors answer 206: the ranking is honest but
            // incomplete — deadline-truncated (partial) or missing the
            // quarantined shards' images (degraded).
            let status = match &outcome.status {
                ResultStatus::Complete => 200,
                ResultStatus::Partial => {
                    state.metrics.partial_total.fetch_add(1, Ordering::Relaxed);
                    206
                }
                ResultStatus::Degraded { .. } => {
                    state.metrics.degraded_total.fetch_add(1, Ordering::Relaxed);
                    206
                }
            };
            // Only `Complete` answers are cacheable, and only if the store
            // content is still exactly what the query ran against — a
            // mutation committed mid-query must not publish this body
            // under the new stamp.
            if status == 200
                && state.store.content_stamp() == stamp
                && state.cache.insert(key, stamp, outcome_json(&outcome))
            {
                state.metrics.cache_evictions_total.fetch_add(1, Ordering::Relaxed);
            }
            Response::json(status, outcome_json_with_id(&outcome, Some(request_id)))
        }
        Err(e) => engine_error(&e),
    }
}

/// Builds the cache key for a `/query` request: FNV-1a 64 over the raw body
/// bytes, then each answer-shaping query parameter (presence + raw string,
/// in fixed order — raw strings, so no normalization step can ever make two
/// semantically different requests collide). Store content is deliberately
/// NOT part of the key: freshness is the stamp's job, so a rebalance or
/// ingest surfaces as an invalidation rather than a silent key change.
fn query_cache_key(req: &Request) -> u64 {
    let mut h = KeyHasher::default();
    h.write_bytes(&req.body);
    for name in ["k", "eps", "min_sim", "timeout_ms", "max_pixels", "max_candidates"] {
        match req.query_param(name) {
            Some(v) => {
                h.write_u64(1);
                h.write_bytes(v.as_bytes());
            }
            None => {
                h.write_u64(0);
            }
        }
    }
    h.finish()
}

/// Splices a fresh `request_id` into a cached body (stored without one):
/// the id field sits between the closing brace of `stats` and the root
/// closing brace, exactly where [`outcome_json_with_id`] puts it.
fn append_request_id(body: &str, request_id: u64) -> String {
    let trimmed = body.strip_suffix('}').unwrap_or(body);
    format!("{trimmed},\"request_id\":{request_id}}}")
}

/// Serializes a [`QueryOutcome`]. Similarities are emitted both as JSON
/// numbers and as `f64::to_bits` integers for bit-exact consumers.
pub fn outcome_json(outcome: &QueryOutcome) -> String {
    outcome_json_with_id(outcome, None)
}

/// [`outcome_json`] with an optional `"request_id"` field appended — the id
/// clients pass to `GET /trace/{id}`.
fn outcome_json_with_id(outcome: &QueryOutcome, request_id: Option<u64>) -> String {
    let matches: Vec<String> = outcome
        .matches
        .iter()
        .map(|m| {
            format!(
                "{{\"id\":{},\"name\":{},\"similarity\":{},\"similarity_bits\":{},\"matched_pairs\":{}}}",
                m.image_id,
                json_string(&m.name),
                m.similarity,
                m.similarity.to_bits(),
                m.matched_pairs
            )
        })
        .collect();
    let id_field = match request_id {
        Some(id) => format!(",\"request_id\":{id}"),
        None => String::new(),
    };
    let (status_field, degraded_field) = match &outcome.status {
        ResultStatus::Complete => ("\"complete\"", String::new()),
        ResultStatus::Partial => ("\"partial\"", String::new()),
        ResultStatus::Degraded { shards_unavailable } => {
            let shards: Vec<String> =
                shards_unavailable.iter().map(|s| s.to_string()).collect();
            (
                "\"degraded\"",
                format!(",\"shards_unavailable\":[{}]", shards.join(",")),
            )
        }
    };
    format!(
        "{{\"status\":{}{},\"count\":{},\"matches\":[{}],\"stats\":{{\"query_regions\":{},\"total_matching_regions\":{},\"avg_regions_per_query_region\":{},\"distinct_images\":{}}}{}}}",
        status_field,
        degraded_field,
        outcome.matches.len(),
        matches.join(","),
        outcome.stats.query_regions,
        outcome.stats.total_matching_regions,
        outcome.stats.avg_regions_per_query_region,
        outcome.stats.distinct_images,
        id_field
    )
}

/// Builds the per-request [`Guard`]: `timeout_ms` (or the server default)
/// plus the shared shutdown cancellation token.
fn request_guard(state: &AppState, req: &Request) -> Result<Guard, Response> {
    let timeout = parse_param::<u64>(req, "timeout_ms")?
        .map(Duration::from_millis)
        .or(state.default_timeout);
    Ok(Guard::for_request_on(state.clock.clone(), timeout, Some(state.cancel.clone())))
}

/// Per-request [`Budgets`] overrides (`max_pixels`, `max_candidates`) on top
/// of the store-wide defaults; `None` when the request overrides nothing.
fn request_budgets(state: &AppState, req: &Request) -> Result<Option<Budgets>, Response> {
    let max_pixels = parse_param::<usize>(req, "max_pixels")?;
    let max_candidates = parse_param::<usize>(req, "max_candidates")?;
    if max_pixels.is_none() && max_candidates.is_none() {
        return Ok(None);
    }
    let mut budgets = state.store.params().budgets;
    if let Some(v) = max_pixels {
        budgets.max_decoded_pixels = v;
    }
    if let Some(v) = max_candidates {
        budgets.max_index_candidates = v;
    }
    Ok(Some(budgets))
}

fn parse_param<T: std::str::FromStr>(req: &Request, name: &str) -> Result<Option<T>, Response> {
    match req.query_param(name) {
        None => Ok(None),
        Some(raw) => raw.parse::<T>().map(Some).map_err(|_| {
            Response::error(400, &format!("invalid value for query parameter {name:?}"))
        }),
    }
}

/// Maps engine errors onto HTTP statuses. The degradation policy mirrors the
/// in-process one: deadline on a *query* never reaches here (it becomes a
/// `206` partial), deadline on *ingest* is `504` (the batch was rolled back),
/// cancellation is `503` (shutdown), budget breaches are `413`.
fn engine_error(err: &WalrusError) -> Response {
    // A quarantined shard sheds the request with a typed body naming the
    // shard, so clients (and the load balancer) can distinguish "this store
    // is degraded" from a generic overload 503.
    if let WalrusError::ShardUnavailable { shard } = err {
        return Response::json(
            503,
            format!(
                "{{\"error\":{},\"shard_unavailable\":{shard}}}",
                json_string(&err.to_string())
            ),
        );
    }
    // A mid-rebalance store sheds mutations with a typed body so clients
    // can tell "retry shortly, the layout is changing" from overload.
    if matches!(err, WalrusError::Rebalancing) {
        return Response::json(
            503,
            format!("{{\"error\":{},\"rebalancing\":true}}", json_string(&err.to_string())),
        );
    }
    let status = match err {
        WalrusError::Image(_) | WalrusError::BadParams(_) => 400,
        WalrusError::UnknownImage(_) => 404,
        WalrusError::BudgetExceeded { .. } => 413,
        WalrusError::Cancelled => 503,
        WalrusError::DeadlineExceeded => 504,
        _ => 500,
    };
    Response::error(status, &err.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use walrus_core::{DurableDatabase, SharedDurableDatabase, SlidingParams, WalrusParams};
    use walrus_imagery::ppm::write_ppm;
    use walrus_imagery::ColorSpace;

    fn test_params() -> WalrusParams {
        WalrusParams {
            sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 8, stride: 4 },
            ..WalrusParams::paper_defaults()
        }
    }

    fn test_state(dir: &std::path::Path) -> AppState {
        let (store, _) = DurableDatabase::open(dir, test_params()).unwrap();
        AppState {
            store: Arc::new(SharedDurableDatabase::new(store)),
            metrics: Metrics::default(),
            clock: walrus_core::monotonic(),
            traces: TraceStore::default(),
            request_ids: AtomicU64::new(0),
            default_timeout: None,
            cancel: CancelToken::new(),
            stopping: Arc::new(AtomicBool::new(false)),
            pool_threads: 2,
            pool_queue_depth: 8,
            cache: QueryCache::new(QueryCache::DEFAULT_CAPACITY),
        }
    }

    fn request(method: &str, target: &str, body: Vec<u8>) -> Request {
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (
                p.to_string(),
                q.split('&')
                    .map(|pair| {
                        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                        (k.to_string(), v.to_string())
                    })
                    .collect(),
            ),
            None => (target.to_string(), Vec::new()),
        };
        Request {
            method: method.to_string(),
            path,
            query,
            headers: Vec::new(),
            body,
            keep_alive: true,
        }
    }

    fn ppm_bytes(seed: usize) -> Vec<u8> {
        let img = Image::from_fn(16, 16, ColorSpace::Rgb, |x, y, c| {
            ((x / 4 + y / 4 + c + seed) % 4) as f32 / 3.0
        })
        .unwrap();
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).unwrap();
        buf
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("walrus_router_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn ingest_query_image_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let state = test_state(&dir);

        // Batch body: two concatenated PPMs.
        let mut body = ppm_bytes(0);
        body.extend_from_slice(&ppm_bytes(9));
        let resp = handle(&state, &request("POST", "/ingest?name=pair", body));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"ids\":[0,1]"), "{text}");
        assert_eq!(state.store.len(), 2);

        let resp = handle(&state, &request("GET", "/image/0", Vec::new()));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"name\":\"pair-0\""), "{text}");
        assert_eq!(handle(&state, &request("GET", "/image/99", Vec::new())).status, 404);

        let resp = handle(&state, &request("POST", "/query?k=1", ppm_bytes(0)));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"status\":\"complete\""), "{text}");
        assert!(text.contains("\"similarity_bits\":"), "{text}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_timeout_query_is_partial_206() {
        let dir = tmp_dir("partial");
        let state = test_state(&dir);
        handle(&state, &request("POST", "/ingest", ppm_bytes(1)));
        let resp = handle(&state, &request("POST", "/query?timeout_ms=0", ppm_bytes(1)));
        assert_eq!(resp.status, 206, "{}", String::from_utf8_lossy(&resp.body));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"status\":\"partial\""), "{text}");
        assert_eq!(
            state.metrics.partial_total.load(Ordering::Relaxed),
            1
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_inputs_are_4xx_and_do_not_mutate() {
        let dir = tmp_dir("hostile");
        let state = test_state(&dir);
        assert_eq!(handle(&state, &request("POST", "/ingest", Vec::new())).status, 400);
        assert_eq!(
            handle(&state, &request("POST", "/ingest", b"not a ppm".to_vec())).status,
            400
        );
        assert_eq!(
            handle(&state, &request("POST", "/ingest?max_pixels=4", ppm_bytes(0))).status,
            413
        );
        assert_eq!(
            handle(&state, &request("POST", "/query?k=frog", ppm_bytes(0))).status,
            400
        );
        assert_eq!(handle(&state, &request("GET", "/image/frog", Vec::new())).status, 400);
        assert_eq!(handle(&state, &request("GET", "/nope", Vec::new())).status, 404);
        assert_eq!(handle(&state, &request("DELETE", "/ingest", Vec::new())).status, 405);
        assert_eq!(state.store.len(), 0, "hostile requests must not mutate the store");
        assert_eq!(state.metrics.errors_total(), 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancelled_store_answers_503() {
        let dir = tmp_dir("cancel");
        let state = test_state(&dir);
        state.cancel.cancel();
        let resp = handle(&state, &request("POST", "/ingest", ppm_bytes(0)));
        assert_eq!(resp.status, 503);
        assert_eq!(state.store.len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traced_requests_expose_span_trees_and_stage_histograms() {
        let dir = tmp_dir("trace");
        let state = test_state(&dir);

        let resp = handle(&state, &request("POST", "/ingest", ppm_bytes(0)));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"request_id\":1"), "{text}");

        let resp = handle(&state, &request("POST", "/query?k=1", ppm_bytes(0)));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"request_id\":2"), "{text}");

        // The ingest trace shows the extraction + WAL stages...
        let resp = handle(&state, &request("GET", "/trace/1", Vec::new()));
        assert_eq!(resp.status, 200);
        let trace = String::from_utf8(resp.body).unwrap();
        for span in ["ingest", "extract", "wal_append"] {
            assert!(trace.contains(span), "missing {span} in:\n{trace}");
        }
        // ...and the query trace shows all five pipeline stages.
        let resp = handle(&state, &request("GET", "/trace/2", Vec::new()));
        assert_eq!(resp.status, 200);
        let trace = String::from_utf8(resp.body).unwrap();
        for span in ["query", "decode", "wavelet", "birch", "rstar_probe", "match"] {
            assert!(trace.contains(span), "missing {span} in:\n{trace}");
        }

        // Unknown / malformed trace ids.
        assert_eq!(handle(&state, &request("GET", "/trace/999", Vec::new())).status, 404);
        assert_eq!(handle(&state, &request("GET", "/trace/frog", Vec::new())).status, 400);
        assert_eq!(handle(&state, &request("POST", "/trace/1", Vec::new())).status, 405);

        // Stage histograms saw the samples.
        let metrics = String::from_utf8(
            handle(&state, &request("GET", "/metrics", Vec::new())).body,
        )
        .unwrap();
        for stage in ["decode", "wavelet", "birch", "rstar_probe", "match", "wal_append"] {
            assert!(
                metrics.contains(&format!("walrus_stage_{stage}_count 1\n")),
                "stage {stage} missing a sample in:\n{metrics}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    fn sharded_state(dir: &std::path::Path, shards: usize) -> AppState {
        let (store, _) = walrus_core::ShardedStore::open(dir, test_params(), shards).unwrap();
        AppState {
            store: Arc::new(store),
            metrics: Metrics::default(),
            clock: walrus_core::monotonic(),
            traces: TraceStore::default(),
            request_ids: AtomicU64::new(0),
            default_timeout: None,
            cancel: CancelToken::new(),
            stopping: Arc::new(AtomicBool::new(false)),
            pool_threads: 2,
            pool_queue_depth: 8,
            cache: QueryCache::new(QueryCache::DEFAULT_CAPACITY),
        }
    }

    /// A query response body with its request id stripped, for comparing
    /// answers (which embed `similarity_bits`) across a rebalance.
    fn answer_of(resp: Response) -> String {
        let text = String::from_utf8(resp.body).unwrap();
        text.split_once(",\"request_id\"").map(|(a, _)| a.to_string()).unwrap_or(text)
    }

    #[test]
    fn rebalance_endpoint_migrates_and_keeps_answers_bit_identical() {
        let dir = tmp_dir("rebalance");
        let state = sharded_state(&dir, 4);
        let mut body = ppm_bytes(0);
        body.extend_from_slice(&ppm_bytes(7));
        assert_eq!(handle(&state, &request("POST", "/ingest", body)).status, 200);
        let before = answer_of(handle(&state, &request("POST", "/query", ppm_bytes(0))));

        let resp = handle(&state, &request("POST", "/admin/rebalance?shards=2", Vec::new()));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"from_shards\":4"), "{text}");
        assert!(text.contains("\"to_shards\":2"), "{text}");
        assert!(text.contains("\"epoch\":1"), "{text}");

        // Same ranked answer, bit for bit, from the new layout.
        let after = answer_of(handle(&state, &request("POST", "/query", ppm_bytes(0))));
        assert_eq!(before, after);
        // The store still ingests after the commit.
        assert_eq!(handle(&state, &request("POST", "/ingest", ppm_bytes(3))).status, 200);

        // Health and metrics surface the committed epoch.
        let health =
            String::from_utf8(handle(&state, &request("GET", "/healthz", Vec::new())).body)
                .unwrap();
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        assert!(health.contains("\"epoch\":1"), "{health}");
        assert!(health.contains("\"rebalancing\":false"), "{health}");
        let metrics =
            String::from_utf8(handle(&state, &request("GET", "/metrics", Vec::new())).body)
                .unwrap();
        assert!(metrics.contains("walrus_rebalance_epoch 1\n"), "{metrics}");
        assert!(metrics.contains("walrus_shards_migrated 2\n"), "{metrics}");
        assert!(metrics.contains("walrus_rebalances_total 1\n"), "{metrics}");
        assert!(metrics.contains("walrus_shards 2\n"), "{metrics}");

        // Parameter and method errors.
        assert_eq!(
            handle(&state, &request("POST", "/admin/rebalance", Vec::new())).status,
            400,
            "missing shards parameter"
        );
        assert_eq!(
            handle(&state, &request("POST", "/admin/rebalance?shards=frog", Vec::new())).status,
            400
        );
        assert_eq!(
            handle(&state, &request("GET", "/admin/rebalance?shards=2", Vec::new())).status,
            405
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn monolithic_store_refuses_rebalance() {
        let dir = tmp_dir("rebalance_mono");
        let state = test_state(&dir);
        let resp = handle(&state, &request("POST", "/admin/rebalance?shards=2", Vec::new()));
        assert_eq!(resp.status, 400, "{}", String::from_utf8_lossy(&resp.body));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repeat_query_hits_cache_byte_identically() {
        let dir = tmp_dir("cache_hit");
        let state = test_state(&dir);
        handle(&state, &request("POST", "/ingest", ppm_bytes(0)));

        let first = handle(&state, &request("POST", "/query?k=1", ppm_bytes(0)));
        assert_eq!(first.status, 200);
        assert_eq!(state.metrics.cache_hits_total.load(Ordering::Relaxed), 0);
        assert_eq!(state.metrics.cache_misses_total.load(Ordering::Relaxed), 1);

        let second = handle(&state, &request("POST", "/query?k=1", ppm_bytes(0)));
        assert_eq!(second.status, 200);
        assert_eq!(state.metrics.cache_hits_total.load(Ordering::Relaxed), 1);
        // Byte-identical modulo the fresh request id: strip the id field
        // (which is the only per-request part of the body) and compare.
        assert_eq!(answer_of_body(&first.body), answer_of_body(&second.body));
        // The spliced id is present and correct on the cached answer.
        assert!(String::from_utf8(second.body.clone())
            .unwrap()
            .ends_with(&format!("\"request_id\":{}}}", 3)));

        // Different params → different key → miss.
        let third = handle(&state, &request("POST", "/query?k=2", ppm_bytes(0)));
        assert_eq!(third.status, 200);
        assert_eq!(state.metrics.cache_hits_total.load(Ordering::Relaxed), 1);
        assert_eq!(state.metrics.cache_misses_total.load(Ordering::Relaxed), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_invalidates_cached_answers_but_checkpoint_does_not() {
        let dir = tmp_dir("cache_inval");
        let state = test_state(&dir);
        handle(&state, &request("POST", "/ingest", ppm_bytes(0)));
        handle(&state, &request("POST", "/query?k=5", ppm_bytes(0)));

        // Checkpoint rewrites bytes, not answers: the entry survives.
        assert_eq!(handle(&state, &request("POST", "/admin/checkpoint", Vec::new())).status, 200);
        handle(&state, &request("POST", "/query?k=5", ppm_bytes(0)));
        assert_eq!(state.metrics.cache_hits_total.load(Ordering::Relaxed), 1);

        // Ingest moves the LSN: the same key is now stale and the fresh
        // answer (which sees the new image) replaces it.
        assert_eq!(handle(&state, &request("POST", "/ingest", ppm_bytes(3))).status, 200);
        let fresh = handle(&state, &request("POST", "/query?k=5", ppm_bytes(0)));
        assert_eq!(fresh.status, 200);
        assert_eq!(state.metrics.cache_hits_total.load(Ordering::Relaxed), 1);
        assert_eq!(state.metrics.cache_invalidations_total.load(Ordering::Relaxed), 1);
        let text = String::from_utf8(fresh.body).unwrap();
        assert!(text.contains("\"distinct_images\":2"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rebalance_invalidates_cached_answers() {
        let dir = tmp_dir("cache_rebalance");
        let state = sharded_state(&dir, 4);
        handle(&state, &request("POST", "/ingest", ppm_bytes(0)));
        let first = handle(&state, &request("POST", "/query?k=5", ppm_bytes(0)));
        assert_eq!(first.status, 200);
        let resp = handle(&state, &request("POST", "/admin/rebalance?shards=2", Vec::new()));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));

        // The epoch bump stales the entry: the repeat is an invalidation,
        // not a hit, and the fresh answer is still bit-identical.
        let after = handle(&state, &request("POST", "/query?k=5", ppm_bytes(0)));
        assert_eq!(after.status, 200);
        assert_eq!(state.metrics.cache_hits_total.load(Ordering::Relaxed), 0);
        assert_eq!(state.metrics.cache_invalidations_total.load(Ordering::Relaxed), 1);
        assert_eq!(answer_of_body(&first.body), answer_of_body(&after.body));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_answers_are_not_cached() {
        let dir = tmp_dir("cache_partial");
        let state = test_state(&dir);
        handle(&state, &request("POST", "/ingest", ppm_bytes(1)));
        let resp = handle(&state, &request("POST", "/query?timeout_ms=0", ppm_bytes(1)));
        assert_eq!(resp.status, 206);
        assert!(state.cache.is_empty(), "a deadline-truncated 206 must not be cached");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Body with its `request_id` field removed.
    fn answer_of_body(body: &[u8]) -> String {
        let text = String::from_utf8(body.to_vec()).unwrap();
        let at = text.rfind(",\"request_id\":").unwrap();
        format!("{}{}", &text[..at], "}")
    }

    #[test]
    fn metrics_and_healthz_render() {
        let dir = tmp_dir("metrics");
        let state = test_state(&dir);
        handle(&state, &request("POST", "/ingest", ppm_bytes(0)));
        let resp = handle(&state, &request("GET", "/healthz", Vec::new()));
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8(resp.body).unwrap().contains("\"images\":1"));
        let resp = handle(&state, &request("GET", "/metrics", Vec::new()));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("walrus_up 1\n"), "{text}");
        assert!(text.contains("walrus_images 1\n"), "{text}");
        assert!(text.contains("walrus_ingest_images_total 1\n"), "{text}");
        assert!(text.contains("walrus_pool_threads 2\n"), "{text}");
        let resp = handle(&state, &request("POST", "/admin/checkpoint", Vec::new()));
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8(resp.body)
            .unwrap()
            .contains("\"wal_records_since_checkpoint\":0"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
