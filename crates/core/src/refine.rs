//! The refined matching phase (paper §5.5, final paragraph):
//!
//! > "For images T whose similarity to the query image Q exceeds the
//! > threshold τ, we can perform an additional refined matching phase with
//! > more detailed signatures if the resulting increase in response time is
//! > acceptable."
//!
//! The coarse pass (2×2 signatures, quick matching) is cheap but blunt —
//! strong candidates tie at or near similarity 1.0. This module re-scores a
//! short-list of candidates *pairwise* against the query using finer
//! parameters (larger signatures, tighter clustering, one-to-one greedy
//! matching), without touching the index: regions of the query and of each
//! candidate are re-extracted and matched directly.
//!
//! The database does not retain pixel data, so the caller supplies a fetch
//! function mapping image ids back to images (from disk, an object store,
//! …) — mirroring the paper's deployment where images live outside the
//! index.

use crate::database::{ImageDatabase, RankedImage};
use crate::extract::extract_regions;
use crate::matching::{self, MatchPair};
use crate::params::{SignatureKind, WalrusParams};
use crate::region::Region;
use crate::{Result, WalrusError};
use walrus_imagery::Image;
use walrus_wavelet::sliding::l2_distance;
use walrus_wavelet::QueryCode;

/// Parameters of the refinement pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineParams {
    /// Engine parameters for the *fine* pass — typically the coarse
    /// parameters with `s` doubled, a tighter `ε_c` and greedy matching.
    pub fine: WalrusParams,
    /// How many coarse candidates to re-score.
    pub candidates: usize,
}

impl RefineParams {
    /// A sensible refinement of `coarse`: 4×4 signatures, `ε_c/2`, greedy
    /// one-to-one matching, re-scoring the top 20.
    pub fn from_coarse(coarse: &WalrusParams) -> Self {
        let mut fine = *coarse;
        fine.sliding.s = (coarse.sliding.s * 2).min(coarse.sliding.omega_min);
        fine.cluster_epsilon = coarse.cluster_epsilon / 2.0;
        fine.matching = crate::params::MatchingKind::Greedy;
        Self { fine, candidates: 20 }
    }
}

/// Directly matches two region sets: every pair within `eps` (by the
/// configured signature kind) becomes a match pair; the configured
/// algorithm turns pairs into a similarity. This is the index-free core of
/// refinement, also useful for one-off pairwise image comparison.
pub fn match_region_sets(
    params: &WalrusParams,
    q_regions: &[Region],
    t_regions: &[Region],
    q_area: usize,
    t_area: usize,
) -> matching::MatchScore {
    let eps = params.query_epsilon;
    let mut pairs = Vec::new();
    // Binary prefilter over the pairwise sweep: the same admissible
    // popcount test the index probe uses, here guarding the O(|Q|·|T|)
    // exact comparisons. The widened interval covers both the exact test's
    // reach and the centroid-vs-bbox slop, so a rejected pair provably
    // cannot match.
    let prefilter_on = params.prefilter_enabled();
    let slack = eps + 1e-4;
    let codes: Vec<QueryCode> = if prefilter_on {
        q_regions
            .iter()
            .map(|q| match params.signature_kind {
                SignatureKind::Centroid => QueryCode::around(&q.centroid, slack),
                SignatureKind::BoundingBox => {
                    let lo: Vec<f32> = q.bbox_min.iter().map(|v| v - slack).collect();
                    let hi: Vec<f32> = q.bbox_max.iter().map(|v| v + slack).collect();
                    QueryCode::from_interval(&lo, &hi)
                }
            })
            .collect()
    } else {
        Vec::new()
    };
    for (qi, q) in q_regions.iter().enumerate() {
        for (ti, t) in t_regions.iter().enumerate() {
            if prefilter_on && codes[qi].certainly_disjoint(&t.signature) {
                continue;
            }
            let matched = match params.signature_kind {
                SignatureKind::Centroid => l2_distance(&q.centroid, &t.centroid) <= eps,
                SignatureKind::BoundingBox => {
                    q.index_rect(SignatureKind::BoundingBox)
                        .extended(eps)
                        .intersects(&t.index_rect(SignatureKind::BoundingBox))
                }
            };
            if matched {
                pairs.push(MatchPair { q: qi, t: ti });
            }
        }
    }
    matching::score(params, q_regions, t_regions, &pairs, q_area, t_area)
}

impl ImageDatabase {
    /// Re-scores the top coarse candidates with finer parameters. `fetch`
    /// maps an image id to its pixels (return `None` to skip a candidate —
    /// it keeps its coarse score). Results are re-sorted by the refined
    /// similarity.
    pub fn refine_ranking(
        &self,
        query: &Image,
        coarse: &[RankedImage],
        refine: &RefineParams,
        mut fetch: impl FnMut(usize) -> Option<Image>,
    ) -> Result<Vec<RankedImage>> {
        refine.fine.validate()?;
        if refine.candidates == 0 {
            return Err(WalrusError::BadParams("refinement needs at least 1 candidate".into()));
        }
        let q_regions = extract_regions(query, &refine.fine)?;
        let mut out: Vec<RankedImage> = coarse.to_vec();
        for ranked in out.iter_mut().take(refine.candidates) {
            let Some(image) = fetch(ranked.image_id) else { continue };
            let t_regions = extract_regions(&image, &refine.fine)?;
            let score = match_region_sets(
                &refine.fine,
                &q_regions,
                &t_regions,
                query.area(),
                image.area(),
            );
            ranked.similarity = score.similarity;
            ranked.matched_pairs = score.pairs_used.len();
        }
        out.sort_by(|a, b| {
            b.similarity
                .partial_cmp(&a.similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.image_id.cmp(&b.image_id))
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walrus_imagery::synth::scene::{Scene, SceneObject};
    use walrus_imagery::synth::shapes::Shape;
    use walrus_imagery::synth::texture::{Rgb, Texture};
    use walrus_wavelet::SlidingParams;

    fn coarse_params() -> WalrusParams {
        WalrusParams {
            sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 32, stride: 4 },
            ..WalrusParams::paper_defaults()
        }
    }

    fn flower(cx: f32, petals: u32) -> Image {
        Scene::new(Texture::Noise {
            a: Rgb(0.08, 0.42, 0.12),
            b: Rgb(0.14, 0.55, 0.18),
            scale: 6,
            seed: 3,
        })
        .with(SceneObject::new(
            Shape::Flower { petals, core_radius: 0.5, petal_len: 0.95, petal_width: 0.25 },
            Texture::Solid(Rgb(0.85, 0.12, 0.18)),
            (cx, 0.5),
            0.55,
        ))
        .render(128, 96)
        .unwrap()
    }

    #[test]
    fn from_coarse_tightens_parameters() {
        let coarse = coarse_params();
        let r = RefineParams::from_coarse(&coarse);
        assert_eq!(r.fine.sliding.s, 4);
        assert!(r.fine.cluster_epsilon < coarse.cluster_epsilon);
        assert_eq!(r.fine.matching, crate::params::MatchingKind::Greedy);
        r.fine.validate().unwrap();
    }

    #[test]
    fn match_region_sets_self_similarity_is_one() {
        let params = coarse_params();
        let img = flower(0.5, 6);
        let regions = extract_regions(&img, &params).unwrap();
        let score = match_region_sets(&params, &regions, &regions, img.area(), img.area());
        assert!(score.similarity > 0.99, "self score {}", score.similarity);
    }

    #[test]
    fn match_region_sets_disjoint_images_score_zero() {
        let params = coarse_params();
        let a = flower(0.5, 6);
        let b = Scene::new(Texture::Solid(Rgb(0.1, 0.15, 0.85))).render(128, 96).unwrap();
        let ra = extract_regions(&a, &params).unwrap();
        let rb = extract_regions(&b, &params).unwrap();
        let score = match_region_sets(&params, &ra, &rb, a.area(), b.area());
        assert_eq!(score.similarity, 0.0);
    }

    #[test]
    fn refinement_breaks_coarse_ties() {
        // Two candidates both tie near 1.0 coarsely: the identical image
        // and a similar-but-different flower (5 petals vs 6). Refinement
        // must rank the identical one first.
        let mut db = ImageDatabase::new(coarse_params()).unwrap();
        let exact = flower(0.5, 6);
        let similar = flower(0.52, 5);
        let images = [exact.clone(), similar];
        db.insert_image("exact", &images[0]).unwrap();
        db.insert_image("similar", &images[1]).unwrap();

        let coarse = db.top_k(&exact, 2).unwrap();
        assert_eq!(coarse.len(), 2);

        let refine = RefineParams::from_coarse(db.params());
        let refined = db
            .refine_ranking(&exact, &coarse, &refine, |id| images.get(id).cloned())
            .unwrap();
        assert_eq!(refined[0].name, "exact");
        assert!(
            refined[0].similarity >= refined[1].similarity,
            "refined ranking must put the identical image first"
        );
    }

    #[test]
    fn unfetchable_candidates_keep_coarse_scores() {
        let mut db = ImageDatabase::new(coarse_params()).unwrap();
        let img = flower(0.5, 6);
        db.insert_image("only", &img).unwrap();
        let coarse = db.top_k(&img, 1).unwrap();
        let refine = RefineParams::from_coarse(db.params());
        let refined = db.refine_ranking(&img, &coarse, &refine, |_| None).unwrap();
        assert_eq!(refined[0].similarity, coarse[0].similarity);
    }

    #[test]
    fn invalid_refine_params_rejected() {
        let db = ImageDatabase::new(coarse_params()).unwrap();
        let img = flower(0.5, 6);
        let mut refine = RefineParams::from_coarse(db.params());
        refine.candidates = 0;
        assert!(db.refine_ranking(&img, &[], &refine, |_| None).is_err());
        let mut refine = RefineParams::from_coarse(db.params());
        refine.fine.sliding.stride = 3;
        assert!(db.refine_ranking(&img, &[], &refine, |_| None).is_err());
    }
}
