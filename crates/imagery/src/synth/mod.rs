//! Deterministic synthetic scene and dataset generation.
//!
//! The paper evaluates retrieval quality on the `misc` collection: 10 000
//! JPEG photos downloaded from VIRAGE circa 1997 (flowers, brick walls,
//! sunsets, dogs on lawns, seascapes, …). That collection is not available,
//! and — more importantly — it carries no machine-readable ground truth about
//! which images are "semantically related". This module substitutes a scene
//! compositor that *constructs* that ground truth:
//!
//! * [`shapes`] — rasterizable primitives (ellipses, rectangles, flower
//!   blobs with petals, triangles) with anti-aliased edges.
//! * [`texture`] — procedural fills (solid, gradients, checkers, bricks,
//!   stripes, value noise) so scenes have realistic local signatures rather
//!   than flat color.
//! * [`scene`] — a [`scene::Scene`] composes textured shapes over a textured
//!   background and renders to an RGB [`crate::Image`]; objects can be
//!   translated, scaled and color-shifted, which is exactly the family of
//!   transformations WALRUS claims robustness to.
//! * [`dataset`] — labeled image collections mirroring the paper's query
//!   story: a *flower* class whose members contain the same flower object at
//!   different positions/scales/counts, plus distractor classes (brick
//!   walls, sunsets, lawns) that share global color composition with the
//!   flower images. Single-signature methods confuse those distractors with
//!   the flower class; region-based matching should not.
//!
//! All generation is seeded [`rand::rngs::StdRng`], so datasets are
//! reproducible bit-for-bit across runs and platforms.

pub mod dataset;
pub mod scene;
pub mod shapes;
pub mod texture;

pub use dataset::{DatasetSpec, ImageClass, LabeledImage, SyntheticDataset};
pub use scene::{Scene, SceneObject};
pub use shapes::Shape;
pub use texture::Texture;
