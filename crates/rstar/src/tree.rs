//! The R\*-tree index.
//!
//! Faithful to Beckmann et al. (SIGMOD 1990) in the heuristics that matter
//! for query quality:
//!
//! * **ChooseSubtree** — at the level above the leaves, pick the child whose
//!   *overlap enlargement* is minimal (ties: area enlargement, then area);
//!   higher up, minimal area enlargement.
//! * **Forced reinsertion** — on the first leaf overflow of an insertion,
//!   the `p` entries farthest from the node centre are removed and
//!   reinserted, which defers splits and improves packing. (Reinsertion is
//!   applied at the leaf level, where WALRUS's workload concentrates.)
//! * **R\* split** — choose the split axis by minimal margin sum over all
//!   `(m…M+1−m)` distributions of both sortings, then the distribution with
//!   minimal overlap (ties: minimal combined area).
//!
//! Deletion condenses underflowing nodes by reinserting their entries, the
//! classic R-tree strategy, so the tree stays height-balanced.

use crate::rect::Rect;
use crate::{RStarError, Result};

/// Tree shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RStarParams {
    /// Maximum entries per node (`M`), ≥ 4.
    pub max_entries: usize,
    /// Minimum entries per node (`m`), in `[2, M/2]`.
    pub min_entries: usize,
    /// Entries removed by forced reinsertion (`p`), in `[1, M − m]`;
    /// the R\* paper recommends 30% of `M`.
    pub reinsert_count: usize,
}

impl Default for RStarParams {
    fn default() -> Self {
        Self { max_entries: 16, min_entries: 6, reinsert_count: 5 }
    }
}

impl RStarParams {
    /// Validates the parameter combination.
    pub fn validate(&self) -> Result<()> {
        if self.max_entries < 4 {
            return Err(RStarError::BadParams("max_entries must be >= 4".into()));
        }
        if self.min_entries < 2 || self.min_entries > self.max_entries / 2 {
            return Err(RStarError::BadParams(format!(
                "min_entries {} must be in [2, {}]",
                self.min_entries,
                self.max_entries / 2
            )));
        }
        if self.reinsert_count < 1 || self.reinsert_count > self.max_entries - self.min_entries {
            return Err(RStarError::BadParams(format!(
                "reinsert_count {} must be in [1, {}]",
                self.reinsert_count,
                self.max_entries - self.min_entries
            )));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct LeafEntry<V> {
    rect: Rect,
    value: V,
}

#[derive(Debug, Clone)]
struct ChildEntry<V> {
    rect: Rect,
    node: Box<Node<V>>,
}

#[derive(Debug, Clone)]
enum Node<V> {
    Leaf(Vec<LeafEntry<V>>),
    Internal(Vec<ChildEntry<V>>),
}

impl<V> Node<V> {
    fn bounding_rect(&self) -> Option<Rect> {
        match self {
            Node::Leaf(entries) => {
                let mut it = entries.iter();
                let mut r = it.next()?.rect.clone();
                for e in it {
                    r.union_in_place(&e.rect);
                }
                Some(r)
            }
            Node::Internal(children) => {
                let mut it = children.iter();
                let mut r = it.next()?.rect.clone();
                for c in it {
                    r.union_in_place(&c.rect);
                }
                Some(r)
            }
        }
    }

    fn entry_count(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Internal(c) => c.len(),
        }
    }
}

/// An in-memory R\*-tree mapping rectangles (or points) to values.
#[derive(Debug, Clone)]
pub struct RStarTree<V> {
    root: Node<V>,
    dims: usize,
    params: RStarParams,
    len: usize,
}

impl<V> RStarTree<V> {
    /// Creates an empty tree over `dims`-dimensional rectangles.
    pub fn new(dims: usize, params: RStarParams) -> Result<Self> {
        params.validate()?;
        if dims == 0 {
            return Err(RStarError::BadParams("dimensionality must be >= 1".into()));
        }
        Ok(Self { root: Node::Leaf(Vec::new()), dims, params, len: 0 })
    }

    /// Creates an empty tree with default parameters.
    pub fn with_dims(dims: usize) -> Result<Self> {
        Self::new(dims, RStarParams::default())
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal(children) = node {
            h += 1;
            node = &children[0].node;
        }
        h
    }

    /// Assembles a tree from pre-packed leaf groups (see [`crate::bulk`]).
    /// Each group becomes one leaf; upper levels are packed from runs of
    /// sibling nodes, rebalancing tails so occupancy stays within `[m, M]`.
    pub(crate) fn from_packed_leaves(
        dims: usize,
        params: RStarParams,
        groups: Vec<Vec<(Rect, V)>>,
    ) -> Self {
        debug_assert!(!groups.is_empty());
        let len = groups.iter().map(|g| g.len()).sum();
        let mut level: Vec<ChildEntry<V>> = groups
            .into_iter()
            .map(|g| {
                make_child(Node::Leaf(
                    g.into_iter().map(|(rect, value)| LeafEntry { rect, value }).collect(),
                ))
            })
            .collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(params.max_entries));
            let mut rest = level;
            while !rest.is_empty() {
                let mut take = params.max_entries.min(rest.len());
                let remaining = rest.len() - take;
                if remaining > 0 && remaining < params.min_entries {
                    take = rest.len() - params.min_entries;
                }
                let tail = rest.split_off(take);
                next.push(make_child(Node::Internal(rest)));
                rest = tail;
            }
            level = next;
        }
        let root = match level.pop() {
            Some(c) => *c.node,
            None => Node::Leaf(Vec::new()),
        };
        Self { root, dims, params, len }
    }

    /// Inserts `rect → value`.
    pub fn insert(&mut self, rect: Rect, value: V) -> Result<()> {
        if rect.dims() != self.dims {
            return Err(RStarError::DimensionMismatch { expected: self.dims, got: rect.dims() });
        }
        self.insert_entry(LeafEntry { rect, value }, true);
        self.len += 1;
        Ok(())
    }

    fn insert_entry(&mut self, entry: LeafEntry<V>, allow_reinsert: bool) {
        let mut allow = allow_reinsert;
        let (split, reinserts) = insert_rec(&mut self.root, entry, &self.params, &mut allow);
        if let Some(sibling) = split {
            self.grow_root(sibling);
        }
        for e in reinserts {
            let mut no_reinsert = false;
            let (split, extra) = insert_rec(&mut self.root, e, &self.params, &mut no_reinsert);
            debug_assert!(extra.is_empty());
            if let Some(sibling) = split {
                self.grow_root(sibling);
            }
        }
    }

    fn grow_root(&mut self, sibling: ChildEntry<V>) {
        let old = std::mem::replace(&mut self.root, Node::Leaf(Vec::new()));
        let old_rect = old.bounding_rect().expect("split root cannot be empty");
        self.root =
            Node::Internal(vec![ChildEntry { rect: old_rect, node: Box::new(old) }, sibling]);
    }

    /// All `(rect, value)` pairs whose rectangle intersects `query`.
    pub fn search_intersecting(&self, query: &Rect) -> Result<Vec<(&Rect, &V)>> {
        self.search_intersecting_stats(query).map(|(out, _)| out)
    }

    /// [`search_intersecting`](RStarTree::search_intersecting) plus probe
    /// statistics for observability.
    pub fn search_intersecting_stats(
        &self,
        query: &Rect,
    ) -> Result<(Vec<(&Rect, &V)>, SearchStats)> {
        self.search_intersecting_filtered_stats(query, |_| true)
    }

    /// [`search_intersecting_stats`](RStarTree::search_intersecting_stats)
    /// with a per-entry prefilter applied to each scanned leaf value
    /// *before* the exact rectangle test. Entries the prefilter rejects are
    /// counted in [`SearchStats::prefilter_rejected`] and never reach the
    /// geometry test; survivors are counted in
    /// [`SearchStats::exact_tested`]. For the result set to be correct the
    /// prefilter must be admissible: it may only reject entries the exact
    /// test would also reject.
    pub fn search_intersecting_filtered_stats(
        &self,
        query: &Rect,
        mut prefilter: impl FnMut(&V) -> bool,
    ) -> Result<(Vec<(&Rect, &V)>, SearchStats)> {
        if query.dims() != self.dims {
            return Err(RStarError::DimensionMismatch { expected: self.dims, got: query.dims() });
        }
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        search_rec(&self.root, query, &mut out, &mut stats, &mut prefilter);
        Ok((out, stats))
    }

    /// All entries whose rectangle lies within L2 distance `eps` of `point`
    /// (for point entries this is the exact ε-ball query WALRUS issues for
    /// centroid signatures; for box entries it is the ε-extended overlap
    /// test of Definition 4.1).
    pub fn search_within(&self, point: &[f32], eps: f32) -> Result<Vec<(&Rect, &V)>> {
        self.search_within_stats(point, eps).map(|(out, _)| out)
    }

    /// [`search_within`](RStarTree::search_within) plus probe statistics:
    /// nodes visited during the rectangle descent, and how many rectangle
    /// candidates the exact ε-ball distance test then pruned.
    pub fn search_within_stats(
        &self,
        point: &[f32],
        eps: f32,
    ) -> Result<(Vec<(&Rect, &V)>, SearchStats)> {
        self.search_within_filtered_stats(point, eps, |_| true)
    }

    /// [`search_within_stats`](RStarTree::search_within_stats) with a
    /// per-entry prefilter applied to each scanned leaf value *before* the
    /// rectangle and ε-ball tests. Rejections are counted in
    /// [`SearchStats::prefilter_rejected`], survivors in
    /// [`SearchStats::exact_tested`]. The prefilter must be admissible: it
    /// may only reject entries the exact distance test would also reject.
    pub fn search_within_filtered_stats(
        &self,
        point: &[f32],
        eps: f32,
        mut prefilter: impl FnMut(&V) -> bool,
    ) -> Result<(Vec<(&Rect, &V)>, SearchStats)> {
        if point.len() != self.dims {
            return Err(RStarError::DimensionMismatch { expected: self.dims, got: point.len() });
        }
        let probe = Rect::point(point)?.extended(eps);
        let eps_sq = (eps as f64) * (eps as f64);
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        search_rec(&self.root, &probe, &mut out, &mut stats, &mut prefilter);
        let coarse = out.len();
        out.retain(|(r, _)| r.min_dist_sq(point) <= eps_sq);
        stats.pruned = coarse - out.len();
        Ok((out, stats))
    }

    /// The `k` entries nearest to `point` by minimum L2 distance to their
    /// rectangle, ascending (best-first branch-and-bound).
    pub fn nearest_k(&self, point: &[f32], k: usize) -> Result<Vec<(&Rect, &V, f64)>> {
        if point.len() != self.dims {
            return Err(RStarError::DimensionMismatch { expected: self.dims, got: point.len() });
        }
        if k == 0 || self.len == 0 {
            return Ok(Vec::new());
        }
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // Min-heap over (distance, frontier item).
        enum Item<'a, V> {
            Node(&'a Node<V>),
            Entry(&'a Rect, &'a V),
        }
        struct Keyed<'a, V>(f64, Item<'a, V>);
        impl<V> PartialEq for Keyed<'_, V> {
            fn eq(&self, other: &Self) -> bool {
                self.0 == other.0
            }
        }
        impl<V> Eq for Keyed<'_, V> {}
        impl<V> PartialOrd for Keyed<'_, V> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<V> Ord for Keyed<'_, V> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.partial_cmp(&other.0).unwrap_or(std::cmp::Ordering::Equal)
            }
        }

        let mut heap: BinaryHeap<Reverse<Keyed<V>>> = BinaryHeap::new();
        heap.push(Reverse(Keyed(0.0, Item::Node(&self.root))));
        let mut out = Vec::with_capacity(k);
        while let Some(Reverse(Keyed(dist, item))) = heap.pop() {
            match item {
                Item::Node(Node::Leaf(entries)) => {
                    for e in entries {
                        heap.push(Reverse(Keyed(e.rect.min_dist_sq(point), Item::Entry(&e.rect, &e.value))));
                    }
                }
                Item::Node(Node::Internal(children)) => {
                    for c in children {
                        heap.push(Reverse(Keyed(c.rect.min_dist_sq(point), Item::Node(&c.node))));
                    }
                }
                Item::Entry(rect, value) => {
                    out.push((rect, value, dist.sqrt()));
                    if out.len() == k {
                        break;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Removes one entry matching `rect` exactly whose value equals `value`.
    /// Returns true when an entry was removed.
    pub fn remove(&mut self, rect: &Rect, value: &V) -> Result<bool>
    where
        V: PartialEq,
    {
        if rect.dims() != self.dims {
            return Err(RStarError::DimensionMismatch { expected: self.dims, got: rect.dims() });
        }
        let mut orphans = Vec::new();
        let removed = remove_rec(&mut self.root, rect, value, self.params.min_entries, &mut orphans);
        if removed {
            self.len -= 1;
            // Shrink the root while it is an internal node with one child.
            loop {
                match &mut self.root {
                    Node::Internal(children) if children.len() == 1 => {
                        let child = children.pop().expect("length checked");
                        self.root = *child.node;
                    }
                    Node::Internal(children) if children.is_empty() => {
                        self.root = Node::Leaf(Vec::new());
                        break;
                    }
                    _ => break,
                }
            }
            for e in orphans {
                self.insert_entry(e, false);
            }
        }
        Ok(removed)
    }

    /// Visits every stored `(rect, value)` pair.
    pub fn for_each(&self, mut f: impl FnMut(&Rect, &V)) {
        fn walk<V>(node: &Node<V>, f: &mut impl FnMut(&Rect, &V)) {
            match node {
                Node::Leaf(entries) => {
                    for e in entries {
                        f(&e.rect, &e.value);
                    }
                }
                Node::Internal(children) => {
                    for c in children {
                        walk(&c.node, f);
                    }
                }
            }
        }
        walk(&self.root, &mut f);
    }

    /// Checks structural invariants (used by tests): bounding rectangles
    /// contain their subtrees, all leaves at the same depth, node occupancy
    /// within `[m, M]` except the root. Panics on violation.
    pub fn check_invariants(&self) {
        fn depth_of<V>(node: &Node<V>) -> usize {
            match node {
                Node::Leaf(_) => 1,
                Node::Internal(children) => 1 + depth_of(&children[0].node),
            }
        }
        fn walk<V>(node: &Node<V>, params: &RStarParams, is_root: bool, expected_depth: usize) -> usize {
            match node {
                Node::Leaf(entries) => {
                    assert_eq!(expected_depth, 1, "leaves must share a depth");
                    if !is_root {
                        assert!(entries.len() >= params.min_entries, "leaf underflow");
                    }
                    assert!(entries.len() <= params.max_entries, "leaf overflow");
                    entries.len()
                }
                Node::Internal(children) => {
                    if !is_root {
                        assert!(children.len() >= params.min_entries, "internal underflow");
                    } else {
                        assert!(children.len() >= 2, "internal root needs >= 2 children");
                    }
                    assert!(children.len() <= params.max_entries, "internal overflow");
                    let mut count = 0;
                    for c in children {
                        let sub = c.node.bounding_rect().expect("child cannot be empty");
                        assert!(c.rect.contains(&sub), "stale child bounding rect");
                        count += walk(&c.node, params, false, expected_depth - 1);
                    }
                    count
                }
            }
        }
        let depth = depth_of(&self.root);
        let counted = walk(&self.root, &self.params, true, depth);
        assert_eq!(counted, self.len, "length bookkeeping diverged");
    }
}

/// Counters a rectangle search accumulates, reported by the `_stats` search
/// variants and surfaced in query traces.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Tree nodes (leaf + internal) the descent touched.
    pub nodes_visited: usize,
    /// Coarse rectangle hits discarded by the exact ε-ball distance test.
    pub pruned: usize,
    /// Scanned leaf entries rejected by the value prefilter before any
    /// exact geometry test (0 when no prefilter is in use).
    pub prefilter_rejected: usize,
    /// Scanned leaf entries that reached the exact geometry test (all
    /// scanned entries when no prefilter is in use).
    pub exact_tested: usize,
}

fn search_rec<'a, V>(
    node: &'a Node<V>,
    query: &Rect,
    out: &mut Vec<(&'a Rect, &'a V)>,
    stats: &mut SearchStats,
    prefilter: &mut impl FnMut(&V) -> bool,
) {
    stats.nodes_visited += 1;
    match node {
        Node::Leaf(entries) => {
            for e in entries {
                if !prefilter(&e.value) {
                    stats.prefilter_rejected += 1;
                    continue;
                }
                stats.exact_tested += 1;
                if e.rect.intersects(query) {
                    out.push((&e.rect, &e.value));
                }
            }
        }
        Node::Internal(children) => {
            for c in children {
                if c.rect.intersects(query) {
                    search_rec(&c.node, query, out, stats, prefilter);
                }
            }
        }
    }
}

fn insert_rec<V>(
    node: &mut Node<V>,
    entry: LeafEntry<V>,
    params: &RStarParams,
    allow_reinsert: &mut bool,
) -> (Option<ChildEntry<V>>, Vec<LeafEntry<V>>) {
    match node {
        Node::Leaf(entries) => {
            entries.push(entry);
            if entries.len() <= params.max_entries {
                return (None, Vec::new());
            }
            if *allow_reinsert {
                *allow_reinsert = false;
                let reinserts = take_farthest(entries, params.reinsert_count);
                return (None, reinserts);
            }
            let sibling = split_entries(entries, params, |e| &e.rect);
            (Some(make_child(Node::Leaf(sibling))), Vec::new())
        }
        Node::Internal(children) => {
            let i = choose_subtree(children, &entry.rect);
            let (split, reinserts) = insert_rec(&mut children[i].node, entry, params, allow_reinsert);
            children[i].rect =
                children[i].node.bounding_rect().expect("child cannot become empty on insert");
            let mut my_split = None;
            if let Some(sibling) = split {
                children.push(sibling);
                if children.len() > params.max_entries {
                    let sibling_children = split_entries(children, params, |c| &c.rect);
                    my_split = Some(make_child(Node::Internal(sibling_children)));
                }
            }
            (my_split, reinserts)
        }
    }
}

fn make_child<V>(node: Node<V>) -> ChildEntry<V> {
    let rect = node.bounding_rect().expect("split halves are non-empty");
    ChildEntry { rect, node: Box::new(node) }
}

/// R\* ChooseSubtree: minimum overlap enlargement when children are leaves,
/// otherwise minimum area enlargement (ties broken by area).
fn choose_subtree<V>(children: &[ChildEntry<V>], rect: &Rect) -> usize {
    let leaf_level = matches!(*children[0].node, Node::Leaf(_));
    let mut best = 0usize;
    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for (i, c) in children.iter().enumerate() {
        let enlarged = c.rect.union(rect);
        let area_enl = enlarged.area() - c.rect.area();
        let overlap_enl = if leaf_level {
            let mut delta = 0.0;
            for (j, o) in children.iter().enumerate() {
                if i != j {
                    delta += enlarged.overlap_area(&o.rect) - c.rect.overlap_area(&o.rect);
                }
            }
            delta
        } else {
            0.0
        };
        let key = (overlap_enl, area_enl, c.rect.area());
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// Removes the `p` entries whose centres are farthest from the node centre
/// (the R\* forced-reinsert set), returning them closest-first as the paper
/// recommends for re-insertion order.
fn take_farthest<V>(entries: &mut Vec<LeafEntry<V>>, p: usize) -> Vec<LeafEntry<V>> {
    let mut bounding = entries[0].rect.clone();
    for e in entries.iter().skip(1) {
        bounding.union_in_place(&e.rect);
    }
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by(|&a, &b| {
        bounding
            .center_dist_sq(&entries[b].rect)
            .partial_cmp(&bounding.center_dist_sq(&entries[a].rect))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut to_remove: Vec<usize> = order.into_iter().take(p).collect();
    to_remove.sort_unstable_by(|a, b| b.cmp(a));
    let mut removed: Vec<LeafEntry<V>> = to_remove.into_iter().map(|i| entries.swap_remove(i)).collect();
    removed.reverse(); // farthest removed last → reinsert closest-first
    removed
}

/// The R\* split. Generic over leaf entries and child entries via `rect_of`.
/// Splits `items` in place: the retained half stays, the other is returned.
fn split_entries<T>(items: &mut Vec<T>, params: &RStarParams, rect_of: impl Fn(&T) -> &Rect) -> Vec<T> {
    let m = params.min_entries;
    let total = items.len();
    debug_assert!(total >= 2 * m);
    let dims = rect_of(&items[0]).dims();

    // Choose the split axis: the one minimizing the margin sum over all
    // legal distributions of both (by-min and by-max) sortings.
    let mut best_axis = 0usize;
    let mut best_margin = f64::INFINITY;
    for axis in 0..dims {
        let mut margin_sum = 0.0;
        for by_max in [false, true] {
            let order = sorted_order(items, axis, by_max, &rect_of);
            for k in m..=total - m {
                let (bb1, bb2) = group_rects(items, &order, k, &rect_of);
                margin_sum += bb1.margin() + bb2.margin();
            }
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // Choose the distribution on that axis: minimal overlap, then area.
    let mut best: Option<(Vec<usize>, usize)> = None;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for by_max in [false, true] {
        let order = sorted_order(items, best_axis, by_max, &rect_of);
        for k in m..=total - m {
            let (bb1, bb2) = group_rects(items, &order, k, &rect_of);
            let key = (bb1.overlap_area(&bb2), bb1.area() + bb2.area());
            if key < best_key {
                best_key = key;
                best = Some((order.clone(), k));
            }
        }
    }
    let (order, k) = best.expect("at least one distribution exists");

    // Partition according to the winning distribution.
    let mut in_second = vec![false; total];
    for &i in &order[k..] {
        in_second[i] = true;
    }
    let mut first = Vec::with_capacity(k);
    let mut second = Vec::with_capacity(total - k);
    for (i, item) in items.drain(..).enumerate() {
        if in_second[i] {
            second.push(item);
        } else {
            first.push(item);
        }
    }
    *items = first;
    second
}

fn sorted_order<T>(items: &[T], axis: usize, by_max: bool, rect_of: &impl Fn(&T) -> &Rect) -> Vec<usize> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        let (ra, rb) = (rect_of(&items[a]), rect_of(&items[b]));
        let (ka, kb) = if by_max {
            (ra.max()[axis], rb.max()[axis])
        } else {
            (ra.min()[axis], rb.min()[axis])
        };
        ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

fn group_rects<T>(items: &[T], order: &[usize], k: usize, rect_of: &impl Fn(&T) -> &Rect) -> (Rect, Rect) {
    let mut bb1 = rect_of(&items[order[0]]).clone();
    for &i in &order[1..k] {
        bb1.union_in_place(rect_of(&items[i]));
    }
    let mut bb2 = rect_of(&items[order[k]]).clone();
    for &i in &order[k + 1..] {
        bb2.union_in_place(rect_of(&items[i]));
    }
    (bb1, bb2)
}

/// Removes one matching entry; collects entries of condensed (underflowed)
/// subtrees into `orphans`. Returns whether the entry was found.
fn remove_rec<V: PartialEq>(
    node: &mut Node<V>,
    rect: &Rect,
    value: &V,
    min_entries: usize,
    orphans: &mut Vec<LeafEntry<V>>,
) -> bool {
    match node {
        Node::Leaf(entries) => {
            if let Some(pos) = entries.iter().position(|e| &e.rect == rect && &e.value == value) {
                entries.remove(pos);
                true
            } else {
                false
            }
        }
        Node::Internal(children) => {
            for i in 0..children.len() {
                if !children[i].rect.intersects(rect) {
                    continue;
                }
                if remove_rec(&mut children[i].node, rect, value, min_entries, orphans) {
                    if children[i].node.entry_count() < min_entries {
                        // Condense: dissolve the child, reinsert its entries.
                        let child = children.remove(i);
                        collect_entries(*child.node, orphans);
                    } else {
                        children[i].rect = children[i]
                            .node
                            .bounding_rect()
                            .expect("non-underflowed child is non-empty");
                    }
                    return true;
                }
            }
            false
        }
    }
}

fn collect_entries<V>(node: Node<V>, out: &mut Vec<LeafEntry<V>>) {
    match node {
        Node::Leaf(entries) => out.extend(entries),
        Node::Internal(children) => {
            for c in children {
                collect_entries(*c.node, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(coords: &[f32]) -> Rect {
        Rect::point(coords).unwrap()
    }

    fn grid_points(n: usize) -> Vec<(Rect, usize)> {
        // n² points on an integer grid, ids row-major.
        let mut out = Vec::new();
        for y in 0..n {
            for x in 0..n {
                out.push((pt(&[x as f32, y as f32]), y * n + x));
            }
        }
        out
    }

    fn build(points: &[(Rect, usize)]) -> RStarTree<usize> {
        let mut t = RStarTree::with_dims(points[0].0.dims()).unwrap();
        for (r, v) in points {
            t.insert(r.clone(), *v).unwrap();
        }
        t
    }

    #[test]
    fn empty_tree_queries() {
        let t: RStarTree<usize> = RStarTree::with_dims(2).unwrap();
        assert!(t.is_empty());
        assert!(t.search_intersecting(&pt(&[0.0, 0.0])).unwrap().is_empty());
        assert!(t.search_within(&[0.0, 0.0], 10.0).unwrap().is_empty());
        assert!(t.nearest_k(&[0.0, 0.0], 3).unwrap().is_empty());
    }

    #[test]
    fn intersection_query_matches_linear_scan() {
        let points = grid_points(12);
        let t = build(&points);
        t.check_invariants();
        let query = Rect::new(vec![2.5, 3.5], vec![7.0, 9.0]).unwrap();
        let mut got: Vec<usize> =
            t.search_intersecting(&query).unwrap().into_iter().map(|(_, &v)| v).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = points
            .iter()
            .filter(|(r, _)| r.intersects(&query))
            .map(|(_, v)| *v)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn within_query_matches_linear_scan() {
        let points = grid_points(10);
        let t = build(&points);
        for (center, eps) in [([4.2f32, 4.8], 1.5f32), ([0.0, 0.0], 3.0), ([9.0, 9.0], 0.5)] {
            let mut got: Vec<usize> =
                t.search_within(&center, eps).unwrap().into_iter().map(|(_, &v)| v).collect();
            got.sort_unstable();
            let mut want: Vec<usize> = points
                .iter()
                .filter(|(r, _)| r.min_dist_sq(&center) <= (eps as f64) * (eps as f64))
                .map(|(_, v)| *v)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "center {center:?} eps {eps}");
        }
    }

    #[test]
    fn nearest_k_matches_linear_scan() {
        let points = grid_points(9);
        let t = build(&points);
        let q = [3.3f32, 6.1];
        let got = t.nearest_k(&q, 5).unwrap();
        assert_eq!(got.len(), 5);
        // Distances ascend.
        for w in got.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
        let mut want: Vec<(f64, usize)> = points
            .iter()
            .map(|(r, v)| (r.min_dist_sq(&q).sqrt(), *v))
            .collect();
        want.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let got_dists: Vec<f64> = got.iter().map(|g| g.2).collect();
        let want_dists: Vec<f64> = want.iter().take(5).map(|w| w.0).collect();
        for (a, b) in got_dists.iter().zip(&want_dists) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn box_entries_intersection() {
        let mut t = RStarTree::with_dims(2).unwrap();
        let boxes = [
            (Rect::new(vec![0.0, 0.0], vec![2.0, 2.0]).unwrap(), 0usize),
            (Rect::new(vec![1.0, 1.0], vec![4.0, 3.0]).unwrap(), 1),
            (Rect::new(vec![5.0, 5.0], vec![6.0, 6.0]).unwrap(), 2),
        ];
        for (r, v) in &boxes {
            t.insert(r.clone(), *v).unwrap();
        }
        let hits = t.search_intersecting(&Rect::new(vec![1.5, 1.5], vec![1.6, 1.6]).unwrap()).unwrap();
        let mut ids: Vec<usize> = hits.iter().map(|(_, &v)| v).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn invariants_hold_under_bulk_insertion() {
        // Pseudo-random 12-d points — the WALRUS signature shape.
        let mut t = RStarTree::with_dims(12).unwrap();
        let mut state = 1u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f32 / 1000.0
        };
        for i in 0..800 {
            let p: Vec<f32> = (0..12).map(|_| next()).collect();
            t.insert(Rect::point(&p).unwrap(), i).unwrap();
        }
        assert_eq!(t.len(), 800);
        assert!(t.height() > 1);
        t.check_invariants();
    }

    #[test]
    fn duplicate_rects_allowed() {
        let mut t = RStarTree::with_dims(2).unwrap();
        for i in 0..50 {
            t.insert(pt(&[1.0, 1.0]), i).unwrap();
        }
        assert_eq!(t.len(), 50);
        t.check_invariants();
        assert_eq!(t.search_within(&[1.0, 1.0], 0.0).unwrap().len(), 50);
    }

    #[test]
    fn remove_and_requery() {
        let points = grid_points(8);
        let mut t = build(&points);
        assert!(t.remove(&pt(&[3.0, 3.0]), &(3 * 8 + 3)).unwrap());
        assert!(!t.remove(&pt(&[3.0, 3.0]), &(3 * 8 + 3)).unwrap(), "already gone");
        assert_eq!(t.len(), 63);
        t.check_invariants();
        let hits = t.search_within(&[3.0, 3.0], 0.1).unwrap();
        assert!(hits.is_empty());
        // Every other point is still findable.
        for (r, v) in &points {
            if *v != 3 * 8 + 3 {
                let found = t.search_within(r.min(), 0.0).unwrap();
                assert!(found.iter().any(|(_, &got)| got == *v), "lost point {v}");
            }
        }
    }

    #[test]
    fn remove_everything_empties_tree() {
        let points = grid_points(6);
        let mut t = build(&points);
        for (r, v) in &points {
            assert!(t.remove(r, v).unwrap());
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        // Insert again after emptying.
        t.insert(pt(&[0.5, 0.5]), 999).unwrap();
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    fn for_each_visits_all() {
        let points = grid_points(7);
        let t = build(&points);
        let mut seen = [false; 49];
        t.for_each(|_, &v| seen[v] = true);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut t: RStarTree<usize> = RStarTree::with_dims(3).unwrap();
        assert!(t.insert(pt(&[1.0, 2.0]), 0).is_err());
        assert!(t.search_within(&[1.0], 0.5).is_err());
        assert!(t.nearest_k(&[1.0, 2.0, 3.0, 4.0], 1).is_err());
    }

    #[test]
    fn bad_params_rejected() {
        assert!(RStarParams { max_entries: 3, min_entries: 2, reinsert_count: 1 }.validate().is_err());
        assert!(RStarParams { max_entries: 16, min_entries: 9, reinsert_count: 1 }.validate().is_err());
        assert!(RStarParams { max_entries: 16, min_entries: 6, reinsert_count: 11 }
            .validate()
            .is_err());
        assert!(RStarParams::default().validate().is_ok());
    }

    #[test]
    fn filtered_search_counts_and_matches_unfiltered() {
        let points = grid_points(7);
        let t = build(&points);
        let center = [3.0, 3.0];
        let eps = 1.5;
        let (plain, plain_stats) = t.search_within_stats(&center, eps).unwrap();
        // Unfiltered: every scanned entry reaches the exact test.
        assert_eq!(plain_stats.prefilter_rejected, 0);
        assert!(plain_stats.exact_tested >= plain.len());
        // An admissible prefilter (accept-all) yields identical results.
        let (same, same_stats) =
            t.search_within_filtered_stats(&center, eps, |_| true).unwrap();
        let ids = |v: &[(&Rect, &usize)]| {
            let mut out: Vec<usize> = v.iter().map(|(_, &id)| id).collect();
            out.sort_unstable();
            out
        };
        assert_eq!(ids(&plain), ids(&same));
        assert_eq!(plain_stats, same_stats);
        // A value-keyed prefilter skips rejected entries before the
        // geometry test and counts them.
        let keep = |v: &usize| *v % 2 == 0;
        let (filtered, fstats) = t.search_within_filtered_stats(&center, eps, keep).unwrap();
        assert!(fstats.prefilter_rejected > 0);
        assert_eq!(fstats.prefilter_rejected + fstats.exact_tested, plain_stats.exact_tested);
        let expected: Vec<usize> = ids(&plain).into_iter().filter(|v| v % 2 == 0).collect();
        assert_eq!(ids(&filtered), expected);
        // Same contract for the intersecting variant.
        let query = Rect::new(vec![2.0, 2.0], vec![4.0, 4.0]).unwrap();
        let (inter, _) = t.search_intersecting_stats(&query).unwrap();
        let (inter_f, istats) = t.search_intersecting_filtered_stats(&query, keep).unwrap();
        assert!(istats.prefilter_rejected > 0);
        let expected: Vec<usize> = ids(&inter).into_iter().filter(|v| v % 2 == 0).collect();
        assert_eq!(ids(&inter_f), expected);
    }

    #[test]
    fn clustered_data_still_balanced() {
        // Two tight clusters far apart: splits must not degenerate.
        let mut t = RStarTree::with_dims(2).unwrap();
        for i in 0..200 {
            let off = (i % 14) as f32 * 0.001;
            t.insert(pt(&[off, off]), i).unwrap();
            t.insert(pt(&[100.0 + off, 100.0 - off]), 1000 + i).unwrap();
        }
        t.check_invariants();
        let near_origin = t.search_within(&[0.0, 0.0], 1.0).unwrap();
        assert_eq!(near_origin.len(), 200);
    }
}
